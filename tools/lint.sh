#!/usr/bin/env bash
# Pattern gates that clippy cannot express, enforced in CI (see
# .github/workflows/ci.yml) and runnable locally:
#
#   1. No ambient time in the protocol paths. `crates/core/src/exec.rs`
#      and `crates/net/src/tcp.rs` must take time through the
#      `hadfl::clock::Clock` seam — a raw `Instant::now()` or
#      `SystemTime::now()` there is invisible to `hadfl-check`'s
#      deterministic scheduler and breaks exhaustive exploration.
#
#   2. No lock guard held across `Port::send`. A send can block on a
#      slow peer's TCP buffer; holding a mutex meanwhile stalls the
#      reader/heartbeat threads into a distributed deadlock. Guards
#      must be dropped (or confined to a temporary) before sending.
#
#   3. No `println!`/`eprintln!` in the protocol hot paths. Runtime
#      observability goes through the `hadfl-telemetry` event layer
#      (structured, schema-versioned, zero-cost when disabled) — stray
#      prints bypass the sinks, garble node output parsed by tests,
#      and cost formatting on every call even when nobody listens.
#
#   4. No raw frame construction outside `wire::seal`/`wire::open`.
#      Every on-wire frame carries a causal stamp (origin + Lamport
#      clock); a transport that calls `Message::encode`/`decode`
#      directly ships an unstamped frame the causal merge cannot
#      order. `encoded_len` (payload-ledger accounting) is exempt, as
#      is `exec.rs`'s `digest_msg` (a model-checker digest, not a
#      wire frame).
#
#   5. No raw `thread::spawn` in the compute kernels. Parallelism in
#      `crates/tensor`, `crates/nn`, and `core/src/aggregate.rs` must
#      go through the `hadfl-par` substrate, whose fixed chunk
#      boundaries and ordered combines are what keep results
#      bit-identical at any thread count (DESIGN.md §10). The
#      executor's long-lived driver threads (`exec.rs`) are exempt —
#      they are actors, not data-parallel kernels.
#
# Exit status: 0 clean, 1 any gate tripped.
set -u

cd "$(dirname "$0")/.."

CLOCKED_FILES="crates/core/src/exec.rs crates/net/src/tcp.rs"
status=0

# ---- gate 1: ambient clocks -------------------------------------------------
for f in $CLOCKED_FILES; do
    hits=$(grep -n 'Instant::now()\|SystemTime::now()' "$f" || true)
    if [ -n "$hits" ]; then
        echo "lint: ambient clock in $f (use the hadfl::clock::Clock seam):"
        echo "$hits" | sed "s|^|  $f:|"
        status=1
    fi
done

# ---- gate 2: lock guard held across Port::send ------------------------------
# Heuristic: a `let`-bound `.lock()` guard lives to the end of its
# block; flag any two-argument `.send(to, msg)` (the `Port::send`
# shape — one-argument channel sends are non-blocking and exempt)
# while such a guard is in scope. Expression-temporary locks like
# `x.lock().insert(..)` drop their guard at the statement boundary
# and are exempt.
for f in $CLOCKED_FILES; do
    hits=$(awk '
        function brace_delta(s,    t, opens, closes) {
            t = s; opens = gsub(/{/, "", t)
            t = s; closes = gsub(/}/, "", t)
            return opens - closes
        }
        {
            line = $0
            sub(/\/\/.*/, "", line)
            if (line ~ /let[ \t]+(mut[ \t]+)?[A-Za-z_][A-Za-z0-9_]*[^;]*\.lock\(\)/ \
                && line !~ /\.lock\(\)[ \t]*\./) {
                g_n += 1; g_depth[g_n] = depth; g_line[g_n] = FNR
            }
            if (line ~ /\.send\([^,)]+,/) {
                for (i = 1; i <= g_n; i++) {
                    if (g_depth[i] >= 0)
                        printf "%d: Port::send with the lock guard from line %d still held\n", FNR, g_line[i]
                }
            }
            depth += brace_delta(line)
            for (i = 1; i <= g_n; i++)
                if (g_depth[i] >= 0 && depth < g_depth[i]) g_depth[i] = -1
        }' "$f")
    if [ -n "$hits" ]; then
        echo "lint: lock guard held across Port::send in $f:"
        echo "$hits" | sed "s|^|  $f:|"
        status=1
    fi
done

# ---- gate 3: stdout/stderr prints in protocol hot paths ---------------------
# Doc examples (`/// println!...`) are fine — only real code trips the
# gate.
for f in $CLOCKED_FILES; do
    hits=$(grep -n 'println!\|eprintln!' "$f" | grep -v '^[0-9]*:[[:space:]]*//' || true)
    if [ -n "$hits" ]; then
        echo "lint: print macro in $f (emit a hadfl-telemetry event instead):"
        echo "$hits" | sed "s|^|  $f:|"
        status=1
    fi
done

# ---- gate 4: raw frame construction outside seal/open -----------------------
# The stamped frame helpers live in crates/core/src/wire.rs; the
# transport layers must go through them. `encoded_len` only sizes the
# payload for the NetStats ledger and does not build a frame.
FRAME_FILES="crates/core/src/exec.rs crates/core/src/transport.rs crates/net/src/tcp.rs"
for f in $FRAME_FILES; do
    hits=$(awk '
        {
            line = $0
            sub(/\/\/.*/, "", line)
            if (match(line, /fn[ \t]+[A-Za-z_][A-Za-z0-9_]*/)) {
                fname = substr(line, RSTART + 3, RLENGTH - 3)
                gsub(/^[ \t]+/, "", fname)
            }
            if (line ~ /encoded_len/) next
            if (line ~ /\.encode\(\)|::decode\(|\.decode\(/ && fname != "digest_msg")
                printf "%d: raw frame construction in fn %s (use wire::seal / wire::open)\n", FNR, fname
        }' "$f")
    if [ -n "$hits" ]; then
        echo "lint: unstamped frame in $f:"
        echo "$hits" | sed "s|^|  $f:|"
        status=1
    fi
done

# ---- gate 5: raw thread spawns in compute kernels ---------------------------
# Data-parallel work in the kernel crates must flow through hadfl-par;
# a stray `thread::spawn` (or `std::thread::spawn`) there escapes the
# determinism contract. hadfl-par itself is the one place allowed to
# spawn.
KERNEL_SOURCES=$(find crates/tensor/src crates/nn/src -name '*.rs'; echo crates/core/src/aggregate.rs)
for f in $KERNEL_SOURCES; do
    hits=$(grep -n 'thread::spawn' "$f" | grep -v '^[0-9]*:[[:space:]]*//' || true)
    if [ -n "$hits" ]; then
        echo "lint: raw thread spawn in $f (use the hadfl-par substrate):"
        echo "$hits" | sed "s|^|  $f:|"
        status=1
    fi
done

if [ "$status" -eq 0 ]; then
    echo "lint: clean"
fi
exit "$status"
