#!/usr/bin/env bash
# Workspace static-analysis gate. The pattern rules formerly written
# as grep/awk heuristics here now live in `crates/lint` (hadfl-lint),
# a scope-aware analyzer with its own lexer, waiver grammar, and a
# seeded-violation fixture corpus. See DESIGN.md §11 for the rule
# catalogue and tools/lint.sh history for what each rule replaced.
#
# Exit status (hadfl-lint's own contract, preserved from the old
# script): 0 clean, 1 any finding, 2 usage or I/O error.
set -u

cd "$(dirname "$0")/.."

exec cargo run -q -p hadfl-lint -- --workspace "$@"
