#!/usr/bin/env bash
# Runs the kernel, wire, telemetry, and profiler criterion benches and
# distills every measurement into BENCH_9.json at the repo root: one
# record per benchmark with the op name, the worker-thread count it ran
# at, and the measured ns/iter. The `calibration/serial_fma_1m` row is
# the machine-speed yardstick `hadfl-bench-diff` divides out when
# comparing two BENCH files, so numbers taken on different (or
# differently loaded) machines stay comparable. The `scaling/` group
# runs the same workload at 1, 2, and 4 threads (encoded as an `_tN`
# name suffix), so the file is the recorded evidence for the parallel
# substrate's scaling; the `wire_*` vs `wire_reference/*_per_float_*`
# rows are the bulk codec's before/after; the `span_emission/*` rows
# bound the telemetry hot path; and the `prof/*` + `prof_parity/*`
# rows bound the compute profiler (disabled scope vs enabled pair,
# instrumented kernel with and without a profiler installed).
#
# HADFL_BENCH_FAST=1 shrinks the vendored criterion's measurement
# budget for CI smoke runs; never commit numbers taken with it — the
# 20ms budget gives the allocation-bound wire ops 1-6 iters/sample
# and a 3x run-to-run spread. Committed BENCH files are the per-op
# MINIMUM across several (>=5) idle full-budget passes: noise only
# ever adds time, so the min is the stable envelope.
set -euo pipefail

cd "$(dirname "$0")/.."

out=BENCH_9.json
raw=$(mktemp)
trap 'rm -f "$raw"' EXIT

# The vendored criterion stand-in has no CLI filter: run each bench
# binary whole and scrape its `bench: <name> <ns> ns/iter` lines.
for bench in kernels wire telemetry prof; do
    echo "== cargo bench -p hadfl-bench --bench $bench" >&2
    cargo bench -p hadfl-bench --bench "$bench" 2>&1 | tee /dev/stderr | grep '^bench:' >>"$raw"
done

awk '
    BEGIN { print "[" }
    {
        # bench: <name>  <ns> ns/iter (<iters> iters/sample)
        name = $2; ns = $3
        threads = 1
        if (match(name, /_t[0-9]+$/))
            threads = substr(name, RSTART + 2, RLENGTH - 2)
        if (n++) printf ",\n"
        printf "  {\"op\": \"%s\", \"threads\": %d, \"ns_per_iter\": %s}", name, threads, ns
    }
    END { print "\n]" }
' "$raw" >"$out"

echo "wrote $out ($(grep -c '"op"' "$out") benchmarks)" >&2
