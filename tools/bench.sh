#!/usr/bin/env bash
# Runs the kernel, wire, telemetry, and profiler criterion benches and
# distills every measurement into a BENCH file at the repo root (first
# argument, default BENCH_10.json): one record per benchmark with the
# op name, the worker-thread count it ran at, and the measured ns/iter.
# The `calibration/serial_fma_1m` row is the machine-speed yardstick
# `hadfl-bench-diff` divides out when comparing two BENCH files, so
# numbers taken on different (or differently loaded) machines stay
# comparable. The `scaling/` group runs the same workload at 1, 2, and
# 4 threads (encoded as an `_tN` name suffix), so the file is the
# recorded evidence for the parallel substrate's scaling; the `wire_*`
# vs `wire_reference/*_per_float_*` rows are the bulk codec's
# before/after; the `span_emission/*` rows bound the telemetry hot
# path; and the `prof/*` + `prof_parity/*` rows bound the compute
# profiler (disabled scope vs enabled pair, instrumented kernel with
# and without a profiler installed).
#
# DESIGN.md §13 methodology: the script runs HADFL_BENCH_PASSES full
# passes (default 5) and keeps the per-op MINIMUM — noise only ever
# adds time, so the min across idle passes is the stable envelope.
#
# HADFL_BENCH_FAST=1 shrinks the vendored criterion's measurement
# budget for CI smoke runs; never commit numbers taken with it — the
# 20ms budget gives the allocation-bound wire ops 1-6 iters/sample
# and a 3x run-to-run spread.
set -euo pipefail

cd "$(dirname "$0")/.."

out=${1:-BENCH_10.json}
passes=${HADFL_BENCH_PASSES:-5}
raw=$(mktemp)
trap 'rm -f "$raw"' EXIT

# The vendored criterion stand-in has no CLI filter: run each bench
# binary whole and scrape its `bench: <name> <ns> ns/iter` lines.
for pass in $(seq 1 "$passes"); do
    for bench in kernels wire telemetry prof; do
        echo "== pass $pass/$passes: cargo bench -p hadfl-bench --bench $bench" >&2
        cargo bench -p hadfl-bench --bench "$bench" 2>&1 | tee /dev/stderr | grep '^bench:' >>"$raw"
    done
done

awk '
    {
        # bench: <name>  <ns> ns/iter (<iters> iters/sample)
        name = $2; ns = $3 + 0
        if (!(name in best) || ns < best[name]) best[name] = ns
        if (!(name in seen)) { order[n++] = name; seen[name] = 1 }
    }
    END {
        print "["
        for (i = 0; i < n; i++) {
            name = order[i]
            threads = 1
            if (match(name, /_t[0-9]+$/))
                threads = substr(name, RSTART + 2, RLENGTH - 2)
            printf "  {\"op\": \"%s\", \"threads\": %d, \"ns_per_iter\": %s}", name, threads, best[name]
            print (i < n - 1) ? "," : ""
        }
        print "]"
    }
' "$raw" >"$out"

echo "wrote $out ($(grep -c '"op"' "$out") benchmarks, min of $passes passes)" >&2
