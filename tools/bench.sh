#!/usr/bin/env bash
# Runs the kernel, wire, and telemetry criterion benches and distills
# every measurement into BENCH_8.json at the repo root: one record per
# benchmark with the op name, the worker-thread count it ran at, and
# the measured ns/iter. The `scaling/` group runs the same workload at
# 1, 2, and 4 threads (encoded as an `_tN` name suffix), so the file
# is the recorded evidence for the parallel substrate's scaling; the
# `wire_*` vs `wire_reference/*_per_float_*` rows are the bulk codec's
# before/after; and the `span_emission/*` rows bound the telemetry hot
# path (disabled handle vs ring buffer vs ship queue, ns/event).
#
# HADFL_BENCH_FAST=1 shrinks the vendored criterion's measurement
# budget for CI; unset it for more stable local numbers.
set -euo pipefail

cd "$(dirname "$0")/.."

out=BENCH_8.json
raw=$(mktemp)
trap 'rm -f "$raw"' EXIT

# The vendored criterion stand-in has no CLI filter: run each bench
# binary whole and scrape its `bench: <name> <ns> ns/iter` lines.
for bench in kernels wire telemetry; do
    echo "== cargo bench -p hadfl-bench --bench $bench" >&2
    cargo bench -p hadfl-bench --bench "$bench" 2>&1 | tee /dev/stderr | grep '^bench:' >>"$raw"
done

awk '
    BEGIN { print "[" }
    {
        # bench: <name>  <ns> ns/iter (<iters> iters/sample)
        name = $2; ns = $3
        threads = 1
        if (match(name, /_t[0-9]+$/))
            threads = substr(name, RSTART + 2, RLENGTH - 2)
        if (n++) printf ",\n"
        printf "  {\"op\": \"%s\", \"threads\": %d, \"ns_per_iter\": %s}", name, threads, ns
    }
    END { print "\n]" }
' "$raw" >"$out"

echo "wrote $out ($(grep -c '"op"' "$out") benchmarks)" >&2
