//! Compare all three training schemes over the paper's two
//! heterogeneity distributions — a miniature Table I.
//!
//! Run: `cargo run --release --example heterogeneous_cluster`

use hadfl::driver::{run_hadfl, SimOptions};
use hadfl::{HadflConfig, Workload};
use hadfl_baselines::{run_decentralized_fedavg, run_distributed, BaselineConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!(
        "{:<16} {:<24} {:>9} {:>13}",
        "powers", "scheme", "max acc", "time to max"
    );
    for powers in [&[3.0, 3.0, 1.0, 1.0][..], &[4.0, 2.0, 2.0, 1.0][..]] {
        let workload = Workload::quick("mlp", 7);
        let mut opts = SimOptions::quick(powers);
        opts.epochs_total = 10.0;
        // The paper's convention: the fastest device runs at native
        // speed, the others are slowed by the ratio.
        opts.base_step_secs = 0.010 * powers.iter().copied().fold(1.0, f64::max);

        let mut results: Vec<(String, f32, f64)> = Vec::new();

        let dist = run_distributed(&workload, &BaselineConfig::default(), &opts)?;
        if let Some((a, t)) = dist.time_to_max_accuracy() {
            results.push(("distributed_training".into(), a, t));
        }
        let fedavg = run_decentralized_fedavg(&workload, &BaselineConfig::default(), &opts)?;
        if let Some((a, t)) = fedavg.time_to_max_accuracy() {
            results.push(("decentralized_fedavg".into(), a, t));
        }
        let config = HadflConfig::builder().num_selected(2).seed(7).build()?;
        let hadfl = run_hadfl(&workload, &config, &opts)?;
        if let Some((a, t)) = hadfl.trace.time_to_max_accuracy() {
            results.push(("hadfl".into(), a, t));
        }

        for (scheme, acc, time) in &results {
            println!(
                "{:<16} {:<24} {:>8.1}% {:>12.2}s",
                format!("{powers:?}"),
                scheme,
                acc * 100.0,
                time
            );
        }
        if let (Some(h), Some(f)) = (
            results.iter().find(|r| r.0 == "hadfl"),
            results.iter().find(|r| r.0 == "decentralized_fedavg"),
        ) {
            println!("    → HADFL speedup over FedAvg: {:.2}x\n", f.2 / h.2);
        }
    }
    Ok(())
}
