//! HADFL over real sockets: the same protocol loops as
//! `threaded_cluster`, but every frame crosses a loopback TCP
//! connection through `hadfl-net` instead of an in-process channel.
//!
//! The example plays all five roles itself (4 devices + coordinator,
//! one thread each) so it runs with a single command, but each
//! participant only ever touches its own `TcpPort` — move any of the
//! threads into its own process (that is exactly what the `hadfl-node`
//! binary is) and nothing else changes.
//!
//! Run: `cargo run --release --example tcp_cluster`
//!
//! Observability (all optional):
//!
//! ```text
//! cargo run --release --example tcp_cluster -- \
//!     --telemetry-dir /tmp/hadfl-telemetry \
//!     --metrics-addr 127.0.0.1:0 \
//!     --hold-metrics-ms 5000
//! ```
//!
//! writes one schema-versioned JSONL event log per participant
//! (`node-<id>.jsonl`, analyzable with `hadfl-trace`), serves a
//! Prometheus-style `/metrics` endpoint fed by every participant, and
//! keeps serving for the hold period after training so a scraper can
//! collect the final counters.

use std::sync::Arc;
use std::thread;
use std::time::Duration;

use hadfl::clock::{Clock, WallClock};
use hadfl::exec::{run_coordinator_instrumented, run_device_instrumented, ProtocolTiming};
use hadfl::trace::CommSummary;
use hadfl::transport::coordinator_id;
use hadfl::{HadflConfig, Workload};
use hadfl_net::cluster::ClusterConfig;
use hadfl_net::tcp::{BoundNode, StatsHandle, TcpOptions, TcpPort};
use hadfl_telemetry::{serve_metrics, JsonlSink, MetricsRegistry, MetricsSink, Sink, Telemetry};

struct Opts {
    telemetry_dir: Option<String>,
    metrics_addr: Option<String>,
    hold_metrics: Duration,
}

fn parse_opts() -> Result<Opts, String> {
    let mut opts = Opts {
        telemetry_dir: None,
        metrics_addr: None,
        hold_metrics: Duration::ZERO,
    };
    let mut argv = std::env::args().skip(1);
    while let Some(flag) = argv.next() {
        let mut value = |name: &str| -> Result<String, String> {
            argv.next().ok_or_else(|| format!("{name} needs a value"))
        };
        match flag.as_str() {
            "--telemetry-dir" => opts.telemetry_dir = Some(value("--telemetry-dir")?),
            "--metrics-addr" => opts.metrics_addr = Some(value("--metrics-addr")?),
            "--hold-metrics-ms" => {
                let ms: u64 = value("--hold-metrics-ms")?
                    .parse()
                    .map_err(|e| format!("--hold-metrics-ms: {e}"))?;
                opts.hold_metrics = Duration::from_millis(ms);
            }
            other => {
                return Err(format!(
                    "unknown flag {other}\nusage: tcp_cluster [--telemetry-dir <dir>] \
                     [--metrics-addr <host:port>] [--hold-metrics-ms <ms>]"
                ))
            }
        }
    }
    Ok(opts)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let opts = parse_opts()?;
    let powers = [3.0, 3.0, 1.0, 1.0];
    let k = powers.len();
    let workload = Workload::quick("mlp", 17);
    let config = HadflConfig::builder().num_selected(2).seed(17).build()?;
    let timing = ProtocolTiming::default();

    // One registry for the whole process: every participant's
    // MetricsSink feeds it, the exposition server renders it.
    let metrics_server = match &opts.metrics_addr {
        Some(addr) => {
            let registry = MetricsRegistry::new();
            let server = serve_metrics(addr, Arc::clone(&registry))?;
            println!("serving metrics on http://{}/metrics", server.addr());
            Some((registry, server))
        }
        None => None,
    };
    if let Some(dir) = &opts.telemetry_dir {
        std::fs::create_dir_all(dir)?;
    }
    let telemetry_for = |id: usize| -> Result<Telemetry, Box<dyn std::error::Error>> {
        let mut sinks: Vec<Box<dyn Sink>> = Vec::new();
        if let Some(dir) = &opts.telemetry_dir {
            let path = std::path::Path::new(dir).join(format!("node-{id}.jsonl"));
            sinks.push(Box::new(JsonlSink::create(&path)?));
        }
        if let Some((registry, _)) = &metrics_server {
            sinks.push(Box::new(MetricsSink::new(Arc::clone(registry))));
        }
        Ok(if sinks.is_empty() {
            Telemetry::disabled()
        } else {
            Telemetry::new(id as u32, sinks)
        })
    };

    // Bind every participant on a kernel-chosen loopback port, then
    // describe the result as a cluster — the same registry a TOML or
    // JSON cluster file provides for a real deployment.
    let nodes: Vec<BoundNode> = (0..=k)
        .map(|id| BoundNode::bind(id, "127.0.0.1:0"))
        .collect::<Result<_, _>>()?;
    let addrs: Vec<String> = nodes
        .iter()
        .map(|n| Ok(n.local_addr()?.to_string()))
        .collect::<Result<_, hadfl::HadflError>>()?;
    let cluster = ClusterConfig::from_addrs(&addrs)?;
    println!("cluster file equivalent:\n{}", cluster.to_json());

    // One clock across all participants: frame and protocol events from
    // every node share a timeline.
    let clock: Arc<dyn Clock> = WallClock::shared();
    let tels: Vec<Telemetry> = (0..=k).map(&telemetry_for).collect::<Result<_, _>>()?;
    let mut ports: Vec<TcpPort> = nodes
        .into_iter()
        .zip(&tels)
        .map(|(n, tel)| {
            n.into_port_instrumented(
                &cluster,
                TcpOptions::default(),
                Arc::clone(&clock),
                tel.clone(),
            )
        })
        .collect::<Result<_, _>>()?;
    let handles: Vec<StatsHandle> = ports.iter().map(TcpPort::stats_handle).collect();
    let coordinator_port = ports.remove(k);
    let stats = coordinator_port.stats_handle();
    let built = workload.build(k)?;

    let run = thread::scope(|scope| {
        for (i, (port, rt)) in ports.drain(..).zip(built.runtimes).enumerate() {
            let sleep = Duration::from_secs_f64(0.030 / powers[i]);
            let config = &config;
            let timing = timing.clone();
            let clock = Arc::clone(&clock);
            let tel = tels[i].clone();
            scope.spawn(move || {
                run_device_instrumented(port, rt, config, sleep, &timing, &*clock, tel)
                    .expect("device loop")
            });
        }
        run_coordinator_instrumented(
            coordinator_port,
            &config,
            Duration::from_millis(300),
            4,
            &timing,
            &*clock,
            tels[k].clone(),
        )
        .expect("coordinator loop")
    });

    // Stamp each node's ground-truth ledger into its event log, then
    // flush: `hadfl-trace --check` verifies the per-frame events sum to
    // exactly these totals.
    for (handle, tel) in handles.iter().zip(&tels) {
        handle.emit_ledger();
        tel.flush();
    }

    for r in &run.rounds {
        println!(
            "round {}: versions {:?}  selected {:?}",
            r.round, r.versions, r.selected
        );
    }
    let refs: Vec<&[f32]> = run.final_models.values().map(Vec::as_slice).collect();
    let consensus = hadfl::aggregate::average_params(&refs)?;
    let mut evaluator = workload.build(k)?;
    let metrics = evaluator.evaluate_params(&consensus)?;
    println!("consensus test accuracy: {:.1}%", metrics.accuracy * 100.0);

    // The coordinator's ledger counts exactly the encoded protocol
    // payloads — the same accounting as the analytical simulation
    // driver; framing and heartbeats sit only in raw_bytes.
    let comm = CommSummary::from_stats(&stats.stats(), k);
    println!(
        "coordinator traffic: {} payload bytes / {} messages ({} raw bytes incl. framing + heartbeats)",
        comm.total_bytes,
        comm.messages,
        stats.raw_bytes()
    );
    assert_eq!(coordinator_id(k), k);

    if let Some((_, server)) = metrics_server {
        if !opts.hold_metrics.is_zero() {
            println!(
                "holding /metrics open for {:?} (http://{}/metrics)",
                opts.hold_metrics,
                server.addr()
            );
            thread::sleep(opts.hold_metrics);
        }
        server.shutdown();
    }
    Ok(())
}
