//! HADFL over real sockets: the same protocol loops as
//! `threaded_cluster`, but every frame crosses a loopback TCP
//! connection through `hadfl-net` instead of an in-process channel.
//!
//! The example plays all five roles itself (4 devices + coordinator,
//! one thread each) so it runs with a single command, but each
//! participant only ever touches its own `TcpPort` — move any of the
//! threads into its own process (that is exactly what the `hadfl-node`
//! binary is) and nothing else changes.
//!
//! Run: `cargo run --release --example tcp_cluster`

use std::thread;
use std::time::Duration;

use hadfl::exec::{run_coordinator, run_device, ProtocolTiming};
use hadfl::trace::CommSummary;
use hadfl::transport::coordinator_id;
use hadfl::{HadflConfig, Workload};
use hadfl_net::cluster::ClusterConfig;
use hadfl_net::tcp::{BoundNode, TcpOptions, TcpPort};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let powers = [3.0, 3.0, 1.0, 1.0];
    let k = powers.len();
    let workload = Workload::quick("mlp", 17);
    let config = HadflConfig::builder().num_selected(2).seed(17).build()?;
    let timing = ProtocolTiming::default();

    // Bind every participant on a kernel-chosen loopback port, then
    // describe the result as a cluster — the same registry a TOML or
    // JSON cluster file provides for a real deployment.
    let nodes: Vec<BoundNode> = (0..=k)
        .map(|id| BoundNode::bind(id, "127.0.0.1:0"))
        .collect::<Result<_, _>>()?;
    let addrs: Vec<String> = nodes
        .iter()
        .map(|n| Ok(n.local_addr()?.to_string()))
        .collect::<Result<_, hadfl::HadflError>>()?;
    let cluster = ClusterConfig::from_addrs(&addrs)?;
    println!("cluster file equivalent:\n{}", cluster.to_json());

    let mut ports: Vec<TcpPort> = nodes
        .into_iter()
        .map(|n| n.into_port(&cluster, TcpOptions::default()))
        .collect::<Result<_, _>>()?;
    let coordinator_port = ports.remove(k);
    let stats = coordinator_port.stats_handle();
    let built = workload.build(k)?;

    let run = thread::scope(|scope| {
        for (i, (port, rt)) in ports.drain(..).zip(built.runtimes).enumerate() {
            let sleep = Duration::from_secs_f64(0.030 / powers[i]);
            let config = &config;
            let timing = timing.clone();
            scope.spawn(move || run_device(port, rt, config, sleep, &timing).expect("device loop"));
        }
        run_coordinator(
            coordinator_port,
            &config,
            Duration::from_millis(300),
            4,
            &timing,
        )
        .expect("coordinator loop")
    });

    for r in &run.rounds {
        println!(
            "round {}: versions {:?}  selected {:?}",
            r.round, r.versions, r.selected
        );
    }
    let refs: Vec<&[f32]> = run.final_models.values().map(Vec::as_slice).collect();
    let consensus = hadfl::aggregate::average_params(&refs)?;
    let mut evaluator = workload.build(k)?;
    let metrics = evaluator.evaluate_params(&consensus)?;
    println!("consensus test accuracy: {:.1}%", metrics.accuracy * 100.0);

    // The coordinator's ledger counts exactly the encoded protocol
    // payloads — the same accounting as the analytical simulation
    // driver; framing and heartbeats sit only in raw_bytes.
    let comm = CommSummary::from_stats(&stats.stats(), k);
    println!(
        "coordinator traffic: {} payload bytes / {} messages ({} raw bytes incl. framing + heartbeats)",
        comm.total_bytes,
        comm.messages,
        stats.raw_bytes()
    );
    assert_eq!(coordinator_id(k), k);
    Ok(())
}
