//! Hierarchical grouping (paper §III-C, Fig. 2a): eight devices in two
//! groups of four; intra-group rings every round, inter-group
//! representative rings every second round.
//!
//! Run: `cargo run --release --example grouped_training`

use hadfl::driver::SimOptions;
use hadfl::group::run_hadfl_grouped;
use hadfl::{HadflConfig, Workload};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut workload = Workload::quick("mlp", 11);
    workload.train_size = 768; // 96 samples per device across 8 devices
    workload.test_size = 192;

    // Two fast + two slow devices per group.
    let mut opts = SimOptions::quick(&[2.0, 2.0, 1.0, 1.0, 2.0, 2.0, 1.0, 1.0]);
    opts.epochs_total = 10.0;

    let config = HadflConfig::builder()
        .group_size(Some(4))
        .inter_group_every(2)
        .num_selected(2)
        .seed(11)
        .build()?;

    let run = run_hadfl_grouped(&workload, &config, &opts)?;
    println!("groups: {:?}", run.groups);
    println!(
        "inter-group synchronizations fired at rounds {:?} (period 2)",
        run.inter_sync_rounds
    );
    let last = run.trace.records.last().expect("at least one round");
    println!(
        "final test accuracy {:.1}% after {:.1} epoch-equivalents in {:.2} virtual s",
        last.test_accuracy * 100.0,
        last.epoch_equiv,
        last.time_secs
    );
    println!(
        "server model traffic: {} bytes — fully decentralized at both tiers",
        run.trace.comm.server_bytes
    );
    Ok(())
}
