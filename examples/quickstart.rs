//! Quickstart: train a small model with HADFL on four simulated devices
//! with the paper's [3, 3, 1, 1] computing-power ratio, and compare
//! against decentralized FedAvg.
//!
//! Run: `cargo run --release --example quickstart`

use hadfl::driver::{run_hadfl, SimOptions};
use hadfl::{HadflConfig, Workload};
use hadfl_baselines::{run_decentralized_fedavg, BaselineConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A CI-scale workload: the tiny synthetic CIFAR task and an MLP.
    let workload = Workload::quick("mlp", 42);

    // Four devices; device 0 is 3x as fast as device 3 (the paper's
    // sleep()-emulated heterogeneity, here in virtual time).
    let mut opts = SimOptions::quick(&[3.0, 3.0, 1.0, 1.0]);
    opts.epochs_total = 10.0;

    // The paper's defaults: T_sync = 1 hyperperiod, N_p = 2 selected
    // devices per round, Eq. (8) probabilistic selection.
    let config = HadflConfig::builder().num_selected(2).seed(42).build()?;

    let run = run_hadfl(&workload, &config, &opts)?;
    let (acc, secs) = run
        .trace
        .time_to_max_accuracy()
        .expect("trained at least one round");
    println!(
        "HADFL:  reached {:.1}% test accuracy at {:.2} virtual seconds",
        acc * 100.0,
        secs
    );
    println!(
        "        hyperperiod {:.0} ms, local steps per window {:?} (heterogeneity-aware)",
        run.strategy.hyperperiod_secs * 1e3,
        run.strategy.local_steps
    );
    println!(
        "        server model traffic during training: {} bytes (decentralized)",
        run.trace.comm.server_bytes
    );

    let fedavg = run_decentralized_fedavg(&workload, &BaselineConfig::default(), &opts)?;
    let (facc, fsecs) = fedavg.time_to_max_accuracy().expect("trained");
    println!(
        "FedAvg: reached {:.1}% test accuracy at {:.2} virtual seconds",
        facc * 100.0,
        fsecs
    );
    println!(
        "speedup of HADFL over decentralized FedAvg: {:.2}x",
        fsecs / secs
    );
    Ok(())
}
