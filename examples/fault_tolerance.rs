//! Fault tolerance: a device crashes mid-training; the ring bypasses it
//! (paper §III-D, Fig. 2b) and training finishes anyway. A second device
//! suffers a temporary outage and rejoins.
//!
//! Run: `cargo run --release --example fault_tolerance`

use hadfl::driver::{run_hadfl, SimOptions};
use hadfl::{HadflConfig, Workload};
use hadfl_simnet::{DeviceId, FaultPlan, Outage, VirtualTime};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let workload = Workload::quick("mlp", 9);
    let mut opts = SimOptions::quick(&[1.0, 1.0, 1.0, 1.0]);
    opts.epochs_total = 12.0;
    // Device 2 crashes for good at 0.20 s (mid-window, after the round
    // was planned — the §III-D scenario); device 1 drops out for two
    // windows and comes back.
    opts.faults = FaultPlan::new(vec![
        Outage::crash(DeviceId(2), VirtualTime::from_secs(0.20)),
        Outage::window(
            DeviceId(1),
            VirtualTime::from_secs(0.30),
            VirtualTime::from_secs(0.42),
        ),
    ])?;

    // Select all four devices each round so the dead one is always in
    // the ring and the bypass machinery is visibly exercised.
    let config = HadflConfig::builder()
        .num_selected(4)
        .handshake_timeout_secs(0.02)
        .seed(9)
        .build()?;

    let run = run_hadfl(&workload, &config, &opts)?;
    println!(
        "training completed {} rounds despite the faults",
        run.trace.records.len()
    );
    for (round, devices) in &run.bypass_log {
        println!("  round {round}: ring bypassed dead device(s) {devices:?}");
    }
    let last = run.trace.records.last().expect("at least one round");
    println!(
        "final test accuracy {:.1}% after {:.1} epoch-equivalents",
        last.test_accuracy * 100.0,
        last.epoch_equiv
    );
    println!(
        "surviving devices' version counters: {:?} (device 2 froze at its crash point)",
        last.versions
    );
    Ok(())
}
