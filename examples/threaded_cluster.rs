//! HADFL on real OS threads: one thread per device, heterogeneity
//! emulated with `sleep()` exactly as the paper does on its GPUs, and
//! parameters moving between threads as encoded wire frames.
//!
//! Run: `cargo run --release --example threaded_cluster`

use std::time::Duration;

use hadfl::exec::{run_threaded, ThreadedOptions};
use hadfl::{HadflConfig, Workload};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let workload = Workload::quick("mlp", 17);
    let config = HadflConfig::builder().num_selected(2).seed(17).build()?;
    // The sleep must dominate the actual (shared-CPU) gradient math for
    // the power ratio to show through on a small machine.
    let opts = ThreadedOptions {
        powers: vec![3.0, 3.0, 1.0, 1.0],
        step_sleep: Duration::from_millis(30),
        window: Duration::from_millis(300),
        rounds: 4,
        timing: hadfl::exec::ProtocolTiming::default(),
    };

    let report = run_threaded(&workload, &config, &opts)?;
    println!(
        "threaded HADFL over {} wall-clock ms:",
        report.wall.as_millis()
    );
    for r in &report.rounds {
        println!(
            "  round {}: versions {:?}  selected {:?}",
            r.round, r.versions, r.selected
        );
    }
    println!(
        "fast devices (power 3) out-stepped stragglers without any barrier; \
         {} bytes of encoded frames moved peer-to-peer",
        report.peer_bytes
    );
    println!(
        "consensus test accuracy: {:.1}%",
        report.final_accuracy * 100.0
    );
    Ok(())
}
