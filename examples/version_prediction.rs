//! Runtime version prediction under compute jitter (paper §III-B): the
//! coordinator's double-exponential-smoothing predictor tracks device
//! speeds that drift at runtime, keeping the Eq. (8) selection honest.
//!
//! Run: `cargo run --release --example version_prediction`

use hadfl::driver::{run_hadfl, SimOptions};
use hadfl::predict::VersionPredictor;
use hadfl::{HadflConfig, Workload};
use hadfl_simnet::Jitter;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Part 1: the predictor in isolation, on a device that abruptly
    // halves its speed (background load arrives).
    let mut predictor = VersionPredictor::new(0.5, 100.0)?;
    println!("round  actual  forecast(next)");
    let mut actual = 0.0;
    for round in 1..=12 {
        let rate = if round <= 6 { 100.0 } else { 50.0 };
        actual += rate;
        predictor.observe(actual);
        println!("{round:>5}  {actual:>6.0}  {:>8.0}", predictor.forecast(1));
    }
    println!("(the forecast bends to the new 50-steps/round rate within a few rounds)\n");

    // Part 2: end-to-end — jittered compute with occasional 3x slowdowns.
    let workload = Workload::quick("mlp", 13);
    let mut opts = SimOptions::quick(&[3.0, 3.0, 1.0, 1.0]);
    opts.jitter = Jitter::Spike {
        prob: 0.15,
        slow_factor: 3.0,
    };
    opts.epochs_total = 10.0;
    let config = HadflConfig::builder()
        .smoothing_alpha(0.6)
        .seed(13)
        .build()?;
    let run = run_hadfl(&workload, &config, &opts)?;
    let last = run.trace.records.last().expect("trained");
    println!(
        "with spiky compute, HADFL still reached {:.1}% accuracy in {:.2} virtual s",
        last.test_accuracy * 100.0,
        last.time_secs
    );
    println!("cumulative versions per device: {:?}", last.versions);
    println!("(fast devices pull ahead even under jitter; selection keeps tracking them)");
    Ok(())
}
