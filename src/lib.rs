//! Umbrella crate for the HADFL reproduction workspace.
//!
//! Re-exports every workspace crate under one roof so downstream users
//! (and this repo's own integration tests and examples) can depend on a
//! single package:
//!
//! - [`hadfl`] — the framework itself (configuration, coordinator,
//!   drivers, traces);
//! - [`nn`] — the from-scratch training substrate (layers, SGD, model
//!   zoo, synthetic data);
//! - [`simnet`] — the virtual-time cluster simulator (compute, links,
//!   faults, accounting);
//! - [`tensor`] — the dense `f32` tensor kernels;
//! - [`baselines`] — the paper's comparison schemes.
//!
//! # Example
//!
//! ```no_run
//! use hadfl_suite::hadfl::driver::{run_hadfl, SimOptions};
//! use hadfl_suite::hadfl::{HadflConfig, Workload};
//!
//! # fn main() -> Result<(), hadfl_suite::hadfl::HadflError> {
//! let run = run_hadfl(
//!     &Workload::quick("mlp", 0),
//!     &HadflConfig::builder().build()?,
//!     &SimOptions::quick(&[3.0, 3.0, 1.0, 1.0]),
//! )?;
//! println!("{:.1}%", run.trace.max_accuracy() * 100.0);
//! # Ok(())
//! # }
//! ```

pub use hadfl_baselines as baselines;
pub use hadfl_nn as nn;
pub use hadfl_simnet as simnet;
pub use hadfl_tensor as tensor;
pub extern crate hadfl;
