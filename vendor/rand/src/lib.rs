//! Offline stand-in for the [`rand`](https://docs.rs/rand) crate.
//!
//! Provides the trait surface this workspace uses — [`RngCore`],
//! [`SeedableRng`] (including the splitmix64-based `seed_from_u64`
//! default), and [`Rng`] with `gen` / `gen_range` over half-open
//! numeric ranges. Distribution details (float precision, integer range
//! reduction) follow the standard constructions, so sequences are
//! deterministic for a given generator even though they are not
//! bit-identical to the real crate's.

use std::ops::Range;

/// The core of a random number generator: raw word output.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;

    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

/// A generator constructible from a fixed-size seed.
pub trait SeedableRng: Sized {
    /// The seed array type.
    type Seed: AsMut<[u8]> + Default;

    /// Builds the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a 64-bit seed, expanded with
    /// splitmix64 exactly like the real crate does.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut z = state;
        for chunk in seed.as_mut().chunks_mut(8) {
            // splitmix64 next()
            z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut x = z;
            x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            x ^= x >> 31;
            let bytes = x.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// Types [`Rng::gen`] can produce.
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 24 random mantissa bits in [0, 1).
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

/// Ranges [`Rng::gen_range`] can sample uniformly to produce a `T`.
///
/// Generic over the output type (rather than using an associated type)
/// so inference can flow backwards from the requested output into the
/// range literal, exactly like the real crate.
pub trait SampleRange<T> {
    /// Draws one value from `rng`.
    fn sample_uniform<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_uniform<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                // Lemire multiply-shift range reduction (unbiased enough
                // for 64-bit input words over these spans).
                let hi = (((rng.next_u64() as u128) * (span as u128)) >> 64) as u64;
                self.start.wrapping_add(hi as $t)
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize);

macro_rules! signed_int_sample_range {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_uniform<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as $u).wrapping_sub(self.start as $u) as u64;
                let hi = (((rng.next_u64() as u128) * (span as u128)) >> 64) as u64;
                self.start.wrapping_add(hi as $t)
            }
        }
    )*};
}

signed_int_sample_range!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

impl SampleRange<f32> for Range<f32> {
    fn sample_uniform<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "gen_range: empty range");
        let u = f32::sample_standard(rng);
        let v = self.start + (self.end - self.start) * u;
        // Guard against rounding up to the excluded endpoint.
        if v >= self.end {
            self.end - (self.end - self.start) * f32::EPSILON
        } else {
            v
        }
    }
}

impl SampleRange<f64> for Range<f64> {
    fn sample_uniform<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        let u = f64::sample_standard(rng);
        let v = self.start + (self.end - self.start) * u;
        if v >= self.end {
            self.end - (self.end - self.start) * f64::EPSILON
        } else {
            v
        }
    }
}

/// Convenience sampling methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of type `T` from its standard distribution.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws uniformly from a half-open range.
    ///
    /// # Panics
    ///
    /// Panics when the range is empty.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_uniform(self)
    }

    /// Draws `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range: {p}");
        f64::sample_standard(self) < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);

    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }

        fn next_u64(&mut self) -> u64 {
            // A weak but full-period mixer: good enough to exercise the
            // trait plumbing in tests.
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            self.0
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = Counter(42);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(-2.0f32..2.0);
            assert!((-2.0..2.0).contains(&f));
            let d = rng.gen_range(0.0f64..1.0);
            assert!((0.0..1.0).contains(&d));
        }
    }

    #[test]
    fn standard_floats_are_unit_interval() {
        let mut rng = Counter(7);
        for _ in 0..1000 {
            let f: f32 = rng.gen();
            assert!((0.0..1.0).contains(&f));
            let d: f64 = rng.gen();
            assert!((0.0..1.0).contains(&d));
        }
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut rng = Counter(9);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
