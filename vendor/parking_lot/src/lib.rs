//! Offline stand-in for the [`parking_lot`](https://docs.rs/parking_lot)
//! crate: poison-free locks over `std::sync` primitives, matching the
//! subset of the real API this workspace uses (`lock` without a
//! `Result`, `try_lock` returning an `Option`).

use std::sync;
use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutex whose `lock` never returns a poison error.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Wraps `value` in a mutex.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, ignoring poisoning from panicked holders.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner
            .lock()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Tries to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

/// A reader-writer lock whose guards never return poison errors.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Wraps `value` in a reader-writer lock.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner
            .read()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner
            .write()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_guards_exclusive_access() {
        let m = Mutex::new(0u32);
        *m.lock() += 5;
        assert_eq!(*m.lock(), 5);
        assert_eq!(m.into_inner(), 5);
    }

    #[test]
    fn rwlock_allows_many_readers() {
        let l = RwLock::new(1u32);
        let a = l.read();
        let b = l.read();
        assert_eq!(*a + *b, 2);
    }
}
