//! Offline stand-in for the [`serde`](https://docs.rs/serde) crate.
//!
//! The build environment has no crates.io access, so the workspace
//! vendors a minimal serialization framework with the same spelling as
//! serde: `#[derive(Serialize, Deserialize)]` plus `serde_json`
//! round-trips. Instead of serde's zero-copy visitor architecture,
//! everything funnels through an owned JSON-like [`Value`] tree — ample
//! for the trace files and config blobs this repo moves around, and
//! drop-in replaceable by the real crate when a registry is available.
//!
//! Data-model conventions match `serde_json`: structs become objects,
//! newtype structs are transparent, unit enum variants become strings,
//! and data-carrying variants become single-key objects. Maps with
//! non-string keys (which real `serde_json` rejects at runtime) are
//! encoded as arrays of `[key, value]` pairs.

use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// An owned JSON-like value: the interchange tree every serialization
/// passes through.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Negative integer (anything that does not fit `u64`).
    I64(i64),
    /// Non-negative integer.
    U64(u64),
    /// Floating-point number.
    F64(f64),
    /// JSON string.
    Str(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object, insertion-ordered.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// The object entries, when this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(entries) => Some(entries),
            _ => None,
        }
    }

    /// The elements, when this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The string slice, when this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Looks up a key, when this is an object.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object()?
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
    }

    /// Numeric view as `f64` (integers widen losslessly where possible).
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::I64(v) => Some(v as f64),
            Value::U64(v) => Some(v as f64),
            Value::F64(v) => Some(v),
            _ => None,
        }
    }

    /// Numeric view as `u64`, when non-negative and integral.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::U64(v) => Some(v),
            Value::I64(v) if v >= 0 => Some(v as u64),
            Value::F64(v) if v >= 0.0 && v.fract() == 0.0 && v <= u64::MAX as f64 => Some(v as u64),
            _ => None,
        }
    }

    /// Numeric view as `i64`, when integral and in range.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Value::I64(v) => Some(v),
            Value::U64(v) if v <= i64::MAX as u64 => Some(v as i64),
            Value::F64(v) if v.fract() == 0.0 && v >= i64::MIN as f64 && v <= i64::MAX as f64 => {
                Some(v as i64)
            }
            _ => None,
        }
    }

    /// Boolean view.
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Value::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// A short name for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::I64(_) | Value::U64(_) | Value::F64(_) => "number",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// Deserialization failure: what was expected and what was found.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError {
    message: String,
}

impl DeError {
    /// An error with a free-form message.
    pub fn new(message: impl Into<String>) -> Self {
        DeError {
            message: message.into(),
        }
    }

    /// A shape-mismatch error.
    pub fn expected(what: &str, while_parsing: &str) -> Self {
        DeError {
            message: format!("expected {what} while deserializing {while_parsing}"),
        }
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl Error for DeError {}

/// Types that can render themselves into a [`Value`] tree.
pub trait Serialize {
    /// Converts `self` to the interchange tree.
    fn to_value(&self) -> Value;
}

/// Types that can rebuild themselves from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Parses the interchange tree.
    ///
    /// # Errors
    ///
    /// Returns [`DeError`] when the tree's shape does not match `Self`.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

/// Looks up a struct field, tolerating absent keys by substituting
/// `null` (so `Option` fields may be omitted). Used by derived impls.
#[doc(hidden)]
pub fn __field<T: Deserialize>(obj: &[(String, Value)], key: &str, ty: &str) -> Result<T, DeError> {
    match obj.iter().find(|(k, _)| k == key) {
        Some((_, v)) => T::from_value(v).map_err(|e| DeError::new(format!("{ty}.{key}: {e}"))),
        None => T::from_value(&Value::Null)
            .map_err(|_| DeError::new(format!("missing field {ty}.{key}"))),
    }
}

/// Looks up a `#[serde(default)]` struct field: an absent key yields
/// `Default::default()` instead of an error (the schema-evolution
/// behaviour real serde gives that attribute). Used by derived impls.
#[doc(hidden)]
pub fn __field_or_default<T: Deserialize + Default>(
    obj: &[(String, Value)],
    key: &str,
    ty: &str,
) -> Result<T, DeError> {
    match obj.iter().find(|(k, _)| k == key) {
        Some((_, v)) => T::from_value(v).map_err(|e| DeError::new(format!("{ty}.{key}: {e}"))),
        None => Ok(T::default()),
    }
}

macro_rules! serialize_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }

        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let raw = v.as_u64().ok_or_else(|| {
                    DeError::expected("unsigned integer", stringify!($t))
                })?;
                <$t>::try_from(raw)
                    .map_err(|_| DeError::new(format!("{raw} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

serialize_unsigned!(u8, u16, u32, u64, usize);

macro_rules! serialize_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let v = *self as i64;
                if v >= 0 { Value::U64(v as u64) } else { Value::I64(v) }
            }
        }

        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let raw = v.as_i64().ok_or_else(|| {
                    DeError::expected("integer", stringify!($t))
                })?;
                <$t>::try_from(raw)
                    .map_err(|_| DeError::new(format!("{raw} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

serialize_signed!(i8, i16, i32, i64, isize);

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(*self as f64)
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_f64()
            .map(|x| x as f32)
            .ok_or_else(|| DeError::expected("number", "f32"))
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_f64().ok_or_else(|| DeError::expected("number", "f64"))
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_bool().ok_or_else(|| DeError::expected("bool", "bool"))
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| DeError::expected("string", "String"))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let s = v
            .as_str()
            .ok_or_else(|| DeError::expected("string", "char"))?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(DeError::expected("single-character string", "char")),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_array()
            .ok_or_else(|| DeError::expected("array", "Vec"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(inner) => inner.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Array(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v.as_array() {
            Some([a, b]) => Ok((A::from_value(a)?, B::from_value(b)?)),
            _ => Err(DeError::expected("2-element array", "tuple")),
        }
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_value(&self) -> Value {
        Value::Array(vec![
            self.0.to_value(),
            self.1.to_value(),
            self.2.to_value(),
        ])
    }
}

impl<A: Deserialize, B: Deserialize, C: Deserialize> Deserialize for (A, B, C) {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v.as_array() {
            Some([a, b, c]) => Ok((A::from_value(a)?, B::from_value(b)?, C::from_value(c)?)),
            _ => Err(DeError::expected("3-element array", "tuple")),
        }
    }
}

// Maps encode as arrays of [key, value] pairs: unlike real serde_json
// this also supports non-string keys (which the simulator's per-device
// byte maps use), at the cost of a different-but-stable JSON shape.
impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Array(
            self.iter()
                .map(|(k, v)| Value::Array(vec![k.to_value(), v.to_value()]))
                .collect(),
        )
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let items = v
            .as_array()
            .ok_or_else(|| DeError::expected("array", "BTreeMap"))?;
        let mut map = BTreeMap::new();
        for item in items {
            match item.as_array() {
                Some([k, val]) => {
                    map.insert(K::from_value(k)?, V::from_value(val)?);
                }
                _ => return Err(DeError::expected("[key, value] pair", "BTreeMap")),
            }
        }
        Ok(map)
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        assert_eq!(u32::from_value(&42u32.to_value()).unwrap(), 42);
        assert_eq!(i64::from_value(&(-9i64).to_value()).unwrap(), -9);
        assert_eq!(f32::from_value(&1.5f32.to_value()).unwrap(), 1.5);
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()).unwrap(),
            "hi"
        );
    }

    #[test]
    fn collections_roundtrip() {
        let v = vec![1u32, 2, 3];
        assert_eq!(Vec::<u32>::from_value(&v.to_value()).unwrap(), v);
        let mut m = BTreeMap::new();
        m.insert(3u32, "x".to_string());
        assert_eq!(
            BTreeMap::<u32, String>::from_value(&m.to_value()).unwrap(),
            m
        );
        let o: Option<u8> = None;
        assert_eq!(Option::<u8>::from_value(&o.to_value()).unwrap(), None);
        assert_eq!(
            Option::<u8>::from_value(&Some(7u8).to_value()).unwrap(),
            Some(7)
        );
    }

    #[test]
    fn shape_mismatches_error() {
        assert!(u32::from_value(&Value::Str("no".into())).is_err());
        assert!(Vec::<u32>::from_value(&Value::Bool(true)).is_err());
        assert!(u8::from_value(&Value::U64(300)).is_err());
    }
}
