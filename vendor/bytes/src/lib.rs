//! Offline stand-in for the [`bytes`](https://docs.rs/bytes) crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the narrow slice of the `bytes` API it actually uses: a
//! cheaply cloneable immutable buffer ([`Bytes`]), a growable write
//! buffer ([`BytesMut`]), and little-endian cursor traits ([`Buf`],
//! [`BufMut`]). Semantics match the real crate for this subset, so
//! swapping the real dependency back in is a one-line manifest change.

use std::ops::Deref;
use std::sync::Arc;

/// A cheaply cloneable, immutable contiguous byte buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Bytes {
            data: Arc::from(&[][..]),
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` when the buffer holds no bytes.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Copies the contents into a fresh `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.to_vec()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes {
            data: Arc::from(v.into_boxed_slice()),
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes { data: Arc::from(v) }
    }
}

/// A growable byte buffer that freezes into [`Bytes`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        BytesMut { data: Vec::new() }
    }

    /// Creates an empty buffer with room for `cap` bytes.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` when the buffer holds no bytes.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Reserves capacity for at least `additional` more bytes, like
    /// the real crate — lets bulk writers size the buffer once instead
    /// of growing it amortized.
    pub fn reserve(&mut self, additional: usize) {
        self.data.reserve(additional);
    }

    /// Appends a byte slice in one `memcpy`, like the real crate.
    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }

    /// Converts into an immutable [`Bytes`] without copying.
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

/// Read cursor over a byte source.
///
/// # Panics
///
/// Like the real crate, the `get_*` methods panic when the source has
/// too few bytes remaining; callers bounds-check with
/// [`remaining`](Buf::remaining) first.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// Consumes and returns the next `n` bytes.
    fn take_bytes(&mut self, n: usize) -> &[u8];

    /// `true` while bytes remain.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        self.take_bytes(1)[0]
    }

    /// Reads a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        u32::from_le_bytes(self.take_bytes(4).try_into().expect("4 bytes"))
    }

    /// Reads a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        u64::from_le_bytes(self.take_bytes(8).try_into().expect("8 bytes"))
    }

    /// Reads a little-endian `f32`.
    fn get_f32_le(&mut self) -> f32 {
        f32::from_le_bytes(self.take_bytes(4).try_into().expect("4 bytes"))
    }

    /// Reads a little-endian `f64`.
    fn get_f64_le(&mut self) -> f64 {
        f64::from_le_bytes(self.take_bytes(8).try_into().expect("8 bytes"))
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn take_bytes(&mut self, n: usize) -> &[u8] {
        assert!(
            n <= self.len(),
            "buffer underflow: need {n}, have {}",
            self.len()
        );
        let (head, tail) = self.split_at(n);
        *self = tail;
        head
    }
}

/// Write cursor over a growable byte sink.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Writes one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Writes a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Writes a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Writes a little-endian `f32`.
    fn put_f32_le(&mut self, v: f32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Writes a little-endian `f64`.
    fn put_f64_le(&mut self, v: f64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_le_fields() {
        let mut b = BytesMut::with_capacity(32);
        b.put_u8(7);
        b.put_u32_le(0xDEAD_BEEF);
        b.put_f32_le(-1.5);
        b.put_f64_le(3.25);
        b.put_u64_le(u64::MAX - 1);
        let frozen = b.freeze();
        let mut cur: &[u8] = &frozen;
        assert_eq!(cur.get_u8(), 7);
        assert_eq!(cur.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(cur.get_f32_le(), -1.5);
        assert_eq!(cur.get_f64_le(), 3.25);
        assert_eq!(cur.get_u64_le(), u64::MAX - 1);
        assert!(!cur.has_remaining());
    }

    #[test]
    fn reserve_and_extend_from_slice_append_bytes() {
        let mut b = BytesMut::with_capacity(4);
        b.reserve(16);
        assert!(b.is_empty());
        b.extend_from_slice(&[1, 2, 3]);
        b.extend_from_slice(&[]);
        b.extend_from_slice(&[4]);
        assert_eq!(&b[..], &[1, 2, 3, 4]);
    }

    #[test]
    fn bytes_clone_is_shallow_and_equal() {
        let a = Bytes::from(vec![1, 2, 3]);
        let b = a.clone();
        assert_eq!(a, b);
        assert_eq!(b.to_vec(), vec![1, 2, 3]);
        assert_eq!(a.len(), 3);
    }
}
