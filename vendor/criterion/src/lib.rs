//! Offline stand-in for the [`criterion`](https://docs.rs/criterion)
//! crate: `criterion_group!`/`criterion_main!` plus `Criterion`,
//! benchmark groups, and `Bencher::iter`, measured with plain
//! wall-clock timing (median of a few samples) instead of criterion's
//! statistical machinery. Reports `ns/iter` per benchmark to stdout so
//! `cargo bench` output stays greppable. Set `HADFL_BENCH_FAST=1` to
//! shrink the measurement budget (used by CI smoke runs).

use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`], like the real crate.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Top-level benchmark driver.
pub struct Criterion {
    measure_budget: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        let fast = std::env::var_os("HADFL_BENCH_FAST").is_some();
        Criterion {
            measure_budget: if fast {
                Duration::from_millis(20)
            } else {
                Duration::from_millis(150)
            },
        }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
        }
    }

    /// Runs one benchmark outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_benchmark(name, self.measure_budget, &mut f);
        self
    }
}

/// A named collection of benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Compatibility no-op (the stand-in sizes samples by time budget).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs one benchmark, reported as `group/name`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let full = format!("{}/{name}", self.name);
        run_benchmark(&full, self.criterion.measure_budget, &mut f);
        self
    }

    /// Ends the group (compatibility no-op).
    pub fn finish(self) {}
}

/// Passed to each benchmark closure; call [`iter`](Bencher::iter) with
/// the measured routine.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over this sample's iteration count.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std_black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(name: &str, budget: Duration, f: &mut F) {
    // Calibrate: grow the iteration count until one sample costs ~1/5 of
    // the measurement budget.
    let mut iters = 1u64;
    loop {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        if b.elapsed * 5 >= budget || iters >= 1 << 30 {
            break;
        }
        let grow = if b.elapsed.is_zero() {
            16
        } else {
            ((budget.as_secs_f64() / 5.0 / b.elapsed.as_secs_f64()).ceil() as u64).clamp(2, 16)
        };
        iters = iters.saturating_mul(grow);
    }
    // Measure: median of 5 samples.
    let mut per_iter: Vec<f64> = (0..5)
        .map(|_| {
            let mut b = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            b.elapsed.as_secs_f64() / iters as f64
        })
        .collect();
    per_iter.sort_by(f64::total_cmp);
    let median_ns = per_iter[per_iter.len() / 2] * 1e9;
    println!("bench: {name:<40} {median_ns:>12.1} ns/iter ({iters} iters/sample)");
}

/// Declares a group function running the listed benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        std::env::set_var("HADFL_BENCH_FAST", "1");
        let mut c = Criterion::default();
        let mut calls = 0u64;
        c.bench_function("noop", |b| {
            b.iter(|| {
                calls += 1;
                black_box(calls)
            })
        });
        assert!(calls > 0);
        let mut group = c.benchmark_group("g");
        group
            .sample_size(10)
            .bench_function("inner", |b| b.iter(|| black_box(1 + 1)));
        group.finish();
    }
}
