//! Offline stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` and `#[derive(Deserialize)]`
//! against the vendored `serde` stub's value-tree traits. Because the
//! registry (and with it `syn`/`quote`) is unavailable, the item is
//! parsed directly from the [`proc_macro::TokenStream`]: attributes and
//! visibility are skipped, then the struct/enum shape is extracted.
//! Supported shapes — everything this workspace derives on:
//!
//! - structs with named fields,
//! - tuple structs (single-field newtypes are transparent, like serde),
//! - enums with unit, tuple, and struct variants (externally tagged,
//!   serde's default).
//!
//! Generics are not supported and panic at expansion time with a
//! clear message. Of serde's attribute vocabulary exactly one is
//! honored — `#[serde(default)]` on a named field, which substitutes
//! `Default::default()` for a missing key (the schema-evolution
//! escape hatch real serde provides). Any other `#[serde(...)]`
//! content is ignored by the parser, matching the stub's
//! skip-attributes behaviour everywhere else.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Parsed shape of the deriving item.
enum Item {
    /// `struct S { a: T, b: U }`
    Struct { name: String, fields: Vec<Field> },
    /// `struct S(T, U);` with the arity recorded.
    TupleStruct { name: String, arity: usize },
    /// `struct S;`
    UnitStruct { name: String },
    /// `enum E { ... }`
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

/// One named field, with its `#[serde(default)]` marker.
struct Field {
    name: String,
    default: bool,
}

/// One enum variant.
enum Variant {
    Unit(String),
    Tuple(String, usize),
    Struct(String, Vec<Field>),
}

/// Derives `serde::Serialize` (value-tree flavour).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let code = match &item {
        Item::Struct { name, fields } => {
            let mut pushes = String::new();
            for f in fields {
                let f = &f.name;
                pushes.push_str(&format!(
                    "fields.push((\"{f}\".to_string(), ::serde::Serialize::to_value(&self.{f})));\n"
                ));
            }
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         let mut fields: Vec<(String, ::serde::Value)> = Vec::new();\n\
                         {pushes}\
                         ::serde::Value::Object(fields)\n\
                     }}\n\
                 }}"
            )
        }
        Item::TupleStruct { name, arity: 1 } => format!(
            "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::Value {{\n\
                     ::serde::Serialize::to_value(&self.0)\n\
                 }}\n\
             }}"
        ),
        Item::TupleStruct { name, arity } => {
            let items: Vec<String> = (0..*arity)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         ::serde::Value::Array(vec![{}])\n\
                     }}\n\
                 }}",
                items.join(", ")
            )
        }
        Item::UnitStruct { name } => format!(
            "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::Value {{ ::serde::Value::Null }}\n\
             }}"
        ),
        Item::Enum { name, variants } => {
            let mut arms = String::new();
            for v in variants {
                match v {
                    Variant::Unit(vn) => arms.push_str(&format!(
                        "{name}::{vn} => ::serde::Value::Str(\"{vn}\".to_string()),\n"
                    )),
                    Variant::Tuple(vn, arity) => {
                        let binds: Vec<String> = (0..*arity).map(|i| format!("__f{i}")).collect();
                        let inner = if *arity == 1 {
                            "::serde::Serialize::to_value(__f0)".to_string()
                        } else {
                            let items: Vec<String> = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value({b})"))
                                .collect();
                            format!("::serde::Value::Array(vec![{}])", items.join(", "))
                        };
                        arms.push_str(&format!(
                            "{name}::{vn}({binds}) => ::serde::Value::Object(vec![(\"{vn}\".to_string(), {inner})]),\n",
                            binds = binds.join(", ")
                        ));
                    }
                    Variant::Struct(vn, fields) => {
                        let binds = fields
                            .iter()
                            .map(|f| f.name.as_str())
                            .collect::<Vec<_>>()
                            .join(", ");
                        let mut pushes = String::new();
                        for f in fields {
                            let f = &f.name;
                            pushes.push_str(&format!(
                                "__fields.push((\"{f}\".to_string(), ::serde::Serialize::to_value({f})));\n"
                            ));
                        }
                        arms.push_str(&format!(
                            "{name}::{vn} {{ {binds} }} => {{\n\
                                 let mut __fields: Vec<(String, ::serde::Value)> = Vec::new();\n\
                                 {pushes}\
                                 ::serde::Value::Object(vec![(\"{vn}\".to_string(), ::serde::Value::Object(__fields))])\n\
                             }},\n"
                        ));
                    }
                }
            }
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         match self {{\n{arms}}}\n\
                     }}\n\
                 }}"
            )
        }
    };
    code.parse()
        .expect("serde_derive: generated Serialize impl parses")
}

/// The accessor a named field deserializes through: strict lookup, or
/// the default-substituting one for `#[serde(default)]` fields.
fn field_accessor(f: &Field) -> &'static str {
    if f.default {
        "::serde::__field_or_default"
    } else {
        "::serde::__field"
    }
}

/// Derives `serde::Deserialize` (value-tree flavour).
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let code = match &item {
        Item::Struct { name, fields } => {
            let mut inits = String::new();
            for f in fields {
                let acc = field_accessor(f);
                let f = &f.name;
                inits.push_str(&format!("{f}: {acc}(__obj, \"{f}\", \"{name}\")?,\n"));
            }
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                         let __obj = v.as_object().ok_or_else(|| ::serde::DeError::expected(\"object\", \"{name}\"))?;\n\
                         ::std::result::Result::Ok({name} {{\n{inits}}})\n\
                     }}\n\
                 }}"
            )
        }
        Item::TupleStruct { name, arity: 1 } => format!(
            "impl ::serde::Deserialize for {name} {{\n\
                 fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                     ::std::result::Result::Ok({name}(::serde::Deserialize::from_value(v)?))\n\
                 }}\n\
             }}"
        ),
        Item::TupleStruct { name, arity } => {
            let gets: Vec<String> = (0..*arity)
                .map(|i| format!("::serde::Deserialize::from_value(&__items[{i}])?"))
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                         let __items = v.as_array().ok_or_else(|| ::serde::DeError::expected(\"array\", \"{name}\"))?;\n\
                         if __items.len() != {arity} {{\n\
                             return ::std::result::Result::Err(::serde::DeError::expected(\"{arity}-element array\", \"{name}\"));\n\
                         }}\n\
                         ::std::result::Result::Ok({name}({gets}))\n\
                     }}\n\
                 }}",
                gets = gets.join(", ")
            )
        }
        Item::UnitStruct { name } => format!(
            "impl ::serde::Deserialize for {name} {{\n\
                 fn from_value(_v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                     ::std::result::Result::Ok({name})\n\
                 }}\n\
             }}"
        ),
        Item::Enum { name, variants } => {
            let mut unit_arms = String::new();
            let mut keyed_arms = String::new();
            for v in variants {
                match v {
                    Variant::Unit(vn) => unit_arms
                        .push_str(&format!("\"{vn}\" => return ::std::result::Result::Ok({name}::{vn}),\n")),
                    Variant::Tuple(vn, arity) => {
                        let body = if *arity == 1 {
                            format!(
                                "return ::std::result::Result::Ok({name}::{vn}(::serde::Deserialize::from_value(__inner)?));"
                            )
                        } else {
                            let gets: Vec<String> = (0..*arity)
                                .map(|i| format!("::serde::Deserialize::from_value(&__items[{i}])?"))
                                .collect();
                            format!(
                                "let __items = __inner.as_array().ok_or_else(|| ::serde::DeError::expected(\"array\", \"{name}::{vn}\"))?;\n\
                                 if __items.len() != {arity} {{\n\
                                     return ::std::result::Result::Err(::serde::DeError::expected(\"{arity}-element array\", \"{name}::{vn}\"));\n\
                                 }}\n\
                                 return ::std::result::Result::Ok({name}::{vn}({gets}));",
                                gets = gets.join(", ")
                            )
                        };
                        keyed_arms.push_str(&format!("\"{vn}\" => {{ {body} }}\n"));
                    }
                    Variant::Struct(vn, fields) => {
                        let mut inits = String::new();
                        for f in fields {
                            let acc = field_accessor(f);
                            let f = &f.name;
                            inits.push_str(&format!(
                                "{f}: {acc}(__vobj, \"{f}\", \"{name}::{vn}\")?,\n"
                            ));
                        }
                        keyed_arms.push_str(&format!(
                            "\"{vn}\" => {{\n\
                                 let __vobj = __inner.as_object().ok_or_else(|| ::serde::DeError::expected(\"object\", \"{name}::{vn}\"))?;\n\
                                 return ::std::result::Result::Ok({name}::{vn} {{\n{inits}}});\n\
                             }}\n"
                        ));
                    }
                }
            }
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                         if let ::std::option::Option::Some(__s) = v.as_str() {{\n\
                             match __s {{\n{unit_arms}_ => {{}}\n}}\n\
                         }}\n\
                         if let ::std::option::Option::Some(__entries) = v.as_object() {{\n\
                             if __entries.len() == 1 {{\n\
                                 let (__key, __inner) = &__entries[0];\n\
                                 match __key.as_str() {{\n{keyed_arms}_ => {{}}\n}}\n\
                             }}\n\
                         }}\n\
                         ::std::result::Result::Err(::serde::DeError::expected(\"variant of {name}\", \"{name}\"))\n\
                     }}\n\
                 }}"
            )
        }
    };
    code.parse()
        .expect("serde_derive: generated Deserialize impl parses")
}

// --- Token-level item parsing. ---

fn parse_item(input: TokenStream) -> Item {
    let trees: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs_and_vis(&trees, &mut i);
    let kind = match &trees[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde_derive: expected `struct` or `enum`, found {other}"),
    };
    i += 1;
    let name = match &trees[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde_derive: expected item name, found {other}"),
    };
    i += 1;
    if matches!(&trees.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde_derive stub: generic type `{name}` is not supported");
    }
    match kind.as_str() {
        "struct" => match trees.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Item::Struct {
                name,
                fields: parse_named_fields(g.stream()),
            },
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Item::TupleStruct {
                    name,
                    arity: count_tuple_fields(g.stream()),
                }
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Item::UnitStruct { name },
            other => panic!("serde_derive: unsupported struct body for `{name}`: {other:?}"),
        },
        "enum" => match trees.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Item::Enum {
                name,
                variants: parse_variants(g.stream()),
            },
            other => panic!("serde_derive: expected enum body for `{name}`, found {other:?}"),
        },
        other => panic!("serde_derive: cannot derive on `{other} {name}`"),
    }
}

/// Advances past leading `#[...]` attributes and a `pub`/`pub(...)`
/// visibility qualifier.
fn skip_attrs_and_vis(trees: &[TokenTree], i: &mut usize) {
    loop {
        match trees.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 2; // `#` + bracket group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if let Some(TokenTree::Group(g)) = trees.get(*i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        *i += 1; // `pub(crate)` etc.
                    }
                }
            }
            _ => return,
        }
    }
}

/// Whether an attribute's bracket group is `serde(... default ...)`.
fn attr_is_serde_default(trees: &[TokenTree], i: usize) -> bool {
    let Some(TokenTree::Group(g)) = trees.get(i) else {
        return false;
    };
    let inner: Vec<TokenTree> = g.stream().into_iter().collect();
    let [TokenTree::Ident(path), TokenTree::Group(args)] = &inner[..] else {
        return false;
    };
    path.to_string() == "serde"
        && args
            .stream()
            .into_iter()
            .any(|t| matches!(&t, TokenTree::Ident(id) if id.to_string() == "default"))
}

/// Extracts the field names of a named-field body, skipping types
/// (tracking `<...>` nesting so generic arguments' commas don't split)
/// and noting `#[serde(default)]` markers.
fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let trees: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < trees.len() {
        // Inline attribute walk (instead of `skip_attrs_and_vis`) so
        // a field's `#[serde(default)]` is seen before it is skipped.
        let mut default = false;
        loop {
            match trees.get(i) {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    default |= attr_is_serde_default(&trees, i + 1);
                    i += 2; // `#` + bracket group
                }
                Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                    i += 1;
                    if let Some(TokenTree::Group(g)) = trees.get(i) {
                        if g.delimiter() == Delimiter::Parenthesis {
                            i += 1; // `pub(crate)` etc.
                        }
                    }
                }
                _ => break,
            }
        }
        if i >= trees.len() {
            break;
        }
        let fname = match &trees[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde_derive: expected field name, found {other}"),
        };
        i += 1;
        match &trees[i] {
            TokenTree::Punct(p) if p.as_char() == ':' => i += 1,
            other => panic!("serde_derive: expected `:` after field `{fname}`, found {other}"),
        }
        let mut angle_depth = 0i32;
        while i < trees.len() {
            match &trees[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
        fields.push(Field {
            name: fname,
            default,
        });
    }
    fields
}

/// Counts the fields of a tuple body by top-level commas.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let trees: Vec<TokenTree> = stream.into_iter().collect();
    if trees.is_empty() {
        return 0;
    }
    let mut count = 1;
    let mut angle_depth = 0i32;
    let mut saw_tokens_since_comma = false;
    for t in &trees {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                count += 1;
                saw_tokens_since_comma = false;
                continue;
            }
            _ => {}
        }
        saw_tokens_since_comma = true;
    }
    if !saw_tokens_since_comma {
        count -= 1; // trailing comma
    }
    count
}

/// Parses enum variants: name plus unit/tuple/struct shape.
fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let trees: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < trees.len() {
        skip_attrs_and_vis(&trees, &mut i);
        if i >= trees.len() {
            break;
        }
        let vname = match &trees[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde_derive: expected variant name, found {other}"),
        };
        i += 1;
        let variant = match trees.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                Variant::Struct(vname, parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                Variant::Tuple(vname, count_tuple_fields(g.stream()))
            }
            _ => Variant::Unit(vname),
        };
        variants.push(variant);
        // Skip to the comma ending the variant (covers `= discr`).
        while i < trees.len() {
            if let TokenTree::Punct(p) = &trees[i] {
                if p.as_char() == ',' {
                    i += 1;
                    break;
                }
            }
            i += 1;
        }
    }
    variants
}
