//! Offline stand-in for the [`proptest`](https://docs.rs/proptest)
//! crate: the `proptest!` macro, `prop_assert*` macros, range and
//! collection strategies, and a deterministic per-test RNG. Each test
//! runs its configured number of random cases; a failing case panics
//! with the generated inputs printed. Unlike the real crate there is no
//! shrinking and no persisted failure regressions — failures reproduce
//! deterministically instead, because the RNG is seeded from the test's
//! module path and name.

use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};

/// Runner configuration and failure plumbing.
pub mod test_runner {
    use std::error::Error;
    use std::fmt;

    use rand::{RngCore, SeedableRng};

    /// How many random cases each property runs.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of cases to execute.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` random cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// A failed property case.
    #[derive(Debug, Clone)]
    pub struct TestCaseError {
        message: String,
    }

    impl TestCaseError {
        /// Creates a failure carrying `message`.
        pub fn fail(message: impl Into<String>) -> Self {
            TestCaseError {
                message: message.into(),
            }
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.message)
        }
    }

    impl Error for TestCaseError {}

    /// Deterministic per-test random source (xoshiro-free: ChaCha-less
    /// splitmix64 chain, plenty for test-input generation).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds the generator from a test's fully qualified name, so
        /// every run of that test sees the same case sequence.
        pub fn for_test(name: &str) -> Self {
            let mut hash = 0xcbf2_9ce4_8422_2325u64; // FNV-1a
            for b in name.bytes() {
                hash ^= b as u64;
                hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng { state: hash }
        }
    }

    impl RngCore for TestRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            // splitmix64
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for TestRng {
        type Seed = [u8; 8];

        fn from_seed(seed: [u8; 8]) -> Self {
            TestRng {
                state: u64::from_le_bytes(seed),
            }
        }
    }
}

pub use test_runner::ProptestConfig;

/// Value generators.
pub mod strategy {
    use super::*;
    use crate::test_runner::TestRng;

    /// A generator of random test inputs.
    pub trait Strategy {
        /// The generated value type.
        type Value: Debug;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    /// Always yields a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone + Debug>(pub T);

    impl<T: Clone + Debug> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }
}

pub use strategy::{Just, Strategy};

use rand::Rng;
use test_runner::TestRng;

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

impl Strategy for RangeInclusive<f32> {
    type Value = f32;

    fn generate(&self, rng: &mut TestRng) -> f32 {
        let (lo, hi) = (*self.start(), *self.end());
        if lo == hi {
            return lo;
        }
        // Widen by one ULP-ish step so the inclusive end is reachable.
        let v = lo + (hi - lo) * rng.gen_range(0.0f32..1.0f32) * (1.0 + f32::EPSILON);
        v.clamp(lo, hi)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        if lo == hi {
            return lo;
        }
        let v = lo + (hi - lo) * rng.gen_range(0.0f64..1.0f64) * (1.0 + f64::EPSILON);
        v.clamp(lo, hi)
    }
}

macro_rules! int_inclusive_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                if hi < <$t>::MAX {
                    rng.gen_range(lo..hi + 1)
                } else if lo > <$t>::MIN {
                    let v = rng.gen_range(lo - 1..hi);
                    v + 1
                } else {
                    // Full-domain range: draw raw bits.
                    rng.gen_range(lo..hi) // best effort; excludes MAX
                }
            }
        }
    )*};
}

int_inclusive_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Boolean strategies.
pub mod bool {
    use rand::Rng;

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Uniformly random booleans.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// The uniform boolean strategy.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;

        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.gen_bool(0.5)
        }
    }
}

/// Collection strategies.
pub mod collection {
    use std::ops::Range;

    use rand::Rng;

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Element counts for [`vec`]: a fixed size or a half-open range.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_exclusive: n + 1,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi_exclusive: r.end,
            }
        }
    }

    /// Generates `Vec`s whose elements come from `element`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Strategy for vectors of `element` values with `size` elements.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = rng.gen_range(self.size.lo..self.size.hi_exclusive);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Everything a property-test module needs.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Declares property tests. See the crate docs; mirrors the real
/// crate's surface for the patterns this workspace uses.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr)
      $(
        $(#[$meta:meta])*
        fn $name:ident( $($pat:pat in $strat:expr),+ $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::ProptestConfig = $cfg;
                let mut __rng = $crate::test_runner::TestRng::for_test(
                    concat!(module_path!(), "::", stringify!($name)),
                );
                for __case in 0..__config.cases {
                    let __vals = ( $( $crate::strategy::Strategy::generate(&($strat), &mut __rng) ,)+ );
                    let __printed = format!("{:#?}", &__vals);
                    let ( $($pat,)+ ) = __vals;
                    let __result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (move || {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    if let ::std::result::Result::Err(__e) = __result {
                        panic!(
                            "proptest case {}/{} failed: {}\ninputs: {}",
                            __case + 1,
                            __config.cases,
                            __e,
                            __printed,
                        );
                    }
                }
            }
        )*
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Fails the current case unless the two values compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: `{:?}` != `{:?}`",
            __l,
            __r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: `{:?}` != `{:?}`: {}",
            __l,
            __r,
            format!($($fmt)+)
        );
    }};
}

/// Fails the current case if the two values compare equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(*__l != *__r, "assertion failed: `{:?}` == `{:?}`", __l, __r);
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..17, f in -1.5f32..2.5, b in crate::bool::ANY) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-1.5..2.5).contains(&f));
            prop_assert!(matches!(b, true | false));
        }

        #[test]
        fn vectors_obey_size_ranges(
            xs in crate::collection::vec(0u64..100, 2..9),
            fixed in crate::collection::vec(0.0f64..1.0, 5),
        ) {
            prop_assert!((2..9).contains(&xs.len()));
            prop_assert_eq!(fixed.len(), 5);
        }

        #[test]
        fn inclusive_float_range_hits_bounds(beta in 0.0f32..=1.0) {
            prop_assert!((0.0..=1.0).contains(&beta));
        }

        #[test]
        fn early_ok_return_is_supported(n in 0u32..10) {
            if n > 4 {
                return Ok(());
            }
            prop_assert!(n <= 4);
        }
    }

    #[test]
    fn same_test_name_same_sequence() {
        use crate::strategy::Strategy;
        let mut a = crate::test_runner::TestRng::for_test("x::y");
        let mut b = crate::test_runner::TestRng::for_test("x::y");
        let s = 0u64..1_000_000;
        for _ in 0..100 {
            assert_eq!(s.generate(&mut a), s.generate(&mut b));
        }
    }
}
