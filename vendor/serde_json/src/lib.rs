//! Offline stand-in for the [`serde_json`](https://docs.rs/serde_json)
//! crate: compact and pretty JSON writers plus a recursive-descent
//! parser, both working through the vendored `serde` [`Value`] tree.

use std::error::Error as StdError;
use std::fmt;

pub use serde::Value;
use serde::{Deserialize, Serialize};

/// Serialization or parse failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    message: String,
}

impl Error {
    fn new(message: impl Into<String>) -> Self {
        Error {
            message: message.into(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl StdError for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Self {
        Error::new(e.to_string())
    }
}

/// Serializes `value` as compact JSON.
///
/// # Errors
///
/// Returns [`Error`] when the value contains a non-finite float (JSON
/// has no representation for them, matching the real crate's refusal).
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), None, 0, &mut out)?;
    Ok(out)
}

/// Serializes `value` as human-readable, two-space-indented JSON.
///
/// # Errors
///
/// Same conditions as [`to_string`].
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), Some(2), 0, &mut out)?;
    Ok(out)
}

/// Parses JSON text into any [`Deserialize`] type.
///
/// # Errors
///
/// Returns [`Error`] on malformed JSON or a shape mismatch.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let mut parser = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error::new(format!(
            "trailing characters at byte {}",
            parser.pos
        )));
    }
    Ok(T::from_value(&value)?)
}

// --- Writer. ---

fn write_value(
    v: &Value,
    indent: Option<usize>,
    depth: usize,
    out: &mut String,
) -> Result<(), Error> {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::F64(x) => {
            if !x.is_finite() {
                return Err(Error::new("cannot serialize non-finite float as JSON"));
            }
            let text = format!("{x}");
            out.push_str(&text);
            // Keep floats recognizably floats, like the real crate.
            if !text.contains(['.', 'e', 'E']) {
                out.push_str(".0");
            }
        }
        Value::Str(s) => write_string(s, out),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return Ok(());
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(indent, depth + 1, out);
                write_value(item, indent, depth + 1, out)?;
            }
            newline_indent(indent, depth, out);
            out.push(']');
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return Ok(());
            }
            out.push('{');
            for (i, (key, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(indent, depth + 1, out);
                write_string(key, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(val, indent, depth + 1, out)?;
            }
            newline_indent(indent, depth, out);
            out.push('}');
        }
    }
    Ok(())
}

fn newline_indent(indent: Option<usize>, depth: usize, out: &mut String) {
    if let Some(width) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', width * depth));
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// --- Parser. ---

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                loop {
                    self.skip_ws();
                    items.push(self.parse_value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Array(items));
                        }
                        _ => return Err(Error::new(format!("bad array at byte {}", self.pos))),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut entries = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    self.skip_ws();
                    let value = self.parse_value()?;
                    entries.push((key, value));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Object(entries));
                        }
                        _ => return Err(Error::new(format!("bad object at byte {}", self.pos))),
                    }
                }
            }
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            _ => Err(Error::new(format!("unexpected input at byte {}", self.pos))),
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Consume a run of plain UTF-8 (no escape handling needed).
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error::new("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error::new("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::new("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::new("bad \\u escape"))?;
                            self.pos += 4;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("bad \\u code point"))?,
                            );
                        }
                        other => {
                            return Err(Error::new(format!("bad escape `\\{}`", other as char)))
                        }
                    }
                }
                _ => return Err(Error::new("unterminated string")),
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("bad number"))?;
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::U64(u));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::I64(i));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error::new(format!("bad number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrips() {
        assert_eq!(to_string(&42u32).unwrap(), "42");
        assert_eq!(to_string(&-7i32).unwrap(), "-7");
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(from_str::<u32>("42").unwrap(), 42);
        assert_eq!(from_str::<f32>("1.25").unwrap(), 1.25);
        assert_eq!(from_str::<String>("\"a\\nb\"").unwrap(), "a\nb");
    }

    #[test]
    fn nested_structures_roundtrip() {
        let v = vec![vec![1u32, 2], vec![3]];
        let json = to_string(&v).unwrap();
        assert_eq!(from_str::<Vec<Vec<u32>>>(&json).unwrap(), v);
        let pretty = to_string_pretty(&v).unwrap();
        assert_eq!(from_str::<Vec<Vec<u32>>>(&pretty).unwrap(), v);
        assert!(pretty.contains('\n'));
    }

    #[test]
    fn f32_precision_survives() {
        let xs = vec![0.1f32, std::f32::consts::PI, f32::MIN_POSITIVE, -0.0];
        let back: Vec<f32> = from_str(&to_string(&xs).unwrap()).unwrap();
        for (a, b) in xs.iter().zip(&back) {
            assert_eq!(a.to_bits(), b.to_bits(), "{a} vs {b}");
        }
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<u32>("").is_err());
        assert!(from_str::<u32>("4 4").is_err());
        assert!(from_str::<Vec<u32>>("[1,").is_err());
        assert!(from_str::<String>("\"open").is_err());
        assert!(to_string(&f64::NAN).is_err());
    }

    #[test]
    fn object_order_is_preserved() {
        let v: Value = from_str("{\"b\": 1, \"a\": 2}").unwrap();
        let keys: Vec<&str> = v
            .as_object()
            .unwrap()
            .iter()
            .map(|(k, _)| k.as_str())
            .collect();
        assert_eq!(keys, ["b", "a"]);
    }
}
