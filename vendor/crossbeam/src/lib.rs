//! Offline stand-in for the [`crossbeam`](https://docs.rs/crossbeam)
//! crate, providing the `channel` module subset this workspace uses: an
//! unbounded MPMC channel built on `Mutex` + `Condvar` with cloneable
//! senders *and* receivers, `try_recv`, and `recv_timeout` — the same
//! disconnect semantics as the real crate (a channel is disconnected for
//! receivers once every sender is dropped, and vice versa).

/// Multi-producer multi-consumer channels.
pub mod channel {
    use std::collections::VecDeque;
    use std::error::Error;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct Shared<T> {
        queue: Mutex<State<T>>,
        ready: Condvar,
    }

    struct State<T> {
        items: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    /// The sending half of an unbounded channel.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving half of an unbounded channel.
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Error on [`Sender::send`]: every receiver is gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    impl<T: fmt::Debug> Error for SendError<T> {}

    /// Error on [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// No message queued right now.
        Empty,
        /// No message queued and every sender is gone.
        Disconnected,
    }

    impl fmt::Display for TryRecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TryRecvError::Empty => write!(f, "receiving on an empty channel"),
                TryRecvError::Disconnected => {
                    write!(f, "receiving on an empty and disconnected channel")
                }
            }
        }
    }

    impl Error for TryRecvError {}

    /// Error on [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// No message arrived within the timeout.
        Timeout,
        /// No message queued and every sender is gone.
        Disconnected,
    }

    impl fmt::Display for RecvTimeoutError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                RecvTimeoutError::Timeout => write!(f, "timed out waiting on channel"),
                RecvTimeoutError::Disconnected => {
                    write!(f, "channel is empty and disconnected")
                }
            }
        }
    }

    impl Error for RecvTimeoutError {}

    /// Error on [`Receiver::recv`]: channel empty and disconnected.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "receiving on an empty and disconnected channel")
        }
    }

    impl Error for RecvError {}

    /// Creates an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(State {
                items: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            ready: Condvar::new(),
        });
        (
            Sender {
                shared: shared.clone(),
            },
            Receiver { shared },
        )
    }

    impl<T> Sender<T> {
        /// Enqueues `value`, failing only when every receiver is gone.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut state = self.shared.queue.lock().unwrap();
            if state.receivers == 0 {
                return Err(SendError(value));
            }
            state.items.push_back(value);
            drop(state);
            self.shared.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.queue.lock().unwrap().senders += 1;
            Sender {
                shared: self.shared.clone(),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut state = self.shared.queue.lock().unwrap();
            state.senders -= 1;
            if state.senders == 0 {
                drop(state);
                self.shared.ready.notify_all();
            }
        }
    }

    impl<T> fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Sender { .. }")
        }
    }

    impl<T> Receiver<T> {
        /// Dequeues without blocking.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut state = self.shared.queue.lock().unwrap();
            match state.items.pop_front() {
                Some(v) => Ok(v),
                None if state.senders == 0 => Err(TryRecvError::Disconnected),
                None => Err(TryRecvError::Empty),
            }
        }

        /// Blocks until a message arrives or every sender is gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut state = self.shared.queue.lock().unwrap();
            loop {
                if let Some(v) = state.items.pop_front() {
                    return Ok(v);
                }
                if state.senders == 0 {
                    return Err(RecvError);
                }
                state = self.shared.ready.wait(state).unwrap();
            }
        }

        /// Blocks up to `timeout` for a message.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut state = self.shared.queue.lock().unwrap();
            loop {
                if let Some(v) = state.items.pop_front() {
                    return Ok(v);
                }
                if state.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let left = deadline.saturating_duration_since(Instant::now());
                if left.is_zero() {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (next, timed_out) = self.shared.ready.wait_timeout(state, left).unwrap();
                state = next;
                if timed_out.timed_out() && state.items.is_empty() {
                    return if state.senders == 0 {
                        Err(RecvTimeoutError::Disconnected)
                    } else {
                        Err(RecvTimeoutError::Timeout)
                    };
                }
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.queue.lock().unwrap().receivers += 1;
            Receiver {
                shared: self.shared.clone(),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.shared.queue.lock().unwrap().receivers -= 1;
        }
    }

    impl<T> fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Receiver { .. }")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel::*;
    use std::time::Duration;

    #[test]
    fn fifo_order_and_try_recv() {
        let (tx, rx) = unbounded();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.try_recv(), Ok(1));
        assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Ok(2));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
    }

    #[test]
    fn timeout_elapses_without_messages() {
        let (tx, rx) = unbounded::<u8>();
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(5)),
            Err(RecvTimeoutError::Timeout)
        );
        drop(tx);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(5)),
            Err(RecvTimeoutError::Disconnected)
        );
    }

    #[test]
    fn dropped_receivers_fail_sends() {
        let (tx, rx) = unbounded();
        drop(rx);
        assert_eq!(tx.send(9), Err(SendError(9)));
    }

    #[test]
    fn cross_thread_delivery() {
        let (tx, rx) = unbounded();
        let h = std::thread::spawn(move || {
            for i in 0..100 {
                tx.send(i).unwrap();
            }
        });
        let mut got = Vec::new();
        for _ in 0..100 {
            got.push(rx.recv_timeout(Duration::from_secs(5)).unwrap());
        }
        h.join().unwrap();
        assert_eq!(got, (0..100).collect::<Vec<_>>());
    }
}
