//! Offline stand-in for the [`rand_chacha`](https://docs.rs/rand_chacha)
//! crate: [`ChaCha8Rng`] is a genuine ChaCha stream cipher keystream
//! (8 double-rounds) driven through the vendored `rand` traits. The
//! keystream is a faithful ChaCha implementation, so output quality and
//! cross-platform stability match the real crate; the word-consumption
//! order is this crate's own (stable forever, which is what the
//! workspace's reproducibility guarantee needs).

use rand::{RngCore, SeedableRng};

const ROUNDS: usize = 8;
const WORDS: usize = 16;

/// A deterministic RNG backed by the ChaCha8 stream cipher.
#[derive(Clone)]
pub struct ChaCha8Rng {
    seed: [u8; 32],
    /// 64-bit block counter (words 12–13 of the ChaCha state).
    counter: u64,
    /// Current keystream block.
    block: [u32; WORDS],
    /// Next unconsumed word in `block`; `WORDS` forces a refill.
    index: usize,
}

impl std::fmt::Debug for ChaCha8Rng {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ChaCha8Rng")
            .field("counter", &self.counter)
            .field("index", &self.index)
            .finish_non_exhaustive()
    }
}

#[inline(always)]
fn quarter_round(state: &mut [u32; WORDS], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha8Rng {
    /// The 256-bit seed this generator was built from.
    pub fn get_seed(&self) -> [u8; 32] {
        self.seed
    }

    fn refill(&mut self) {
        let mut state = [0u32; WORDS];
        // "expand 32-byte k" constants.
        state[0] = 0x6170_7865;
        state[1] = 0x3320_646E;
        state[2] = 0x7962_2D32;
        state[3] = 0x6B20_6574;
        for i in 0..8 {
            state[4 + i] =
                u32::from_le_bytes(self.seed[4 * i..4 * i + 4].try_into().expect("4 bytes"));
        }
        state[12] = self.counter as u32;
        state[13] = (self.counter >> 32) as u32;
        // words 14–15: stream id, fixed to zero.
        let initial = state;
        for _ in 0..ROUNDS / 2 {
            // column round
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            // diagonal round
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        for (word, init) in state.iter_mut().zip(initial) {
            *word = word.wrapping_add(init);
        }
        self.block = state;
        self.counter = self.counter.wrapping_add(1);
        self.index = 0;
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: [u8; 32]) -> Self {
        ChaCha8Rng {
            seed,
            counter: 0,
            block: [0; WORDS],
            index: WORDS,
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.index >= WORDS {
            self.refill();
        }
        let word = self.block[self.index];
        self.index += 1;
        word
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        (hi << 32) | lo
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = ChaCha8Rng::seed_from_u64(7);
        let mut b = ChaCha8Rng::seed_from_u64(7);
        for _ in 0..200 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u32() == b.next_u32()).count();
        assert!(same <= 1, "streams should be unrelated, {same} collisions");
    }

    #[test]
    fn get_seed_roundtrips() {
        let seed = [9u8; 32];
        let rng = ChaCha8Rng::from_seed(seed);
        assert_eq!(rng.get_seed(), seed);
    }

    #[test]
    fn keystream_is_balanced() {
        // Crude sanity check on the keystream: ones-density near 50%.
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let ones: u32 = (0..1000).map(|_| rng.next_u32().count_ones()).sum();
        let density = ones as f64 / (1000.0 * 32.0);
        assert!((density - 0.5).abs() < 0.02, "density {density}");
    }

    #[test]
    fn clone_preserves_position() {
        let mut a = ChaCha8Rng::seed_from_u64(5);
        for _ in 0..7 {
            a.next_u32();
        }
        let mut b = a.clone();
        for _ in 0..50 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
