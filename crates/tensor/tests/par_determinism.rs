//! Determinism contract tests for the parallel tensor kernels
//! (DESIGN.md §10): every kernel must be **bit-identical** to its
//! naive serial reference at any thread count, including ragged chunk
//! tails, empty tensors, and degenerate 1×N / N×1 shapes.
//!
//! The [`hadfl_par::with_threads_forced`] override forces the parallel
//! path even for tiny inputs (it bypasses the measured work-size
//! cutoffs that plain `with_threads` respects), so these shapes
//! genuinely exercise multi-chunk dispatch through the persistent
//! worker pool — including pool reuse across dispatches and thread
//! count transitions mid-process.

use hadfl_par::with_threads_forced as with_threads;
use hadfl_tensor::{
    col2im, im2col, log_softmax_rows, matmul, matmul_a_bt, matmul_at_b, sum, Conv2dGeometry, Tensor,
};
use proptest::prelude::*;

/// Thread counts every kernel is checked under; 1 is the serial
/// reference path, the rest exercise real worker dispatch (8 exceeds
/// any CI runner's core count, so oversubscription is covered too).
const THREADS: [usize; 4] = [1, 2, 4, 8];

fn bits(t: &Tensor) -> Vec<u32> {
    t.as_slice().iter().map(|v| v.to_bits()).collect()
}

/// Naive scalar matmul: per output element, additions in ascending `k`
/// with the `a[i,k] == 0` skip — the reference operation order the
/// parallel kernel must reproduce exactly.
fn matmul_ref(av: &[f32], bv: &[f32], m: usize, ka: usize, n: usize) -> Vec<f32> {
    let mut out = vec![0.0f32; m * n];
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0f32;
            for k in 0..ka {
                let aik = av[i * ka + k];
                if aik == 0.0 {
                    continue;
                }
                acc += aik * bv[k * n + j];
            }
            out[i * n + j] = acc;
        }
    }
    out
}

fn matmul_at_b_ref(av: &[f32], bv: &[f32], ka: usize, m: usize, n: usize) -> Vec<f32> {
    let mut out = vec![0.0f32; m * n];
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0f32;
            for k in 0..ka {
                let aki = av[k * m + i];
                if aki == 0.0 {
                    continue;
                }
                acc += aki * bv[k * n + j];
            }
            out[i * n + j] = acc;
        }
    }
    out
}

/// The fixed eight-lane association of `hadfl_tensor::simd`, written
/// independently: element `k` joins lane `k % 8`, lanes combine in the
/// pairwise tree. `matmul_a_bt`'s inner row-dot must reproduce this
/// bit-for-bit.
fn dot8_ref(a: &[f32], b: &[f32]) -> f32 {
    let mut acc = [0.0f32; 8];
    for (k, (&x, &y)) in a.iter().zip(b).enumerate() {
        acc[k % 8] += x * y;
    }
    let (s0, s1) = (acc[0] + acc[4], acc[1] + acc[5]);
    let (s2, s3) = (acc[2] + acc[6], acc[3] + acc[7]);
    (s0 + s2) + (s1 + s3)
}

fn matmul_a_bt_ref(av: &[f32], bv: &[f32], m: usize, ka: usize, n: usize) -> Vec<f32> {
    let mut out = vec![0.0f32; m * n];
    for i in 0..m {
        for j in 0..n {
            out[i * n + j] = dot8_ref(&av[i * ka..(i + 1) * ka], &bv[j * ka..(j + 1) * ka]);
        }
    }
    out
}

fn vals(len: usize) -> impl Strategy<Value = Vec<f32>> {
    proptest::collection::vec(-8.0f32..8.0, len)
}

/// Sprinkles exact zeros of both signs over generated values so the
/// zero-skip fast path (and its ±0.0 edge cases) is exercised.
fn with_zeros(mut v: Vec<f32>) -> Vec<f32> {
    for (i, x) in v.iter_mut().enumerate() {
        if i % 5 == 0 {
            *x = 0.0;
        } else if i % 7 == 0 {
            *x = -0.0;
        }
    }
    v
}

fn tensor2(data: Vec<f32>, r: usize, c: usize) -> Tensor {
    Tensor::from_vec(data, &[r, c]).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn matmul_bit_identical_across_threads(
        m in 0usize..12, ka in 0usize..12, n in 0usize..20, seed in 0u64..1 << 16,
    ) {
        let mut rng = hadfl_tensor::SeedStream::new(seed);
        let av: Vec<f32> = (0..m * ka).map(|_| rng.normal()).collect();
        let bv: Vec<f32> = (0..ka * n).map(|_| rng.normal()).collect();
        let want = matmul_ref(&av, &bv, m, ka, n);
        let (a, b) = (tensor2(av, m, ka), tensor2(bv, ka, n));
        for t in THREADS {
            let got = with_threads(t, || matmul(&a, &b).unwrap());
            prop_assert_eq!(
                bits(&got),
                want.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "matmul {}x{}x{} at {} threads",
                m, ka, n, t
            );
        }
    }

    #[test]
    fn transposed_matmuls_bit_identical_across_threads(
        m in 0usize..10, ka in 0usize..10, n in 0usize..10, av in vals(100), bv in vals(100),
    ) {
        let (av, bv) = (with_zeros(av), with_zeros(bv));
        let at = tensor2(av[..ka * m].to_vec(), ka, m);
        let b = tensor2(bv[..ka * n].to_vec(), ka, n);
        let want_at = matmul_at_b_ref(at.as_slice(), b.as_slice(), ka, m, n);
        let a = tensor2(av[..m * ka].to_vec(), m, ka);
        let bt = tensor2(bv[..n * ka].to_vec(), n, ka);
        let want_bt = matmul_a_bt_ref(a.as_slice(), bt.as_slice(), m, ka, n);
        for t in THREADS {
            let got_at = with_threads(t, || matmul_at_b(&at, &b).unwrap());
            prop_assert_eq!(bits(&got_at), want_at.iter().map(|v| v.to_bits()).collect::<Vec<_>>());
            let got_bt = with_threads(t, || matmul_a_bt(&a, &bt).unwrap());
            prop_assert_eq!(bits(&got_bt), want_bt.iter().map(|v| v.to_bits()).collect::<Vec<_>>());
        }
    }

    #[test]
    fn im2col_col2im_bit_identical_across_threads(
        batch in 1usize..4, k in 1usize..4, s in 1usize..3, p in 0usize..2, seed in 0u64..1 << 16,
    ) {
        let geom = match Conv2dGeometry::new(2, 6, 5, k, s, p) {
            Ok(g) => g,
            Err(_) => return Ok(()),
        };
        let mut rng = hadfl_tensor::SeedStream::new(seed);
        let mut x = Tensor::zeros(&[batch, 2, 6, 5]);
        for v in x.as_mut_slice() {
            *v = rng.normal();
        }
        let mut g = Tensor::zeros(&[batch * geom.patches_per_image(), geom.patch_len()]);
        for v in g.as_mut_slice() {
            *v = rng.normal();
        }
        let want_cols = with_threads(1, || im2col(&x, &geom).unwrap());
        let want_img = with_threads(1, || col2im(&g, &geom, batch).unwrap());
        for t in THREADS {
            let cols = with_threads(t, || im2col(&x, &geom).unwrap());
            prop_assert_eq!(bits(&cols), bits(&want_cols), "im2col at {} threads", t);
            let img = with_threads(t, || col2im(&g, &geom, batch).unwrap());
            prop_assert_eq!(bits(&img), bits(&want_img), "col2im at {} threads", t);
        }
    }

    #[test]
    fn elementwise_and_reductions_bit_identical_across_threads(
        len in 0usize..200, k in -4.0f32..4.0, seed in 0u64..1 << 16,
    ) {
        let mut rng = hadfl_tensor::SeedStream::new(seed);
        let xs: Vec<f32> = (0..len).map(|_| rng.normal()).collect();
        let ys: Vec<f32> = (0..len).map(|_| rng.normal()).collect();
        let x = Tensor::from_vec(xs, &[len]).unwrap();
        let y = Tensor::from_vec(ys, &[len]).unwrap();

        let want_add = with_threads(1, || {
            let mut a = x.clone();
            a.add_assign_t(&y).unwrap();
            a
        });
        let want_axpy = with_threads(1, || {
            let mut a = x.clone();
            a.axpy(k, &y).unwrap();
            a
        });
        let want_scale = with_threads(1, || {
            let mut a = x.clone();
            a.scale_inplace(k);
            a
        });
        let want_dot = with_threads(1, || x.dot(&y).unwrap());
        let want_sum = with_threads(1, || sum(&x));
        let want_norm = with_threads(1, || x.norm_l2());
        for t in THREADS {
            let got_add = with_threads(t, || {
                let mut a = x.clone();
                a.add_assign_t(&y).unwrap();
                a
            });
            prop_assert_eq!(bits(&got_add), bits(&want_add));
            let got_axpy = with_threads(t, || {
                let mut a = x.clone();
                a.axpy(k, &y).unwrap();
                a
            });
            prop_assert_eq!(bits(&got_axpy), bits(&want_axpy));
            let got_scale = with_threads(t, || {
                let mut a = x.clone();
                a.scale_inplace(k);
                a
            });
            prop_assert_eq!(bits(&got_scale), bits(&want_scale));
            prop_assert_eq!(with_threads(t, || x.dot(&y).unwrap()).to_bits(), want_dot.to_bits());
            prop_assert_eq!(with_threads(t, || sum(&x)).to_bits(), want_sum.to_bits());
            prop_assert_eq!(with_threads(t, || x.norm_l2()).to_bits(), want_norm.to_bits());
        }
    }

    #[test]
    fn log_softmax_bit_identical_across_threads(
        rows in 0usize..40, cols in 1usize..8, seed in 0u64..1 << 16,
    ) {
        let mut rng = hadfl_tensor::SeedStream::new(seed);
        let xs: Vec<f32> = (0..rows * cols).map(|_| rng.normal()).collect();
        let x = Tensor::from_vec(xs, &[rows, cols]).unwrap();
        let want = with_threads(1, || log_softmax_rows(&x).unwrap());
        for t in THREADS {
            let got = with_threads(t, || log_softmax_rows(&x).unwrap());
            prop_assert_eq!(bits(&got), bits(&want), "log_softmax at {} threads", t);
        }
    }
}

/// Ragged tails and degenerate shapes, pinned explicitly (proptest may
/// not hit exactly these): a matmul whose row count is not a multiple
/// of the band size, 1×N, N×1, and empty operands.
#[test]
fn degenerate_shapes_bit_identical() {
    for (m, ka, n) in [
        (9, 3, 17), // ragged row band (9 = 8 + 1) and ragged col tile
        (1, 64, 7), // 1×N
        (33, 1, 1), // N×1
        (0, 4, 4),  // empty left
        (4, 0, 4),  // empty inner: all-zero output
        (4, 4, 0),  // empty right
    ] {
        let av: Vec<f32> = (0..m * ka).map(|i| (i as f32 * 0.37).sin()).collect();
        let bv: Vec<f32> = (0..ka * n).map(|i| (i as f32 * 0.71).cos()).collect();
        let want = matmul_ref(&av, &bv, m, ka, n);
        let a = Tensor::from_vec(av, &[m, ka]).unwrap();
        let b = Tensor::from_vec(bv, &[ka, n]).unwrap();
        for t in THREADS {
            let got = with_threads(t, || matmul(&a, &b).unwrap());
            assert_eq!(
                got.as_slice()
                    .iter()
                    .map(|v| v.to_bits())
                    .collect::<Vec<_>>(),
                want.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "matmul {m}x{ka}x{n} at {t} threads"
            );
        }
    }
    // Empty tensors through the elementwise and reduction paths.
    let empty = Tensor::zeros(&[0]);
    for t in THREADS {
        with_threads(t, || {
            let mut e = empty.clone();
            e.add_assign_t(&empty).unwrap();
            e.scale_inplace(2.0);
            assert_eq!(e.len(), 0);
            assert_eq!(sum(&e), 0.0);
            assert_eq!(e.norm_l2(), 0.0);
        });
    }
}

fn test_operands(m: usize, ka: usize, n: usize) -> (Tensor, Tensor) {
    let av: Vec<f32> = (0..m * ka).map(|i| (i as f32 * 0.37).sin()).collect();
    let bv: Vec<f32> = (0..ka * n).map(|i| (i as f32 * 0.71).cos()).collect();
    (
        Tensor::from_vec(av, &[m, ka]).unwrap(),
        Tensor::from_vec(bv, &[ka, n]).unwrap(),
    )
}

/// The persistent pool parks between dispatches and is reused by every
/// subsequent one; repeated dispatches must keep producing the serial
/// bits, with no first-dispatch/late-dispatch difference.
#[test]
fn pool_reuse_across_many_dispatches_stays_bit_identical() {
    let (a, b) = test_operands(17, 23, 9);
    let want = bits(&with_threads(1, || matmul(&a, &b).unwrap()));
    for round in 0..50 {
        let got = with_threads(4, || matmul(&a, &b).unwrap());
        assert_eq!(bits(&got), want, "round {round}");
    }
}

/// Changing the thread override mid-process (including dropping back
/// to 1 and oversubscribing past the pool's previous size) must not
/// move a bit.
#[test]
fn with_threads_transitions_keep_bits() {
    let (a, b) = test_operands(13, 31, 11);
    let want = bits(&with_threads(1, || matmul(&a, &b).unwrap()));
    for t in [4, 1, 8, 2, 4, 1] {
        let got = with_threads(t, || matmul(&a, &b).unwrap());
        assert_eq!(bits(&got), want, "after transition to {t} threads");
    }
}

/// A kernel invoked from inside a parallel region must serialize (no
/// nested fan-out, no deadlock on the pool) and still produce the
/// reference bits.
#[test]
fn nested_kernel_dispatch_serializes_and_matches() {
    let (a, b) = test_operands(9, 15, 7);
    let want = bits(&with_threads(1, || matmul(&a, &b).unwrap()));
    let results = with_threads(4, || {
        hadfl_par::par_map_collect(8, |_| bits(&matmul(&a, &b).unwrap()))
    });
    for (i, got) in results.iter().enumerate() {
        assert_eq!(got, &want, "nested matmul {i}");
    }
}
