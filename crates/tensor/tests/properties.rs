//! Property-based tests for the tensor kernels.

use hadfl_tensor::{
    argmax, col2im, im2col, matmul, matmul_a_bt, matmul_at_b, softmax_rows, Conv2dGeometry,
    SeedStream, Tensor,
};
use proptest::prelude::*;

fn tensor_strategy(len: usize) -> impl Strategy<Value = Vec<f32>> {
    proptest::collection::vec(-10.0f32..10.0, len)
}

proptest! {
    #[test]
    fn add_is_commutative(xs in tensor_strategy(16), ys in tensor_strategy(16)) {
        let a = Tensor::from_vec(xs, &[4, 4]).unwrap();
        let b = Tensor::from_vec(ys, &[4, 4]).unwrap();
        prop_assert_eq!(a.add(&b).unwrap(), b.add(&a).unwrap());
    }

    #[test]
    fn scale_distributes_over_add(xs in tensor_strategy(8), ys in tensor_strategy(8), k in -4.0f32..4.0) {
        let a = Tensor::from_vec(xs, &[8]).unwrap();
        let b = Tensor::from_vec(ys, &[8]).unwrap();
        let lhs = a.add(&b).unwrap().scale(k);
        let rhs = a.scale(k).add(&b.scale(k)).unwrap();
        for (x, y) in lhs.as_slice().iter().zip(rhs.as_slice()) {
            prop_assert!((x - y).abs() <= 1e-3);
        }
    }

    #[test]
    fn matmul_identity_right(xs in tensor_strategy(12)) {
        let a = Tensor::from_vec(xs, &[3, 4]).unwrap();
        let c = matmul(&a, &Tensor::eye(4)).unwrap();
        prop_assert_eq!(c, a);
    }

    #[test]
    fn matmul_associates_with_scaling(xs in tensor_strategy(6), ys in tensor_strategy(6), k in -3.0f32..3.0) {
        let a = Tensor::from_vec(xs, &[2, 3]).unwrap();
        let b = Tensor::from_vec(ys, &[3, 2]).unwrap();
        let lhs = matmul(&a.scale(k), &b).unwrap();
        let rhs = matmul(&a, &b).unwrap().scale(k);
        for (x, y) in lhs.as_slice().iter().zip(rhs.as_slice()) {
            prop_assert!((x - y).abs() <= 1e-2);
        }
    }

    #[test]
    fn transposed_matmuls_agree_with_plain(xs in tensor_strategy(12), ys in tensor_strategy(12)) {
        // a: 3x4 (stored transposed as 4x3 too), b: 4x3
        let a = Tensor::from_vec(xs.clone(), &[3, 4]).unwrap();
        let b = Tensor::from_vec(ys, &[4, 3]).unwrap();
        // explicit transpose of a (4x3)
        let mut at_data = vec![0.0; 12];
        for i in 0..3 {
            for j in 0..4 {
                at_data[j * 3 + i] = xs[i * 4 + j];
            }
        }
        let at = Tensor::from_vec(at_data, &[4, 3]).unwrap();
        let plain = matmul(&a, &b).unwrap();
        let via_at = matmul_at_b(&at, &b).unwrap();
        for (x, y) in plain.as_slice().iter().zip(via_at.as_slice()) {
            prop_assert!((x - y).abs() <= 1e-3);
        }
        // and a_bt: a (3x4) * (bᵀ)ᵀ where we pass bᵀ (3x4)
        let mut bt_data = vec![0.0; 12];
        for i in 0..4 {
            for j in 0..3 {
                bt_data[j * 4 + i] = b.as_slice()[i * 3 + j];
            }
        }
        let bt = Tensor::from_vec(bt_data, &[3, 4]).unwrap();
        let via_bt = matmul_a_bt(&a, &bt).unwrap();
        for (x, y) in plain.as_slice().iter().zip(via_bt.as_slice()) {
            prop_assert!((x - y).abs() <= 1e-3);
        }
    }

    #[test]
    fn softmax_rows_are_distributions(xs in tensor_strategy(20)) {
        let t = Tensor::from_vec(xs, &[4, 5]).unwrap();
        let s = softmax_rows(&t).unwrap();
        for r in 0..4 {
            let row = &s.as_slice()[r * 5..(r + 1) * 5];
            let sum: f32 = row.iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-4);
            prop_assert!(row.iter().all(|&v| (0.0..=1.0).contains(&v)));
        }
    }

    #[test]
    fn softmax_preserves_argmax(xs in tensor_strategy(10)) {
        let t = Tensor::from_vec(xs.clone(), &[1, 10]).unwrap();
        let s = softmax_rows(&t).unwrap();
        prop_assert_eq!(argmax(&xs).unwrap(), argmax(s.as_slice()).unwrap());
    }

    #[test]
    fn im2col_col2im_adjoint(seed in 0u64..1000, k in 1usize..4, s in 1usize..3, p in 0usize..2) {
        let geom = match Conv2dGeometry::new(2, 6, 5, k, s, p) {
            Ok(g) => g,
            Err(_) => return Ok(()),
        };
        let mut rng = SeedStream::new(seed);
        let mut x = Tensor::zeros(&[1, 2, 6, 5]);
        for v in x.as_mut_slice() { *v = rng.normal(); }
        let mut y = Tensor::zeros(&[geom.patches_per_image(), geom.patch_len()]);
        for v in y.as_mut_slice() { *v = rng.normal(); }
        let lhs = im2col(&x, &geom).unwrap().dot(&y).unwrap();
        let rhs = x.dot(&col2im(&y, &geom, 1).unwrap()).unwrap();
        prop_assert!((lhs - rhs).abs() < 1e-2 * lhs.abs().max(1.0));
    }
}
