//! Seeded random initialization for model parameters.
//!
//! Experiments in this repo must be exactly reproducible, so all randomness
//! flows from a [`SeedStream`] backed by ChaCha8 — a stable algorithm whose
//! output will not change across `rand` releases the way `StdRng`'s may.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use crate::tensor::Tensor;

/// Parameter initialization schemes.
///
/// # Example
///
/// ```
/// use hadfl_tensor::{Initializer, SeedStream};
///
/// let mut rng = SeedStream::new(42);
/// let w = Initializer::XavierUniform { fan_in: 64, fan_out: 32 }.init(&[64, 32], &mut rng);
/// assert_eq!(w.dims(), &[64, 32]);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Initializer {
    /// All zeros (used for biases).
    Zeros,
    /// Uniform in `[-limit, limit]` with `limit = sqrt(6 / (fan_in + fan_out))`.
    XavierUniform {
        /// Input fan of the layer.
        fan_in: usize,
        /// Output fan of the layer.
        fan_out: usize,
    },
    /// Gaussian with `std = sqrt(2 / fan_in)` (He initialization for ReLU nets).
    HeNormal {
        /// Input fan of the layer.
        fan_in: usize,
    },
    /// Uniform in `[lo, hi]`.
    Uniform {
        /// Inclusive lower bound.
        lo: f32,
        /// Inclusive upper bound.
        hi: f32,
    },
}

impl Initializer {
    /// Draws a tensor of the given shape from this distribution.
    ///
    /// # Panics
    ///
    /// Panics if a `Uniform` initializer has `lo > hi`.
    pub fn init(self, dims: &[usize], rng: &mut SeedStream) -> Tensor {
        let mut t = Tensor::zeros(dims);
        match self {
            Initializer::Zeros => {}
            Initializer::XavierUniform { fan_in, fan_out } => {
                let limit = (6.0 / (fan_in + fan_out) as f32).sqrt();
                for v in t.as_mut_slice() {
                    *v = rng.uniform(-limit, limit);
                }
            }
            Initializer::HeNormal { fan_in } => {
                let std = (2.0 / fan_in.max(1) as f32).sqrt();
                for v in t.as_mut_slice() {
                    *v = rng.normal() * std;
                }
            }
            Initializer::Uniform { lo, hi } => {
                assert!(lo <= hi, "uniform bounds out of order: [{lo}, {hi}]");
                for v in t.as_mut_slice() {
                    *v = rng.uniform(lo, hi);
                }
            }
        }
        t
    }
}

/// A deterministic, forkable random-number stream.
///
/// `SeedStream` wraps a ChaCha8 generator and adds [`fork`](Self::fork),
/// which derives an independent child stream — this is how per-device RNGs
/// are split from a single experiment seed without correlation.
#[derive(Debug, Clone)]
pub struct SeedStream {
    rng: ChaCha8Rng,
}

impl SeedStream {
    /// Creates a stream from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        SeedStream {
            rng: ChaCha8Rng::seed_from_u64(seed),
        }
    }

    /// Derives an independent child stream labelled by `salt`.
    ///
    /// Two forks of the same parent with different salts produce
    /// uncorrelated sequences; the parent stream is not advanced.
    pub fn fork(&self, salt: u64) -> Self {
        let mut seed = self.rng.get_seed();
        // Mix the salt into the seed words with splitmix-style finalization
        // so adjacent salts produce unrelated child seeds.
        let mut z = salt.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        for (i, b) in z.to_le_bytes().iter().enumerate() {
            seed[i] ^= b;
            seed[i + 8] ^= b.rotate_left(3);
        }
        SeedStream {
            rng: ChaCha8Rng::from_seed(seed),
        }
    }

    /// Uniform sample in `[lo, hi)` (or exactly `lo` when `lo == hi`).
    pub fn uniform(&mut self, lo: f32, hi: f32) -> f32 {
        if lo == hi {
            return lo;
        }
        self.rng.gen_range(lo..hi)
    }

    /// Standard normal sample (Box–Muller).
    pub fn normal(&mut self) -> f32 {
        let u1: f32 = self.rng.gen_range(f32::EPSILON..1.0);
        let u2: f32 = self.rng.gen_range(0.0..1.0);
        (-2.0 * u1.ln()).sqrt() * (std::f32::consts::TAU * u2).cos()
    }

    /// Uniform integer in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "index range must be non-empty");
        self.rng.gen_range(0..n)
    }

    /// Uniform `u64` (for deriving sub-seeds).
    pub fn next_u64(&mut self) -> u64 {
        self.rng.gen()
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.index(i + 1);
            xs.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_sequence() {
        let mut a = SeedStream::new(7);
        let mut b = SeedStream::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SeedStream::new(7);
        let mut b = SeedStream::new(8);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn forks_are_independent_and_deterministic() {
        let parent = SeedStream::new(1);
        let mut c1 = parent.fork(0);
        let mut c1_again = parent.fork(0);
        let c2 = parent.fork(1);
        assert_eq!(c1.next_u64(), c1_again.next_u64());
        let mut a = parent.fork(0);
        let mut b = c2.clone();
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0, "sibling forks must not be correlated");
    }

    #[test]
    fn uniform_respects_bounds() {
        let mut rng = SeedStream::new(3);
        for _ in 0..1000 {
            let v = rng.uniform(-0.5, 0.5);
            assert!((-0.5..0.5).contains(&v));
        }
        assert_eq!(rng.uniform(2.0, 2.0), 2.0);
    }

    #[test]
    fn normal_has_plausible_moments() {
        let mut rng = SeedStream::new(11);
        let n = 20_000;
        let xs: Vec<f32> = (0..n).map(|_| rng.normal()).collect();
        let mean = xs.iter().sum::<f32>() / n as f32;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f32>() / n as f32;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }

    #[test]
    fn xavier_respects_limit() {
        let mut rng = SeedStream::new(5);
        let w = Initializer::XavierUniform {
            fan_in: 10,
            fan_out: 10,
        }
        .init(&[10, 10], &mut rng);
        let limit = (6.0f32 / 20.0).sqrt();
        assert!(w.as_slice().iter().all(|v| v.abs() <= limit));
        // and it is not degenerate
        assert!(w.norm_l2() > 0.0);
    }

    #[test]
    fn he_normal_scales_with_fan_in() {
        let mut rng = SeedStream::new(5);
        let w = Initializer::HeNormal { fan_in: 1_000_000 }.init(&[100], &mut rng);
        assert!(w.norm_l2() < 1.0, "large fan-in must shrink weights");
    }

    #[test]
    fn zeros_initializer_is_zero() {
        let mut rng = SeedStream::new(5);
        let w = Initializer::Zeros.init(&[4, 4], &mut rng);
        assert_eq!(w, Tensor::zeros(&[4, 4]));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SeedStream::new(9);
        let mut xs: Vec<usize> = (0..50).collect();
        rng.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}
