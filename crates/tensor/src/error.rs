use std::error::Error;
use std::fmt;

/// Error produced by tensor construction and kernel operations.
///
/// Every fallible public function in this crate returns
/// `Result<_, TensorError>`; the variants carry enough context to state
/// which shapes disagreed.
///
/// # Example
///
/// ```
/// use hadfl_tensor::Tensor;
///
/// let err = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[2, 2]).unwrap_err();
/// assert!(err.to_string().contains("length"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TensorError {
    /// The flat data length does not match the product of the shape dims.
    LengthMismatch {
        /// Number of elements supplied.
        len: usize,
        /// Shape the caller asked for.
        shape: Vec<usize>,
    },
    /// Two operands had incompatible shapes for the requested operation.
    ShapeMismatch {
        /// Name of the operation that failed.
        op: &'static str,
        /// Left-hand operand shape.
        lhs: Vec<usize>,
        /// Right-hand operand shape.
        rhs: Vec<usize>,
    },
    /// The operation requires a tensor of a different rank.
    RankMismatch {
        /// Name of the operation that failed.
        op: &'static str,
        /// Rank the operation expected.
        expected: usize,
        /// Rank it received.
        actual: usize,
    },
    /// A convolution geometry was invalid (e.g. kernel larger than input).
    InvalidGeometry(String),
    /// An empty tensor was supplied where at least one element is required.
    Empty(&'static str),
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::LengthMismatch { len, shape } => write!(
                f,
                "data length {len} does not match shape {shape:?} (needs {})",
                shape.iter().product::<usize>()
            ),
            TensorError::ShapeMismatch { op, lhs, rhs } => {
                write!(f, "shape mismatch in {op}: lhs {lhs:?} vs rhs {rhs:?}")
            }
            TensorError::RankMismatch {
                op,
                expected,
                actual,
            } => {
                write!(
                    f,
                    "rank mismatch in {op}: expected rank {expected}, got {actual}"
                )
            }
            TensorError::InvalidGeometry(msg) => write!(f, "invalid geometry: {msg}"),
            TensorError::Empty(op) => write!(f, "{op} requires a non-empty tensor"),
        }
    }
}

impl Error for TensorError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_length_mismatch_mentions_both_sides() {
        let err = TensorError::LengthMismatch {
            len: 3,
            shape: vec![2, 2],
        };
        let msg = err.to_string();
        assert!(msg.contains('3') && msg.contains('4'), "{msg}");
    }

    #[test]
    fn display_shape_mismatch_names_op() {
        let err = TensorError::ShapeMismatch {
            op: "matmul",
            lhs: vec![2, 3],
            rhs: vec![4, 5],
        };
        assert!(err.to_string().contains("matmul"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TensorError>();
    }
}
