//! Dense matrix kernels: plain, transposed-operand, and outer products.
//!
//! The kernels are register-blocked and row-parallel: output rows are
//! split into fixed [`ROW_BAND`]-row bands dispatched through
//! `hadfl-par` (sized with the measured [`OpClass::Matmul`] cutoff),
//! and within a row the inner product accumulates into a register tile
//! instead of round-tripping the output row through memory on every
//! `k`. Per output element [`matmul`] and [`matmul_at_b`] add in
//! strictly increasing `k` order — the same association as the naive
//! ikj scalar loop — while [`matmul_a_bt`]'s row-dot uses the fixed
//! eight-lane association of [`crate::simd`]. Both associations are
//! pure functions of the problem shape, so results are bit-identical
//! to the scalar reference at any thread count (the determinism
//! contract of DESIGN.md §10).

use hadfl_par::OpClass;

use crate::error::TensorError;
use crate::tensor::Tensor;

/// Fixed number of output rows per parallel band. A function of the
/// problem shape only — never of the thread count — so the work
/// decomposition (and thus the result) is independent of parallelism.
const ROW_BAND: usize = 8;

/// Register-tile width: output columns accumulated in registers at a
/// time within one row.
const COL_TILE: usize = 16;

/// `out_row[j_tile] = Σ_k a[i,k]·b[k,j]` for one output row, with the
/// accumulators held in a [`COL_TILE`]-wide register tile. Additions
/// per element occur in ascending `k`, skipping `a[i,k] == 0.0` — the
/// exact operation sequence of the scalar ikj reference.
#[inline]
fn row_times_matrix(arow: &[f32], bv: &[f32], orow: &mut [f32], n: usize) {
    let mut jt = 0;
    while jt < n {
        let tile = (n - jt).min(COL_TILE);
        let mut acc = [0.0f32; COL_TILE];
        for (k, &aik) in arow.iter().enumerate() {
            if aik == 0.0 {
                continue;
            }
            let brow = &bv[k * n + jt..k * n + jt + tile];
            for (a, &bkj) in acc[..tile].iter_mut().zip(brow) {
                *a += aik * bkj;
            }
        }
        orow[jt..jt + tile].copy_from_slice(&acc[..tile]);
        jt += tile;
    }
}

fn check_matrix(t: &Tensor, op: &'static str) -> Result<(usize, usize), TensorError> {
    if t.dims().len() != 2 {
        return Err(TensorError::RankMismatch {
            op,
            expected: 2,
            actual: t.dims().len(),
        });
    }
    Ok((t.dims()[0], t.dims()[1]))
}

/// Matrix product `a (m×k) · b (k×n) → (m×n)`.
///
/// # Errors
///
/// Returns [`TensorError::RankMismatch`] if either operand is not rank 2 and
/// [`TensorError::ShapeMismatch`] if the inner dimensions disagree.
///
/// # Example
///
/// ```
/// use hadfl_tensor::{matmul, Tensor};
///
/// # fn main() -> Result<(), hadfl_tensor::TensorError> {
/// let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2])?;
/// let b = Tensor::from_vec(vec![5.0, 6.0, 7.0, 8.0], &[2, 2])?;
/// let c = matmul(&a, &b)?;
/// assert_eq!(c.as_slice(), &[19.0, 22.0, 43.0, 50.0]);
/// # Ok(())
/// # }
/// ```
pub fn matmul(a: &Tensor, b: &Tensor) -> Result<Tensor, TensorError> {
    let (m, ka) = check_matrix(a, "matmul")?;
    let (kb, n) = check_matrix(b, "matmul")?;
    if ka != kb {
        return Err(TensorError::ShapeMismatch {
            op: "matmul",
            lhs: a.dims().to_vec(),
            rhs: b.dims().to_vec(),
        });
    }
    let _prof = hadfl_prof::scope_bytes("matmul", 4 * (a.len() + b.len() + m * n) as u64);
    let mut out = Tensor::zeros(&[m, n]);
    let (av, bv) = (a.as_slice(), b.as_slice());
    let work = (m as u64) * (ka as u64) * (n as u64);
    hadfl_par::plan_for(OpClass::Matmul, work).chunks_mut(
        out.as_mut_slice(),
        ROW_BAND * n.max(1),
        |band, oband| {
            let i0 = band * ROW_BAND;
            for (r, orow) in oband.chunks_mut(n).enumerate() {
                let i = i0 + r;
                row_times_matrix(&av[i * ka..(i + 1) * ka], bv, orow, n);
            }
        },
    );
    Ok(out)
}

/// Matrix product with the left operand transposed: `aᵀ (k×m)ᵀ · b (k×n) → (m×n)`.
///
/// Used by backward passes to form weight gradients without materializing a
/// transposed copy.
///
/// # Errors
///
/// Returns [`TensorError::RankMismatch`] or [`TensorError::ShapeMismatch`]
/// under the same conditions as [`matmul`].
pub fn matmul_at_b(a: &Tensor, b: &Tensor) -> Result<Tensor, TensorError> {
    let (ka, m) = check_matrix(a, "matmul_at_b")?;
    let (kb, n) = check_matrix(b, "matmul_at_b")?;
    if ka != kb {
        return Err(TensorError::ShapeMismatch {
            op: "matmul_at_b",
            lhs: a.dims().to_vec(),
            rhs: b.dims().to_vec(),
        });
    }
    let _prof = hadfl_prof::scope_bytes("matmul_at_b", 4 * (a.len() + b.len() + m * n) as u64);
    let mut out = Tensor::zeros(&[m, n]);
    let (av, bv) = (a.as_slice(), b.as_slice());
    let work = (m as u64) * (ka as u64) * (n as u64);
    let plan = hadfl_par::plan_for(OpClass::Matmul, work);
    plan.chunks_mut(out.as_mut_slice(), ROW_BAND * n.max(1), |band, oband| {
        let i0 = band * ROW_BAND;
        let rows = oband.len() / n.max(1);
        for k in 0..ka {
            let arow = &av[k * m + i0..k * m + i0 + rows];
            let brow = &bv[k * n..(k + 1) * n];
            for (r, &aki) in arow.iter().enumerate() {
                if aki == 0.0 {
                    continue;
                }
                let orow = &mut oband[r * n..(r + 1) * n];
                for (o, &bkj) in orow.iter_mut().zip(brow) {
                    *o += aki * bkj;
                }
            }
        }
    });
    Ok(out)
}

/// Matrix product with the right operand transposed: `a (m×k) · bᵀ (n×k)ᵀ → (m×n)`.
///
/// Used by backward passes to propagate gradients to layer inputs.
///
/// # Errors
///
/// Returns [`TensorError::RankMismatch`] or [`TensorError::ShapeMismatch`]
/// under the same conditions as [`matmul`].
pub fn matmul_a_bt(a: &Tensor, b: &Tensor) -> Result<Tensor, TensorError> {
    let (m, ka) = check_matrix(a, "matmul_a_bt")?;
    let (n, kb) = check_matrix(b, "matmul_a_bt")?;
    if ka != kb {
        return Err(TensorError::ShapeMismatch {
            op: "matmul_a_bt",
            lhs: a.dims().to_vec(),
            rhs: b.dims().to_vec(),
        });
    }
    let _prof = hadfl_prof::scope_bytes("matmul_a_bt", 4 * (a.len() + b.len() + m * n) as u64);
    let mut out = Tensor::zeros(&[m, n]);
    let (av, bv) = (a.as_slice(), b.as_slice());
    let work = (m as u64) * (ka as u64) * (n as u64);
    hadfl_par::plan_for(OpClass::Matmul, work).chunks_mut(
        out.as_mut_slice(),
        ROW_BAND * n.max(1),
        |band, oband| {
            let i0 = band * ROW_BAND;
            for (r, orow) in oband.chunks_mut(n).enumerate() {
                let arow = &av[(i0 + r) * ka..(i0 + r + 1) * ka];
                for (j, o) in orow.iter_mut().enumerate() {
                    // Both operands walk k contiguously, so the fixed
                    // eight-lane dot vectorizes this — the association
                    // depends only on ka.
                    *o = crate::simd::dot8(arow, &bv[j * ka..(j + 1) * ka]);
                }
            }
        },
    );
    Ok(out)
}

/// Outer product of two vectors: `a (m) ⊗ b (n) → (m×n)`.
///
/// # Errors
///
/// Returns [`TensorError::RankMismatch`] if either operand is not rank 1.
pub fn outer(a: &Tensor, b: &Tensor) -> Result<Tensor, TensorError> {
    if a.dims().len() != 1 {
        return Err(TensorError::RankMismatch {
            op: "outer",
            expected: 1,
            actual: a.dims().len(),
        });
    }
    if b.dims().len() != 1 {
        return Err(TensorError::RankMismatch {
            op: "outer",
            expected: 1,
            actual: b.dims().len(),
        });
    }
    let (m, n) = (a.len(), b.len());
    let mut out = Tensor::zeros(&[m, n]);
    let ov = out.as_mut_slice();
    for (i, &x) in a.as_slice().iter().enumerate() {
        for (j, &y) in b.as_slice().iter().enumerate() {
            ov[i * n + j] = x * y;
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(data: &[f32], dims: &[usize]) -> Tensor {
        Tensor::from_vec(data.to_vec(), dims).unwrap()
    }

    #[test]
    fn matmul_identity_is_noop() {
        let a = t(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        let c = matmul(&a, &Tensor::eye(3)).unwrap();
        assert_eq!(c, a);
    }

    #[test]
    fn matmul_rectangular() {
        let a = t(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        let b = t(&[7.0, 8.0, 9.0, 10.0, 11.0, 12.0], &[3, 2]);
        let c = matmul(&a, &b).unwrap();
        assert_eq!(c.as_slice(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_rejects_inner_mismatch() {
        let a = Tensor::zeros(&[2, 3]);
        let b = Tensor::zeros(&[2, 3]);
        assert!(matmul(&a, &b).is_err());
    }

    #[test]
    fn matmul_rejects_non_matrix() {
        let a = Tensor::zeros(&[6]);
        let b = Tensor::zeros(&[2, 3]);
        assert!(matches!(
            matmul(&a, &b),
            Err(TensorError::RankMismatch { .. })
        ));
    }

    #[test]
    fn at_b_matches_explicit_transpose() {
        let a = t(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[3, 2]); // aᵀ is 2x3
        let b = t(&[1.0, 0.0, 0.0, 1.0, 1.0, 1.0], &[3, 2]);
        let got = matmul_at_b(&a, &b).unwrap();
        // explicit transpose of a
        let at = t(&[1.0, 3.0, 5.0, 2.0, 4.0, 6.0], &[2, 3]);
        let want = matmul(&at, &b).unwrap();
        assert_eq!(got, want);
    }

    #[test]
    fn a_bt_matches_explicit_transpose() {
        let a = t(&[1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let b = t(&[5.0, 6.0, 7.0, 8.0], &[2, 2]);
        let got = matmul_a_bt(&a, &b).unwrap();
        let bt = t(&[5.0, 7.0, 6.0, 8.0], &[2, 2]);
        let want = matmul(&a, &bt).unwrap();
        assert_eq!(got, want);
    }

    #[test]
    fn outer_shape_and_values() {
        let a = t(&[1.0, 2.0], &[2]);
        let b = t(&[3.0, 4.0, 5.0], &[3]);
        let c = outer(&a, &b).unwrap();
        assert_eq!(c.dims(), &[2, 3]);
        assert_eq!(c.as_slice(), &[3.0, 4.0, 5.0, 6.0, 8.0, 10.0]);
    }

    #[test]
    fn outer_rejects_matrices() {
        assert!(outer(&Tensor::zeros(&[2, 2]), &Tensor::zeros(&[2])).is_err());
    }
}
