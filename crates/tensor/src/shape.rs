use std::fmt;

use serde::{Deserialize, Serialize};

/// A row-major tensor shape: an ordered list of dimension extents.
///
/// `Shape` is a thin, validated wrapper over `Vec<usize>` that provides the
/// index arithmetic shared by every kernel in this crate.
///
/// # Example
///
/// ```
/// use hadfl_tensor::Shape;
///
/// let s = Shape::new(&[2, 3, 4]);
/// assert_eq!(s.len(), 24);
/// assert_eq!(s.rank(), 3);
/// assert_eq!(s.strides(), vec![12, 4, 1]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Shape(Vec<usize>);

impl Shape {
    /// Creates a shape from dimension extents.
    pub fn new(dims: &[usize]) -> Self {
        Shape(dims.to_vec())
    }

    /// Creates a scalar (rank-0) shape.
    pub fn scalar() -> Self {
        Shape(Vec::new())
    }

    /// Total number of elements (product of extents; 1 for a scalar).
    pub fn len(&self) -> usize {
        self.0.iter().product()
    }

    /// Returns `true` when the shape has zero elements in some dimension.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of dimensions.
    pub fn rank(&self) -> usize {
        self.0.len()
    }

    /// The extents as a slice.
    pub fn dims(&self) -> &[usize] {
        &self.0
    }

    /// Extent of dimension `axis`.
    ///
    /// # Panics
    ///
    /// Panics if `axis >= self.rank()`.
    pub fn dim(&self, axis: usize) -> usize {
        self.0[axis]
    }

    /// Row-major strides, in elements.
    pub fn strides(&self) -> Vec<usize> {
        let mut strides = vec![1; self.rank()];
        for i in (0..self.rank().saturating_sub(1)).rev() {
            strides[i] = strides[i + 1] * self.0[i + 1];
        }
        strides
    }

    /// Converts a multi-dimensional index to a flat offset.
    ///
    /// # Panics
    ///
    /// Panics if `idx` has the wrong rank or any coordinate is out of range.
    pub fn offset(&self, idx: &[usize]) -> usize {
        assert_eq!(idx.len(), self.rank(), "index rank mismatch");
        let mut off = 0;
        let strides = self.strides();
        for (axis, (&i, &s)) in idx.iter().zip(strides.iter()).enumerate() {
            assert!(
                i < self.0[axis],
                "index {i} out of range for axis {axis} (extent {})",
                self.0[axis]
            );
            off += i * s;
        }
        off
    }
}

impl From<Vec<usize>> for Shape {
    fn from(dims: Vec<usize>) -> Self {
        Shape(dims)
    }
}

impl From<&[usize]> for Shape {
    fn from(dims: &[usize]) -> Self {
        Shape::new(dims)
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, d) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, "x")?;
            }
            write!(f, "{d}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_shape_has_one_element() {
        let s = Shape::scalar();
        assert_eq!(s.len(), 1);
        assert_eq!(s.rank(), 0);
        assert!(!s.is_empty());
    }

    #[test]
    fn strides_are_row_major() {
        assert_eq!(Shape::new(&[2, 3, 4]).strides(), vec![12, 4, 1]);
        assert_eq!(Shape::new(&[5]).strides(), vec![1]);
        assert!(Shape::scalar().strides().is_empty());
    }

    #[test]
    fn offset_roundtrip() {
        let s = Shape::new(&[2, 3, 4]);
        let mut seen = std::collections::HashSet::new();
        for i in 0..2 {
            for j in 0..3 {
                for k in 0..4 {
                    let off = s.offset(&[i, j, k]);
                    assert!(off < s.len());
                    assert!(seen.insert(off), "offset {off} visited twice");
                }
            }
        }
        assert_eq!(seen.len(), s.len());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn offset_out_of_range_panics() {
        Shape::new(&[2, 2]).offset(&[2, 0]);
    }

    #[test]
    fn zero_extent_is_empty() {
        assert!(Shape::new(&[3, 0, 2]).is_empty());
    }

    #[test]
    fn display_uses_x_separator() {
        assert_eq!(Shape::new(&[2, 3]).to_string(), "[2x3]");
    }
}
