//! `im2col`/`col2im` lowering for 2-D convolution.
//!
//! Convolution layers in the `nn` crate are computed as a matrix product
//! over patches: the NCHW input is unrolled into a `(N·out_h·out_w) ×
//! (C·kh·kw)` patch matrix ([`im2col`]), multiplied against the reshaped
//! filter bank, and gradients flow back through [`col2im`].

use serde::{Deserialize, Serialize};

use crate::error::TensorError;
use crate::tensor::Tensor;

/// Static geometry of a 2-D convolution: input extents, kernel, stride and
/// zero padding, with the derived output extents.
///
/// # Example
///
/// ```
/// use hadfl_tensor::Conv2dGeometry;
///
/// # fn main() -> Result<(), hadfl_tensor::TensorError> {
/// let g = Conv2dGeometry::new(3, 8, 8, 3, 1, 1)?;
/// assert_eq!((g.out_h, g.out_w), (8, 8)); // 'same' padding
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Conv2dGeometry {
    /// Input channels.
    pub in_channels: usize,
    /// Input height.
    pub in_h: usize,
    /// Input width.
    pub in_w: usize,
    /// Square kernel extent.
    pub kernel: usize,
    /// Stride in both dimensions.
    pub stride: usize,
    /// Zero padding on every border.
    pub padding: usize,
    /// Derived output height.
    pub out_h: usize,
    /// Derived output width.
    pub out_w: usize,
}

impl Conv2dGeometry {
    /// Computes the geometry, validating that the kernel fits.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidGeometry`] if any extent is zero, the
    /// stride is zero, or the padded input is smaller than the kernel.
    pub fn new(
        in_channels: usize,
        in_h: usize,
        in_w: usize,
        kernel: usize,
        stride: usize,
        padding: usize,
    ) -> Result<Self, TensorError> {
        if in_channels == 0 || in_h == 0 || in_w == 0 || kernel == 0 {
            return Err(TensorError::InvalidGeometry(format!(
                "zero extent: channels={in_channels} h={in_h} w={in_w} kernel={kernel}"
            )));
        }
        if stride == 0 {
            return Err(TensorError::InvalidGeometry(
                "stride must be positive".into(),
            ));
        }
        let padded_h = in_h + 2 * padding;
        let padded_w = in_w + 2 * padding;
        if padded_h < kernel || padded_w < kernel {
            return Err(TensorError::InvalidGeometry(format!(
                "kernel {kernel} larger than padded input {padded_h}x{padded_w}"
            )));
        }
        Ok(Conv2dGeometry {
            in_channels,
            in_h,
            in_w,
            kernel,
            stride,
            padding,
            out_h: (padded_h - kernel) / stride + 1,
            out_w: (padded_w - kernel) / stride + 1,
        })
    }

    /// Number of columns in the patch matrix: `C·kh·kw`.
    pub fn patch_len(&self) -> usize {
        self.in_channels * self.kernel * self.kernel
    }

    /// Number of patch rows per batch element: `out_h·out_w`.
    pub fn patches_per_image(&self) -> usize {
        self.out_h * self.out_w
    }
}

/// Unrolls an NCHW batch into a patch matrix of shape
/// `(N·out_h·out_w) × (C·kh·kw)`.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] if `input` is not
/// `(N, C, H, W)` matching `geom`.
pub fn im2col(input: &Tensor, geom: &Conv2dGeometry) -> Result<Tensor, TensorError> {
    let dims = input.dims();
    if dims.len() != 4
        || dims[1] != geom.in_channels
        || dims[2] != geom.in_h
        || dims[3] != geom.in_w
    {
        return Err(TensorError::ShapeMismatch {
            op: "im2col",
            lhs: dims.to_vec(),
            rhs: vec![0, geom.in_channels, geom.in_h, geom.in_w],
        });
    }
    let n = dims[0];
    let ppi = geom.patches_per_image();
    let rows = n * ppi;
    let cols = geom.patch_len();
    let _prof = hadfl_prof::scope_bytes("im2col", 4 * (input.len() + rows * cols) as u64);
    let mut out = Tensor::zeros(&[rows, cols]);
    let src = input.as_slice();
    let (ih, iw, k, s, p) = (geom.in_h, geom.in_w, geom.kernel, geom.stride, geom.padding);
    let chan_stride = ih * iw;
    let img_stride = geom.in_channels * chan_stride;
    let ow = geom.out_w;

    // Patch rows are disjoint output windows, so they split into fixed
    // row chunks (boundaries independent of the thread count) whose
    // fills commute — bit-identical at any parallelism.
    let work = (rows as u64) * (cols as u64);
    hadfl_par::plan(work).chunks_mut(
        out.as_mut_slice(),
        ROW_CHUNK * cols.max(1),
        |chunk, dchunk| {
            let row0 = chunk * ROW_CHUNK;
            for (r, drow) in dchunk.chunks_mut(cols).enumerate() {
                let row = row0 + r;
                let (img, patch) = (row / ppi, row % ppi);
                let (oy, ox) = (patch / ow, patch % ow);
                // Within a patch row, `x` advances by exactly 1 per
                // `kx` (the stride applies to `ox`, not `kx`), so a
                // fully in-bounds kernel row is one contiguous source
                // run: bulk-copy it and fall back to the per-element
                // bounds-checked walk only on rows clipped by padding.
                // A copy is a copy — the fast path is bit-exact.
                let x0 = (ox * s) as isize - p as isize;
                let row_in_bounds = x0 >= 0 && x0 as usize + k <= iw;
                let mut col = 0;
                for c in 0..geom.in_channels {
                    let cbase = img * img_stride + c * chan_stride;
                    for ky in 0..k {
                        let y = (oy * s + ky) as isize - p as isize;
                        if y >= 0 && (y as usize) < ih {
                            let rbase = cbase + y as usize * iw;
                            if row_in_bounds {
                                let start = rbase + x0 as usize;
                                drow[col..col + k].copy_from_slice(&src[start..start + k]);
                                col += k;
                                continue;
                            }
                            for kx in 0..k {
                                let x = x0 + kx as isize;
                                if x >= 0 && (x as usize) < iw {
                                    drow[col] = src[rbase + x as usize];
                                }
                                col += 1;
                            }
                        } else {
                            col += k;
                        }
                    }
                }
            }
        },
    );
    Ok(out)
}

/// Fixed patch rows per parallel chunk in [`im2col`] — a constant of
/// the kernel, never derived from the thread count.
const ROW_CHUNK: usize = 32;

/// Folds a patch-matrix gradient back onto the NCHW input gradient —
/// the adjoint of [`im2col`]. Overlapping patches accumulate.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] if `cols` is not
/// `(N·out_h·out_w) × (C·kh·kw)` for the given `geom` and `batch`.
pub fn col2im(cols: &Tensor, geom: &Conv2dGeometry, batch: usize) -> Result<Tensor, TensorError> {
    let want_rows = batch * geom.patches_per_image();
    let want_cols = geom.patch_len();
    if cols.dims() != [want_rows, want_cols] {
        return Err(TensorError::ShapeMismatch {
            op: "col2im",
            lhs: cols.dims().to_vec(),
            rhs: vec![want_rows, want_cols],
        });
    }
    let _prof = hadfl_prof::scope_bytes("col2im", 4 * cols.len() as u64);
    let mut out = Tensor::zeros(&[batch, geom.in_channels, geom.in_h, geom.in_w]);
    let src = cols.as_slice();
    let (ih, iw, k, s, p) = (geom.in_h, geom.in_w, geom.kernel, geom.stride, geom.padding);
    let chan_stride = ih * iw;
    let img_stride = geom.in_channels * chan_stride;
    let ppi = geom.patches_per_image();
    let ow = geom.out_w;

    // Overlapping patches accumulate *within* an image but never
    // across images, so the image is the natural disjoint chunk; the
    // per-image accumulation order (patch-major, ascending) is the
    // scalar reference order regardless of thread count.
    let work = (batch as u64) * (ppi as u64) * (want_cols as u64);
    hadfl_par::plan(work).chunks_mut(out.as_mut_slice(), img_stride, |img, dimg| {
        for patch in 0..ppi {
            let (oy, ox) = (patch / ow, patch % ow);
            let base = (img * ppi + patch) * want_cols;
            // Same contiguous-run structure as the im2col gather: a
            // fully in-bounds kernel row accumulates element-by-element
            // in ascending `kx` either way, so the vector-friendly zip
            // adds the same floats in the same order — bit-identical.
            let x0 = (ox * s) as isize - p as isize;
            let row_in_bounds = x0 >= 0 && x0 as usize + k <= iw;
            let mut col = 0;
            for c in 0..geom.in_channels {
                let cbase = c * chan_stride;
                for ky in 0..k {
                    let y = (oy * s + ky) as isize - p as isize;
                    if y < 0 || (y as usize) >= ih {
                        col += k;
                        continue;
                    }
                    let rbase = cbase + y as usize * iw;
                    if row_in_bounds {
                        let dst = &mut dimg[rbase + x0 as usize..rbase + x0 as usize + k];
                        for (d, &v) in dst.iter_mut().zip(&src[base + col..base + col + k]) {
                            *d += v;
                        }
                        col += k;
                        continue;
                    }
                    for kx in 0..k {
                        let x = x0 + kx as isize;
                        if x >= 0 && (x as usize) < iw {
                            dimg[rbase + x as usize] += src[base + col];
                        }
                        col += 1;
                    }
                }
            }
        }
    });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry_same_padding() {
        let g = Conv2dGeometry::new(3, 8, 8, 3, 1, 1).unwrap();
        assert_eq!((g.out_h, g.out_w), (8, 8));
        assert_eq!(g.patch_len(), 27);
        assert_eq!(g.patches_per_image(), 64);
    }

    #[test]
    fn geometry_stride_two_halves_output() {
        let g = Conv2dGeometry::new(1, 8, 8, 2, 2, 0).unwrap();
        assert_eq!((g.out_h, g.out_w), (4, 4));
    }

    #[test]
    fn geometry_rejects_bad_inputs() {
        assert!(Conv2dGeometry::new(0, 8, 8, 3, 1, 1).is_err());
        assert!(Conv2dGeometry::new(1, 8, 8, 3, 0, 1).is_err());
        assert!(Conv2dGeometry::new(1, 2, 2, 5, 1, 0).is_err());
    }

    #[test]
    fn im2col_identity_kernel() {
        // 1x1 kernel, stride 1, no padding: patch matrix is the image itself
        // with channels spread across columns.
        let g = Conv2dGeometry::new(2, 2, 2, 1, 1, 0).unwrap();
        let input = Tensor::from_vec((0..8).map(|i| i as f32).collect(), &[1, 2, 2, 2]).unwrap();
        let cols = im2col(&input, &g).unwrap();
        assert_eq!(cols.dims(), &[4, 2]);
        // row = pixel position, col = channel
        assert_eq!(cols.as_slice(), &[0.0, 4.0, 1.0, 5.0, 2.0, 6.0, 3.0, 7.0]);
    }

    #[test]
    fn im2col_padding_zero_fills() {
        let g = Conv2dGeometry::new(1, 1, 1, 3, 1, 1).unwrap();
        let input = Tensor::from_vec(vec![5.0], &[1, 1, 1, 1]).unwrap();
        let cols = im2col(&input, &g).unwrap();
        assert_eq!(cols.dims(), &[1, 9]);
        // center of 3x3 patch holds the pixel, rest is padding
        let mut want = [0.0f32; 9];
        want[4] = 5.0;
        assert_eq!(cols.as_slice(), &want[..]);
    }

    #[test]
    fn im2col_rejects_wrong_shape() {
        let g = Conv2dGeometry::new(3, 4, 4, 3, 1, 1).unwrap();
        assert!(im2col(&Tensor::zeros(&[1, 2, 4, 4]), &g).is_err());
        assert!(im2col(&Tensor::zeros(&[3, 4, 4]), &g).is_err());
    }

    #[test]
    fn col2im_is_adjoint_of_im2col() {
        // <im2col(x), y> == <x, col2im(y)> for random x, y — the defining
        // property of the adjoint, which is exactly what backprop needs.
        use crate::init::SeedStream;
        let g = Conv2dGeometry::new(2, 5, 4, 3, 2, 1).unwrap();
        let mut rng = SeedStream::new(1234);
        let mut x = Tensor::zeros(&[2, 2, 5, 4]);
        for v in x.as_mut_slice() {
            *v = rng.normal();
        }
        let cols_rows = 2 * g.patches_per_image();
        let mut y = Tensor::zeros(&[cols_rows, g.patch_len()]);
        for v in y.as_mut_slice() {
            *v = rng.normal();
        }
        let ax = im2col(&x, &g).unwrap();
        let aty = col2im(&y, &g, 2).unwrap();
        let lhs = ax.dot(&y).unwrap();
        let rhs = x.dot(&aty).unwrap();
        assert!(
            (lhs - rhs).abs() < 1e-2 * lhs.abs().max(1.0),
            "{lhs} vs {rhs}"
        );
    }

    #[test]
    fn col2im_rejects_wrong_shape() {
        let g = Conv2dGeometry::new(1, 4, 4, 3, 1, 1).unwrap();
        assert!(col2im(&Tensor::zeros(&[3, 3]), &g, 1).is_err());
    }
}
