//! Reductions and row-wise softmax utilities used by the loss layer.

use crate::error::TensorError;
use crate::tensor::Tensor;

/// Sum of all elements.
///
/// # Example
///
/// ```
/// use hadfl_tensor::{sum, Tensor};
///
/// let t = Tensor::ones(&[2, 3]);
/// assert_eq!(sum(&t), 6.0);
/// ```
pub fn sum(t: &Tensor) -> f32 {
    let v = t.as_slice();
    crate::tensor::chunked_sum(v.len(), |lo, hi| crate::simd::sum8(&v[lo..hi]))
}

/// Arithmetic mean of all elements.
///
/// # Errors
///
/// Returns [`TensorError::Empty`] for an empty tensor.
pub fn mean(t: &Tensor) -> Result<f32, TensorError> {
    if t.is_empty() {
        return Err(TensorError::Empty("mean"));
    }
    Ok(sum(t) / t.len() as f32)
}

/// Index of the maximum element of a flat slice, ties broken toward the
/// lower index.
///
/// # Errors
///
/// Returns [`TensorError::Empty`] for an empty slice.
pub fn argmax(values: &[f32]) -> Result<usize, TensorError> {
    if values.is_empty() {
        return Err(TensorError::Empty("argmax"));
    }
    let mut best = 0;
    for (i, &v) in values.iter().enumerate() {
        if v > values[best] {
            best = i;
        }
    }
    Ok(best)
}

/// Numerically stable softmax applied independently to each row of a
/// `(rows × cols)` matrix.
///
/// # Errors
///
/// Returns [`TensorError::RankMismatch`] if `t` is not rank 2.
pub fn softmax_rows(t: &Tensor) -> Result<Tensor, TensorError> {
    let mut out = log_softmax_rows(t)?;
    out.map_inplace(f32::exp);
    Ok(out)
}

/// Numerically stable log-softmax applied independently to each row of a
/// `(rows × cols)` matrix.
///
/// # Errors
///
/// Returns [`TensorError::RankMismatch`] if `t` is not rank 2.
pub fn log_softmax_rows(t: &Tensor) -> Result<Tensor, TensorError> {
    if t.dims().len() != 2 {
        return Err(TensorError::RankMismatch {
            op: "log_softmax_rows",
            expected: 2,
            actual: t.dims().len(),
        });
    }
    let (rows, cols) = (t.dims()[0], t.dims()[1]);
    let _prof = hadfl_prof::scope_bytes("log_softmax_rows", 4 * t.len() as u64);
    let mut out = t.clone();
    let data = out.as_mut_slice();
    // Rows are independent, so fixed row chunks parallelize without
    // changing any per-row operation order.
    let work = (rows as u64) * (cols as u64);
    hadfl_par::plan(work).chunks_mut(data, SOFTMAX_ROW_CHUNK * cols.max(1), |_, dchunk| {
        for row in dchunk.chunks_mut(cols.max(1)) {
            let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            let mut denom = 0.0f32;
            for v in row.iter() {
                denom += (v - max).exp();
            }
            let log_denom = denom.ln() + max;
            for v in row.iter_mut() {
                *v -= log_denom;
            }
        }
    });
    Ok(out)
}

/// Fixed matrix rows per parallel chunk in [`log_softmax_rows`] — a
/// constant of the kernel, never derived from the thread count.
const SOFTMAX_ROW_CHUNK: usize = 16;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sum_and_mean() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[4]).unwrap();
        assert_eq!(sum(&t), 10.0);
        assert_eq!(mean(&t).unwrap(), 2.5);
    }

    #[test]
    fn mean_of_empty_is_error() {
        assert!(mean(&Tensor::zeros(&[0])).is_err());
    }

    #[test]
    fn argmax_prefers_first_on_tie() {
        assert_eq!(argmax(&[1.0, 3.0, 3.0, 2.0]).unwrap(), 1);
        assert!(argmax(&[]).is_err());
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, -1.0, 0.0, 1.0], &[2, 3]).unwrap();
        let s = softmax_rows(&t).unwrap();
        for r in 0..2 {
            let row_sum: f32 = s.as_slice()[r * 3..(r + 1) * 3].iter().sum();
            assert!((row_sum - 1.0).abs() < 1e-5, "row {r} sums to {row_sum}");
        }
    }

    #[test]
    fn softmax_is_stable_for_large_logits() {
        let t = Tensor::from_vec(vec![1000.0, 1001.0, 1002.0], &[1, 3]).unwrap();
        let s = softmax_rows(&t).unwrap();
        assert!(!s.has_non_finite());
        let row_sum: f32 = s.as_slice().iter().sum();
        // f32 ULP at magnitude ~1e3 limits achievable accuracy here.
        assert!((row_sum - 1.0).abs() < 1e-3);
    }

    #[test]
    fn log_softmax_matches_log_of_softmax() {
        let t = Tensor::from_vec(vec![0.3, -0.7, 2.0], &[1, 3]).unwrap();
        let ls = log_softmax_rows(&t).unwrap();
        let s = softmax_rows(&t).unwrap();
        for (a, b) in ls.as_slice().iter().zip(s.as_slice()) {
            assert!((a - b.ln()).abs() < 1e-5);
        }
    }

    #[test]
    fn softmax_rejects_non_matrix() {
        assert!(softmax_rows(&Tensor::zeros(&[3])).is_err());
    }
}
