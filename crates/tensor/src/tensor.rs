use std::fmt;

use serde::{Deserialize, Serialize};

use crate::error::TensorError;
use crate::shape::Shape;

/// A dense, row-major `f32` tensor.
///
/// `Tensor` owns its storage (a flat `Vec<f32>`) and a [`Shape`]. All
/// elementwise arithmetic is provided both as allocating methods (`add`,
/// `sub`, …) and in-place methods (`add_assign_t`, `scale_inplace`, …); the
/// training loops in the layers above use the in-place variants to avoid
/// per-step allocation.
///
/// # Example
///
/// ```
/// use hadfl_tensor::Tensor;
///
/// # fn main() -> Result<(), hadfl_tensor::TensorError> {
/// let a = Tensor::from_vec(vec![1.0, 2.0], &[2])?;
/// let b = Tensor::full(&[2], 10.0);
/// let c = a.add(&b)?;
/// assert_eq!(c.as_slice(), &[11.0, 12.0]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tensor {
    shape: Shape,
    data: Vec<f32>,
}

impl Tensor {
    /// Creates a tensor from flat data and a shape.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::LengthMismatch`] if `data.len()` differs from
    /// the product of `dims`.
    pub fn from_vec(data: Vec<f32>, dims: &[usize]) -> Result<Self, TensorError> {
        let shape = Shape::new(dims);
        if data.len() != shape.len() {
            return Err(TensorError::LengthMismatch {
                len: data.len(),
                shape: dims.to_vec(),
            });
        }
        Ok(Tensor { shape, data })
    }

    /// Creates a tensor of zeros.
    pub fn zeros(dims: &[usize]) -> Self {
        Tensor {
            shape: Shape::new(dims),
            data: vec![0.0; Shape::new(dims).len()],
        }
    }

    /// Creates a tensor of ones.
    pub fn ones(dims: &[usize]) -> Self {
        Tensor::full(dims, 1.0)
    }

    /// Creates a tensor filled with `value`.
    pub fn full(dims: &[usize], value: f32) -> Self {
        Tensor {
            shape: Shape::new(dims),
            data: vec![value; Shape::new(dims).len()],
        }
    }

    /// Creates an `n`×`n` identity matrix.
    pub fn eye(n: usize) -> Self {
        let mut t = Tensor::zeros(&[n, n]);
        for i in 0..n {
            t.data[i * n + i] = 1.0;
        }
        t
    }

    /// The tensor's shape.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// The tensor's dimension extents.
    pub fn dims(&self) -> &[usize] {
        self.shape.dims()
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Returns `true` when the tensor holds no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Borrows the flat storage.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutably borrows the flat storage.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor, returning the flat storage.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Element at a multi-dimensional index.
    ///
    /// # Panics
    ///
    /// Panics if the index rank or any coordinate is out of range.
    pub fn at(&self, idx: &[usize]) -> f32 {
        self.data[self.shape.offset(idx)]
    }

    /// Sets the element at a multi-dimensional index.
    ///
    /// # Panics
    ///
    /// Panics if the index rank or any coordinate is out of range.
    pub fn set(&mut self, idx: &[usize], value: f32) {
        let off = self.shape.offset(idx);
        self.data[off] = value;
    }

    /// Returns a reshaped copy sharing the same flat data.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::LengthMismatch`] if the element counts differ.
    pub fn reshape(&self, dims: &[usize]) -> Result<Self, TensorError> {
        Tensor::from_vec(self.data.clone(), dims)
    }

    /// Reinterprets the shape in place.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::LengthMismatch`] if the element counts differ.
    pub fn reshape_inplace(&mut self, dims: &[usize]) -> Result<(), TensorError> {
        let shape = Shape::new(dims);
        if shape.len() != self.data.len() {
            return Err(TensorError::LengthMismatch {
                len: self.data.len(),
                shape: dims.to_vec(),
            });
        }
        self.shape = shape;
        Ok(())
    }

    fn check_same_shape(&self, rhs: &Tensor, op: &'static str) -> Result<(), TensorError> {
        if self.shape != rhs.shape {
            return Err(TensorError::ShapeMismatch {
                op,
                lhs: self.dims().to_vec(),
                rhs: rhs.dims().to_vec(),
            });
        }
        Ok(())
    }

    /// Elementwise sum, allocating a new tensor.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn add(&self, rhs: &Tensor) -> Result<Tensor, TensorError> {
        self.check_same_shape(rhs, "add")?;
        let data = self
            .data
            .iter()
            .zip(&rhs.data)
            .map(|(a, b)| a + b)
            .collect();
        Ok(Tensor {
            shape: self.shape.clone(),
            data,
        })
    }

    /// Elementwise difference, allocating a new tensor.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn sub(&self, rhs: &Tensor) -> Result<Tensor, TensorError> {
        self.check_same_shape(rhs, "sub")?;
        let data = self
            .data
            .iter()
            .zip(&rhs.data)
            .map(|(a, b)| a - b)
            .collect();
        Ok(Tensor {
            shape: self.shape.clone(),
            data,
        })
    }

    /// Elementwise (Hadamard) product, allocating a new tensor.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn mul(&self, rhs: &Tensor) -> Result<Tensor, TensorError> {
        self.check_same_shape(rhs, "mul")?;
        let data = self
            .data
            .iter()
            .zip(&rhs.data)
            .map(|(a, b)| a * b)
            .collect();
        Ok(Tensor {
            shape: self.shape.clone(),
            data,
        })
    }

    /// Multiplies every element by `k`, allocating a new tensor.
    pub fn scale(&self, k: f32) -> Tensor {
        let data = self.data.iter().map(|a| a * k).collect();
        Tensor {
            shape: self.shape.clone(),
            data,
        }
    }

    /// In-place `self += rhs`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn add_assign_t(&mut self, rhs: &Tensor) -> Result<(), TensorError> {
        self.check_same_shape(rhs, "add_assign")?;
        for (a, b) in self.data.iter_mut().zip(&rhs.data) {
            *a += b;
        }
        Ok(())
    }

    /// In-place `self -= rhs`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn sub_assign_t(&mut self, rhs: &Tensor) -> Result<(), TensorError> {
        self.check_same_shape(rhs, "sub_assign")?;
        for (a, b) in self.data.iter_mut().zip(&rhs.data) {
            *a -= b;
        }
        Ok(())
    }

    /// In-place `self += k * rhs` (the SGD update kernel).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn axpy(&mut self, k: f32, rhs: &Tensor) -> Result<(), TensorError> {
        self.check_same_shape(rhs, "axpy")?;
        for (a, b) in self.data.iter_mut().zip(&rhs.data) {
            *a += k * b;
        }
        Ok(())
    }

    /// In-place `self *= k`.
    pub fn scale_inplace(&mut self, k: f32) {
        for a in &mut self.data {
            *a *= k;
        }
    }

    /// Sets every element to zero, keeping the allocation.
    pub fn fill_zero(&mut self) {
        self.data.iter_mut().for_each(|a| *a = 0.0);
    }

    /// Applies `f` to every element, allocating a new tensor.
    pub fn map<F: Fn(f32) -> f32>(&self, f: F) -> Tensor {
        let data = self.data.iter().map(|&a| f(a)).collect();
        Tensor {
            shape: self.shape.clone(),
            data,
        }
    }

    /// Applies `f` to every element in place.
    pub fn map_inplace<F: Fn(f32) -> f32>(&mut self, f: F) {
        for a in &mut self.data {
            *a = f(*a);
        }
    }

    /// Dot product of the flattened tensors.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn dot(&self, rhs: &Tensor) -> Result<f32, TensorError> {
        self.check_same_shape(rhs, "dot")?;
        Ok(self.data.iter().zip(&rhs.data).map(|(a, b)| a * b).sum())
    }

    /// Euclidean (L2) norm of the flattened tensor.
    pub fn norm_l2(&self) -> f32 {
        self.data.iter().map(|a| a * a).sum::<f32>().sqrt()
    }

    /// Returns `true` if any element is NaN or infinite.
    pub fn has_non_finite(&self) -> bool {
        self.data.iter().any(|a| !a.is_finite())
    }
}

impl Default for Tensor {
    /// An empty rank-1 tensor of length zero.
    fn default() -> Self {
        Tensor {
            shape: Shape::new(&[0]),
            data: Vec::new(),
        }
    }
}

impl fmt::Display for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        const PREVIEW: usize = 8;
        write!(f, "Tensor{} [", self.shape)?;
        for (i, v) in self.data.iter().take(PREVIEW).enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v:.4}")?;
        }
        if self.data.len() > PREVIEW {
            write!(f, ", …")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_vec_rejects_bad_length() {
        assert!(matches!(
            Tensor::from_vec(vec![1.0; 3], &[2, 2]),
            Err(TensorError::LengthMismatch { len: 3, .. })
        ));
    }

    #[test]
    fn eye_is_identity_under_indexing() {
        let id = Tensor::eye(3);
        for i in 0..3 {
            for j in 0..3 {
                assert_eq!(id.at(&[i, j]), if i == j { 1.0 } else { 0.0 });
            }
        }
    }

    #[test]
    fn add_sub_roundtrip() {
        let a = Tensor::from_vec(vec![1.0, -2.0, 3.0], &[3]).unwrap();
        let b = Tensor::from_vec(vec![0.5, 0.5, 0.5], &[3]).unwrap();
        let back = a.add(&b).unwrap().sub(&b).unwrap();
        assert_eq!(back, a);
    }

    #[test]
    fn add_rejects_shape_mismatch() {
        let a = Tensor::zeros(&[2, 3]);
        let b = Tensor::zeros(&[3, 2]);
        assert!(matches!(
            a.add(&b),
            Err(TensorError::ShapeMismatch { op: "add", .. })
        ));
    }

    #[test]
    fn axpy_matches_manual_update() {
        let mut w = Tensor::from_vec(vec![1.0, 2.0], &[2]).unwrap();
        let g = Tensor::from_vec(vec![10.0, -10.0], &[2]).unwrap();
        w.axpy(-0.1, &g).unwrap();
        assert_eq!(w.as_slice(), &[0.0, 3.0]);
    }

    #[test]
    fn reshape_preserves_data() {
        let a = Tensor::from_vec((0..6).map(|i| i as f32).collect(), &[2, 3]).unwrap();
        let b = a.reshape(&[3, 2]).unwrap();
        assert_eq!(a.as_slice(), b.as_slice());
        assert!(a.reshape(&[4, 2]).is_err());
    }

    #[test]
    fn norm_and_dot_agree() {
        let a = Tensor::from_vec(vec![3.0, 4.0], &[2]).unwrap();
        assert!((a.norm_l2() - 5.0).abs() < 1e-6);
        assert!((a.dot(&a).unwrap() - 25.0).abs() < 1e-6);
    }

    #[test]
    fn map_inplace_matches_map() {
        let a = Tensor::from_vec(vec![-1.0, 2.0, -3.0], &[3]).unwrap();
        let mapped = a.map(|x| x.max(0.0));
        let mut b = a.clone();
        b.map_inplace(|x| x.max(0.0));
        assert_eq!(mapped, b);
        assert_eq!(b.as_slice(), &[0.0, 2.0, 0.0]);
    }

    #[test]
    fn has_non_finite_detects_nan_and_inf() {
        let mut a = Tensor::zeros(&[2]);
        assert!(!a.has_non_finite());
        a.as_mut_slice()[0] = f32::NAN;
        assert!(a.has_non_finite());
        a.as_mut_slice()[0] = f32::INFINITY;
        assert!(a.has_non_finite());
    }

    #[test]
    fn display_truncates_long_tensors() {
        let t = Tensor::zeros(&[100]);
        let s = t.to_string();
        assert!(s.contains('…'));
        assert!(s.len() < 200);
    }

    #[test]
    fn fill_zero_keeps_shape() {
        let mut t = Tensor::ones(&[2, 2]);
        t.fill_zero();
        assert_eq!(t, Tensor::zeros(&[2, 2]));
    }
}
