use std::fmt;

use serde::{Deserialize, Serialize};

use crate::error::TensorError;
use crate::shape::Shape;

/// A dense, row-major `f32` tensor.
///
/// `Tensor` owns its storage (a flat `Vec<f32>`) and a [`Shape`]. All
/// elementwise arithmetic is provided both as allocating methods (`add`,
/// `sub`, …) and in-place methods (`add_assign_t`, `scale_inplace`, …); the
/// training loops in the layers above use the in-place variants to avoid
/// per-step allocation.
///
/// # Example
///
/// ```
/// use hadfl_tensor::Tensor;
///
/// # fn main() -> Result<(), hadfl_tensor::TensorError> {
/// let a = Tensor::from_vec(vec![1.0, 2.0], &[2])?;
/// let b = Tensor::full(&[2], 10.0);
/// let c = a.add(&b)?;
/// assert_eq!(c.as_slice(), &[11.0, 12.0]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tensor {
    shape: Shape,
    data: Vec<f32>,
}

impl Tensor {
    /// Creates a tensor from flat data and a shape.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::LengthMismatch`] if `data.len()` differs from
    /// the product of `dims`.
    pub fn from_vec(data: Vec<f32>, dims: &[usize]) -> Result<Self, TensorError> {
        let shape = Shape::new(dims);
        if data.len() != shape.len() {
            return Err(TensorError::LengthMismatch {
                len: data.len(),
                shape: dims.to_vec(),
            });
        }
        Ok(Tensor { shape, data })
    }

    /// Creates a tensor of zeros.
    pub fn zeros(dims: &[usize]) -> Self {
        Tensor {
            shape: Shape::new(dims),
            data: vec![0.0; Shape::new(dims).len()],
        }
    }

    /// Creates a tensor of ones.
    pub fn ones(dims: &[usize]) -> Self {
        Tensor::full(dims, 1.0)
    }

    /// Creates a tensor filled with `value`.
    pub fn full(dims: &[usize], value: f32) -> Self {
        Tensor {
            shape: Shape::new(dims),
            data: vec![value; Shape::new(dims).len()],
        }
    }

    /// Creates an `n`×`n` identity matrix.
    pub fn eye(n: usize) -> Self {
        let mut t = Tensor::zeros(&[n, n]);
        for i in 0..n {
            t.data[i * n + i] = 1.0;
        }
        t
    }

    /// The tensor's shape.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// The tensor's dimension extents.
    pub fn dims(&self) -> &[usize] {
        self.shape.dims()
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Returns `true` when the tensor holds no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Borrows the flat storage.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutably borrows the flat storage.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor, returning the flat storage.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Element at a multi-dimensional index.
    ///
    /// # Panics
    ///
    /// Panics if the index rank or any coordinate is out of range.
    pub fn at(&self, idx: &[usize]) -> f32 {
        self.data[self.shape.offset(idx)]
    }

    /// Sets the element at a multi-dimensional index.
    ///
    /// # Panics
    ///
    /// Panics if the index rank or any coordinate is out of range.
    pub fn set(&mut self, idx: &[usize], value: f32) {
        let off = self.shape.offset(idx);
        self.data[off] = value;
    }

    /// Returns a reshaped copy sharing the same flat data.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::LengthMismatch`] if the element counts differ.
    pub fn reshape(&self, dims: &[usize]) -> Result<Self, TensorError> {
        Tensor::from_vec(self.data.clone(), dims)
    }

    /// Reinterprets the shape in place.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::LengthMismatch`] if the element counts differ.
    pub fn reshape_inplace(&mut self, dims: &[usize]) -> Result<(), TensorError> {
        let shape = Shape::new(dims);
        if shape.len() != self.data.len() {
            return Err(TensorError::LengthMismatch {
                len: self.data.len(),
                shape: dims.to_vec(),
            });
        }
        self.shape = shape;
        Ok(())
    }

    fn check_same_shape(&self, rhs: &Tensor, op: &'static str) -> Result<(), TensorError> {
        if self.shape != rhs.shape {
            return Err(TensorError::ShapeMismatch {
                op,
                lhs: self.dims().to_vec(),
                rhs: rhs.dims().to_vec(),
            });
        }
        Ok(())
    }

    /// Elementwise sum, allocating a new tensor.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn add(&self, rhs: &Tensor) -> Result<Tensor, TensorError> {
        self.check_same_shape(rhs, "add")?;
        let data = self
            .data
            .iter()
            .zip(&rhs.data)
            .map(|(a, b)| a + b)
            .collect();
        Ok(Tensor {
            shape: self.shape.clone(),
            data,
        })
    }

    /// Elementwise difference, allocating a new tensor.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn sub(&self, rhs: &Tensor) -> Result<Tensor, TensorError> {
        self.check_same_shape(rhs, "sub")?;
        let data = self
            .data
            .iter()
            .zip(&rhs.data)
            .map(|(a, b)| a - b)
            .collect();
        Ok(Tensor {
            shape: self.shape.clone(),
            data,
        })
    }

    /// Elementwise (Hadamard) product, allocating a new tensor.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn mul(&self, rhs: &Tensor) -> Result<Tensor, TensorError> {
        self.check_same_shape(rhs, "mul")?;
        let data = self
            .data
            .iter()
            .zip(&rhs.data)
            .map(|(a, b)| a * b)
            .collect();
        Ok(Tensor {
            shape: self.shape.clone(),
            data,
        })
    }

    /// Multiplies every element by `k`, allocating a new tensor.
    pub fn scale(&self, k: f32) -> Tensor {
        let data = self.data.iter().map(|a| a * k).collect();
        Tensor {
            shape: self.shape.clone(),
            data,
        }
    }

    /// In-place `self += rhs`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn add_assign_t(&mut self, rhs: &Tensor) -> Result<(), TensorError> {
        self.check_same_shape(rhs, "add_assign")?;
        zip_chunks(&mut self.data, &rhs.data, |a, &b| *a += b);
        Ok(())
    }

    /// In-place `self -= rhs`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn sub_assign_t(&mut self, rhs: &Tensor) -> Result<(), TensorError> {
        self.check_same_shape(rhs, "sub_assign")?;
        zip_chunks(&mut self.data, &rhs.data, |a, &b| *a -= b);
        Ok(())
    }

    /// In-place `self += k * rhs` (the SGD update kernel).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn axpy(&mut self, k: f32, rhs: &Tensor) -> Result<(), TensorError> {
        self.check_same_shape(rhs, "axpy")?;
        zip_chunks(&mut self.data, &rhs.data, |a, &b| *a += k * b);
        Ok(())
    }

    /// In-place `self *= k`.
    pub fn scale_inplace(&mut self, k: f32) {
        hadfl_par::par_chunks_mut(&mut self.data, hadfl_par::F32_CHUNK, |_, chunk| {
            for a in chunk {
                *a *= k;
            }
        });
    }

    /// Sets every element to zero, keeping the allocation.
    pub fn fill_zero(&mut self) {
        hadfl_par::par_chunks_mut(&mut self.data, hadfl_par::F32_CHUNK, |_, chunk| {
            chunk.fill(0.0);
        });
    }

    /// Applies `f` to every element, allocating a new tensor.
    pub fn map<F: Fn(f32) -> f32>(&self, f: F) -> Tensor {
        let data = self.data.iter().map(|&a| f(a)).collect();
        Tensor {
            shape: self.shape.clone(),
            data,
        }
    }

    /// Applies `f` to every element in place.
    pub fn map_inplace<F: Fn(f32) -> f32>(&mut self, f: F) {
        for a in &mut self.data {
            *a = f(*a);
        }
    }

    /// Dot product of the flattened tensors.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn dot(&self, rhs: &Tensor) -> Result<f32, TensorError> {
        self.check_same_shape(rhs, "dot")?;
        let (a, b) = (&self.data, &rhs.data);
        Ok(chunked_sum(a.len(), |lo, hi| {
            crate::simd::dot8(&a[lo..hi], &b[lo..hi])
        }))
    }

    /// Euclidean (L2) norm of the flattened tensor.
    pub fn norm_l2(&self) -> f32 {
        let a = &self.data;
        chunked_sum(a.len(), |lo, hi| crate::simd::sum_sq8(&a[lo..hi])).sqrt()
    }

    /// Returns `true` if any element is NaN or infinite.
    pub fn has_non_finite(&self) -> bool {
        self.data.iter().any(|a| !a.is_finite())
    }
}

/// Applies `f` to aligned element pairs of `dst` and `src` through the
/// parallel plan. Chunk boundaries sit at fixed [`hadfl_par::F32_CHUNK`]
/// multiples regardless of thread count and every element is written
/// exactly once, so the result is bit-identical at any parallelism.
fn zip_chunks(dst: &mut [f32], src: &[f32], f: impl Fn(&mut f32, &f32) + Sync) {
    hadfl_par::par_chunks_mut(dst, hadfl_par::F32_CHUNK, |chunk, dchunk| {
        let base = chunk * hadfl_par::F32_CHUNK;
        let schunk = &src[base..base + dchunk.len()];
        for (a, b) in dchunk.iter_mut().zip(schunk) {
            f(a, b);
        }
    });
}

/// Chunked sum reduction: `partial(lo, hi)` produces the sum of one
/// fixed [`hadfl_par::F32_CHUNK`]-sized window (via the fixed
/// eight-lane association of [`crate::simd`] at every call site) and
/// the window partials fold in ascending chunk order. The association
/// is the same at every thread count — including one — so the
/// reduction is thread-count-invariant by construction.
pub(crate) fn chunked_sum(len: usize, partial: impl Fn(usize, usize) -> f32 + Sync) -> f32 {
    let n = hadfl_par::chunk_count(len, hadfl_par::F32_CHUNK);
    hadfl_par::par_reduce(
        n,
        len as u64,
        |c| {
            let lo = c * hadfl_par::F32_CHUNK;
            partial(lo, (lo + hadfl_par::F32_CHUNK).min(len))
        },
        |a, b| a + b,
    )
    .unwrap_or(0.0)
}

impl Default for Tensor {
    /// An empty rank-1 tensor of length zero.
    fn default() -> Self {
        Tensor {
            shape: Shape::new(&[0]),
            data: Vec::new(),
        }
    }
}

impl fmt::Display for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        const PREVIEW: usize = 8;
        write!(f, "Tensor{} [", self.shape)?;
        for (i, v) in self.data.iter().take(PREVIEW).enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v:.4}")?;
        }
        if self.data.len() > PREVIEW {
            write!(f, ", …")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_vec_rejects_bad_length() {
        assert!(matches!(
            Tensor::from_vec(vec![1.0; 3], &[2, 2]),
            Err(TensorError::LengthMismatch { len: 3, .. })
        ));
    }

    #[test]
    fn eye_is_identity_under_indexing() {
        let id = Tensor::eye(3);
        for i in 0..3 {
            for j in 0..3 {
                assert_eq!(id.at(&[i, j]), if i == j { 1.0 } else { 0.0 });
            }
        }
    }

    #[test]
    fn add_sub_roundtrip() {
        let a = Tensor::from_vec(vec![1.0, -2.0, 3.0], &[3]).unwrap();
        let b = Tensor::from_vec(vec![0.5, 0.5, 0.5], &[3]).unwrap();
        let back = a.add(&b).unwrap().sub(&b).unwrap();
        assert_eq!(back, a);
    }

    #[test]
    fn add_rejects_shape_mismatch() {
        let a = Tensor::zeros(&[2, 3]);
        let b = Tensor::zeros(&[3, 2]);
        assert!(matches!(
            a.add(&b),
            Err(TensorError::ShapeMismatch { op: "add", .. })
        ));
    }

    #[test]
    fn axpy_matches_manual_update() {
        let mut w = Tensor::from_vec(vec![1.0, 2.0], &[2]).unwrap();
        let g = Tensor::from_vec(vec![10.0, -10.0], &[2]).unwrap();
        w.axpy(-0.1, &g).unwrap();
        assert_eq!(w.as_slice(), &[0.0, 3.0]);
    }

    #[test]
    fn reshape_preserves_data() {
        let a = Tensor::from_vec((0..6).map(|i| i as f32).collect(), &[2, 3]).unwrap();
        let b = a.reshape(&[3, 2]).unwrap();
        assert_eq!(a.as_slice(), b.as_slice());
        assert!(a.reshape(&[4, 2]).is_err());
    }

    #[test]
    fn norm_and_dot_agree() {
        let a = Tensor::from_vec(vec![3.0, 4.0], &[2]).unwrap();
        assert!((a.norm_l2() - 5.0).abs() < 1e-6);
        assert!((a.dot(&a).unwrap() - 25.0).abs() < 1e-6);
    }

    #[test]
    fn map_inplace_matches_map() {
        let a = Tensor::from_vec(vec![-1.0, 2.0, -3.0], &[3]).unwrap();
        let mapped = a.map(|x| x.max(0.0));
        let mut b = a.clone();
        b.map_inplace(|x| x.max(0.0));
        assert_eq!(mapped, b);
        assert_eq!(b.as_slice(), &[0.0, 2.0, 0.0]);
    }

    #[test]
    fn has_non_finite_detects_nan_and_inf() {
        let mut a = Tensor::zeros(&[2]);
        assert!(!a.has_non_finite());
        a.as_mut_slice()[0] = f32::NAN;
        assert!(a.has_non_finite());
        a.as_mut_slice()[0] = f32::INFINITY;
        assert!(a.has_non_finite());
    }

    #[test]
    fn display_truncates_long_tensors() {
        let t = Tensor::zeros(&[100]);
        let s = t.to_string();
        assert!(s.contains('…'));
        assert!(s.len() < 200);
    }

    #[test]
    fn fill_zero_keeps_shape() {
        let mut t = Tensor::ones(&[2, 2]);
        t.fill_zero();
        assert_eq!(t, Tensor::zeros(&[2, 2]));
    }
}
