//! Fixed-association SIMD reduction primitives.
//!
//! The scalar reductions these replace (`acc += x*y` down a slice) are
//! latency-bound: every addition waits on the previous one, so the
//! compiler cannot vectorize them without changing the float
//! association — which the determinism contract (DESIGN.md §10)
//! forbids it to do silently. These kernels *define* the association
//! as eight independent accumulator lanes instead: element `i` joins
//! lane `i % 8` (the ragged tail included), and the lanes combine in a
//! fixed pairwise tree. That association is a pure function of the
//! slice length — never of the thread count, the chunking, or the
//! instruction set — so serial, parallel, portable, and
//! explicitly-vectorized builds all produce identical bits, and the
//! compiler is free to map the eight lanes onto whatever vector width
//! the target has.
//!
//! Multiplies and adds are kept as separate IEEE operations (no
//! `mul_add`): Rust never contracts `a + x * y` into an FMA on its
//! own, so the bit pattern is stable across opt levels and targets.

/// Accumulator lanes. Eight f32 lanes fill one AVX2 register and two
/// NEON registers — enough to hide FP add latency on either.
pub const LANES: usize = 8;

/// Folds eight lanes in a fixed pairwise tree:
/// `((l0+l4)+(l2+l6)) + ((l1+l5)+(l3+l7))`. Part of the defined
/// association; every kernel in this module funnels through it.
#[inline]
fn combine(acc: [f32; LANES]) -> f32 {
    let s0 = acc[0] + acc[4];
    let s1 = acc[1] + acc[5];
    let s2 = acc[2] + acc[6];
    let s3 = acc[3] + acc[7];
    (s0 + s2) + (s1 + s3)
}

/// Dot product with the eight-lane association.
#[inline]
pub fn dot8(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    #[cfg(all(target_arch = "x86_64", target_feature = "avx2"))]
    {
        // SAFETY: compiled only when the whole binary targets AVX2.
        return unsafe { dot8_avx2(a, b) };
    }
    #[cfg(not(all(target_arch = "x86_64", target_feature = "avx2")))]
    {
        let mut acc = [0.0f32; LANES];
        let mut ac = a.chunks_exact(LANES);
        let mut bc = b.chunks_exact(LANES);
        for (xs, ys) in ac.by_ref().zip(bc.by_ref()) {
            for ((l, &x), &y) in acc.iter_mut().zip(xs).zip(ys) {
                *l += x * y;
            }
        }
        for ((l, &x), &y) in acc.iter_mut().zip(ac.remainder()).zip(bc.remainder()) {
            *l += x * y;
        }
        combine(acc)
    }
}

/// [`dot8`] on explicit AVX2 intrinsics: lane-wise multiply then add,
/// the exact operation sequence of the portable path, so the bits are
/// identical — this path only pins the vectorization the portable loop
/// already invites.
#[cfg(all(target_arch = "x86_64", target_feature = "avx2"))]
#[inline]
unsafe fn dot8_avx2(a: &[f32], b: &[f32]) -> f32 {
    use std::arch::x86_64::*;
    let mut vacc = _mm256_setzero_ps();
    let body = a.len() / LANES * LANES;
    let mut i = 0;
    while i < body {
        let x = _mm256_loadu_ps(a.as_ptr().add(i));
        let y = _mm256_loadu_ps(b.as_ptr().add(i));
        // No FMA: contraction would change the bits vs. the portable path.
        vacc = _mm256_add_ps(vacc, _mm256_mul_ps(x, y));
        i += LANES;
    }
    let mut acc = [0.0f32; LANES];
    _mm256_storeu_ps(acc.as_mut_ptr(), vacc);
    for ((l, &x), &y) in acc.iter_mut().zip(&a[body..]).zip(&b[body..]) {
        *l += x * y;
    }
    combine(acc)
}

/// Sum with the eight-lane association.
#[inline]
pub fn sum8(v: &[f32]) -> f32 {
    let mut acc = [0.0f32; LANES];
    let mut vc = v.chunks_exact(LANES);
    for xs in vc.by_ref() {
        for (l, &x) in acc.iter_mut().zip(xs) {
            *l += x;
        }
    }
    for (l, &x) in acc.iter_mut().zip(vc.remainder()) {
        *l += x;
    }
    combine(acc)
}

/// Sum of squares with the eight-lane association (the [`dot8`] of a
/// slice with itself, minus the second pass over memory).
#[inline]
pub fn sum_sq8(v: &[f32]) -> f32 {
    let mut acc = [0.0f32; LANES];
    let mut vc = v.chunks_exact(LANES);
    for xs in vc.by_ref() {
        for (l, &x) in acc.iter_mut().zip(xs) {
            *l += x * x;
        }
    }
    for (l, &x) in acc.iter_mut().zip(vc.remainder()) {
        *l += x * x;
    }
    combine(acc)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The defined association, written as naively as possible: lane
    /// `i % 8`, then the pairwise tree. Any kernel change that shifts
    /// a single bit against this is a determinism break.
    fn dot_ref(a: &[f32], b: &[f32]) -> f32 {
        let mut acc = [0.0f32; LANES];
        for (i, (&x, &y)) in a.iter().zip(b).enumerate() {
            acc[i % LANES] += x * y;
        }
        combine(acc)
    }

    fn noisy(n: usize, seed: f32) -> Vec<f32> {
        // Varied magnitudes so association changes actually move bits.
        (0..n)
            .map(|i| (i as f32 * 0.7 + seed).sin() * 10f32.powi((i % 7) as i32 - 3))
            .collect()
    }

    #[test]
    fn dot8_matches_the_defined_association_at_every_tail_length() {
        for n in 0..40 {
            let a = noisy(n, 0.3);
            let b = noisy(n, 1.1);
            assert_eq!(dot8(&a, &b).to_bits(), dot_ref(&a, &b).to_bits(), "n={n}");
        }
    }

    #[test]
    fn sum8_and_sum_sq8_are_dot8_specializations() {
        for n in [0, 1, 7, 8, 9, 31, 100] {
            let v = noisy(n, 2.7);
            let ones = vec![1.0f32; n];
            assert_eq!(sum8(&v).to_bits(), dot8(&v, &ones).to_bits(), "n={n}");
            assert_eq!(sum_sq8(&v).to_bits(), dot8(&v, &v).to_bits(), "n={n}");
        }
    }

    #[test]
    fn empty_slices_reduce_to_zero() {
        assert_eq!(dot8(&[], &[]), 0.0);
        assert_eq!(sum8(&[]), 0.0);
        assert_eq!(sum_sq8(&[]), 0.0);
    }

    #[test]
    fn values_are_close_to_f64_ground_truth() {
        let a = noisy(1000, 0.5);
        let b = noisy(1000, 4.2);
        let exact: f64 = a
            .iter()
            .zip(&b)
            .map(|(&x, &y)| x as f64 * y as f64)
            .sum::<f64>();
        let got = dot8(&a, &b) as f64;
        assert!(
            (got - exact).abs() <= 1e-3 * exact.abs().max(1.0),
            "{got} vs {exact}"
        );
    }
}
