//! Minimal dense `f32` tensor library backing the HADFL reproduction.
//!
//! This crate deliberately implements only what the federated-learning
//! substrates above it need — dense row-major tensors, the handful of
//! linear-algebra kernels used by dense and convolutional layers
//! ([`matmul`], [`im2col`]), reductions, and seeded random initialization —
//! rather than binding to an external BLAS. Everything is deterministic
//! given a seed, which the experiment harness relies on.
//!
//! # Example
//!
//! ```
//! use hadfl_tensor::{Tensor, matmul};
//!
//! # fn main() -> Result<(), hadfl_tensor::TensorError> {
//! let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2])?;
//! let b = Tensor::eye(2);
//! let c = matmul(&a, &b)?;
//! assert_eq!(c.as_slice(), a.as_slice());
//! # Ok(())
//! # }
//! ```

// `!(x > 0)`-style guards are deliberate: unlike `x <= 0` they also
// reject NaN, which is exactly what the validators want.
#![allow(clippy::neg_cmp_op_on_partial_ord)]
mod conv;
mod error;
mod init;
mod linalg;
mod reduce;
mod shape;
pub mod simd;
mod tensor;

pub use conv::{col2im, im2col, Conv2dGeometry};
pub use error::TensorError;
pub use init::{Initializer, SeedStream};
pub use linalg::{matmul, matmul_a_bt, matmul_at_b, outer};
pub use reduce::{argmax, log_softmax_rows, mean, softmax_rows, sum};
pub use shape::Shape;
pub use tensor::Tensor;
