//! Synchronous distributed training: the paper's "PyTorch distributed
//! training scheme" baseline (decentralized ring all-reduce of gradients
//! on every iteration, à la Horovod / DDP).

use hadfl::aggregate::{average_params, record_gossip_traffic};
use hadfl::driver::SimOptions;
use hadfl::trace::{RoundRecord, Trace};
use hadfl::{HadflError, Workload};
use hadfl_simnet::{ComputeModel, DeviceId, NetStats};
use hadfl_tensor::SeedStream;

use crate::config::BaselineConfig;

/// Runs synchronous data-parallel training with a per-iteration ring
/// all-reduce and returns its trace (one record per epoch).
///
/// Every device computes gradients on its local mini-batch; the
/// iteration completes only when the *slowest* device finishes
/// (`max_i step_time_i`), then the gradient all-reduce runs and every
/// device applies the identical averaged update — so all replicas stay
/// bit-identical, as in DDP.
///
/// # Errors
///
/// Returns configuration errors for degenerate options and substrate
/// errors from training.
///
/// # Example
///
/// See the crate-level example.
pub fn run_distributed(
    workload: &Workload,
    config: &BaselineConfig,
    opts: &SimOptions,
) -> Result<Trace, HadflError> {
    config.validate()?;
    let k = opts.powers.len();
    if k < 2 {
        return Err(HadflError::InvalidConfig("need at least 2 devices".into()));
    }
    let mut built = workload.build(k)?;
    let wire_bytes = opts.wire_model_bytes.unwrap_or(built.model_bytes);
    let compute = ComputeModel::new(opts.base_step_secs, &opts.powers)?.with_jitter(opts.jitter);
    let master_rng = SeedStream::new(workload.seed ^ 0xD157_0001);
    let mut device_rngs: Vec<SeedStream> = (0..k).map(|i| master_rng.fork(i as u64)).collect();
    let mut stats = NetStats::new();
    for rt in &mut built.runtimes {
        rt.set_optimizer(hadfl_nn::LrSchedule::constant(config.lr), config.momentum);
    }

    // Iterations per epoch: the max across shards (devices with smaller
    // shards simply wrap around, as DDP samplers do).
    let iters_per_epoch = built
        .batches_per_epoch()
        .into_iter()
        .max()
        .expect("k >= 2 devices");
    let ring: Vec<DeviceId> = (0..k).map(DeviceId).collect();
    let mut trace = Trace::new("distributed_training", k, wire_bytes);
    let mut now = 0.0f64;
    let epochs = opts.epochs_total.ceil() as usize;

    for epoch in 1..=epochs {
        let mut epoch_loss = 0.0f64;
        for _ in 0..iters_per_epoch {
            // Compute phase: barrier at the slowest device.
            let mut slowest = 0.0f64;
            let mut grads: Vec<Vec<f32>> = Vec::with_capacity(k);
            for (i, rng) in device_rngs.iter_mut().enumerate() {
                let (loss, _) = built.runtimes[i].grad_step()?;
                epoch_loss += f64::from(loss) / k as f64;
                let dt = compute.step_time(DeviceId(i), Some(rng))?;
                slowest = slowest.max(dt);
                grads.push(built.runtimes[i].model.grad_vector());
            }
            // Ring all-reduce of gradients.
            let refs: Vec<&[f32]> = grads.iter().map(Vec::as_slice).collect();
            let avg = average_params(&refs)?;
            let cost = record_gossip_traffic(&ring, wire_bytes, &opts.link, &mut stats)?;
            for i in 0..k {
                built.runtimes[i].model.set_grad_vector(&avg)?;
                built.runtimes[i].apply_step()?;
            }
            now += slowest + cost.secs;
        }
        let params = built.runtimes[0].model.param_vector();
        let metrics = built.evaluate_params(&params)?;
        let versions: Vec<f64> = built
            .runtimes
            .iter()
            .map(|rt| rt.steps_done as f64)
            .collect();
        trace.push(RoundRecord {
            round: epoch,
            time_secs: now,
            epoch_equiv: epoch as f64,
            train_loss: (epoch_loss / iters_per_epoch as f64) as f32,
            test_accuracy: metrics.accuracy,
            selected: Vec::new(),
            versions,
        });
    }
    trace.set_comm(&stats);
    Ok(trace)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hadfl_simnet::Endpoint;

    fn quick_opts() -> SimOptions {
        let mut o = SimOptions::quick(&[3.0, 3.0, 1.0, 1.0]);
        o.epochs_total = 5.0;
        o
    }

    #[test]
    fn distributed_trains_and_improves() {
        let trace = run_distributed(
            &Workload::quick("mlp", 1),
            &BaselineConfig::default(),
            &quick_opts(),
        )
        .unwrap();
        assert_eq!(trace.records.len(), 5);
        let first = &trace.records[0];
        let last = trace.records.last().unwrap();
        assert!(last.test_accuracy >= first.test_accuracy);
        assert!(last.train_loss < first.train_loss);
    }

    #[test]
    fn replicas_stay_identical() {
        // All devices apply identical averaged gradients, so one more
        // epoch from the recorded state must be reproducible: check via
        // version counters being equal.
        let trace = run_distributed(
            &Workload::quick("mlp", 2),
            &BaselineConfig::default(),
            &quick_opts(),
        )
        .unwrap();
        let last = trace.records.last().unwrap();
        assert!(
            last.versions.windows(2).all(|w| w[0] == w[1]),
            "{:?}",
            last.versions
        );
    }

    #[test]
    fn iteration_pace_is_set_by_the_straggler() {
        // Same workload under [1,1,1,1] vs [4,4,4,1]: the straggler-bound
        // run must take as long per epoch (the power-4 devices don't help).
        let homo = run_distributed(&Workload::quick("mlp", 3), &BaselineConfig::default(), &{
            let mut o = quick_opts();
            o.powers = vec![1.0, 1.0, 1.0, 1.0];
            o
        })
        .unwrap();
        let hetero = run_distributed(&Workload::quick("mlp", 3), &BaselineConfig::default(), &{
            let mut o = quick_opts();
            o.powers = vec![4.0, 4.0, 4.0, 1.0];
            o
        })
        .unwrap();
        let t_homo = homo.records.last().unwrap().time_secs;
        let t_hetero = hetero.records.last().unwrap().time_secs;
        assert!(
            (t_homo - t_hetero).abs() / t_homo < 0.05,
            "straggler should dominate: {t_homo} vs {t_hetero}"
        );
    }

    #[test]
    fn no_server_traffic_ring_only() {
        let trace = run_distributed(
            &Workload::quick("mlp", 4),
            &BaselineConfig::default(),
            &quick_opts(),
        )
        .unwrap();
        assert_eq!(trace.comm.server_bytes, 0);
        assert!(trace.comm.total_bytes > 0);
        assert_eq!(trace.comm.device_bytes.len(), 4);
    }

    #[test]
    fn validates_inputs() {
        let w = Workload::quick("mlp", 0);
        let mut o = quick_opts();
        o.powers = vec![1.0];
        assert!(run_distributed(&w, &BaselineConfig::default(), &o).is_err());
        let bad = BaselineConfig {
            lr: -1.0,
            ..Default::default()
        };
        assert!(run_distributed(&w, &bad, &quick_opts()).is_err());
    }

    #[test]
    fn comm_grows_with_iterations() {
        let short = run_distributed(&Workload::quick("mlp", 5), &BaselineConfig::default(), &{
            let mut o = quick_opts();
            o.epochs_total = 1.0;
            o
        })
        .unwrap();
        let long = run_distributed(&Workload::quick("mlp", 5), &BaselineConfig::default(), &{
            let mut o = quick_opts();
            o.epochs_total = 3.0;
            o
        })
        .unwrap();
        assert_eq!(long.comm.total_bytes, 3 * short.comm.total_bytes);
        // sanity: endpoint accessor compiles for device endpoints
        let _ = Endpoint::Device(DeviceId(0));
    }
}
