//! Baseline training schemes the HADFL paper compares against.
//!
//! Three schemes, all running on the same substrates (the `hadfl-nn`
//! training stack and the `hadfl-simnet` virtual-time cluster) and
//! emitting the same [`hadfl::trace::Trace`], so the bench harness can
//! put them side by side:
//!
//! - [`run_distributed`] — *Distributed training* (the paper's PyTorch
//!   DDP / Horovod comparison): a synchronous ring all-reduce of
//!   gradients on every iteration. Fast devices idle for the slowest on
//!   every single step.
//! - [`run_decentralized_fedavg`] — *Decentralized-FedAvg* (Hegedűs et
//!   al.): every device runs the same `E` local steps, then all devices
//!   gossip parameters and merge synchronously. Stragglers stall each
//!   round boundary.
//! - [`run_centralized_fedavg`] — classical FedAvg with a parameter
//!   server, implemented for the §II-B communication-volume analysis:
//!   the server moves `2·M·K` bytes per round, the bottleneck HADFL
//!   removes.
//!
//! # Example
//!
//! ```no_run
//! use hadfl::driver::SimOptions;
//! use hadfl::Workload;
//! use hadfl_baselines::{run_decentralized_fedavg, BaselineConfig};
//!
//! # fn main() -> Result<(), hadfl::HadflError> {
//! let trace = run_decentralized_fedavg(
//!     &Workload::quick("mlp", 0),
//!     &BaselineConfig::default(),
//!     &SimOptions::quick(&[3.0, 3.0, 1.0, 1.0]),
//! )?;
//! println!("fedavg reached {:.3}", trace.max_accuracy());
//! # Ok(())
//! # }
//! ```

// `!(x > 0)`-style guards are deliberate: unlike `x <= 0` they also
// reject NaN, which is exactly what the validators want.
#![allow(clippy::neg_cmp_op_on_partial_ord)]
mod centralized;
mod config;
mod distributed;
mod fedavg;

pub use centralized::run_centralized_fedavg;
pub use config::BaselineConfig;
pub use distributed::run_distributed;
pub use fedavg::run_decentralized_fedavg;
