use hadfl::HadflError;
use serde::{Deserialize, Serialize};

/// Hyper-parameters shared by the baseline schemes.
///
/// # Example
///
/// ```
/// use hadfl_baselines::BaselineConfig;
///
/// let cfg = BaselineConfig { lr: 0.02, ..BaselineConfig::default() };
/// assert!(cfg.validate().is_ok());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BaselineConfig {
    /// Learning rate (the paper uses 0.01 everywhere).
    pub lr: f32,
    /// SGD momentum.
    pub momentum: f32,
    /// FedAvg's `E`: local epochs per aggregation round (every device
    /// runs `E × batches_per_epoch` steps, identical across devices).
    pub local_epochs: u32,
}

impl Default for BaselineConfig {
    /// The paper's settings: lr 0.01, momentum 0.9, one local epoch per
    /// FedAvg round.
    fn default() -> Self {
        BaselineConfig {
            lr: 0.01,
            momentum: 0.9,
            local_epochs: 1,
        }
    }
}

impl BaselineConfig {
    /// Checks ranges.
    ///
    /// # Errors
    ///
    /// Returns [`HadflError::InvalidConfig`] describing the first
    /// out-of-range field.
    pub fn validate(&self) -> Result<(), HadflError> {
        if !(self.lr > 0.0) || !self.lr.is_finite() {
            return Err(HadflError::InvalidConfig(format!(
                "lr must be positive, got {}",
                self.lr
            )));
        }
        if !(0.0..1.0).contains(&self.momentum) {
            return Err(HadflError::InvalidConfig(format!(
                "momentum must be in [0, 1), got {}",
                self.momentum
            )));
        }
        if self.local_epochs == 0 {
            return Err(HadflError::InvalidConfig(
                "local_epochs must be at least 1".into(),
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        assert!(BaselineConfig::default().validate().is_ok());
    }

    #[test]
    fn rejects_bad_fields() {
        assert!(BaselineConfig {
            lr: 0.0,
            ..Default::default()
        }
        .validate()
        .is_err());
        assert!(BaselineConfig {
            lr: f32::NAN,
            ..Default::default()
        }
        .validate()
        .is_err());
        assert!(BaselineConfig {
            momentum: 1.0,
            ..Default::default()
        }
        .validate()
        .is_err());
        assert!(BaselineConfig {
            local_epochs: 0,
            ..Default::default()
        }
        .validate()
        .is_err());
    }
}
