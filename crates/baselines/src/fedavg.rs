//! Decentralized FedAvg: the paper's second baseline (Hegedűs et al.) —
//! every device runs the *same* number of local steps, then all devices
//! synchronously gossip parameters and merge. No central server, but the
//! round boundary is a barrier: fast devices idle for stragglers.

use hadfl::aggregate::{average_params, record_gossip_traffic};
use hadfl::driver::SimOptions;
use hadfl::trace::{RoundRecord, Trace};
use hadfl::{HadflError, Workload};
use hadfl_simnet::{ComputeModel, DeviceId, NetStats};
use hadfl_tensor::SeedStream;

use crate::config::BaselineConfig;

/// Runs decentralized FedAvg and returns its trace (one record per
/// aggregation round).
///
/// Each round, every device runs `local_epochs × batches_per_epoch`
/// local SGD steps — the same count on every device, so the round lasts
/// as long as the *slowest* device takes — then all live devices average
/// parameters over a gossip ring.
///
/// # Errors
///
/// Returns configuration errors for degenerate options and substrate
/// errors from training.
///
/// # Example
///
/// See the crate-level example.
pub fn run_decentralized_fedavg(
    workload: &Workload,
    config: &BaselineConfig,
    opts: &SimOptions,
) -> Result<Trace, HadflError> {
    config.validate()?;
    let k = opts.powers.len();
    if k < 2 {
        return Err(HadflError::InvalidConfig("need at least 2 devices".into()));
    }
    let mut built = workload.build(k)?;
    let wire_bytes = opts.wire_model_bytes.unwrap_or(built.model_bytes);
    let compute = ComputeModel::new(opts.base_step_secs, &opts.powers)?.with_jitter(opts.jitter);
    let master_rng = SeedStream::new(workload.seed ^ 0xFEDA_0001);
    let mut device_rngs: Vec<SeedStream> = (0..k).map(|i| master_rng.fork(i as u64)).collect();
    let mut stats = NetStats::new();
    for rt in &mut built.runtimes {
        rt.set_optimizer(hadfl_nn::LrSchedule::constant(config.lr), config.momentum);
    }

    let batches = built.batches_per_epoch();
    let ring: Vec<DeviceId> = (0..k).map(DeviceId).collect();
    let mut trace = Trace::new("decentralized_fedavg", k, wire_bytes);
    let mut now = 0.0f64;
    let mut round = 0usize;

    loop {
        round += 1;
        // Local phase: same step count per device, barrier at the slowest.
        let mut slowest = 0.0f64;
        let mut round_loss = 0.0f64;
        for i in 0..k {
            let steps = config.local_epochs as usize * batches[i];
            let loss = built.runtimes[i].train_steps(steps)?;
            round_loss += f64::from(loss) / k as f64;
            let secs = compute.steps_time(DeviceId(i), steps, Some(&mut device_rngs[i]))?;
            slowest = slowest.max(secs);
        }
        // Synchronous gossip merge of parameters across all devices.
        let params: Vec<Vec<f32>> = built
            .runtimes
            .iter()
            .map(|rt| rt.model.param_vector())
            .collect();
        let refs: Vec<&[f32]> = params.iter().map(Vec::as_slice).collect();
        let merged = average_params(&refs)?;
        let cost = record_gossip_traffic(&ring, wire_bytes, &opts.link, &mut stats)?;
        for rt in &mut built.runtimes {
            rt.model.set_param_vector(&merged)?;
        }
        now += slowest + cost.secs;

        let samples: u64 = built.runtimes.iter().map(|rt| rt.samples_seen).sum();
        let epoch_equiv = samples as f64 / built.train_size as f64;
        let metrics = built.evaluate_params(&merged)?;
        let versions: Vec<f64> = built
            .runtimes
            .iter()
            .map(|rt| rt.steps_done as f64)
            .collect();
        trace.push(RoundRecord {
            round,
            time_secs: now,
            epoch_equiv,
            train_loss: round_loss as f32,
            test_accuracy: metrics.accuracy,
            selected: Vec::new(),
            versions,
        });
        if epoch_equiv >= opts.epochs_total || round >= opts.max_rounds {
            break;
        }
    }
    trace.set_comm(&stats);
    Ok(trace)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_opts() -> SimOptions {
        let mut o = SimOptions::quick(&[3.0, 3.0, 1.0, 1.0]);
        o.epochs_total = 5.0;
        o
    }

    #[test]
    fn fedavg_trains_and_improves() {
        let trace = run_decentralized_fedavg(
            &Workload::quick("mlp", 1),
            &BaselineConfig::default(),
            &quick_opts(),
        )
        .unwrap();
        assert!(!trace.records.is_empty());
        let first = &trace.records[0];
        let last = trace.records.last().unwrap();
        assert!(last.epoch_equiv >= 5.0);
        assert!(last.test_accuracy >= first.test_accuracy);
    }

    #[test]
    fn all_devices_run_equal_steps() {
        let trace = run_decentralized_fedavg(
            &Workload::quick("mlp", 2),
            &BaselineConfig::default(),
            &quick_opts(),
        )
        .unwrap();
        let last = trace.records.last().unwrap();
        assert!(
            last.versions.windows(2).all(|w| w[0] == w[1]),
            "FedAvg devices must pace identically: {:?}",
            last.versions
        );
    }

    #[test]
    fn round_duration_is_straggler_bound() {
        // Doubling every power except the straggler's must leave round
        // times (and so total time) essentially unchanged.
        let base =
            run_decentralized_fedavg(&Workload::quick("mlp", 3), &BaselineConfig::default(), &{
                let mut o = quick_opts();
                o.powers = vec![1.0, 1.0, 1.0, 1.0];
                o
            })
            .unwrap();
        let boosted =
            run_decentralized_fedavg(&Workload::quick("mlp", 3), &BaselineConfig::default(), &{
                let mut o = quick_opts();
                o.powers = vec![2.0, 2.0, 2.0, 1.0];
                o
            })
            .unwrap();
        let t1 = base.records.last().unwrap().time_secs;
        let t2 = boosted.records.last().unwrap().time_secs;
        assert!((t1 - t2).abs() / t1 < 0.05, "{t1} vs {t2}");
    }

    #[test]
    fn local_epochs_scale_round_length() {
        let one = run_decentralized_fedavg(
            &Workload::quick("mlp", 4),
            &BaselineConfig {
                local_epochs: 1,
                ..Default::default()
            },
            &quick_opts(),
        )
        .unwrap();
        let two = run_decentralized_fedavg(
            &Workload::quick("mlp", 4),
            &BaselineConfig {
                local_epochs: 2,
                ..Default::default()
            },
            &quick_opts(),
        )
        .unwrap();
        // With E=2 each round covers twice the data: about half the rounds.
        assert!(two.records.len() < one.records.len());
        // …and less total communication for the same epochs.
        assert!(two.comm.total_bytes < one.comm.total_bytes);
    }

    #[test]
    fn no_server_traffic() {
        let trace = run_decentralized_fedavg(
            &Workload::quick("mlp", 5),
            &BaselineConfig::default(),
            &quick_opts(),
        )
        .unwrap();
        assert_eq!(trace.comm.server_bytes, 0);
        assert!(trace.comm.total_bytes > 0);
    }

    #[test]
    fn validates_inputs() {
        let w = Workload::quick("mlp", 0);
        let mut o = quick_opts();
        o.powers = vec![1.0];
        assert!(run_decentralized_fedavg(&w, &BaselineConfig::default(), &o).is_err());
    }
}
