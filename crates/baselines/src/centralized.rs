//! Centralized FedAvg with a parameter server — not one of the paper's
//! speed baselines, but the system its §II-B communication analysis is
//! about: the server moves `2·M·K` bytes *per aggregation round*
//! (`2·M·K·epochs/E` over training), which is the scalability bottleneck
//! HADFL's decentralized aggregation removes. The `comm_volume` bench
//! reproduces that comparison with this scheme.

use hadfl::aggregate::average_params;
use hadfl::driver::SimOptions;
use hadfl::trace::{RoundRecord, Trace};
use hadfl::{HadflError, Workload};
use hadfl_simnet::{ComputeModel, DeviceId, Endpoint, NetStats};
use hadfl_tensor::SeedStream;

use crate::config::BaselineConfig;

/// Runs classical centralized FedAvg (McMahan et al.) and returns its
/// trace (one record per aggregation round).
///
/// Each round: every device runs `local_epochs` of local SGD (barrier at
/// the slowest), uploads its parameters to the server, the server
/// averages, and every device downloads the new global model. The
/// server's NIC serializes all `K` uploads and `K` downloads — the
/// centralized bottleneck.
///
/// # Errors
///
/// Returns configuration errors for degenerate options and substrate
/// errors from training.
pub fn run_centralized_fedavg(
    workload: &Workload,
    config: &BaselineConfig,
    opts: &SimOptions,
) -> Result<Trace, HadflError> {
    config.validate()?;
    let k = opts.powers.len();
    if k < 2 {
        return Err(HadflError::InvalidConfig("need at least 2 devices".into()));
    }
    let mut built = workload.build(k)?;
    let wire_bytes = opts.wire_model_bytes.unwrap_or(built.model_bytes);
    let compute = ComputeModel::new(opts.base_step_secs, &opts.powers)?.with_jitter(opts.jitter);
    let master_rng = SeedStream::new(workload.seed ^ 0xCE27_0001);
    let mut device_rngs: Vec<SeedStream> = (0..k).map(|i| master_rng.fork(i as u64)).collect();
    let mut stats = NetStats::new();
    for rt in &mut built.runtimes {
        rt.set_optimizer(hadfl_nn::LrSchedule::constant(config.lr), config.momentum);
    }

    let batches = built.batches_per_epoch();
    let mut trace = Trace::new("centralized_fedavg", k, wire_bytes);
    let mut now = 0.0f64;
    let mut round = 0usize;

    loop {
        round += 1;
        let mut slowest = 0.0f64;
        let mut round_loss = 0.0f64;
        for i in 0..k {
            let steps = config.local_epochs as usize * batches[i];
            let loss = built.runtimes[i].train_steps(steps)?;
            round_loss += f64::from(loss) / k as f64;
            let secs = compute.steps_time(DeviceId(i), steps, Some(&mut device_rngs[i]))?;
            slowest = slowest.max(secs);
        }
        // Upload: the server's link serializes all K models.
        let mut comm = 0.0f64;
        for i in 0..k {
            stats.record(Endpoint::Device(DeviceId(i)), Endpoint::Server, wire_bytes);
            comm += opts.link.transfer_time(wire_bytes);
        }
        let params: Vec<Vec<f32>> = built
            .runtimes
            .iter()
            .map(|rt| rt.model.param_vector())
            .collect();
        let refs: Vec<&[f32]> = params.iter().map(Vec::as_slice).collect();
        let merged = average_params(&refs)?;
        // Download: again serialized through the server's link.
        for i in 0..k {
            stats.record(Endpoint::Server, Endpoint::Device(DeviceId(i)), wire_bytes);
            comm += opts.link.transfer_time(wire_bytes);
            built.runtimes[i].model.set_param_vector(&merged)?;
        }
        now += slowest + comm;

        let samples: u64 = built.runtimes.iter().map(|rt| rt.samples_seen).sum();
        let epoch_equiv = samples as f64 / built.train_size as f64;
        let metrics = built.evaluate_params(&merged)?;
        let versions: Vec<f64> = built
            .runtimes
            .iter()
            .map(|rt| rt.steps_done as f64)
            .collect();
        trace.push(RoundRecord {
            round,
            time_secs: now,
            epoch_equiv,
            train_loss: round_loss as f32,
            test_accuracy: metrics.accuracy,
            selected: Vec::new(),
            versions,
        });
        if epoch_equiv >= opts.epochs_total || round >= opts.max_rounds {
            break;
        }
    }
    trace.set_comm(&stats);
    Ok(trace)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_opts() -> SimOptions {
        let mut o = SimOptions::quick(&[2.0, 2.0, 1.0, 1.0]);
        o.epochs_total = 4.0;
        o
    }

    #[test]
    fn centralized_trains() {
        let trace = run_centralized_fedavg(
            &Workload::quick("mlp", 1),
            &BaselineConfig::default(),
            &quick_opts(),
        )
        .unwrap();
        assert!(!trace.records.is_empty());
        assert!(trace.records.last().unwrap().epoch_equiv >= 4.0);
    }

    #[test]
    fn server_moves_two_m_k_per_round() {
        let trace = run_centralized_fedavg(
            &Workload::quick("mlp", 2),
            &BaselineConfig::default(),
            &quick_opts(),
        )
        .unwrap();
        let rounds = trace.records.len() as u64;
        let expected = 2 * trace.model_bytes * 4 * rounds; // 2·M·K·rounds
        assert_eq!(
            trace.comm.server_bytes, expected,
            "the §II-B formula must hold exactly"
        );
    }

    #[test]
    fn each_device_moves_two_m_per_round() {
        let trace = run_centralized_fedavg(
            &Workload::quick("mlp", 3),
            &BaselineConfig::default(),
            &quick_opts(),
        )
        .unwrap();
        let rounds = trace.records.len() as u64;
        for &b in &trace.comm.device_bytes {
            assert_eq!(b, 2 * trace.model_bytes * rounds);
        }
    }
}
