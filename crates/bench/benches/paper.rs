//! Criterion benchmarks mirroring the paper's experiments at CI scale:
//! one group per table/figure, each timing a full (quick-profile)
//! simulated training run of the schemes involved. The report-scale
//! numbers for EXPERIMENTS.md come from the `src/bin/` harnesses; these
//! benches keep the experiment paths exercised and timed on every
//! `cargo bench`.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use hadfl::driver::{run_hadfl, SimOptions};
use hadfl::group::run_hadfl_grouped;
use hadfl::schedule::{distributed_timeline, fedavg_timeline, hadfl_timeline};
use hadfl::select::SelectionPolicy;
use hadfl::{HadflConfig, Workload};
use hadfl_baselines::{
    run_centralized_fedavg, run_decentralized_fedavg, run_distributed, BaselineConfig,
};

fn quick_opts() -> SimOptions {
    let mut opts = SimOptions::quick(&[3.0, 3.0, 1.0, 1.0]);
    opts.epochs_total = 3.0;
    opts
}

fn bench_table1(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1_time_to_accuracy");
    group.sample_size(10);
    group.bench_function("hadfl", |b| {
        let config = HadflConfig::builder().seed(1).build().expect("valid");
        b.iter(|| {
            let run = run_hadfl(&Workload::quick("mlp", 1), &config, &quick_opts()).expect("runs");
            black_box(run.trace.time_to_max_accuracy())
        });
    });
    group.bench_function("decentralized_fedavg", |b| {
        b.iter(|| {
            let t = run_decentralized_fedavg(
                &Workload::quick("mlp", 1),
                &BaselineConfig::default(),
                &quick_opts(),
            )
            .expect("runs");
            black_box(t.time_to_max_accuracy())
        });
    });
    group.bench_function("distributed_training", |b| {
        b.iter(|| {
            let t = run_distributed(
                &Workload::quick("mlp", 1),
                &BaselineConfig::default(),
                &quick_opts(),
            )
            .expect("runs");
            black_box(t.time_to_max_accuracy())
        });
    });
    group.finish();
}

fn bench_fig3_curves(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig3_curves");
    group.sample_size(10);
    group.bench_function("hadfl_trace_extraction", |b| {
        let config = HadflConfig::builder().seed(2).build().expect("valid");
        let run = run_hadfl(&Workload::quick("mlp", 2), &config, &quick_opts()).expect("runs");
        b.iter(|| {
            black_box((
                run.trace.loss_vs_epoch(),
                run.trace.accuracy_vs_epoch(),
                run.trace.accuracy_vs_time(),
            ))
        });
    });
    group.finish();
}

fn bench_worst_case(c: &mut Criterion) {
    let mut group = c.benchmark_group("worst_case_upper_bound");
    group.sample_size(10);
    group.bench_function("worst_two_selection", |b| {
        let config = HadflConfig::builder()
            .selection(SelectionPolicy::WorstCase)
            .seed(3)
            .build()
            .expect("valid");
        b.iter(|| {
            let run = run_hadfl(&Workload::quick("mlp", 3), &config, &quick_opts()).expect("runs");
            black_box(run.trace.max_accuracy())
        });
    });
    group.finish();
}

fn bench_fig1_schedules(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig1_schedule");
    let powers = [4.0, 2.0, 1.0];
    group.bench_function("distributed", |b| {
        b.iter(|| black_box(distributed_timeline(&powers, 0.04, 0.002, 16).expect("valid")));
    });
    group.bench_function("fedavg", |b| {
        b.iter(|| black_box(fedavg_timeline(&powers, 0.04, 0.002, 8, 2).expect("valid")));
    });
    group.bench_function("hadfl", |b| {
        b.iter(|| {
            black_box(hadfl_timeline(&powers, 0.04, 0.002, &[8, 8, 8], 1, 2).expect("valid"))
        });
    });
    group.finish();
}

fn bench_comm_volume(c: &mut Criterion) {
    let mut group = c.benchmark_group("comm_volume");
    group.sample_size(10);
    group.bench_function("centralized_fedavg_server_bytes", |b| {
        b.iter(|| {
            let t = run_centralized_fedavg(
                &Workload::quick("mlp", 4),
                &BaselineConfig::default(),
                &quick_opts(),
            )
            .expect("runs");
            black_box(t.comm.server_bytes)
        });
    });
    group.bench_function("hadfl_server_bytes", |b| {
        let config = HadflConfig::builder().seed(4).build().expect("valid");
        b.iter(|| {
            let run = run_hadfl(&Workload::quick("mlp", 4), &config, &quick_opts()).expect("runs");
            black_box(run.trace.comm.server_bytes)
        });
    });
    group.finish();
}

fn bench_grouped(c: &mut Criterion) {
    let mut group = c.benchmark_group("grouped_hierarchy");
    group.sample_size(10);
    group.bench_function("two_groups_of_two", |b| {
        let config = HadflConfig::builder()
            .group_size(Some(2))
            .inter_group_every(2)
            .seed(5)
            .build()
            .expect("valid");
        let mut opts = SimOptions::quick(&[2.0, 1.0, 2.0, 1.0]);
        opts.epochs_total = 3.0;
        b.iter(|| {
            let run = run_hadfl_grouped(&Workload::quick("mlp", 5), &config, &opts).expect("runs");
            black_box(run.trace.max_accuracy())
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_table1,
    bench_fig3_curves,
    bench_worst_case,
    bench_fig1_schedules,
    bench_comm_volume,
    bench_grouped
);
criterion_main!(benches);
