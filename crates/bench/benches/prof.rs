//! Overhead bounds for the `hadfl-prof` compute profiler.
//!
//! Three claims, each a recorded row in BENCH_9.json:
//!
//! - `prof/scope_disabled` — a scope on a thread with no profiler
//!   installed is one thread-local `Cell` read: a few ns, the price
//!   every production kernel pays for carrying instrumentation;
//! - `prof/scope_enabled_pair` — a full enter/exit against an
//!   installed profiler (two clock reads plus the lane bookkeeping);
//! - `prof_parity/matmul_64x128x64_{plain,profiled}` — the same
//!   kernel with and without a profiler installed. The pair must stay
//!   within noise of each other: instrumented kernels may not get
//!   slower when nobody is measuring them, and only clock-read slower
//!   when somebody is.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use hadfl_prof::{Profiler, WallTime};
use hadfl_tensor::{matmul, SeedStream, Tensor};

fn bench_scope(c: &mut Criterion) {
    let mut group = c.benchmark_group("prof");
    group.bench_function("scope_disabled", |bch| {
        bch.iter(|| black_box(hadfl_prof::scope("bench_op")));
    });
    let prof = Profiler::new(0, WallTime::shared());
    let guard = prof.install();
    group.bench_function("scope_enabled_pair", |bch| {
        bch.iter(|| black_box(hadfl_prof::scope("bench_op")));
    });
    drop(guard);
    group.finish();
}

fn bench_parity(c: &mut Criterion) {
    let mut group = c.benchmark_group("prof_parity");
    let mut rng = SeedStream::new(1);
    let mut a = Tensor::zeros(&[64, 128]);
    let mut b = Tensor::zeros(&[128, 64]);
    for v in a.as_mut_slice() {
        *v = rng.normal();
    }
    for v in b.as_mut_slice() {
        *v = rng.normal();
    }
    group.bench_function("matmul_64x128x64_plain", |bch| {
        bch.iter(|| black_box(matmul(&a, &b).expect("shapes agree")));
    });
    let prof = Profiler::new(0, WallTime::shared());
    let guard = prof.install();
    group.bench_function("matmul_64x128x64_profiled", |bch| {
        bch.iter(|| black_box(matmul(&a, &b).expect("shapes agree")));
    });
    drop(guard);
    group.finish();
}

criterion_group!(benches, bench_scope, bench_parity);
criterion_main!(benches);
