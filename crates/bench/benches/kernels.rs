//! Microbenchmarks of the substrate kernels the simulation spends its
//! time in: tensor matmul / im2col, the CNN forward+backward step, and
//! the per-round HADFL algorithm pieces (selection, prediction,
//! aggregation, hyperperiod).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use hadfl::aggregate::{average_params, ring_allreduce_cost};
use hadfl::predict::VersionPredictor;
use hadfl::select::{select_devices, SelectionPolicy, VersionScale};
use hadfl::strategy::hyperperiod;
use hadfl::topology::Ring;
use hadfl_nn::{models, Dataset, LrSchedule, Sgd, SyntheticSpec};
use hadfl_simnet::{DeviceId, LinkModel};
use hadfl_tensor::{im2col, matmul, Conv2dGeometry, SeedStream, Tensor};

/// Machine-speed yardstick for `hadfl-bench-diff`: a fixed
/// single-threaded fused-multiply-add sweep over 1M floats, immune to
/// thread count, allocator state, and every knob the other benches
/// turn. Two BENCH_*.json files taken on different machines (or a
/// loaded vs idle one) are comparable after dividing each op by its
/// file's calibration row.
fn bench_calibration(c: &mut Criterion) {
    let mut group = c.benchmark_group("calibration");
    let mut buf = vec![1.0f32; 1_000_000];
    group.bench_function("serial_fma_1m", |bch| {
        bch.iter(|| {
            let mut acc = 0.0f32;
            for v in buf.iter_mut() {
                *v = v.mul_add(0.999_999_9, 1.0e-9);
                acc += *v;
            }
            black_box(acc)
        });
    });
    group.finish();
}

fn bench_tensor(c: &mut Criterion) {
    let mut group = c.benchmark_group("tensor");
    let mut rng = SeedStream::new(1);
    let mut a = Tensor::zeros(&[64, 128]);
    let mut b = Tensor::zeros(&[128, 64]);
    for v in a.as_mut_slice() {
        *v = rng.normal();
    }
    for v in b.as_mut_slice() {
        *v = rng.normal();
    }
    group.bench_function("matmul_64x128x64", |bch| {
        bch.iter(|| black_box(matmul(&a, &b).expect("shapes agree")));
    });
    let geom = Conv2dGeometry::new(3, 16, 16, 3, 1, 1).expect("valid");
    let img = Tensor::zeros(&[8, 3, 16, 16]);
    group.bench_function("im2col_8x3x16x16_k3", |bch| {
        bch.iter(|| black_box(im2col(&img, &geom).expect("shapes agree")));
    });
    group.finish();
}

fn bench_train_step(c: &mut Criterion) {
    let mut group = c.benchmark_group("train_step");
    group.sample_size(20);
    let spec = SyntheticSpec::cifar_like();
    let ds = Dataset::synthetic_cifar(64, &spec, 1).expect("valid spec");
    let (x, y) = ds.batch(&(0..64).collect::<Vec<_>>()).expect("in range");
    for name in ["mlp", "resnet18_lite", "vgg16_lite"] {
        let mut model =
            models::by_name(name, &spec.sample_dims(), spec.classes, 1).expect("zoo model");
        let mut opt = Sgd::new(LrSchedule::constant(0.01), 0.9);
        group.bench_function(name, |bch| {
            bch.iter(|| black_box(model.train_step(&x, &y, &mut opt).expect("trains")));
        });
    }
    group.finish();
}

fn bench_algorithms(c: &mut Criterion) {
    let mut group = c.benchmark_group("hadfl_round_pieces");
    let devices: Vec<DeviceId> = (0..32).map(DeviceId).collect();
    let versions: Vec<f64> = (0..32).map(|i| 100.0 + 7.0 * i as f64).collect();
    group.bench_function("select_32_choose_8", |bch| {
        let mut rng = SeedStream::new(2);
        bch.iter(|| {
            black_box(
                select_devices(
                    SelectionPolicy::VersionGaussian,
                    &devices,
                    &versions,
                    8,
                    VersionScale::ZScore,
                    &mut rng,
                )
                .expect("valid inputs"),
            )
        });
    });
    group.bench_function("ring_random_8", |bch| {
        let mut rng = SeedStream::new(3);
        let members: Vec<DeviceId> = (0..8).map(DeviceId).collect();
        bch.iter(|| black_box(Ring::random(&members, &mut rng).expect("≥2 members")));
    });
    group.bench_function("predictor_observe_forecast", |bch| {
        let mut p = VersionPredictor::new(0.5, 100.0).expect("valid alpha");
        let mut v = 0.0;
        bch.iter(|| {
            v += 100.0;
            p.observe(v);
            black_box(p.forecast(1))
        });
    });
    group.bench_function("hyperperiod_8_devices", |bch| {
        let times: Vec<f64> = (1..=8).map(|i| 0.012 * i as f64).collect();
        bch.iter(|| black_box(hyperperiod(&times).expect("valid times")));
    });
    let params: Vec<Vec<f32>> = (0..4).map(|i| vec![i as f32; 100_000]).collect();
    group.bench_function("average_params_4x100k", |bch| {
        let refs: Vec<&[f32]> = params.iter().map(Vec::as_slice).collect();
        bch.iter(|| black_box(average_params(&refs).expect("equal lengths")));
    });
    group.bench_function("ring_allreduce_cost", |bch| {
        let link = LinkModel::pcie3_x8();
        bch.iter(|| black_box(ring_allreduce_cost(8, 44_600_000, &link).expect("n > 0")));
    });
    group.finish();
}

/// Thread-scaling sweep of the hot kernels: the same workload at 1, 2,
/// and 4 worker threads via the `hadfl-par` override (`_tN` suffix).
/// `tools/bench.sh` parses these names into the current `BENCH_*.json`
/// artifact, so the speedup at each thread count is a recorded fact
/// rather than a claim. `with_threads` respects the measured work-size
/// cutoffs, exactly as production dispatch does — a row where the
/// autotuner declines to parallelize records the serial time, which is
/// the honest number. On a single-core host the t2/t4 rows measure
/// dispatch overhead, not speedup — the JSON keeps whatever the
/// hardware gives.
fn bench_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("scaling");
    group.sample_size(20);
    const THREADS: [usize; 3] = [1, 2, 4];

    let mut rng = SeedStream::new(1);
    let mut a = Tensor::zeros(&[64, 128]);
    let mut b = Tensor::zeros(&[128, 64]);
    for v in a.as_mut_slice() {
        *v = rng.normal();
    }
    for v in b.as_mut_slice() {
        *v = rng.normal();
    }
    for t in THREADS {
        group.bench_function(&format!("matmul_64x128x64_t{t}"), |bch| {
            bch.iter(|| {
                hadfl_par::with_threads(t, || black_box(matmul(&a, &b).expect("shapes agree")))
            });
        });
    }

    let spec = SyntheticSpec::cifar_like();
    let ds = Dataset::synthetic_cifar(64, &spec, 1).expect("valid spec");
    let (x, y) = ds.batch(&(0..64).collect::<Vec<_>>()).expect("in range");
    for t in THREADS {
        let mut model =
            models::by_name("resnet18_lite", &spec.sample_dims(), spec.classes, 1).expect("zoo");
        let mut opt = Sgd::new(LrSchedule::constant(0.01), 0.9);
        group.bench_function(&format!("train_step_cnn_t{t}"), |bch| {
            bch.iter(|| {
                hadfl_par::with_threads(t, || {
                    black_box(model.train_step(&x, &y, &mut opt).expect("trains"))
                })
            });
        });
    }

    let params: Vec<Vec<f32>> = (0..4).map(|i| vec![i as f32; 100_000]).collect();
    let refs: Vec<&[f32]> = params.iter().map(Vec::as_slice).collect();
    for t in THREADS {
        group.bench_function(&format!("average_params_4x100k_t{t}"), |bch| {
            bch.iter(|| {
                hadfl_par::with_threads(t, || {
                    black_box(average_params(&refs).expect("equal lengths"))
                })
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_calibration,
    bench_tensor,
    bench_train_step,
    bench_algorithms,
    bench_scaling
);
criterion_main!(benches);
