//! Microbenchmarks of the wire codec the socket transport frames every
//! message through: encode and decode across the size spectrum the
//! protocol actually produces, from 5-byte heartbeats to full parameter
//! payloads.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use hadfl::wire::Message;

/// The quick-profile MLP moves ~26k parameters; the experiment-scale
/// models move hundreds of thousands. Cover both ends.
const PARAM_SIZES: [usize; 3] = [1_024, 26_506, 262_144];

fn param_vec(n: usize) -> Vec<f32> {
    (0..n).map(|i| (i as f32).sin()).collect()
}

fn bench_encode(c: &mut Criterion) {
    let mut group = c.benchmark_group("wire_encode");
    group.bench_function("heartbeat", |b| {
        let msg = Message::Heartbeat { from: 3 };
        b.iter(|| black_box(black_box(&msg).encode()));
    });
    group.bench_function("round_plan_16", |b| {
        let msg = Message::RoundPlan {
            round: 7,
            ring: (0..16).collect(),
            broadcaster: 5,
            unselected: (16..32).collect(),
        };
        b.iter(|| black_box(black_box(&msg).encode()));
    });
    for n in PARAM_SIZES {
        let msg = Message::ParamSync {
            round: 9,
            params: param_vec(n),
        };
        group.bench_function(&format!("param_sync_{n}"), |b| {
            b.iter(|| black_box(black_box(&msg).encode()));
        });
    }
    group.finish();
}

fn bench_decode(c: &mut Criterion) {
    let mut group = c.benchmark_group("wire_decode");
    group.bench_function("heartbeat", |b| {
        let frame = Message::Heartbeat { from: 3 }.encode();
        b.iter(|| black_box(Message::decode(black_box(&frame)).expect("valid frame")));
    });
    group.bench_function("round_plan_16", |b| {
        let frame = Message::RoundPlan {
            round: 7,
            ring: (0..16).collect(),
            broadcaster: 5,
            unselected: (16..32).collect(),
        }
        .encode();
        b.iter(|| black_box(Message::decode(black_box(&frame)).expect("valid frame")));
    });
    for n in PARAM_SIZES {
        let frame = Message::ParamSync {
            round: 9,
            params: param_vec(n),
        }
        .encode();
        group.bench_function(&format!("param_sync_{n}"), |b| {
            b.iter(|| black_box(Message::decode(black_box(&frame)).expect("valid frame")));
        });
    }
    group.finish();
}

fn bench_roundtrip(c: &mut Criterion) {
    let mut group = c.benchmark_group("wire_roundtrip");
    // The dominant per-round flow: one accumulate hop of the ring.
    let msg = Message::ParamAccum {
        round: 1,
        hops: 2,
        params: param_vec(26_506),
    };
    group.bench_function("param_accum_26506", |b| {
        b.iter(|| {
            let frame = black_box(&msg).encode();
            black_box(Message::decode(&frame).expect("valid frame"))
        });
    });
    group.finish();
}

/// The pre-bulk-codec baselines: a `ParamSync`-shaped payload encoded
/// and decoded one `f32` at a time, exactly as `wire.rs` used to. The
/// `wire_encode`/`wire_decode` groups above measure the bulk codec on
/// the same sizes, so the before/after improvement is directly
/// readable from one bench run (and from `BENCH_5.json`).
fn bench_per_float_reference(c: &mut Criterion) {
    use bytes::{Buf, BufMut, BytesMut};

    let mut group = c.benchmark_group("wire_reference");
    for n in PARAM_SIZES {
        let params = param_vec(n);
        group.bench_function(&format!("encode_per_float_{n}"), |b| {
            b.iter(|| {
                let params = black_box(&params);
                let mut buf = BytesMut::with_capacity(1 + 4 + 4 + 4 * params.len());
                buf.put_u8(1);
                buf.put_u32_le(9);
                buf.put_u32_le(params.len() as u32);
                for &p in params {
                    buf.put_f32_le(p);
                }
                black_box(buf.freeze())
            });
        });
        let frame = Message::ParamSync { round: 9, params }.encode();
        group.bench_function(&format!("decode_per_float_{n}"), |b| {
            b.iter(|| {
                let mut cur: &[u8] = black_box(&frame);
                let _tag = cur.get_u8();
                let round = cur.get_u32_le();
                let len = cur.get_u32_le() as usize;
                let mut params = Vec::with_capacity(len);
                for _ in 0..len {
                    params.push(cur.get_f32_le());
                }
                black_box(Message::ParamSync { round, params })
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_encode,
    bench_decode,
    bench_roundtrip,
    bench_per_float_reference
);
criterion_main!(benches);
