//! The zero-cost-when-disabled claim, measured: `run_partial_sync`'s
//! hot ring loop with (a) the plain untelemetered entry point, (b) an
//! explicitly disabled handle through the instrumented entry point
//! (one `Option` check per emission site), and (c) a live handle
//! feeding an in-memory ring buffer.
//!
//! (a) and (b) must be indistinguishable — that is the baseline this
//! bench records. (c) bounds the cost of turning telemetry on.
//!
//! Run: `cargo bench -p hadfl-bench --bench telemetry`

use std::collections::BTreeMap;

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use hadfl::gossip::{run_partial_sync, run_partial_sync_instrumented};
use hadfl::topology::Ring;
use hadfl_simnet::{DeviceId, FaultPlan, LinkModel, NetStats, VirtualTime};
use hadfl_telemetry::{RingBufferSink, Telemetry};

const RING_SIZE: usize = 8;
const PARAMS: usize = 26_506; // quick-profile MLP parameter count
const MODEL_BYTES: u64 = 4 * PARAMS as u64;

fn fixture() -> (Ring, BTreeMap<DeviceId, Vec<f32>>) {
    let ring = Ring::from_order((0..RING_SIZE).map(DeviceId).collect()).unwrap();
    let params = (0..RING_SIZE)
        .map(|i| (DeviceId(i), vec![i as f32 * 0.25; PARAMS]))
        .collect();
    (ring, params)
}

fn bench_partial_sync(c: &mut Criterion) {
    let (ring, params) = fixture();
    let faults = FaultPlan::none();
    let link = LinkModel::default();
    let mut group = c.benchmark_group("partial_sync_telemetry");

    group.bench_function("plain", |b| {
        b.iter(|| {
            let mut stats = NetStats::new();
            black_box(
                run_partial_sync(
                    black_box(&ring),
                    black_box(&params),
                    None,
                    &faults,
                    VirtualTime::from_secs(1.0),
                    &link,
                    0.05,
                    MODEL_BYTES,
                    MODEL_BYTES,
                    &mut stats,
                )
                .expect("healthy ring"),
            )
        });
    });

    group.bench_function("disabled_handle", |b| {
        let tel = Telemetry::disabled();
        b.iter(|| {
            let mut stats = NetStats::new();
            black_box(
                run_partial_sync_instrumented(
                    black_box(&ring),
                    black_box(&params),
                    None,
                    &faults,
                    VirtualTime::from_secs(1.0),
                    &link,
                    0.05,
                    MODEL_BYTES,
                    MODEL_BYTES,
                    &mut stats,
                    &tel,
                    1,
                )
                .expect("healthy ring"),
            )
        });
    });

    group.bench_function("ring_buffer_sink", |b| {
        let sink = RingBufferSink::new(4096);
        let tel = Telemetry::new(0, vec![Box::new(sink)]);
        b.iter(|| {
            let mut stats = NetStats::new();
            black_box(
                run_partial_sync_instrumented(
                    black_box(&ring),
                    black_box(&params),
                    None,
                    &faults,
                    VirtualTime::from_secs(1.0),
                    &link,
                    0.05,
                    MODEL_BYTES,
                    MODEL_BYTES,
                    &mut stats,
                    &tel,
                    1,
                )
                .expect("healthy ring"),
            )
        });
    });

    group.finish();
}

criterion_group!(benches, bench_partial_sync);
criterion_main!(benches);
