//! The zero-cost-when-disabled claim, measured: `run_partial_sync`'s
//! hot ring loop with (a) the plain untelemetered entry point, (b) an
//! explicitly disabled handle through the instrumented entry point
//! (one `Option` check per emission site), and (c) a live handle
//! feeding an in-memory ring buffer.
//!
//! (a) and (b) must be indistinguishable — that is the baseline this
//! bench records. (c) bounds the cost of turning telemetry on.
//!
//! Run: `cargo bench -p hadfl-bench --bench telemetry`

use std::collections::BTreeMap;

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use hadfl::gossip::{run_partial_sync, run_partial_sync_instrumented};
use hadfl::topology::Ring;
use hadfl_simnet::{DeviceId, FaultPlan, LinkModel, NetStats, VirtualTime};
use hadfl_telemetry::{RingBufferSink, Telemetry};

const RING_SIZE: usize = 8;
const PARAMS: usize = 26_506; // quick-profile MLP parameter count
const MODEL_BYTES: u64 = 4 * PARAMS as u64;

fn fixture() -> (Ring, BTreeMap<DeviceId, Vec<f32>>) {
    let ring = Ring::from_order((0..RING_SIZE).map(DeviceId).collect()).unwrap();
    let params = (0..RING_SIZE)
        .map(|i| (DeviceId(i), vec![i as f32 * 0.25; PARAMS]))
        .collect();
    (ring, params)
}

fn bench_partial_sync(c: &mut Criterion) {
    let (ring, params) = fixture();
    let faults = FaultPlan::none();
    let link = LinkModel::default();
    let mut group = c.benchmark_group("partial_sync_telemetry");

    group.bench_function("plain", |b| {
        b.iter(|| {
            let mut stats = NetStats::new();
            black_box(
                run_partial_sync(
                    black_box(&ring),
                    black_box(&params),
                    None,
                    &faults,
                    VirtualTime::from_secs(1.0),
                    &link,
                    0.05,
                    MODEL_BYTES,
                    MODEL_BYTES,
                    &mut stats,
                )
                .expect("healthy ring"),
            )
        });
    });

    group.bench_function("disabled_handle", |b| {
        let tel = Telemetry::disabled();
        b.iter(|| {
            let mut stats = NetStats::new();
            black_box(
                run_partial_sync_instrumented(
                    black_box(&ring),
                    black_box(&params),
                    None,
                    &faults,
                    VirtualTime::from_secs(1.0),
                    &link,
                    0.05,
                    MODEL_BYTES,
                    MODEL_BYTES,
                    &mut stats,
                    &tel,
                    1,
                )
                .expect("healthy ring"),
            )
        });
    });

    group.bench_function("ring_buffer_sink", |b| {
        let sink = RingBufferSink::new(4096);
        let tel = Telemetry::new(0, vec![Box::new(sink)]);
        b.iter(|| {
            let mut stats = NetStats::new();
            black_box(
                run_partial_sync_instrumented(
                    black_box(&ring),
                    black_box(&params),
                    None,
                    &faults,
                    VirtualTime::from_secs(1.0),
                    &link,
                    0.05,
                    MODEL_BYTES,
                    MODEL_BYTES,
                    &mut stats,
                    &tel,
                    1,
                )
                .expect("healthy ring"),
            )
        });
    });

    group.finish();
}

/// The causal-tracing additions must hold PR 3's parity bar: a
/// disabled handle makes span emission a branch-and-return (same as
/// every other emission site), and a live handle's per-span cost is
/// bounded by one event clone into the sink — for the metrics sink,
/// plus one histogram observation on `SpanEnd`.
fn bench_span_emission(c: &mut Criterion) {
    use std::time::Duration;

    use hadfl_telemetry::{EventKind, MetricsRegistry, MetricsSink};

    let emit_pair = |tel: &Telemetry, i: u64| {
        let t = Duration::from_micros(i * 10);
        tel.emit(
            t,
            EventKind::SpanStart {
                span: i,
                parent: 0,
                name: "ring_reduce".to_string(),
                round: 1,
                device: 0,
            },
        );
        tel.emit(
            t + Duration::from_micros(5),
            EventKind::SpanEnd {
                span: i,
                round: 1,
                device: 0,
            },
        );
    };

    let mut group = c.benchmark_group("span_emission");
    group.bench_function("disabled_handle", |b| {
        let tel = Telemetry::disabled();
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            emit_pair(black_box(&tel), black_box(i));
        });
    });
    group.bench_function("ring_buffer_sink", |b| {
        let tel = Telemetry::new(0, vec![Box::new(RingBufferSink::new(4096))]);
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            emit_pair(black_box(&tel), black_box(i));
        });
    });
    group.bench_function("metrics_sink", |b| {
        let registry = MetricsRegistry::new();
        let tel = Telemetry::new(0, vec![Box::new(MetricsSink::new(registry))]);
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            emit_pair(black_box(&tel), black_box(i));
        });
    });
    group.bench_function("ship_queue_sink", |b| {
        use hadfl_telemetry::ship::{BatchShipper, ShipBatch};
        use hadfl_telemetry::{ShipOptions, ShipSink};

        /// Discards batches: the bench measures the hot-path cost of
        /// `ShipQueue::offer` + the channel hop, not a transport.
        struct NullShipper;
        impl BatchShipper for NullShipper {
            fn ship(&mut self, _batch: &ShipBatch) -> Result<(), String> {
                Ok(())
            }
        }
        let sink = ShipSink::new(0, ShipOptions::default(), Box::new(NullShipper));
        let tel = Telemetry::new(0, vec![Box::new(sink)]);
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            emit_pair(black_box(&tel), black_box(i));
        });
    });
    group.finish();
}

criterion_group!(benches, bench_partial_sync, bench_span_emission);
criterion_main!(benches);
