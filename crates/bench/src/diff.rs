//! Noise-normalized comparison of two `BENCH_*.json` files
//! (`hadfl-bench-diff`).
//!
//! Raw ns/iter numbers from two bench runs are not comparable: the
//! runs may have happened on different machines, under different
//! load, or with a different CPU-frequency governor. Every BENCH file
//! therefore carries a `calibration/serial_fma_1m` row — a fixed
//! single-threaded workload whose speed depends only on the machine —
//! and the diff divides it out: the baseline's numbers are rescaled by
//! `new_calibration / old_calibration` before comparing. Files
//! predating the calibration row (BENCH_8 and earlier) fall back to
//! the median of per-op ratios over shared ops, which assumes *most*
//! ops did not change — exactly the regression-hunting situation.
//!
//! After normalization each shared op is classified:
//!
//! - **noise** — |relative delta| within the threshold (default 25%),
//!   or both sides under the 50 ns floor where a single mispredicted
//!   branch swamps the signal;
//! - **regressed** — new time above the normalized old beyond the
//!   threshold;
//! - **improved** — the mirror image.
//!
//! Ops present in only one file are listed as added/removed, never
//! classified.

use serde::Deserialize;

/// One record of a `BENCH_*.json` file, as written by `tools/bench.sh`.
#[derive(Debug, Clone, Deserialize)]
pub struct BenchRow {
    pub op: String,
    #[serde(default)]
    pub threads: u64,
    pub ns_per_iter: f64,
}

/// The calibration row's op name.
pub const CALIBRATION_OP: &str = "calibration/serial_fma_1m";

/// Default relative-delta threshold below which a change is noise.
pub const DEFAULT_THRESHOLD: f64 = 0.25;

/// Default floor (ns) under which both sides are too fast to compare.
pub const DEFAULT_MIN_NS: f64 = 50.0;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    Regressed,
    Improved,
    Noise,
}

impl Verdict {
    pub fn label(self) -> &'static str {
        match self {
            Verdict::Regressed => "regressed",
            Verdict::Improved => "improved",
            Verdict::Noise => "noise",
        }
    }
}

/// One compared op: baseline ns (already rescaled), new ns, relative
/// delta, verdict.
#[derive(Debug, Clone)]
pub struct OpDelta {
    pub op: String,
    pub old_ns: f64,
    pub new_ns: f64,
    pub delta: f64,
    pub verdict: Verdict,
}

/// The full comparison.
#[derive(Debug, Clone)]
pub struct DiffReport {
    /// How the baseline was rescaled (`new_cal / old_cal`), and where
    /// the ratio came from.
    pub ratio: f64,
    pub ratio_source: RatioSource,
    /// Shared ops, most-regressed first.
    pub deltas: Vec<OpDelta>,
    /// Ops only in the new file.
    pub added: Vec<String>,
    /// Ops only in the baseline.
    pub removed: Vec<String>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RatioSource {
    /// Both files carried the calibration row.
    Calibration,
    /// Median of per-op ratios over shared ops (baseline predates the
    /// calibration row).
    MedianFallback,
    /// No shared ops at all; raw comparison.
    None,
}

impl DiffReport {
    pub fn regressed(&self) -> impl Iterator<Item = &OpDelta> {
        self.deltas
            .iter()
            .filter(|d| d.verdict == Verdict::Regressed)
    }

    /// Renders the human-readable table, most-regressed ops first.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let source = match self.ratio_source {
            RatioSource::Calibration => "calibration rows",
            RatioSource::MedianFallback => "median-of-ratios fallback (no calibration row)",
            RatioSource::None => "none (no shared ops)",
        };
        out.push_str(&format!(
            "normalization ratio {:.4} from {source}\n",
            self.ratio
        ));
        let counts = |v: Verdict| self.deltas.iter().filter(|d| d.verdict == v).count();
        out.push_str(&format!(
            "{} shared op(s): {} regressed, {} improved, {} noise; {} added, {} removed\n",
            self.deltas.len(),
            counts(Verdict::Regressed),
            counts(Verdict::Improved),
            counts(Verdict::Noise),
            self.added.len(),
            self.removed.len(),
        ));
        for d in &self.deltas {
            out.push_str(&format!(
                "  {verdict:<9} {op:<40} {old:>12.1} -> {new:>12.1} ns/iter ({delta:+.1}%)\n",
                verdict = d.verdict.label(),
                op = d.op,
                old = d.old_ns,
                new = d.new_ns,
                delta = d.delta * 100.0,
            ));
        }
        for op in &self.added {
            out.push_str(&format!("  added     {op}\n"));
        }
        for op in &self.removed {
            out.push_str(&format!("  removed   {op}\n"));
        }
        out
    }
}

fn median(mut values: Vec<f64>) -> Option<f64> {
    if values.is_empty() {
        return None;
    }
    values.sort_by(|a, b| a.partial_cmp(b).expect("bench ratios are finite"));
    Some(values[values.len() / 2])
}

/// Compares `new` against the `old` baseline. `threshold` is the
/// relative delta below which a change is noise; `min_ns` the floor
/// under which both sides are noise regardless.
pub fn diff(old: &[BenchRow], new: &[BenchRow], threshold: f64, min_ns: f64) -> DiffReport {
    use std::collections::BTreeMap;
    let index = |rows: &[BenchRow]| -> BTreeMap<String, f64> {
        rows.iter().map(|r| (r.op.clone(), r.ns_per_iter)).collect()
    };
    let old_by_op = index(old);
    let new_by_op = index(new);

    let (ratio, ratio_source) = match (old_by_op.get(CALIBRATION_OP), new_by_op.get(CALIBRATION_OP))
    {
        (Some(&o), Some(&n)) if o > 0.0 => (n / o, RatioSource::Calibration),
        _ => {
            let ratios: Vec<f64> = old_by_op
                .iter()
                .filter_map(|(op, &o)| {
                    let n = *new_by_op.get(op)?;
                    (o > 0.0).then_some(n / o)
                })
                .collect();
            match median(ratios) {
                Some(m) => (m, RatioSource::MedianFallback),
                None => (1.0, RatioSource::None),
            }
        }
    };

    let mut deltas = Vec::new();
    for (op, &old_raw) in &old_by_op {
        let Some(&new_ns) = new_by_op.get(op) else {
            continue;
        };
        if op == CALIBRATION_OP {
            // The yardstick itself is definitionally unchanged.
            continue;
        }
        let old_ns = old_raw * ratio;
        let delta = if old_ns > 0.0 {
            (new_ns - old_ns) / old_ns
        } else {
            0.0
        };
        let verdict = if old_ns.max(new_ns) < min_ns || delta.abs() <= threshold {
            Verdict::Noise
        } else if delta > 0.0 {
            Verdict::Regressed
        } else {
            Verdict::Improved
        };
        deltas.push(OpDelta {
            op: op.clone(),
            old_ns,
            new_ns,
            delta,
            verdict,
        });
    }
    deltas.sort_by(|a, b| b.delta.partial_cmp(&a.delta).expect("finite deltas"));

    let added = new_by_op
        .keys()
        .filter(|op| !old_by_op.contains_key(*op))
        .cloned()
        .collect();
    let removed = old_by_op
        .keys()
        .filter(|op| !new_by_op.contains_key(*op))
        .cloned()
        .collect();
    DiffReport {
        ratio,
        ratio_source,
        deltas,
        added,
        removed,
    }
}

/// Parses one `BENCH_*.json` file's contents.
pub fn parse_bench(text: &str) -> Result<Vec<BenchRow>, String> {
    serde_json::from_str(text).map_err(|e| format!("bad bench json: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(op: &str, ns: f64) -> BenchRow {
        BenchRow {
            op: op.to_string(),
            threads: 1,
            ns_per_iter: ns,
        }
    }

    #[test]
    fn calibration_ratio_rescales_the_baseline() {
        // The new machine is 2x slower (calibration 100 -> 200); an op
        // that also doubled is unchanged after normalization.
        let old = vec![row(CALIBRATION_OP, 100.0), row("tensor/matmul", 1000.0)];
        let new = vec![row(CALIBRATION_OP, 200.0), row("tensor/matmul", 2000.0)];
        let report = diff(&old, &new, DEFAULT_THRESHOLD, DEFAULT_MIN_NS);
        assert_eq!(report.ratio_source, RatioSource::Calibration);
        assert_eq!(report.ratio, 2.0);
        assert_eq!(report.deltas.len(), 1, "calibration row is not compared");
        assert_eq!(report.deltas[0].verdict, Verdict::Noise);
        assert_eq!(report.deltas[0].delta, 0.0);
    }

    #[test]
    fn real_regression_survives_normalization() {
        let old = vec![row(CALIBRATION_OP, 100.0), row("op/a", 1000.0)];
        let new = vec![row(CALIBRATION_OP, 100.0), row("op/a", 1500.0)];
        let report = diff(&old, &new, DEFAULT_THRESHOLD, DEFAULT_MIN_NS);
        assert_eq!(report.deltas[0].verdict, Verdict::Regressed);
        assert!((report.deltas[0].delta - 0.5).abs() < 1e-9);
        assert_eq!(report.regressed().count(), 1);
    }

    #[test]
    fn median_fallback_when_baseline_lacks_calibration() {
        // Three of four ops scaled by 1.5 (machine slowdown); one
        // genuinely regressed 4x. The median ratio recovers 1.5 and
        // only the real regression is flagged.
        let old = vec![
            row("op/a", 100.0),
            row("op/b", 200.0),
            row("op/c", 400.0),
            row("op/d", 100.0),
        ];
        let new = vec![
            row("op/a", 150.0),
            row("op/b", 300.0),
            row("op/c", 600.0),
            row("op/d", 600.0),
        ];
        let report = diff(&old, &new, DEFAULT_THRESHOLD, DEFAULT_MIN_NS);
        assert_eq!(report.ratio_source, RatioSource::MedianFallback);
        assert_eq!(report.ratio, 1.5);
        let regressed: Vec<&str> = report.regressed().map(|d| d.op.as_str()).collect();
        assert_eq!(regressed, vec!["op/d"]);
    }

    #[test]
    fn sub_floor_ops_are_never_regressions() {
        // 4 ns -> 40 ns is a 10x "regression" that means nothing at
        // this scale (one cache miss).
        let old = vec![row(CALIBRATION_OP, 100.0), row("prof/scope_disabled", 4.0)];
        let new = vec![row(CALIBRATION_OP, 100.0), row("prof/scope_disabled", 40.0)];
        let report = diff(&old, &new, DEFAULT_THRESHOLD, DEFAULT_MIN_NS);
        assert_eq!(report.deltas[0].verdict, Verdict::Noise);
    }

    #[test]
    fn added_and_removed_ops_are_listed_not_classified() {
        let old = vec![row("op/gone", 100.0), row("op/kept", 100.0)];
        let new = vec![row("op/kept", 100.0), row("op/new", 100.0)];
        let report = diff(&old, &new, DEFAULT_THRESHOLD, DEFAULT_MIN_NS);
        assert_eq!(report.added, vec!["op/new".to_string()]);
        assert_eq!(report.removed, vec!["op/gone".to_string()]);
        assert_eq!(report.deltas.len(), 1);
        let text = report.render();
        assert!(text.contains("added     op/new"), "{text}");
        assert!(text.contains("removed   op/gone"), "{text}");
    }

    #[test]
    fn parses_the_bench_json_shape() {
        let rows = parse_bench(
            r#"[
  {"op": "tensor/matmul_64x128x64", "threads": 1, "ns_per_iter": 154684.9},
  {"op": "scaling/matmul_64x128x64_t4", "threads": 4, "ns_per_iter": 60000.0}
]"#,
        )
        .unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[1].threads, 4);
        assert!(parse_bench("not json").is_err());
    }
}
