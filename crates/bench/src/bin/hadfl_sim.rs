//! `hadfl_sim` — general-purpose command-line runner for the simulator:
//! pick a scheme, model, heterogeneity distribution, and budget, get the
//! trace summary (and optionally the full trace as JSON).
//!
//! ```text
//! Usage: hadfl_sim [OPTIONS]
//!   --scheme  hadfl|fedavg|distributed|centralized   (default hadfl)
//!   --model   mlp|resnet18_lite|vgg16_lite           (default mlp)
//!   --powers  comma list, e.g. 3,3,1,1               (default 3,3,1,1)
//!   --epochs  epoch budget                           (default 10)
//!   --np      devices per partial sync (hadfl)       (default 2)
//!   --tsync   sync period in hyperperiods (hadfl)    (default 1)
//!   --seed    master seed                            (default 0)
//!   --json    also print the full trace as JSON
//! ```
//!
//! Example: `cargo run --release -p hadfl-bench --bin hadfl_sim -- \
//!           --scheme hadfl --model resnet18_lite --powers 4,2,2,1 --epochs 12`

use hadfl::driver::{run_hadfl, SimOptions};
use hadfl::{HadflConfig, Workload};
use hadfl_baselines::{
    run_centralized_fedavg, run_decentralized_fedavg, run_distributed, BaselineConfig,
};

#[derive(Debug)]
struct Args {
    scheme: String,
    model: String,
    powers: Vec<f64>,
    epochs: f64,
    np: usize,
    tsync: u32,
    seed: u64,
    json: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        scheme: "hadfl".into(),
        model: "mlp".into(),
        powers: vec![3.0, 3.0, 1.0, 1.0],
        epochs: 10.0,
        np: 2,
        tsync: 1,
        seed: 0,
        json: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("missing value for {name}"));
        match flag.as_str() {
            "--scheme" => args.scheme = value("--scheme")?,
            "--model" => args.model = value("--model")?,
            "--powers" => {
                args.powers = value("--powers")?
                    .split(',')
                    .map(|s| {
                        s.trim()
                            .parse::<f64>()
                            .map_err(|e| format!("bad power '{s}': {e}"))
                    })
                    .collect::<Result<_, _>>()?;
            }
            "--epochs" => {
                args.epochs = value("--epochs")?
                    .parse()
                    .map_err(|e| format!("bad epochs: {e}"))?;
            }
            "--np" => args.np = value("--np")?.parse().map_err(|e| format!("bad np: {e}"))?,
            "--tsync" => {
                args.tsync = value("--tsync")?
                    .parse()
                    .map_err(|e| format!("bad tsync: {e}"))?;
            }
            "--seed" => {
                args.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("bad seed: {e}"))?;
            }
            "--json" => args.json = true,
            "--help" | "-h" => return Err("see the module docs at the top of hadfl_sim.rs".into()),
            other => return Err(format!("unknown flag '{other}'")),
        }
    }
    Ok(args)
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("hadfl_sim: {msg}");
            std::process::exit(2);
        }
    };
    let mut workload = Workload::quick(&args.model, args.seed);
    workload.seed = args.seed;
    let mut opts = SimOptions::quick(&args.powers);
    opts.epochs_total = args.epochs;
    opts.base_step_secs = 0.010 * args.powers.iter().copied().fold(1.0, f64::max);

    let trace = match args.scheme.as_str() {
        "hadfl" => {
            let config = HadflConfig::builder()
                .num_selected(args.np)
                .t_sync(args.tsync)
                .seed(args.seed)
                .build()
                .unwrap_or_else(|e| {
                    eprintln!("hadfl_sim: {e}");
                    std::process::exit(2);
                });
            match run_hadfl(&workload, &config, &opts) {
                Ok(run) => {
                    println!(
                        "strategy: hyperperiod {:.0} ms, local steps {:?}",
                        run.strategy.hyperperiod_secs * 1e3,
                        run.strategy.local_steps
                    );
                    run.trace
                }
                Err(e) => {
                    eprintln!("hadfl_sim: {e}");
                    std::process::exit(1);
                }
            }
        }
        "fedavg" => run_decentralized_fedavg(&workload, &BaselineConfig::default(), &opts)
            .unwrap_or_else(|e| {
                eprintln!("hadfl_sim: {e}");
                std::process::exit(1);
            }),
        "distributed" => run_distributed(&workload, &BaselineConfig::default(), &opts)
            .unwrap_or_else(|e| {
                eprintln!("hadfl_sim: {e}");
                std::process::exit(1);
            }),
        "centralized" => run_centralized_fedavg(&workload, &BaselineConfig::default(), &opts)
            .unwrap_or_else(|e| {
                eprintln!("hadfl_sim: {e}");
                std::process::exit(1);
            }),
        other => {
            eprintln!("hadfl_sim: unknown scheme '{other}' (hadfl|fedavg|distributed|centralized)");
            std::process::exit(2);
        }
    };

    println!(
        "{} on {:?}: {} rounds, {:.1} epochs",
        trace.scheme,
        args.powers,
        trace.records.len(),
        trace.last().map_or(0.0, |r| r.epoch_equiv)
    );
    if let Some((acc, secs)) = trace.time_to_max_accuracy() {
        println!(
            "max test accuracy {:.2}% first reached at {secs:.3} virtual s",
            acc * 100.0
        );
    }
    println!(
        "communication: server {} B, busiest device {} B, total {} B over {} messages",
        trace.comm.server_bytes,
        trace.comm.max_device_bytes(),
        trace.comm.total_bytes,
        trace.comm.messages
    );
    if args.json {
        println!(
            "{}",
            serde_json::to_string_pretty(&trace).expect("trace serializes")
        );
    }
}
