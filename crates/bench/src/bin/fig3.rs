//! Regenerates **Fig. 3**: the six panels of the paper's evaluation —
//! training loss vs epoch (a, b), test accuracy vs epoch (d, e), and
//! test accuracy vs time (c, f), for ResNet-18-lite and VGG-16-lite on
//! both heterogeneity distributions and all three schemes.
//!
//! Reuses the trace cache written by the `table1` binary when present.
//!
//! Run: `cargo run --release -p hadfl-bench --bin fig3 -- --profile paper`

use hadfl_bench::{ascii_curve, run_scheme_cached, write_csv, Profile, Scheme};

fn main() {
    let profile = Profile::from_args();
    let panels = [
        (
            "fig3_ab_loss_vs_epoch.csv",
            "panel a/b: training loss vs epoch",
        ),
        (
            "fig3_de_acc_vs_epoch.csv",
            "panel d/e: test accuracy vs epoch",
        ),
        (
            "fig3_cf_acc_vs_time.csv",
            "panel c/f: test accuracy vs time",
        ),
    ];
    let mut loss_rows = Vec::new();
    let mut acc_epoch_rows = Vec::new();
    let mut acc_time_rows = Vec::new();

    for model in ["resnet18_lite", "vgg16_lite"] {
        for powers in [&[3.0, 3.0, 1.0, 1.0][..], &[4.0, 2.0, 2.0, 1.0][..]] {
            let dist: String = powers.iter().map(|p| format!("{p:.0}")).collect();
            for scheme in Scheme::paper_trio() {
                // Seed 100 = the first table1 repeat, so the cache hits.
                let trace = run_scheme_cached(scheme, model, powers, profile, 100)
                    .expect("experiment run failed");
                println!(
                    "{model} [{dist}] {:<22}: {} rounds, final acc {:.3}  acc/time {}",
                    scheme.label(),
                    trace.records.len(),
                    trace.last().map_or(0.0, |r| r.test_accuracy),
                    ascii_curve(&trace.accuracy_vs_time(), 0.0, 1.0, 40)
                );
                for r in &trace.records {
                    let key = format!("{model},{dist},{}", scheme.label());
                    loss_rows.push(format!("{key},{:.4},{:.5}", r.epoch_equiv, r.train_loss));
                    acc_epoch_rows
                        .push(format!("{key},{:.4},{:.5}", r.epoch_equiv, r.test_accuracy));
                    acc_time_rows.push(format!("{key},{:.4},{:.5}", r.time_secs, r.test_accuracy));
                }
            }
        }
    }
    write_csv(
        panels[0].0,
        "model,powers,scheme,epoch,train_loss",
        &loss_rows,
    );
    write_csv(
        panels[1].0,
        "model,powers,scheme,epoch,test_accuracy",
        &acc_epoch_rows,
    );
    write_csv(
        panels[2].0,
        "model,powers,scheme,time_secs,test_accuracy",
        &acc_time_rows,
    );
    for (file, desc) in panels {
        println!("{desc} → target/experiments/{file}");
    }
}
