//! Ablation **AB1** (design choice §III-C): the probability-based
//! selection of Eq. (8) against three alternatives — always taking the
//! newest devices (`TopVersions`), uniform random selection, and the
//! worst case. The paper argues Eq. (8) keeps stragglers contributing
//! without letting them dominate; this ablation quantifies that.
//!
//! Run: `cargo run --release -p hadfl-bench --bin ablation_selection -- --profile paper`

use hadfl::driver::run_hadfl;
use hadfl::select::SelectionPolicy;
use hadfl::HadflConfig;
use hadfl_bench::{experiment_opts, write_csv, Profile};

fn main() {
    let profile = Profile::from_args();
    let powers = [4.0, 2.0, 2.0, 1.0];
    let model = "resnet18_lite";
    let policies = [
        ("version_gaussian", SelectionPolicy::VersionGaussian),
        ("top_versions", SelectionPolicy::TopVersions),
        ("uniform_random", SelectionPolicy::UniformRandom),
        ("worst_case", SelectionPolicy::WorstCase),
    ];
    println!("Selection-policy ablation — {model}, powers {powers:?}");
    println!(
        "{:<18} {:>9} {:>14} {:>14}",
        "policy", "max acc", "time to max", "final acc"
    );
    let mut rows = Vec::new();
    for (name, policy) in policies {
        let workload = profile.workload(model, 400);
        let opts = experiment_opts(model, &powers, profile);
        let config = HadflConfig::builder()
            .num_selected(2)
            .selection(policy)
            .seed(400)
            .build()
            .expect("valid config");
        let run = run_hadfl(&workload, &config, &opts).expect("run failed");
        let (acc, time) = run.trace.time_to_max_accuracy().unwrap_or((0.0, 0.0));
        let final_acc = run.trace.last().map_or(0.0, |r| r.test_accuracy);
        println!(
            "{name:<18} {:>8.1}% {:>13.2}s {:>13.1}%",
            acc * 100.0,
            time,
            final_acc * 100.0
        );
        rows.push(format!("{name},{acc:.4},{time:.3},{final_acc:.4}"));
    }
    write_csv(
        "ablation_selection.csv",
        "policy,max_accuracy,time_to_max_secs,final_accuracy",
        &rows,
    );
}
