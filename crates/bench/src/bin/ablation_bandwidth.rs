//! Ablation **AB5** (the paper's future work: "heterogeneous network
//! bandwidth"): gossip-ring cost on a two-cluster network under three
//! ring-ordering policies — worst-case alternating, random, and the
//! greedy bandwidth-aware order.
//!
//! Pure cost-model study (no training): the per-round token-pass
//! synchronization time of an `N_p = 4` ring as the inter-cluster
//! uplink degrades. (Under the *pipelined* scatter-gather cost every
//! ordering pays the same unavoidable bottleneck; the sequential
//! token-pass scheme of `hadfl::exec` pays every link, so ordering
//! matters.)
//!
//! Run: `cargo run --release -p hadfl-bench --bin ablation_bandwidth`

use hadfl::aggregate::ring_token_pass_cost;
use hadfl::topology::Ring;
use hadfl_bench::write_csv;
use hadfl_simnet::{BandwidthMatrix, DeviceId};
use hadfl_tensor::SeedStream;

fn main() {
    let model_bytes = 44_600_000u64; // ResNet-18 wire size
    let members: Vec<DeviceId> = (0..4).map(DeviceId).collect();
    println!("Ring-order policies on a 2+2 cluster network (M = 44.6 MB)");
    println!(
        "{:>14} {:>16} {:>14} {:>14}",
        "inter (MB/s)", "alternating (s)", "random (s)", "greedy (s)"
    );
    let mut rows = Vec::new();
    for inter_mbs in [1000.0f64, 100.0, 10.0, 1.0] {
        let net = BandwidthMatrix::two_clusters(4, 2, 100e-6, 8e9, inter_mbs * 1e6)
            .expect("valid network");
        let alternating =
            Ring::from_order(vec![DeviceId(0), DeviceId(2), DeviceId(1), DeviceId(3)])
                .expect("valid ring");
        let alt_cost =
            ring_token_pass_cost(alternating.members(), model_bytes, &net).expect("cost");
        // Random: average over seeds.
        let mut rand_total = 0.0;
        const SEEDS: u64 = 16;
        for seed in 0..SEEDS {
            let ring = Ring::random(&members, &mut SeedStream::new(seed)).expect("ring");
            rand_total += ring_token_pass_cost(ring.members(), model_bytes, &net)
                .expect("cost")
                .secs;
        }
        let greedy = Ring::greedy_bandwidth(&members, &net, &mut SeedStream::new(1)).expect("ring");
        let greedy_cost = ring_token_pass_cost(greedy.members(), model_bytes, &net).expect("cost");
        println!(
            "{:>14.1} {:>16.3} {:>14.3} {:>14.3}",
            inter_mbs,
            alt_cost.secs,
            rand_total / SEEDS as f64,
            greedy_cost.secs
        );
        rows.push(format!(
            "{inter_mbs},{:.5},{:.5},{:.5}",
            alt_cost.secs,
            rand_total / SEEDS as f64,
            greedy_cost.secs
        ));
    }
    write_csv(
        "ablation_bandwidth.csv",
        "inter_mbs,alternating_secs,random_secs,greedy_secs",
        &rows,
    );
    println!(
        "\nA 2+2 ring must cross the uplink exactly twice; the alternating order \
         crosses four times, so the greedy bandwidth-aware order halves the slow-link \
         traffic as the uplink degrades."
    );
}
