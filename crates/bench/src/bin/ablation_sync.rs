//! Ablation **AB3**: sweep of the framework's two scheduling knobs —
//! the synchronization period `T_sync` (in hyperperiods) and the partial
//! set size `N_p`. The paper notes that "by allowing more GPUs to
//! participate in partial synchronization, the training effect can be
//! better"; this sweep quantifies both knobs.
//!
//! Run: `cargo run --release -p hadfl-bench --bin ablation_sync -- --profile paper`

use hadfl::driver::run_hadfl;
use hadfl::HadflConfig;
use hadfl_bench::{experiment_opts, write_csv, Profile};

fn main() {
    let profile = Profile::from_args();
    let powers = [4.0, 2.0, 2.0, 1.0];
    let model = "resnet18_lite";
    println!("T_sync × N_p sweep — {model}, powers {powers:?}");
    println!(
        "{:>7} {:>5} {:>9} {:>14} {:>11}",
        "t_sync", "n_p", "max acc", "time to max", "rounds"
    );
    let mut rows = Vec::new();
    for t_sync in [1u32, 2, 4] {
        for n_p in [2usize, 3, 4] {
            let workload = profile.workload(model, 500);
            let opts = experiment_opts(model, &powers, profile);
            let config = HadflConfig::builder()
                .t_sync(t_sync)
                .num_selected(n_p)
                .seed(500)
                .build()
                .expect("valid config");
            let run = run_hadfl(&workload, &config, &opts).expect("run failed");
            let (acc, time) = run.trace.time_to_max_accuracy().unwrap_or((0.0, 0.0));
            println!(
                "{t_sync:>7} {n_p:>5} {:>8.1}% {:>13.2}s {:>11}",
                acc * 100.0,
                time,
                run.trace.records.len()
            );
            rows.push(format!(
                "{t_sync},{n_p},{acc:.4},{time:.3},{}",
                run.trace.records.len()
            ));
        }
    }
    write_csv(
        "ablation_sync.csv",
        "t_sync,n_p,max_accuracy,time_to_max_secs,rounds",
        &rows,
    );
}
