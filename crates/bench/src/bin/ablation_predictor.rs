//! Ablation **AB2** (design choice §III-B): how well the double
//! exponential smoothing version predictor (Eq. 7) tracks drifting
//! device speeds, against a last-value predictor and a static warm-up
//! estimate, under compute jitter.
//!
//! This is a pure prediction-accuracy study: we replay jittered version
//! series (a speed *ramp* and a speed *step*, the disturbances §III-B
//! motivates) and measure mean absolute forecast error one round ahead.
//!
//! Run: `cargo run --release -p hadfl-bench --bin ablation_predictor`

use hadfl::predict::VersionPredictor;
use hadfl_bench::write_csv;
use hadfl_tensor::SeedStream;

/// A synthetic cumulative-version series with jitter.
fn series(kind: &str, rounds: usize, rng: &mut SeedStream) -> Vec<f64> {
    let mut out = Vec::with_capacity(rounds);
    let mut v = 0.0;
    for j in 0..rounds {
        let rate = match kind {
            // steady 100 steps/round
            "steady" => 100.0,
            // linear slowdown: 100 → 40 steps/round
            "ramp" => 100.0 - 60.0 * j as f64 / rounds as f64,
            // abrupt halving mid-run (background load arrives)
            "step" => {
                if j < rounds / 2 {
                    100.0
                } else {
                    50.0
                }
            }
            _ => unreachable!("unknown series kind"),
        };
        v += rate * (1.0 + 0.1 * f64::from(rng.normal()));
        out.push(v);
    }
    out
}

fn main() {
    let rounds = 40;
    let mut rows = Vec::new();
    println!("Version-predictor ablation — mean absolute 1-ahead forecast error");
    println!(
        "{:<8} {:>22} {:>14} {:>16}",
        "series", "double-exp (Eq. 7)", "last-value", "static warm-up"
    );
    for kind in ["steady", "ramp", "step"] {
        let mut rng = SeedStream::new(42);
        let vs = series(kind, rounds, &mut rng);
        let prior = vs[0];

        let mut dexp = VersionPredictor::new(0.5, prior).expect("valid alpha");
        let (mut err_dexp, mut err_last, mut err_static) = (0.0, 0.0, 0.0);
        let mut last = prior;
        let mut n = 0.0;
        for (j, &v) in vs.iter().enumerate() {
            if j >= 2 {
                err_dexp += (dexp.forecast(1) - v).abs();
                // last-value forecast of a cumulative series: repeat the
                // last increment.
                let last_inc = last - vs[j - 2];
                err_last += ((last + last_inc) - v).abs();
                // static: assume the warm-up rate forever.
                err_static += (prior * (j + 1) as f64 - v).abs();
                n += 1.0;
            }
            dexp.observe(v);
            last = v;
        }
        println!(
            "{kind:<8} {:>22.1} {:>14.1} {:>16.1}",
            err_dexp / n,
            err_last / n,
            err_static / n
        );
        rows.push(format!(
            "{kind},{:.3},{:.3},{:.3}",
            err_dexp / n,
            err_last / n,
            err_static / n
        ));
    }
    write_csv(
        "ablation_predictor.csv",
        "series,double_exp_mae,last_value_mae,static_mae",
        &rows,
    );
    println!("\nEq. 7 tracks drifting speeds that a static warm-up estimate cannot.");
}
