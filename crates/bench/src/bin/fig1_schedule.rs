//! Regenerates **Fig. 1**: the schedule comparison between distributed
//! training, FedAvg, and HADFL on three devices with computing power
//! ratio 4:2:1 — per-device timelines, utilization, and local steps per
//! hyperperiod.
//!
//! Run: `cargo run --release -p hadfl-bench --bin fig1_schedule`

use hadfl::schedule::{distributed_timeline, fedavg_timeline, hadfl_timeline, Activity, Timeline};
use hadfl_bench::write_csv;

fn print_timeline(tl: &Timeline, step_times: &[f64]) {
    println!("\n=== {} ===", tl.scheme);
    let util = tl.utilization();
    let steps = tl.steps_per_device(step_times);
    for (i, segs) in tl.devices.iter().enumerate() {
        let bar: String = segs
            .iter()
            .map(|s| {
                let width = ((s.duration() / tl.makespan()) * 60.0).round() as usize;
                let ch = match s.activity {
                    Activity::Compute => '█',
                    Activity::Idle => '·',
                    Activity::Sync => '|',
                };
                ch.to_string().repeat(width.max(1))
            })
            .collect();
        println!(
            "dev{i} (steps {:>3}, util {:>5.1}%) {bar}",
            steps[i],
            util[i] * 100.0
        );
    }
    println!("makespan {:.3}s   (█ compute · idle | sync)", tl.makespan());
}

fn main() {
    // Fig. 1's setting: 3 devices, power ratio 4:2:1. The fastest runs a
    // 10 ms step; one "epoch" is 8 batches.
    let powers = [4.0, 2.0, 1.0];
    let base_step = 0.010 * 4.0; // fastest at native speed
    let sync = 0.002;
    let batches = [8usize, 8, 8];
    let step_times: Vec<f64> = powers.iter().map(|p| base_step / p).collect();

    let dist = distributed_timeline(&powers, base_step, sync, 8).expect("valid");
    let fedavg = fedavg_timeline(&powers, base_step, sync, 8, 1).expect("valid");
    let hadfl = hadfl_timeline(&powers, base_step, sync, &batches, 1, 1).expect("valid");

    for tl in [&dist, &fedavg, &hadfl] {
        print_timeline(tl, &step_times);
    }

    let mut rows = Vec::new();
    for tl in [&dist, &fedavg, &hadfl] {
        let util = tl.utilization();
        let steps = tl.steps_per_device(&step_times);
        for i in 0..tl.devices.len() {
            rows.push(format!("{},{i},{:.4},{}", tl.scheme, util[i], steps[i]));
        }
    }
    write_csv(
        "fig1_schedule.csv",
        "scheme,device,utilization,local_steps",
        &rows,
    );
    println!(
        "\nHADFL keeps every device busy: the 4:2:1 ratio shows up as 4:2:1 local steps \
         in the same window instead of 3x idle time on the fast device."
    );
}
