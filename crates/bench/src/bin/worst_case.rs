//! Regenerates the paper's **"upper bound of accuracy loss"**
//! experiment: force the partial synchronization to always select the
//! two devices with the *worst* computing power (heterogeneity
//! `[3,3,1,1]`) and compare the resulting accuracy against normal HADFL —
//! the paper reports 86% vs 90% on ResNet-18 and 76% vs 86% on VGG-16,
//! plus the vanishing probability of this happening by chance.
//!
//! Run: `cargo run --release -p hadfl-bench --bin worst_case -- --profile paper`

use hadfl::driver::{run_hadfl, SimOptions};
use hadfl::select::SelectionPolicy;
use hadfl::HadflConfig;
use hadfl_bench::{experiment_opts, write_csv, Profile};

fn main() {
    let profile = Profile::from_args();
    let powers = [3.0, 3.0, 1.0, 1.0];
    let mut rows = Vec::new();
    println!("Upper bound of accuracy loss — worst-two selection vs normal HADFL, [3,3,1,1]");
    for model in ["resnet18_lite", "vgg16_lite"] {
        let mut results = Vec::new();
        for (name, policy) in [
            ("hadfl", SelectionPolicy::VersionGaussian),
            ("worst_case", SelectionPolicy::WorstCase),
        ] {
            let workload = profile.workload(model, 300);
            let opts: SimOptions = experiment_opts(model, &powers, profile);
            let config = HadflConfig::builder()
                .num_selected(2)
                .selection(policy)
                .seed(300)
                .build()
                .expect("valid config");
            let run = run_hadfl(&workload, &config, &opts).expect("run failed");
            let acc = run.trace.max_accuracy();
            println!("  {model:<16} {name:<12} max accuracy {:.1}%", acc * 100.0);
            rows.push(format!("{model},{name},{acc:.4}"));
            results.push(acc);
        }
        let (normal, worst) = (results[0], results[1]);
        println!(
            "  {model:<16} accuracy loss bounded: worst-case {:.1}% ≤ normal {:.1}% (gap {:.1} pts)",
            worst * 100.0,
            normal * 100.0,
            (normal - worst) * 100.0
        );
    }
    // The paper's closing argument: the probability of the worst case
    // arising by chance is (1/8 × 1/8)^(epochs/T_sync) → ~0.
    let per_round = (1.0f64 / 8.0) * (1.0 / 8.0);
    let rounds = 20u32;
    println!(
        "probability of sampling the worst pair every round for {rounds} rounds: {:.3e}",
        per_round.powi(rounds as i32)
    );
    write_csv("worst_case.csv", "model,policy,max_accuracy", &rows);
}
