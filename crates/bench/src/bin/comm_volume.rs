//! Regenerates the paper's **communication-volume analysis** (§II-B and
//! §III-D): centralized FedAvg pushes `2·M·K` bytes through the server
//! every aggregation round, while decentralized schemes (including
//! HADFL) move the same per-device volume peer-to-peer with *zero* model
//! bytes through any central point — and HADFL's per-device total stays
//! `2·K·M`-comparable, "the same as FL", as §III-D claims.
//!
//! Run: `cargo run --release -p hadfl-bench --bin comm_volume`

use hadfl::driver::{run_hadfl, SimOptions};
use hadfl::{HadflConfig, Workload};
use hadfl_baselines::{run_centralized_fedavg, BaselineConfig};
use hadfl_bench::write_csv;

fn main() {
    let powers = [3.0, 3.0, 1.0, 1.0];
    let workload = Workload::quick("mlp", 700);
    let mut opts = SimOptions::quick(&powers);
    opts.epochs_total = 12.0;

    let central = run_centralized_fedavg(&workload, &BaselineConfig::default(), &opts)
        .expect("centralized run failed");
    let config = HadflConfig::builder()
        .num_selected(2)
        .seed(700)
        .build()
        .expect("valid");
    let hadfl = run_hadfl(&workload, &config, &opts).expect("hadfl run failed");

    let m = central.model_bytes;
    let k = central.devices as u64;
    let central_rounds = central.records.len() as u64;
    let hadfl_rounds = hadfl.trace.records.len() as u64;

    println!("communication volume (model size M = {m} bytes, K = {k} devices)\n");
    println!(
        "{:<24} {:>8} {:>16} {:>16} {:>16}",
        "scheme", "rounds", "server bytes", "max device", "total"
    );
    println!(
        "{:<24} {:>8} {:>16} {:>16} {:>16}",
        "centralized_fedavg",
        central_rounds,
        central.comm.server_bytes,
        central.comm.max_device_bytes(),
        central.comm.total_bytes
    );
    println!(
        "{:<24} {:>8} {:>16} {:>16} {:>16}",
        "hadfl (train phase)",
        hadfl_rounds,
        hadfl.trace.comm.server_bytes,
        hadfl.trace.comm.max_device_bytes(),
        hadfl.trace.comm.total_bytes
    );

    // §II-B: the server carries 2·M·K per round in centralized FL.
    assert_eq!(central.comm.server_bytes, 2 * m * k * central_rounds);
    // HADFL: no model traffic through any central point during training
    // (control-plane messages only, ≪ M).
    assert!(hadfl.trace.comm.server_bytes < m);

    let central_dev_per_round =
        central.comm.max_device_bytes() as f64 / central_rounds as f64 / m as f64;
    let hadfl_dev_per_round =
        hadfl.trace.comm.max_device_bytes() as f64 / hadfl_rounds as f64 / m as f64;
    println!(
        "\nper-device per-round model transfers: centralized {central_dev_per_round:.2}·M, \
         hadfl {hadfl_dev_per_round:.2}·M (§III-D: device volume comparable, server removed)"
    );

    write_csv(
        "comm_volume.csv",
        "scheme,rounds,server_bytes,max_device_bytes,total_bytes,model_bytes",
        &[
            format!(
                "centralized_fedavg,{central_rounds},{},{},{},{m}",
                central.comm.server_bytes,
                central.comm.max_device_bytes(),
                central.comm.total_bytes
            ),
            format!(
                "hadfl,{hadfl_rounds},{},{},{},{m}",
                hadfl.trace.comm.server_bytes,
                hadfl.trace.comm.max_device_bytes(),
                hadfl.trace.comm.total_bytes
            ),
        ],
    );
}
