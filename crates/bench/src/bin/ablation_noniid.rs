//! Ablation **AB4** (the paper's future work: "optimize … taking into
//! account data distribution"): HADFL under non-IID (Dirichlet) shards,
//! with and without the Eq. (2) `n_k/N` sample-weighted aggregation,
//! against the IID baseline.
//!
//! Run: `cargo run --release -p hadfl-bench --bin ablation_noniid -- --profile paper`

use hadfl::driver::run_hadfl;
use hadfl::workload::ShardKind;
use hadfl::HadflConfig;
use hadfl_bench::{experiment_opts, write_csv, Profile};

fn main() {
    let profile = Profile::from_args();
    let powers = [3.0, 3.0, 1.0, 1.0];
    let model = "resnet18_lite";
    let cases: [(&str, ShardKind, bool); 4] = [
        ("iid_uniform", ShardKind::Iid, false),
        (
            "dirichlet0.3_uniform",
            ShardKind::Dirichlet { alpha: 0.3 },
            false,
        ),
        (
            "dirichlet0.3_weighted",
            ShardKind::Dirichlet { alpha: 0.3 },
            true,
        ),
        (
            "dirichlet1.0_uniform",
            ShardKind::Dirichlet { alpha: 1.0 },
            false,
        ),
    ];
    println!("Non-IID ablation — {model}, powers {powers:?}");
    println!("{:<24} {:>9} {:>14}", "case", "max acc", "final acc");
    let mut rows = Vec::new();
    for (name, shard, weighted) in cases {
        let mut workload = profile.workload(model, 600);
        workload.shard = shard;
        let opts = experiment_opts(model, &powers, profile);
        let config = HadflConfig::builder()
            .num_selected(2)
            .weight_by_samples(weighted)
            .seed(600)
            .build()
            .expect("valid config");
        let run = run_hadfl(&workload, &config, &opts).expect("run failed");
        let max_acc = run.trace.max_accuracy();
        let final_acc = run.trace.last().map_or(0.0, |r| r.test_accuracy);
        println!(
            "{name:<24} {:>8.1}% {:>13.1}%",
            max_acc * 100.0,
            final_acc * 100.0
        );
        rows.push(format!("{name},{max_acc:.4},{final_acc:.4}"));
    }
    write_csv(
        "ablation_noniid.csv",
        "case,max_accuracy,final_accuracy",
        &rows,
    );
    println!("\nLabel skew costs accuracy; Eq. (2) weighting recovers part of it.");
}
