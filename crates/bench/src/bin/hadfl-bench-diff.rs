//! Compares two `BENCH_*.json` files with noise normalization.
//!
//! ```text
//! hadfl-bench-diff BENCH_8.json BENCH_9.json
//! hadfl-bench-diff --threshold 0.25 --min-ns 50 --fail-on-regressed old.json new.json
//! ```
//!
//! The baseline's numbers are rescaled by the two files' calibration
//! rows (`calibration/serial_fma_1m`) before comparing, so a slower CI
//! runner does not read as a regression; baselines predating the
//! calibration row fall back to the median of per-op ratios. See
//! `hadfl_bench::diff` for the classification rules.
//!
//! Exit status: 0, or 1 with `--fail-on-regressed` when any op
//! regressed past the threshold (and on usage/io errors).

use std::process::ExitCode;

use hadfl_bench::diff::{diff, parse_bench, DEFAULT_MIN_NS, DEFAULT_THRESHOLD};

const USAGE: &str =
    "usage: hadfl-bench-diff [--threshold FRAC] [--min-ns NS] [--fail-on-regressed] \
     <old.json> <new.json>";

fn main() -> ExitCode {
    let mut threshold = DEFAULT_THRESHOLD;
    let mut min_ns = DEFAULT_MIN_NS;
    let mut fail_on_regressed = false;
    let mut paths: Vec<String> = Vec::new();
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--threshold" => {
                let Some(v) = argv.next().and_then(|v| v.parse().ok()) else {
                    eprintln!("--threshold needs a fraction\n{USAGE}");
                    return ExitCode::FAILURE;
                };
                threshold = v;
            }
            "--min-ns" => {
                let Some(v) = argv.next().and_then(|v| v.parse().ok()) else {
                    eprintln!("--min-ns needs a number\n{USAGE}");
                    return ExitCode::FAILURE;
                };
                min_ns = v;
            }
            "--fail-on-regressed" => fail_on_regressed = true,
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other if other.starts_with("--") => {
                eprintln!("unknown flag {other}\n{USAGE}");
                return ExitCode::FAILURE;
            }
            path => paths.push(path.to_string()),
        }
    }
    let [old_path, new_path] = paths.as_slice() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };

    let load = |path: &str| -> Result<_, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
        parse_bench(&text).map_err(|e| format!("{path}: {e}"))
    };
    let (old, new) = match (load(old_path), load(new_path)) {
        (Ok(old), Ok(new)) => (old, new),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("hadfl-bench-diff: {e}");
            return ExitCode::FAILURE;
        }
    };

    let report = diff(&old, &new, threshold, min_ns);
    print!("{}", report.render());
    let regressed = report.regressed().count();
    if fail_on_regressed && regressed > 0 {
        eprintln!("hadfl-bench-diff: {regressed} op(s) regressed past {threshold:.0e}");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
