//! Regenerates **Table I**: time required to reach the maximum test
//! accuracy, for {ResNet-18-lite, VGG-16-lite} × heterogeneity
//! {`[3,3,1,1]`, `[4,2,2,1]`} × {distributed training, decentralized-FedAvg,
//! HADFL}, averaged over repeats.
//!
//! Run: `cargo run --release -p hadfl-bench --bin table1 -- --profile paper`
//! (default profile is `quick` for a fast smoke pass). Also prints the
//! paper's headline speedups (HADFL vs each baseline).

use hadfl_bench::{mean_time_to_max_accuracy, run_scheme_cached, write_csv, Profile, Scheme};
use serde::Serialize;

#[derive(Debug, Serialize)]
struct Cell {
    model: String,
    powers: Vec<f64>,
    scheme: String,
    accuracy: f32,
    time_secs: f64,
}

fn main() {
    let profile = Profile::from_args();
    let models = ["resnet18_lite", "vgg16_lite"];
    let distributions: [&[f64]; 2] = [&[3.0, 3.0, 1.0, 1.0], &[4.0, 2.0, 2.0, 1.0]];
    let mut cells: Vec<Cell> = Vec::new();
    let mut rows = Vec::new();

    println!("Table I — time required to reach the maximum test accuracy");
    println!(
        "{:<22} {:<14} {:<24} {:>9} {:>12}",
        "model", "powers", "scheme", "max acc", "time (s)"
    );
    for model in models {
        for powers in distributions {
            for scheme in Scheme::paper_trio() {
                let traces: Vec<_> = (0..profile.repeats())
                    .map(|r| {
                        run_scheme_cached(scheme, model, powers, profile, 100 + r)
                            .expect("experiment run failed")
                    })
                    .collect();
                let (acc, time) = mean_time_to_max_accuracy(&traces);
                println!(
                    "{:<22} {:<14} {:<24} {:>8.1}% {:>11.2}s",
                    model,
                    format!("{powers:?}"),
                    scheme.label(),
                    acc * 100.0,
                    time
                );
                rows.push(format!(
                    "{model},{},{},{:.4},{:.3}",
                    powers
                        .iter()
                        .map(|p| p.to_string())
                        .collect::<Vec<_>>()
                        .join("|"),
                    scheme.label(),
                    acc,
                    time
                ));
                cells.push(Cell {
                    model: model.to_string(),
                    powers: powers.to_vec(),
                    scheme: scheme.label().to_string(),
                    accuracy: acc,
                    time_secs: time,
                });
            }
            // Paper-style speedup lines for this (model, distribution).
            let find = |s: Scheme| {
                cells
                    .iter()
                    .rev()
                    .find(|c| c.scheme == s.label())
                    .map(|c| c.time_secs)
                    .unwrap_or(f64::NAN)
            };
            let hadfl = find(Scheme::Hadfl);
            let dist = find(Scheme::DistributedTraining);
            let fedavg = find(Scheme::DecentralizedFedAvg);
            println!(
                "    → speedup over distributed {:.2}x, over decentralized-FedAvg {:.2}x",
                dist / hadfl,
                fedavg / hadfl
            );
        }
    }
    write_csv(
        "table1.csv",
        "model,powers,scheme,max_accuracy,time_to_max_secs",
        &rows,
    );
}
