//! Shared experiment harness for the HADFL reproduction benches.
//!
//! Every paper table/figure has a report binary in `src/bin/` built on
//! the helpers here: a scheme runner over a common [`Profile`], repeat
//! averaging, and CSV/JSON writers into `target/experiments/`.

// `!(x > 0)`-style guards are deliberate: unlike `x <= 0` they also
// reject NaN, which is exactly what the validators want.
#![allow(clippy::neg_cmp_op_on_partial_ord)]
pub mod diff;

use std::fs;
use std::path::{Path, PathBuf};

use hadfl::driver::{run_hadfl, SimOptions};
use hadfl::trace::Trace;
use hadfl::{HadflConfig, HadflError, Workload};
use hadfl_baselines::{
    run_centralized_fedavg, run_decentralized_fedavg, run_distributed, BaselineConfig,
};
use serde::Serialize;

/// The training schemes under comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scheme {
    /// The paper's contribution.
    Hadfl,
    /// Gossip FedAvg (synchronous, no server).
    DecentralizedFedAvg,
    /// Per-iteration ring all-reduce (PyTorch DDP style).
    DistributedTraining,
    /// Server-based FedAvg (communication-volume analysis only).
    CentralizedFedAvg,
}

impl Scheme {
    /// Harness label, matching the trace's `scheme` field.
    pub fn label(self) -> &'static str {
        match self {
            Scheme::Hadfl => "hadfl",
            Scheme::DecentralizedFedAvg => "decentralized_fedavg",
            Scheme::DistributedTraining => "distributed_training",
            Scheme::CentralizedFedAvg => "centralized_fedavg",
        }
    }

    /// The three schemes of Table I / Fig. 3.
    pub fn paper_trio() -> [Scheme; 3] {
        [
            Scheme::DistributedTraining,
            Scheme::DecentralizedFedAvg,
            Scheme::Hadfl,
        ]
    }
}

/// Experiment scale.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Profile {
    /// Seconds-per-run scale for CI and criterion benches: the tiny
    /// synthetic task and few epochs.
    Quick,
    /// The report scale used for EXPERIMENTS.md: the 16×16 synthetic
    /// CIFAR task, the paper's batch geometry, enough epochs for the
    /// accuracy curves to saturate.
    Paper,
}

impl Profile {
    /// Parses `--profile quick|paper` style arguments (`None` → Quick).
    pub fn from_args() -> Profile {
        let mut args = std::env::args();
        while let Some(a) = args.next() {
            if a == "--profile" {
                if let Some(v) = args.next() {
                    if v == "paper" {
                        return Profile::Paper;
                    }
                }
            }
        }
        Profile::Quick
    }

    /// The workload for a model under this profile.
    pub fn workload(self, model: &str, seed: u64) -> Workload {
        match self {
            Profile::Quick => Workload::quick(model, seed),
            Profile::Paper => {
                let mut w = Workload::experiment(model, seed);
                // Keep report runs tractable on one CPU: 2048 train
                // samples at 16×16 (512-sample shards) keep enough data
                // per device that heterogeneity-aware local runs do not
                // overfit their shard, while bounding minutes-per-run.
                w.train_size = 2048;
                w.test_size = 256;
                w
            }
        }
    }

    /// Total epoch budget for a model (VGG converges later, as in the
    /// paper).
    pub fn epochs(self, model: &str) -> f64 {
        match self {
            Profile::Quick => 6.0,
            Profile::Paper => {
                if model.starts_with("vgg") {
                    32.0
                } else {
                    24.0
                }
            }
        }
    }

    /// Number of repeated runs to average (the paper repeats 3×).
    pub fn repeats(self) -> u64 {
        match self {
            Profile::Quick => 1,
            Profile::Paper => 3,
        }
    }
}

/// Per-iteration compute time of the *fastest* device for a model, in
/// virtual seconds — calibrated to a V100 at batch 64 on CIFAR-scale
/// inputs (ResNet-18 ≈ 25 ms, VGG-16 ≈ 45 ms).
pub fn paper_step_secs(model: &str) -> f64 {
    if model.starts_with("vgg") {
        0.045
    } else {
        0.025
    }
}

/// The wire size of a model transfer, bytes — the paper's real model
/// sizes (ResNet-18 ≈ 44.6 MB, VGG-16 for CIFAR ≈ 60 MB), so simulated
/// communication costs keep the paper's comm-to-compute ratio even
/// though the lite models' actual parameter vectors are tiny.
pub fn paper_model_bytes(model: &str) -> u64 {
    if model.starts_with("vgg") {
        60_000_000
    } else {
        44_600_000
    }
}

/// Builds the simulation options the experiments share: the paper's
/// convention fixes the *fastest* device at native speed and slows the
/// others by the power ratio (`sleep()`-based heterogeneity), so the
/// base step is scaled by `max(powers)`.
pub fn experiment_opts(model: &str, powers: &[f64], profile: Profile) -> SimOptions {
    let mut opts = SimOptions::experiment(powers, profile.epochs(model));
    let max_power = powers.iter().copied().fold(1.0, f64::max);
    opts.base_step_secs = paper_step_secs(model) * max_power;
    opts.wire_model_bytes = Some(paper_model_bytes(model));
    opts
}

/// Runs one scheme on one heterogeneity distribution and returns its
/// trace.
///
/// # Errors
///
/// Propagates framework errors.
pub fn run_scheme(
    scheme: Scheme,
    model: &str,
    powers: &[f64],
    profile: Profile,
    seed: u64,
) -> Result<Trace, HadflError> {
    let workload = profile.workload(model, seed);
    let opts = experiment_opts(model, powers, profile);
    match scheme {
        Scheme::Hadfl => {
            let config = HadflConfig::builder().num_selected(2).seed(seed).build()?;
            Ok(run_hadfl(&workload, &config, &opts)?.trace)
        }
        Scheme::DecentralizedFedAvg => {
            run_decentralized_fedavg(&workload, &BaselineConfig::default(), &opts)
        }
        Scheme::DistributedTraining => {
            run_distributed(&workload, &BaselineConfig::default(), &opts)
        }
        Scheme::CentralizedFedAvg => {
            run_centralized_fedavg(&workload, &BaselineConfig::default(), &opts)
        }
    }
}

/// Like [`run_scheme`] but caches the resulting trace as JSON under
/// `target/experiments/traces/`, so figure harnesses reuse the table
/// harness's runs instead of re-simulating (~minutes each at the paper
/// profile).
///
/// # Errors
///
/// Propagates framework errors; a corrupt cache entry is recomputed.
pub fn run_scheme_cached(
    scheme: Scheme,
    model: &str,
    powers: &[f64],
    profile: Profile,
    seed: u64,
) -> Result<Trace, HadflError> {
    let dir = out_dir().join("traces");
    fs::create_dir_all(&dir).expect("create trace cache dir");
    let dist: String = powers
        .iter()
        .map(|p| format!("{p:.0}"))
        .collect::<Vec<_>>()
        .join("");
    let profile_tag = match profile {
        Profile::Quick => "quick",
        Profile::Paper => "paper",
    };
    let path = dir.join(format!(
        "{model}_{dist}_{}_{profile_tag}_{seed}.json",
        scheme.label()
    ));
    if let Ok(text) = fs::read_to_string(&path) {
        if let Ok(trace) = serde_json::from_str::<Trace>(&text) {
            return Ok(trace);
        }
    }
    let trace = run_scheme(scheme, model, powers, profile, seed)?;
    let json = serde_json::to_string(&trace).expect("serialize trace");
    fs::write(&path, json).expect("write trace cache");
    Ok(trace)
}

/// Table I's cell for a set of repeated runs: the mean max accuracy and
/// the mean time to first reach it.
pub fn mean_time_to_max_accuracy(traces: &[Trace]) -> (f32, f64) {
    let mut acc_sum = 0.0f64;
    let mut time_sum = 0.0f64;
    let mut n = 0usize;
    for t in traces {
        if let Some((acc, secs)) = t.time_to_max_accuracy() {
            acc_sum += f64::from(acc);
            time_sum += secs;
            n += 1;
        }
    }
    if n == 0 {
        return (0.0, 0.0);
    }
    ((acc_sum / n as f64) as f32, time_sum / n as f64)
}

/// Mean time to reach a fixed target accuracy across repeats (`None` if
/// any repeat never reaches it).
pub fn mean_time_to_target(traces: &[Trace], target: f32) -> Option<f64> {
    let mut sum = 0.0;
    for t in traces {
        sum += t.time_to_accuracy(target)?;
    }
    Some(sum / traces.len() as f64)
}

/// Renders an `(x, y)` series as a fixed-width ASCII sparkline row, `y`
/// scaled into `[lo, hi]` — the fig3 binary prints the paper's curves
/// with these so the figures are readable straight from the terminal.
///
/// # Example
///
/// ```
/// use hadfl_bench::ascii_curve;
///
/// let s = ascii_curve(&[(0.0, 0.0), (1.0, 0.5), (2.0, 1.0)], 0.0, 1.0, 12);
/// assert_eq!(s.chars().count(), 12);
/// ```
pub fn ascii_curve(series: &[(f64, f32)], lo: f32, hi: f32, width: usize) -> String {
    const LEVELS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    if series.is_empty() || width == 0 || !(hi > lo) {
        return " ".repeat(width);
    }
    let x_min = series.first().map(|&(x, _)| x).unwrap_or(0.0);
    let x_max = series.last().map(|&(x, _)| x).unwrap_or(1.0);
    let span = (x_max - x_min).max(f64::EPSILON);
    let mut out = String::with_capacity(width * 3);
    let mut idx = 0usize;
    for col in 0..width {
        let x_target = x_min + span * (col as f64 + 0.5) / width as f64;
        while idx + 1 < series.len() && series[idx + 1].0 <= x_target {
            idx += 1;
        }
        let y = series[idx].1.clamp(lo, hi);
        let frac = (y - lo) / (hi - lo);
        let level = ((frac * (LEVELS.len() - 1) as f32).round() as usize).min(LEVELS.len() - 1);
        out.push(LEVELS[level]);
    }
    out
}

/// The experiment output directory (`target/experiments`), created on
/// demand.
///
/// # Panics
///
/// Panics if the directory cannot be created.
pub fn out_dir() -> PathBuf {
    let dir = Path::new("target").join("experiments");
    fs::create_dir_all(&dir).expect("create target/experiments");
    dir
}

/// Serializes `value` as pretty JSON into `target/experiments/<name>`.
///
/// # Panics
///
/// Panics on serialization or I/O failure (report binaries fail loudly).
pub fn write_json<T: Serialize>(name: &str, value: &T) {
    let path = out_dir().join(name);
    let json = serde_json::to_string_pretty(value).expect("serialize experiment output");
    fs::write(&path, json).expect("write experiment output");
    eprintln!("wrote {}", path.display());
}

/// Writes CSV rows (first row = header) into `target/experiments/<name>`.
///
/// # Panics
///
/// Panics on I/O failure (report binaries fail loudly).
pub fn write_csv(name: &str, header: &str, rows: &[String]) {
    let path = out_dir().join(name);
    let mut body = String::from(header);
    body.push('\n');
    for r in rows {
        body.push_str(r);
        body.push('\n');
    }
    fs::write(&path, body).expect("write experiment csv");
    eprintln!("wrote {}", path.display());
}

#[cfg(test)]
mod tests {
    use super::*;
    use hadfl::trace::RoundRecord;

    fn trace_with(acc_times: &[(f32, f64)]) -> Trace {
        let mut t = Trace::new("x", 2, 10);
        for (i, &(acc, time)) in acc_times.iter().enumerate() {
            t.push(RoundRecord {
                round: i + 1,
                time_secs: time,
                epoch_equiv: i as f64,
                train_loss: 1.0,
                test_accuracy: acc,
                selected: vec![],
                versions: vec![],
            });
        }
        t
    }

    #[test]
    fn mean_ttma_averages_repeats() {
        let a = trace_with(&[(0.5, 1.0), (0.9, 2.0)]);
        let b = trace_with(&[(0.9, 4.0)]);
        let (acc, time) = mean_time_to_max_accuracy(&[a, b]);
        assert!((acc - 0.9).abs() < 1e-6);
        assert!((time - 3.0).abs() < 1e-9);
    }

    #[test]
    fn mean_ttma_of_empty_is_zero() {
        assert_eq!(mean_time_to_max_accuracy(&[]), (0.0, 0.0));
    }

    #[test]
    fn mean_time_to_target_requires_all_repeats() {
        let a = trace_with(&[(0.5, 1.0), (0.9, 2.0)]);
        let b = trace_with(&[(0.6, 4.0)]);
        assert_eq!(mean_time_to_target(&[a.clone(), b], 0.9), None);
        assert_eq!(mean_time_to_target(&[a], 0.5), Some(1.0));
    }

    #[test]
    fn ascii_curve_has_requested_width_and_monotone_levels() {
        let rising: Vec<(f64, f32)> = (0..20).map(|i| (i as f64, i as f32 / 19.0)).collect();
        let s = ascii_curve(&rising, 0.0, 1.0, 16);
        assert_eq!(s.chars().count(), 16);
        let levels: Vec<u32> = s.chars().map(|c| c as u32).collect();
        assert!(levels.windows(2).all(|w| w[0] <= w[1]), "{s}");
        assert_eq!(ascii_curve(&[], 0.0, 1.0, 5), "     ");
        assert_eq!(ascii_curve(&rising, 1.0, 1.0, 3), "   ");
    }

    #[test]
    fn scheme_labels_are_stable() {
        assert_eq!(Scheme::Hadfl.label(), "hadfl");
        assert_eq!(Scheme::paper_trio().len(), 3);
    }

    #[test]
    fn quick_scheme_runs_end_to_end() {
        for scheme in [Scheme::Hadfl, Scheme::DecentralizedFedAvg] {
            let trace = run_scheme(scheme, "mlp", &[2.0, 1.0], Profile::Quick, 1).unwrap();
            assert_eq!(trace.scheme, scheme.label());
            assert!(!trace.records.is_empty());
        }
    }
}
