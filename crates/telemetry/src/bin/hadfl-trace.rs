//! Offline trace analyzer for HADFL clusters.
//!
//! Point it at the per-node JSONL logs a telemetry-enabled run wrote
//! (one file per participant). Modes:
//!
//! - default: merges the timelines (causally when Lamport stamps are
//!   present, by wall clock otherwise) and prints the paper's headline
//!   diagnostics;
//! - `--check`: validates the logs structurally (schema version,
//!   sequence continuity, exact `NetStats` ledger parity) and exits
//!   non-zero on any problem; cross-node wall-clock skew is reported
//!   as a warning, never a failure;
//! - `critical-path [--round N] [--check]`: reconstructs each round's
//!   happens-before graph and attributes the end-to-end round latency
//!   to the longest chain of spans and network edges, naming the
//!   straggler device and the dominant segment; with `--check`, exits
//!   non-zero on causal-graph problems (unmatched receives, Lamport
//!   violations);
//! - `spans [--round N] [--json]`: per-node Gantt of the paired
//!   `SpanStart`/`SpanEnd` timeline, ASCII or JSON.
//!
//! ```text
//! hadfl-trace /tmp/tel/node-*.jsonl
//! hadfl-trace --check /tmp/tel/node-*.jsonl
//! hadfl-trace critical-path /tmp/tel/node-*.jsonl
//! hadfl-trace spans --round 2 /tmp/tel/node-*.jsonl
//! ```

use std::process::ExitCode;

use hadfl_telemetry::analyze::{
    check_full, critical_path, merge, parse_jsonl, render_gantt, report, rounds_planned, spans,
    spans_to_json, ParsedLog,
};

const USAGE: &str = "usage: hadfl-trace [--check] <events.jsonl>...
       hadfl-trace critical-path [--round N] [--check] <events.jsonl>...
       hadfl-trace spans [--round N] [--json] <events.jsonl>...";

enum Mode {
    Report,
    Check,
    CriticalPath { check: bool, round: Option<u32> },
    Spans { json: bool, round: Option<u32> },
}

fn parse_args(args: &[String]) -> Result<(Mode, Vec<String>), String> {
    let mut paths = Vec::new();
    let mut mode = Mode::Report;
    let mut check = false;
    let mut json = false;
    let mut round: Option<u32> = None;
    let mut sub: Option<&str> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "critical-path" | "spans" if sub.is_none() && paths.is_empty() => {
                sub = Some(arg.as_str());
            }
            "--check" => check = true,
            "--json" => json = true,
            "--round" => {
                let v = it.next().ok_or("--round needs a value")?;
                round = Some(v.parse().map_err(|_| format!("bad --round {v}"))?);
            }
            "--help" | "-h" => return Err(String::new()),
            other if other.starts_with("--") => return Err(format!("unknown flag {other}")),
            path => paths.push(path.to_string()),
        }
    }
    match sub {
        Some("critical-path") => mode = Mode::CriticalPath { check, round },
        Some("spans") => mode = Mode::Spans { json, round },
        _ if check => mode = Mode::Check,
        _ => {}
    }
    Ok((mode, paths))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (mode, paths) = match parse_args(&args) {
        Ok(parsed) => parsed,
        Err(msg) if msg.is_empty() => {
            println!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        Err(msg) => {
            eprintln!("{msg}\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    if paths.is_empty() {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    }

    let mut logs: Vec<ParsedLog> = Vec::with_capacity(paths.len());
    for path in &paths {
        match std::fs::read_to_string(path) {
            Ok(text) => logs.push(parse_jsonl(&text)),
            Err(e) => {
                eprintln!("hadfl-trace: read {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    match mode {
        Mode::Check => {
            let outcome = check_full(&logs);
            for warning in &outcome.warnings {
                eprintln!("hadfl-trace: warning: {warning}");
            }
            if outcome.errors.is_empty() {
                let events: usize = logs.iter().map(|l| l.events.len()).sum();
                println!(
                    "ok: {} files, {events} events, ledger parity holds",
                    logs.len()
                );
                return ExitCode::SUCCESS;
            }
            for error in &outcome.errors {
                eprintln!("hadfl-trace: {error}");
            }
            ExitCode::FAILURE
        }
        Mode::CriticalPath { check, round } => {
            let merged = merge(&logs);
            let rounds = match round {
                Some(r) => vec![r],
                None => rounds_planned(&merged),
            };
            if rounds.is_empty() {
                eprintln!("hadfl-trace: no planned rounds in the logs");
                return ExitCode::FAILURE;
            }
            let mut failed = false;
            for r in rounds {
                let cp = critical_path(&merged, r);
                print!("{}", cp.render());
                failed |= !cp.errors.is_empty();
            }
            if check && failed {
                eprintln!("hadfl-trace: causal-graph check failed");
                return ExitCode::FAILURE;
            }
            ExitCode::SUCCESS
        }
        Mode::Spans { json, round } => {
            let merged = merge(&logs);
            let (closed, unclosed) = spans(&merged);
            if json {
                println!("{}", spans_to_json(&closed, round));
            } else {
                print!("{}", render_gantt(&closed, round, 60));
                if unclosed > 0 {
                    eprintln!("hadfl-trace: {unclosed} span(s) never closed");
                }
            }
            ExitCode::SUCCESS
        }
        Mode::Report => {
            let garbage: usize = logs.iter().map(|l| l.garbage_lines).sum();
            if garbage > 0 {
                eprintln!("hadfl-trace: skipped {garbage} malformed lines");
            }
            let merged = merge(&logs);
            print!("{}", report(&merged).render());
            ExitCode::SUCCESS
        }
    }
}
