//! Offline trace analyzer for HADFL clusters.
//!
//! Point it at the per-node JSONL logs a telemetry-enabled run wrote
//! (one file per participant) and it merges the timelines and prints
//! the paper's headline diagnostics; `--check` instead validates the
//! logs structurally (schema version, sequence continuity, exact
//! `NetStats` ledger parity) and exits non-zero on any problem.
//!
//! ```text
//! hadfl-trace /tmp/tel/node-*.jsonl
//! hadfl-trace --check /tmp/tel/node-*.jsonl
//! ```

use std::process::ExitCode;

use hadfl_telemetry::analyze::{check, merge, parse_jsonl, report, ParsedLog};

const USAGE: &str = "usage: hadfl-trace [--check] <events.jsonl>...";

fn main() -> ExitCode {
    let mut check_mode = false;
    let mut paths: Vec<String> = Vec::new();
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--check" => check_mode = true,
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other if other.starts_with("--") => {
                eprintln!("unknown flag {other}\n{USAGE}");
                return ExitCode::FAILURE;
            }
            path => paths.push(path.to_string()),
        }
    }
    if paths.is_empty() {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    }

    let mut logs: Vec<ParsedLog> = Vec::with_capacity(paths.len());
    for path in &paths {
        match std::fs::read_to_string(path) {
            Ok(text) => logs.push(parse_jsonl(&text)),
            Err(e) => {
                eprintln!("hadfl-trace: read {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    if check_mode {
        let errors = check(&logs);
        if errors.is_empty() {
            let events: usize = logs.iter().map(|l| l.events.len()).sum();
            println!(
                "ok: {} files, {events} events, ledger parity holds",
                logs.len()
            );
            return ExitCode::SUCCESS;
        }
        for error in &errors {
            eprintln!("hadfl-trace: {error}");
        }
        return ExitCode::FAILURE;
    }

    let garbage: usize = logs.iter().map(|l| l.garbage_lines).sum();
    if garbage > 0 {
        eprintln!("hadfl-trace: skipped {garbage} malformed lines");
    }
    let merged = merge(&logs);
    print!("{}", report(&merged).render());
    ExitCode::SUCCESS
}
