//! Offline trace analyzer for HADFL clusters.
//!
//! Point it at the per-node JSONL logs a telemetry-enabled run wrote
//! (one file per participant). Modes:
//!
//! - default: merges the timelines (causally when Lamport stamps are
//!   present, by wall clock otherwise) and prints the paper's headline
//!   diagnostics;
//! - `--check`: validates the logs structurally (schema version,
//!   sequence continuity, exact `NetStats` ledger parity) and exits
//!   non-zero on any problem; cross-node wall-clock skew is reported
//!   as a warning, never a failure;
//! - `critical-path [--round N] [--check]`: reconstructs each round's
//!   happens-before graph and attributes the end-to-end round latency
//!   to the longest chain of spans and network edges, naming the
//!   straggler device and the dominant segment; with `--check`, exits
//!   non-zero on causal-graph problems (unmatched receives, Lamport
//!   violations);
//! - `spans [--round N] [--json]`: per-node Gantt of the paired
//!   `SpanStart`/`SpanEnd` timeline, ASCII or JSON;
//! - `profile [--check] [--folded OUT] <profile-node-*.json>...`:
//!   merges per-node profiler dumps (written by
//!   `hadfl-node --profile-dir`) and prints the call tree, the op
//!   table, and per-pool utilization verdicts; `--folded OUT` writes
//!   the merged folded-stack flamegraph text, `--check` exits non-zero
//!   unless every pool region accounts for ≥95% of its wall time;
//! - `--follow`: tails a live collector spool file (JSONL, growing)
//!   and redraws a rolling dashboard — recent round latencies and
//!   which device held each ring longest. `--interval-ms` sets the
//!   poll cadence, `--updates N` exits after N redraws (0 = forever).
//!
//! ```text
//! hadfl-trace /tmp/tel/node-*.jsonl
//! hadfl-trace --check /tmp/tel/node-*.jsonl
//! hadfl-trace critical-path /tmp/tel/node-*.jsonl
//! hadfl-trace spans --round 2 /tmp/tel/node-*.jsonl
//! hadfl-trace --follow /tmp/collector/spool.jsonl
//! ```

use std::io::{BufRead, BufReader, Seek, SeekFrom};
use std::process::ExitCode;

use hadfl_telemetry::{Event, FollowState};

use hadfl_telemetry::analyze::{
    check_full, critical_path, merge, parse_jsonl, render_gantt, report, rounds_planned, spans,
    spans_to_json, ParsedLog,
};
use hadfl_telemetry::profile::{check_profile, render_profile};

const USAGE: &str = "usage: hadfl-trace [--check] <events.jsonl>...
       hadfl-trace critical-path [--round N] [--check] <events.jsonl>...
       hadfl-trace spans [--round N] [--json] <events.jsonl>...
       hadfl-trace profile [--check] [--folded OUT] <profile-node-*.json>...
       hadfl-trace --follow [--interval-ms MS] [--updates N] <spool.jsonl>";

enum Mode {
    Report,
    Check,
    CriticalPath { check: bool, round: Option<u32> },
    Spans { json: bool, round: Option<u32> },
    Profile { check: bool, folded: Option<String> },
    Follow { interval_ms: u64, updates: u64 },
}

fn parse_args(args: &[String]) -> Result<(Mode, Vec<String>), String> {
    let mut paths = Vec::new();
    let mut mode = Mode::Report;
    let mut check = false;
    let mut json = false;
    let mut follow = false;
    let mut interval_ms = 500u64;
    let mut updates = 0u64;
    let mut round: Option<u32> = None;
    let mut folded: Option<String> = None;
    let mut sub: Option<&str> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "critical-path" | "spans" | "profile" if sub.is_none() && paths.is_empty() => {
                sub = Some(arg.as_str());
            }
            "--folded" => {
                let v = it.next().ok_or("--folded needs a value")?;
                folded = Some(v.to_string());
            }
            "--check" => check = true,
            "--json" => json = true,
            "--follow" => follow = true,
            "--interval-ms" => {
                let v = it.next().ok_or("--interval-ms needs a value")?;
                interval_ms = v.parse().map_err(|_| format!("bad --interval-ms {v}"))?;
            }
            "--updates" => {
                let v = it.next().ok_or("--updates needs a value")?;
                updates = v.parse().map_err(|_| format!("bad --updates {v}"))?;
            }
            "--round" => {
                let v = it.next().ok_or("--round needs a value")?;
                round = Some(v.parse().map_err(|_| format!("bad --round {v}"))?);
            }
            "--help" | "-h" => return Err(String::new()),
            other if other.starts_with("--") => return Err(format!("unknown flag {other}")),
            path => paths.push(path.to_string()),
        }
    }
    match sub {
        Some("critical-path") => mode = Mode::CriticalPath { check, round },
        Some("spans") => mode = Mode::Spans { json, round },
        Some("profile") => mode = Mode::Profile { check, folded },
        _ if follow => {
            mode = Mode::Follow {
                interval_ms,
                updates,
            }
        }
        _ if check => mode = Mode::Check,
        _ => {}
    }
    Ok((mode, paths))
}

/// The `profile` subcommand: loads per-node profiler dumps, merges
/// them, prints the report, optionally writes the merged folded-stack
/// text, and (with `--check`) fails unless every pool region accounts
/// for its wall time.
fn run_profile(paths: &[String], check: bool, folded_out: Option<&str>) -> ExitCode {
    let mut dumps = Vec::with_capacity(paths.len());
    for path in paths {
        let text = match std::fs::read_to_string(path) {
            Ok(text) => text,
            Err(e) => {
                eprintln!("hadfl-trace: read {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        match serde_json::from_str::<hadfl_prof::ProfileDump>(&text) {
            Ok(dump) => {
                if dump.v != hadfl_prof::PROF_SCHEMA_VERSION {
                    eprintln!(
                        "hadfl-trace: warning: {path} has profile schema v{}, expected v{}",
                        dump.v,
                        hadfl_prof::PROF_SCHEMA_VERSION
                    );
                }
                dumps.push(dump);
            }
            Err(e) => {
                eprintln!("hadfl-trace: parse {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    let merged = hadfl_prof::merge_dumps(&dumps);
    print!("{}", render_profile(&merged, dumps.len()));
    if let Some(out) = folded_out {
        if let Err(e) = std::fs::write(out, hadfl_prof::to_folded(&merged)) {
            eprintln!("hadfl-trace: write {out}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("hadfl-trace: wrote folded stacks to {out}");
    }
    if check {
        let errors = check_profile(&merged);
        if !errors.is_empty() {
            for error in &errors {
                eprintln!("hadfl-trace: {error}");
            }
            return ExitCode::FAILURE;
        }
        println!(
            "profile check ok: {} pool region(s) account for their wall time",
            merged.pools.len()
        );
    }
    ExitCode::SUCCESS
}

/// Tails `path`, redrawing the rolling dashboard each interval. The
/// file is re-opened each poll and read from the last byte offset, so
/// the collector can keep appending (or not exist yet) without racing
/// us. Exits after `updates` redraws (0 = until killed).
fn follow(path: &str, interval_ms: u64, updates: u64) -> ExitCode {
    let mut state = FollowState::new();
    let mut offset: u64 = 0;
    let mut drawn = 0u64;
    loop {
        if let Ok(file) = std::fs::File::open(path) {
            let mut reader = BufReader::new(file);
            if reader.seek(SeekFrom::Start(offset)).is_ok() {
                let mut line = String::new();
                loop {
                    line.clear();
                    match reader.read_line(&mut line) {
                        Ok(0) | Err(_) => break,
                        Ok(n) => {
                            // Only consume complete lines; a partially
                            // flushed tail is retried next poll.
                            if !line.ends_with('\n') {
                                break;
                            }
                            offset += n as u64;
                            if let Ok(event) = Event::from_json(line.trim_end()) {
                                state.observe(&event);
                            }
                        }
                    }
                }
            }
        }
        println!("-- hadfl-trace --follow {path} --");
        print!("{}", state.render(12));
        drawn += 1;
        if updates > 0 && drawn >= updates {
            return ExitCode::SUCCESS;
        }
        std::thread::sleep(std::time::Duration::from_millis(interval_ms.max(10)));
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (mode, paths) = match parse_args(&args) {
        Ok(parsed) => parsed,
        Err(msg) if msg.is_empty() => {
            println!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        Err(msg) => {
            eprintln!("{msg}\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    if paths.is_empty() {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    }

    if let Mode::Follow {
        interval_ms,
        updates,
    } = mode
    {
        if paths.len() != 1 {
            eprintln!("hadfl-trace: --follow takes exactly one spool file\n{USAGE}");
            return ExitCode::FAILURE;
        }
        return follow(&paths[0], interval_ms, updates);
    }

    // Profile dumps are ProfileDump JSON, not event JSONL — load them
    // on their own path.
    if let Mode::Profile { check, folded } = &mode {
        return run_profile(&paths, *check, folded.as_deref());
    }

    let mut logs: Vec<ParsedLog> = Vec::with_capacity(paths.len());
    for path in &paths {
        match std::fs::read_to_string(path) {
            Ok(text) => logs.push(parse_jsonl(&text)),
            Err(e) => {
                eprintln!("hadfl-trace: read {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    match mode {
        Mode::Check => {
            let outcome = check_full(&logs);
            for warning in &outcome.warnings {
                eprintln!("hadfl-trace: warning: {warning}");
            }
            if outcome.errors.is_empty() {
                let events: usize = logs.iter().map(|l| l.events.len()).sum();
                println!(
                    "ok: {} files, {events} events, ledger parity holds",
                    logs.len()
                );
                return ExitCode::SUCCESS;
            }
            for error in &outcome.errors {
                eprintln!("hadfl-trace: {error}");
            }
            ExitCode::FAILURE
        }
        Mode::CriticalPath { check, round } => {
            let merged = merge(&logs);
            let rounds = match round {
                Some(r) => vec![r],
                None => rounds_planned(&merged),
            };
            if rounds.is_empty() {
                eprintln!("hadfl-trace: no planned rounds in the logs");
                return ExitCode::FAILURE;
            }
            let mut failed = false;
            for r in rounds {
                let cp = critical_path(&merged, r);
                print!("{}", cp.render());
                failed |= !cp.errors.is_empty();
            }
            if check && failed {
                eprintln!("hadfl-trace: causal-graph check failed");
                return ExitCode::FAILURE;
            }
            ExitCode::SUCCESS
        }
        Mode::Spans { json, round } => {
            let merged = merge(&logs);
            let (closed, unclosed) = spans(&merged);
            if json {
                println!("{}", spans_to_json(&closed, round));
            } else {
                print!("{}", render_gantt(&closed, round, 60));
                if unclosed > 0 {
                    eprintln!("hadfl-trace: {unclosed} span(s) never closed");
                }
            }
            ExitCode::SUCCESS
        }
        // Handled before the logs were loaded; a follow target is a
        // growing file and a profile dump isn't event JSONL.
        Mode::Follow { .. } | Mode::Profile { .. } => ExitCode::SUCCESS,
        Mode::Report => {
            let garbage: usize = logs.iter().map(|l| l.garbage_lines).sum();
            if garbage > 0 {
                eprintln!("hadfl-trace: skipped {garbage} malformed lines");
            }
            let merged = merge(&logs);
            print!("{}", report(&merged).render());
            ExitCode::SUCCESS
        }
    }
}
