//! Online fleet health rules over the merged event stream.
//!
//! The collector feeds every merged event through
//! [`HealthEngine::observe`] and calls [`HealthEngine::tick`] on a
//! cadence; the engine keeps rolling per-device and per-round state
//! and raises structured [`Alert`]s:
//!
//! - **round-watchdog** — a `RoundPlanned` with no `RingExit` (or
//!   merge/completion) inside the deadline: the ring is stuck, not
//!   merely slow.
//! - **straggler** — Eq. 7 predicted-vs-actual residuals: a device
//!   whose reported version keeps undershooting Brown's forecast, or
//!   whose version lags the fleet median round after round. The two
//!   signals are combined because the double-exponential smoother
//!   *adapts* to a consistently slow device (residuals converge to
//!   zero), while the median-lag component keeps pointing at it.
//! - **dead-device** — the coordinator dropped a device, or the same
//!   device was bypass-declared repeatedly (§III-D says one bypass is
//!   routine repair; the same corpse every round is an outage).
//! - **dead-ring** — a round whose ring dissolved (`RingExit` with
//!   `dissolved`) and produced no `Merge` before the next plan.
//! - **budget-burn** — cumulative on-wire payload bytes (from
//!   `FrameSent`) crossing the paper's `2·K·M` bound.
//!
//! Time is injected: `observe`/`tick` take the *collector's* clock
//! reading, never the emitters' `t_us` (fleet clocks are not
//! comparable across hosts). With a `ManualClock` driving those
//! readings the whole rule set is deterministic.

use std::collections::BTreeMap;
use std::time::Duration;

use serde::Serialize;

use crate::event::{Event, EventKind};

/// Alert weight.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize)]
pub enum Severity {
    /// Degraded but progressing.
    Warning,
    /// Progress or correctness is at risk.
    Critical,
}

/// One structured health finding (serialized into `/health`).
#[derive(Debug, Clone, Serialize)]
pub struct Alert {
    /// Rule id: `round-watchdog`, `straggler`, `dead-device`,
    /// `dead-ring`, `budget-burn`.
    pub rule: String,
    /// How bad.
    pub severity: Severity,
    /// Round the finding is about, when round-scoped.
    pub round: Option<u32>,
    /// Device the finding is about, when device-scoped.
    pub device: Option<u32>,
    /// Human-readable one-liner.
    pub message: String,
    /// Collector clock at raise time, microseconds.
    pub at_us: u64,
}

/// The `/health` document.
#[derive(Debug, Clone, Serialize)]
pub struct HealthReport {
    /// `ok`, `warning`, or `critical` (max alert severity).
    pub status: String,
    /// Rounds the coordinator has planned.
    pub rounds_planned: u64,
    /// Rounds with a `RoundComplete`.
    pub rounds_completed: u64,
    /// Distinct devices seen in any event.
    pub devices_seen: usize,
    /// Cumulative payload bytes from `FrameSent` events.
    pub traffic_bytes: u64,
    /// The configured `2·K·M` bound, if any.
    pub budget_bytes: Option<u64>,
    /// Every alert raised so far, in raise order.
    pub alerts: Vec<Alert>,
}

/// Tuning knobs for [`HealthEngine`].
#[derive(Debug, Clone)]
pub struct HealthOptions {
    /// Watchdog deadline: `RoundPlanned` → first ring progress.
    pub round_deadline: Duration,
    /// Straggler trigger on the EWMA of relative Eq. 7 residuals
    /// (`(predicted - actual) / max(predicted, 1)`).
    pub residual_threshold: f64,
    /// Residual observations required before the EWMA may trigger.
    pub residual_min_obs: u32,
    /// Straggler trigger when a device's version stays below
    /// `lag_factor × fleet median` for [`Self::lag_rounds`] plans.
    pub lag_factor: f64,
    /// Consecutive lagging plans before the lag component fires.
    pub lag_rounds: u32,
    /// Bypass declarations against one device before it is presumed
    /// dead (1 bypass = routine §III-D repair).
    pub bypass_repeat_threshold: u32,
    /// The `2·K·M` byte bound; `None` disables budget-burn.
    pub budget_bytes: Option<u64>,
}

impl Default for HealthOptions {
    fn default() -> Self {
        HealthOptions {
            round_deadline: Duration::from_secs(30),
            residual_threshold: 0.35,
            residual_min_obs: 2,
            lag_factor: 0.5,
            lag_rounds: 2,
            bypass_repeat_threshold: 2,
            budget_bytes: None,
        }
    }
}

/// Rolling state of one planned round.
#[derive(Debug, Default)]
struct RoundState {
    planned_at_us: u64,
    /// Any `RingExit`/`Merge`/`RoundComplete` seen — watchdog food.
    progressed: bool,
    dissolved_exits: u32,
    merges: u32,
    completed: bool,
    watchdog_raised: bool,
    dead_ring_raised: bool,
}

/// Rolling state of one device.
#[derive(Debug, Default)]
struct DeviceState {
    /// EWMA of relative Eq. 7 residuals.
    residual_ewma: f64,
    residual_obs: u32,
    /// Consecutive plans below the lag line.
    lagging_plans: u32,
    bypass_count: u32,
    straggler_raised: bool,
    dead_raised: bool,
}

/// The online rule evaluator. One instance per fleet.
pub struct HealthEngine {
    opts: HealthOptions,
    rounds: BTreeMap<u32, RoundState>,
    devices: BTreeMap<u32, DeviceState>,
    traffic_bytes: u64,
    budget_raised: bool,
    rounds_completed: u64,
    alerts: Vec<Alert>,
}

impl HealthEngine {
    /// A fresh engine.
    pub fn new(opts: HealthOptions) -> Self {
        HealthEngine {
            opts,
            rounds: BTreeMap::new(),
            devices: BTreeMap::new(),
            traffic_bytes: 0,
            budget_raised: false,
            rounds_completed: 0,
            alerts: Vec::new(),
        }
    }

    /// Feeds one merged event. `now` is the collector's clock.
    pub fn observe(&mut self, now: Duration, event: &Event) {
        let now_us = now.as_micros() as u64;
        match &event.kind {
            EventKind::RoundPlanned {
                round,
                available,
                versions,
                ..
            } => {
                self.close_stale_rings(*round, now_us);
                let state = self.rounds.entry(*round).or_default();
                state.planned_at_us = now_us;
                self.score_version_lag(*round, available, versions, now_us);
                for device in available {
                    self.devices.entry(*device).or_default();
                }
            }
            EventKind::RingExit { round, dissolved } => {
                let state = self.rounds.entry(*round).or_default();
                state.progressed = true;
                if *dissolved {
                    state.dissolved_exits += 1;
                }
            }
            EventKind::Merge { round, .. } => {
                let state = self.rounds.entry(*round).or_default();
                state.progressed = true;
                state.merges += 1;
            }
            EventKind::RoundComplete { round, .. } => {
                let state = self.rounds.entry(*round).or_default();
                state.progressed = true;
                if !state.completed {
                    state.completed = true;
                    self.rounds_completed += 1;
                }
            }
            EventKind::Prediction {
                round,
                device,
                predicted,
                actual,
            } => {
                self.score_residual(*round, *device, *predicted, *actual, now_us);
            }
            EventKind::DeviceDropped { round, device } => {
                self.raise_dead_device(
                    *device,
                    Some(*round),
                    format!("coordinator dropped device {device} in round {round} (missed report deadline)"),
                    now_us,
                );
            }
            EventKind::BypassDeclared { round, dead } => {
                let state = self.devices.entry(*dead).or_default();
                state.bypass_count += 1;
                if state.bypass_count >= self.opts.bypass_repeat_threshold {
                    let count = state.bypass_count;
                    self.raise_dead_device(
                        *dead,
                        Some(*round),
                        format!(
                            "device {dead} bypass-declared {count} times (latest round {round})"
                        ),
                        now_us,
                    );
                }
            }
            EventKind::FrameSent { bytes, .. } => {
                self.traffic_bytes += bytes;
                if let Some(budget) = self.opts.budget_bytes {
                    if !self.budget_raised && self.traffic_bytes > budget {
                        self.budget_raised = true;
                        let traffic = self.traffic_bytes;
                        self.alerts.push(Alert {
                            rule: "budget-burn".into(),
                            severity: Severity::Warning,
                            round: None,
                            device: None,
                            message: format!(
                                "on-wire payload traffic {traffic} B exceeded the 2·K·M budget of {budget} B"
                            ),
                            at_us: now_us,
                        });
                    }
                }
            }
            EventKind::DeviceStarted { device }
            | EventKind::DeviceFinished { device, .. }
            | EventKind::LocalSteps { device, .. } => {
                self.devices.entry(*device).or_default();
            }
            _ => {}
        }
    }

    /// Evaluates the time-based rules (watchdog, dead-ring deadline).
    /// Call on a cadence with the collector's clock.
    pub fn tick(&mut self, now: Duration) {
        let now_us = now.as_micros() as u64;
        let deadline_us = self.opts.round_deadline.as_micros() as u64;
        let mut raise = Vec::new();
        for (&round, state) in self.rounds.iter_mut() {
            if state.completed || state.watchdog_raised {
                continue;
            }
            if !state.progressed && now_us.saturating_sub(state.planned_at_us) > deadline_us {
                state.watchdog_raised = true;
                raise.push(Alert {
                    rule: "round-watchdog".into(),
                    severity: Severity::Critical,
                    round: Some(round),
                    device: None,
                    message: format!(
                        "round {round} planned but no ring progress within {} ms",
                        deadline_us / 1000
                    ),
                    at_us: now_us,
                });
            }
            if !state.dead_ring_raised
                && state.dissolved_exits > 0
                && state.merges == 0
                && now_us.saturating_sub(state.planned_at_us) > deadline_us
            {
                state.dead_ring_raised = true;
                raise.push(Alert {
                    rule: "dead-ring".into(),
                    severity: Severity::Critical,
                    round: Some(round),
                    device: None,
                    message: format!(
                        "round {round}: ring dissolved ({} exits) with no merge",
                        state.dissolved_exits
                    ),
                    at_us: now_us,
                });
            }
        }
        self.alerts.extend(raise);
    }

    /// Alerts raised so far, in raise order.
    pub fn alerts(&self) -> &[Alert] {
        &self.alerts
    }

    /// Cumulative `FrameSent` payload bytes.
    pub fn traffic_bytes(&self) -> u64 {
        self.traffic_bytes
    }

    /// Builds the `/health` document.
    pub fn report(&self) -> HealthReport {
        let status = match self.alerts.iter().map(|a| a.severity).max() {
            None => "ok",
            Some(Severity::Warning) => "warning",
            Some(Severity::Critical) => "critical",
        };
        HealthReport {
            status: status.into(),
            rounds_planned: self.rounds.len() as u64,
            rounds_completed: self.rounds_completed,
            devices_seen: self.devices.len(),
            traffic_bytes: self.traffic_bytes,
            budget_bytes: self.opts.budget_bytes,
            alerts: self.alerts.clone(),
        }
    }

    /// When round `new_round` is planned, earlier dissolved-no-merge
    /// rings are conclusively dead regardless of the deadline.
    fn close_stale_rings(&mut self, new_round: u32, now_us: u64) {
        let mut raise = Vec::new();
        for (&round, state) in self.rounds.iter_mut() {
            if round >= new_round || state.dead_ring_raised {
                continue;
            }
            if state.dissolved_exits > 0 && state.merges == 0 {
                state.dead_ring_raised = true;
                raise.push(Alert {
                    rule: "dead-ring".into(),
                    severity: Severity::Critical,
                    round: Some(round),
                    device: None,
                    message: format!(
                        "round {round}: ring dissolved ({} exits) with no merge before round {new_round} was planned",
                        state.dissolved_exits
                    ),
                    at_us: now_us,
                });
            }
        }
        self.alerts.extend(raise);
    }

    /// Eq. 7 residual component: relative undershoot of the forecast,
    /// exponentially smoothed so one noisy report cannot trigger.
    fn score_residual(
        &mut self,
        round: u32,
        device: u32,
        predicted: f64,
        actual: f64,
        now_us: u64,
    ) {
        if !predicted.is_finite() || !actual.is_finite() {
            return;
        }
        let rel = (predicted - actual) / predicted.abs().max(1.0);
        let state = self.devices.entry(device).or_default();
        state.residual_ewma = if state.residual_obs == 0 {
            rel
        } else {
            0.5 * state.residual_ewma + 0.5 * rel
        };
        state.residual_obs += 1;
        if state.residual_obs >= self.opts.residual_min_obs
            && state.residual_ewma > self.opts.residual_threshold
        {
            let ewma = state.residual_ewma;
            self.raise_straggler(
                device,
                Some(round),
                format!(
                    "device {device}: Eq.7 forecast residual EWMA {ewma:.2} (actual keeps undershooting predicted)"
                ),
                now_us,
            );
        }
    }

    /// Median-lag component: a device persistently below half the
    /// fleet's median version is starved of compute even after the
    /// smoother has adapted to it.
    fn score_version_lag(&mut self, round: u32, available: &[u32], versions: &[f64], now_us: u64) {
        if available.len() != versions.len() || available.len() < 3 {
            return;
        }
        let mut sorted: Vec<f64> = versions.iter().copied().filter(|v| v.is_finite()).collect();
        if sorted.len() < 3 {
            return;
        }
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        let median = sorted[sorted.len() / 2];
        if median <= 0.0 {
            return;
        }
        let line = self.opts.lag_factor * median;
        let lag_rounds = self.opts.lag_rounds;
        let mut raise = Vec::new();
        for (&device, &version) in available.iter().zip(versions.iter()) {
            let state = self.devices.entry(device).or_default();
            if version < line {
                state.lagging_plans += 1;
                if state.lagging_plans >= lag_rounds && !state.straggler_raised {
                    state.straggler_raised = true;
                    let plans = state.lagging_plans;
                    raise.push(Alert {
                        rule: "straggler".into(),
                        severity: Severity::Warning,
                        round: Some(round),
                        device: Some(device),
                        message: format!(
                            "device {device}: version {version:.0} below {line:.0} \
                             (fleet median {median:.0}) for {plans} consecutive plans"
                        ),
                        at_us: now_us,
                    });
                }
            } else {
                state.lagging_plans = 0;
            }
        }
        self.alerts.extend(raise);
    }

    fn raise_straggler(&mut self, device: u32, round: Option<u32>, message: String, now_us: u64) {
        let state = self.devices.entry(device).or_default();
        if state.straggler_raised {
            return;
        }
        state.straggler_raised = true;
        self.alerts.push(Alert {
            rule: "straggler".into(),
            severity: Severity::Warning,
            round,
            device: Some(device),
            message,
            at_us: now_us,
        });
    }

    fn raise_dead_device(&mut self, device: u32, round: Option<u32>, message: String, now_us: u64) {
        let state = self.devices.entry(device).or_default();
        if state.dead_raised {
            return;
        }
        state.dead_raised = true;
        self.alerts.push(Alert {
            rule: "dead-device".into(),
            severity: Severity::Critical,
            round,
            device: Some(device),
            message,
            at_us: now_us,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::SCHEMA_VERSION;

    fn event(node: u32, kind: EventKind) -> Event {
        Event {
            v: SCHEMA_VERSION,
            seq: 0,
            node,
            t_us: 0,
            lam: 0,
            kind,
        }
    }

    fn planned(round: u32, available: Vec<u32>, versions: Vec<f64>) -> Event {
        let n = available.len();
        event(
            u32::MAX,
            EventKind::RoundPlanned {
                round,
                available,
                versions,
                probabilities: vec![1.0 / n as f64; n],
                selected: vec![],
                unselected: vec![],
                broadcaster: 0,
            },
        )
    }

    #[test]
    fn healthy_round_raises_nothing() {
        let mut engine = HealthEngine::new(HealthOptions::default());
        let t = Duration::from_secs;
        engine.observe(t(1), &planned(1, vec![0, 1, 2], vec![100.0, 110.0, 95.0]));
        engine.observe(
            t(2),
            &event(
                0,
                EventKind::RingExit {
                    round: 1,
                    dissolved: false,
                },
            ),
        );
        engine.observe(
            t(2),
            &event(
                0,
                EventKind::Merge {
                    round: 1,
                    participants: 3,
                },
            ),
        );
        engine.observe(
            t(3),
            &event(
                3,
                EventKind::RoundComplete {
                    round: 1,
                    duration_us: 2_000_000,
                },
            ),
        );
        engine.tick(t(120));
        assert!(engine.alerts().is_empty(), "{:?}", engine.alerts());
        assert_eq!(engine.report().status, "ok");
        assert_eq!(engine.report().rounds_completed, 1);
    }

    #[test]
    fn watchdog_fires_after_the_deadline_only() {
        let mut engine = HealthEngine::new(HealthOptions {
            round_deadline: Duration::from_secs(10),
            ..HealthOptions::default()
        });
        engine.observe(Duration::from_secs(1), &planned(1, vec![], vec![]));
        engine.tick(Duration::from_secs(5));
        assert!(engine.alerts().is_empty());
        engine.tick(Duration::from_secs(12));
        assert_eq!(engine.alerts().len(), 1);
        assert_eq!(engine.alerts()[0].rule, "round-watchdog");
        assert_eq!(engine.alerts()[0].round, Some(1));
        // Idempotent: the same stuck round alerts once.
        engine.tick(Duration::from_secs(20));
        assert_eq!(engine.alerts().len(), 1);
        assert_eq!(engine.report().status, "critical");
    }

    #[test]
    fn version_lag_flags_the_straggler() {
        let mut engine = HealthEngine::new(HealthOptions::default());
        // Device 2 sits far below the fleet median for two plans.
        engine.observe(
            Duration::from_secs(1),
            &planned(1, vec![0, 1, 2, 3], vec![100.0, 110.0, 20.0, 105.0]),
        );
        assert!(engine.alerts().is_empty(), "one lagging plan is noise");
        engine.observe(
            Duration::from_secs(2),
            &planned(2, vec![0, 1, 2, 3], vec![200.0, 210.0, 40.0, 205.0]),
        );
        let alerts = engine.alerts();
        assert_eq!(alerts.len(), 1);
        assert_eq!(alerts[0].rule, "straggler");
        assert_eq!(alerts[0].device, Some(2));
        assert_eq!(alerts[0].severity, Severity::Warning);
    }

    #[test]
    fn residuals_flag_a_forecast_undershooter() {
        let mut engine = HealthEngine::new(HealthOptions::default());
        for round in 1..=3 {
            engine.observe(
                Duration::from_secs(round as u64),
                &event(
                    9,
                    EventKind::Prediction {
                        round,
                        device: 5,
                        predicted: 100.0,
                        actual: 40.0,
                    },
                ),
            );
        }
        let alerts = engine.alerts();
        assert_eq!(alerts.len(), 1, "{alerts:?}");
        assert_eq!(alerts[0].rule, "straggler");
        assert_eq!(alerts[0].device, Some(5));
    }

    #[test]
    fn accurate_forecasts_stay_quiet() {
        let mut engine = HealthEngine::new(HealthOptions::default());
        for round in 1..=5 {
            engine.observe(
                Duration::from_secs(round as u64),
                &event(
                    9,
                    EventKind::Prediction {
                        round,
                        device: 5,
                        predicted: 100.0 * round as f64,
                        actual: 98.0 * round as f64,
                    },
                ),
            );
        }
        assert!(engine.alerts().is_empty());
    }

    #[test]
    fn dropped_device_is_dead_immediately() {
        let mut engine = HealthEngine::new(HealthOptions::default());
        engine.observe(
            Duration::from_secs(1),
            &event(
                9,
                EventKind::DeviceDropped {
                    round: 2,
                    device: 7,
                },
            ),
        );
        let alerts = engine.alerts();
        assert_eq!(alerts.len(), 1);
        assert_eq!(alerts[0].rule, "dead-device");
        assert_eq!(alerts[0].severity, Severity::Critical);
        assert_eq!(alerts[0].device, Some(7));
    }

    #[test]
    fn one_bypass_is_repair_two_is_an_outage() {
        let mut engine = HealthEngine::new(HealthOptions::default());
        engine.observe(
            Duration::from_secs(1),
            &event(0, EventKind::BypassDeclared { round: 1, dead: 4 }),
        );
        assert!(engine.alerts().is_empty(), "single bypass is §III-D repair");
        engine.observe(
            Duration::from_secs(2),
            &event(1, EventKind::BypassDeclared { round: 2, dead: 4 }),
        );
        let alerts = engine.alerts();
        assert_eq!(alerts.len(), 1);
        assert_eq!(alerts[0].rule, "dead-device");
        assert_eq!(alerts[0].device, Some(4));
    }

    #[test]
    fn dissolved_ring_without_merge_is_dead() {
        let mut engine = HealthEngine::new(HealthOptions::default());
        engine.observe(Duration::from_secs(1), &planned(1, vec![], vec![]));
        engine.observe(
            Duration::from_secs(2),
            &event(
                0,
                EventKind::RingExit {
                    round: 1,
                    dissolved: true,
                },
            ),
        );
        engine.observe(
            Duration::from_secs(2),
            &event(
                1,
                EventKind::RingExit {
                    round: 1,
                    dissolved: true,
                },
            ),
        );
        // The next plan closes the book on round 1.
        engine.observe(Duration::from_secs(3), &planned(2, vec![], vec![]));
        let alerts = engine.alerts();
        assert_eq!(alerts.len(), 1, "{alerts:?}");
        assert_eq!(alerts[0].rule, "dead-ring");
        assert_eq!(alerts[0].round, Some(1));
    }

    #[test]
    fn dissolved_ring_with_merge_is_fine() {
        let mut engine = HealthEngine::new(HealthOptions::default());
        engine.observe(Duration::from_secs(1), &planned(1, vec![], vec![]));
        engine.observe(
            Duration::from_secs(2),
            &event(
                0,
                EventKind::RingExit {
                    round: 1,
                    dissolved: true,
                },
            ),
        );
        engine.observe(
            Duration::from_secs(2),
            &event(
                1,
                EventKind::Merge {
                    round: 1,
                    participants: 2,
                },
            ),
        );
        engine.observe(Duration::from_secs(3), &planned(2, vec![], vec![]));
        engine.tick(Duration::from_secs(120));
        // Round 2 trips the watchdog at t=120 (it never progressed),
        // but round 1 must not be called dead.
        assert!(engine.alerts().iter().all(|a| a.rule != "dead-ring"));
    }

    #[test]
    fn budget_burn_fires_once_at_the_bound() {
        let mut engine = HealthEngine::new(HealthOptions {
            budget_bytes: Some(1000),
            ..HealthOptions::default()
        });
        for _ in 0..3 {
            engine.observe(
                Duration::from_secs(1),
                &event(
                    0,
                    EventKind::FrameSent {
                        src: 0,
                        dst: 1,
                        bytes: 400,
                        kind: "param_chunk".into(),
                        lamport: 1,
                    },
                ),
            );
        }
        let alerts = engine.alerts();
        assert_eq!(alerts.len(), 1);
        assert_eq!(alerts[0].rule, "budget-burn");
        assert_eq!(engine.traffic_bytes(), 1200);
    }

    #[test]
    fn report_serializes_to_json() {
        let mut engine = HealthEngine::new(HealthOptions::default());
        engine.observe(
            Duration::from_secs(1),
            &event(
                9,
                EventKind::DeviceDropped {
                    round: 1,
                    device: 3,
                },
            ),
        );
        let json = serde_json::to_string(&engine.report()).expect("report is plain data");
        assert!(json.contains("\"status\":\"critical\""));
        assert!(json.contains("\"rule\":\"dead-device\""));
    }
}
