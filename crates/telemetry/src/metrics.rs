//! Prometheus-style metrics: a registry, an event-driven sink that
//! feeds it, and a tiny text-exposition HTTP server.
//!
//! The registry is deliberately minimal — counters, gauges, and
//! fixed-bucket histograms keyed by `name{labels}` — because the
//! vendored dependency set has no metrics or HTTP crate. The exposition
//! format follows the Prometheus text format (`# TYPE` headers,
//! `_bucket`/`_sum`/`_count` histogram series) closely enough for
//! standard scrapers.

use std::collections::BTreeMap;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use parking_lot::Mutex;

use crate::event::{Event, EventKind};
use crate::sink::Sink;

/// Buckets (seconds) for latency histograms: wide enough for both
/// millisecond loopback runs and multi-second real windows.
const LATENCY_BUCKETS: &[f64] = &[
    0.001, 0.005, 0.02, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
];

/// Buckets for the prediction absolute-error histogram (versions).
const ERROR_BUCKETS: &[f64] = &[0.5, 1.0, 2.0, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0];

#[derive(Debug, Clone)]
struct Histogram {
    bounds: &'static [f64],
    counts: Vec<u64>,
    sum: f64,
    count: u64,
}

impl Histogram {
    fn new(bounds: &'static [f64]) -> Self {
        Histogram {
            bounds,
            counts: vec![0; bounds.len()],
            sum: 0.0,
            count: 0,
        }
    }

    fn observe(&mut self, value: f64) {
        for (i, b) in self.bounds.iter().enumerate() {
            if value <= *b {
                self.counts[i] += 1;
            }
        }
        self.sum += value;
        self.count += 1;
    }
}

#[derive(Default)]
struct Registry {
    // name -> labels -> value; BTreeMaps keep exposition output stable.
    counters: BTreeMap<String, BTreeMap<String, f64>>,
    gauges: BTreeMap<String, BTreeMap<String, f64>>,
    histograms: BTreeMap<String, BTreeMap<String, Histogram>>,
    // name -> help text registered via `describe` (overrides built-ins).
    help: BTreeMap<String, String>,
}

/// Built-in `# HELP` text for the metric families emitted by
/// [`MetricsSink`]. Families outside this table (and not `describe`d)
/// fall back to a generic line — the exposition contract is that every
/// family carries `# HELP`/`# TYPE`, not that every help string is
/// hand-written.
fn builtin_help(name: &str) -> Option<&'static str> {
    Some(match name {
        "hadfl_local_steps_total" => "Local SGD steps completed, by device.",
        "hadfl_ring_phase_seconds" => "RingEnter-to-RingExit duration per round, seconds.",
        "hadfl_ring_dissolved_total" => "Ring exits that dissolved without producing a merge.",
        "hadfl_merges_total" => "Merged parameter installs.",
        "hadfl_bypass_total" => "Bypass declarations against dead ring members.",
        "hadfl_ring_repair_total" => "Ring repairs performed after a bypass warning.",
        "hadfl_rounds_total" => "Rounds planned by the coordinator (Eq. 8 selection draws).",
        "hadfl_selected_total" => "Times each device was drawn into a ring.",
        "hadfl_prediction_abs_error" => "Latest Eq. 7 absolute forecast error, by device.",
        "hadfl_prediction_abs_error_hist" => "Eq. 7 absolute forecast error distribution.",
        "hadfl_dropped_total" => "Devices dropped for missing the report deadline.",
        "hadfl_round_latency_seconds" => "Coordinator window-to-plan round duration, seconds.",
        "hadfl_sent_bytes_total" => "Payload bytes sent, by peer.",
        "hadfl_sent_frames_total" => "Payload frames sent, by peer.",
        "hadfl_recv_bytes_total" => "Payload bytes received, by peer.",
        "hadfl_recv_frames_total" => "Payload frames received, by peer.",
        "hadfl_segment_latency_seconds" => "Span segment durations by taxonomy name, seconds.",
        "hadfl_op_seconds_total" => "Profiled compute seconds inside each op scope (self time).",
        "hadfl_op_calls_total" => "Times each profiled op scope closed.",
        "hadfl_op_bytes_total" => "Bytes processed by each profiled op scope.",
        "hadfl_pool_busy_seconds_total" => "Pool worker seconds spent computing, by region.",
        "hadfl_pool_park_seconds_total" => "Pool worker seconds parked (not on a task), by region.",
        "hadfl_pool_wall_seconds_total" => "Dispatcher-side pool region wall seconds, by region.",
        "hadfl_pool_tasks_total" => "Pool tasks (chunks) executed, by region.",
        "hadfl_pool_dispatches_total" => "Pool dispatches, by region.",
        "hadfl_pool_imbalance_ratio" => {
            "Slowest chunk over mean chunk per pool region (1.0 = balanced)."
        }
        "hadfl_pool_max_workers" => "Most workers any dispatch used, by region.",
        _ => return None,
    })
}

/// Thread-safe metrics store. Create once, share via `Arc`: the
/// [`MetricsSink`] writes into it while the exposition server renders
/// from it.
#[derive(Default)]
pub struct MetricsRegistry {
    inner: Mutex<Registry>,
}

fn label_key(labels: &[(&str, String)]) -> String {
    if labels.is_empty() {
        return String::new();
    }
    let parts: Vec<String> = labels.iter().map(|(k, v)| format!("{k}=\"{v}\"")).collect();
    format!("{{{}}}", parts.join(","))
}

impl MetricsRegistry {
    /// A fresh, empty registry.
    pub fn new() -> Arc<Self> {
        Arc::new(MetricsRegistry::default())
    }

    /// Adds `by` to a counter series.
    pub fn inc_counter(&self, name: &str, labels: &[(&str, String)], by: f64) {
        let mut inner = self.inner.lock();
        *inner
            .counters
            .entry(name.to_string())
            .or_default()
            .entry(label_key(labels))
            .or_insert(0.0) += by;
    }

    /// Sets a gauge series to `value`.
    pub fn set_gauge(&self, name: &str, labels: &[(&str, String)], value: f64) {
        let mut inner = self.inner.lock();
        inner
            .gauges
            .entry(name.to_string())
            .or_default()
            .insert(label_key(labels), value);
    }

    /// Records one observation into a histogram series.
    pub fn observe(
        &self,
        name: &str,
        labels: &[(&str, String)],
        value: f64,
        bounds: &'static [f64],
    ) {
        let mut inner = self.inner.lock();
        inner
            .histograms
            .entry(name.to_string())
            .or_default()
            .entry(label_key(labels))
            .or_insert_with(|| Histogram::new(bounds))
            .observe(value);
    }

    /// Registers help text for a family (collector-specific families
    /// that the built-in table cannot know about).
    pub fn describe(&self, name: &str, help: &str) {
        let mut inner = self.inner.lock();
        inner.help.insert(name.to_string(), help.to_string());
    }

    /// Current value of a counter series (tests / reports).
    pub fn counter(&self, name: &str, labels: &[(&str, String)]) -> f64 {
        let inner = self.inner.lock();
        inner
            .counters
            .get(name)
            .and_then(|series| series.get(&label_key(labels)))
            .copied()
            .unwrap_or(0.0)
    }

    /// Current value of a gauge series (tests / reports).
    pub fn gauge(&self, name: &str, labels: &[(&str, String)]) -> f64 {
        let inner = self.inner.lock();
        inner
            .gauges
            .get(name)
            .and_then(|series| series.get(&label_key(labels)))
            .copied()
            .unwrap_or(0.0)
    }

    /// Renders the whole registry in the Prometheus text format
    /// (version 0.0.4): every family gets `# HELP` and `# TYPE` lines
    /// before its series.
    pub fn render(&self) -> String {
        let inner = self.inner.lock();
        let help_line = |name: &str| -> String {
            let text = inner
                .help
                .get(name)
                .map(String::as_str)
                .or_else(|| builtin_help(name))
                .unwrap_or("No description registered.");
            format!("# HELP {name} {text}\n")
        };
        let mut out = String::new();
        for (name, series) in &inner.counters {
            out.push_str(&help_line(name));
            out.push_str(&format!("# TYPE {name} counter\n"));
            for (labels, value) in series {
                out.push_str(&format!("{name}{labels} {value}\n"));
            }
        }
        for (name, series) in &inner.gauges {
            out.push_str(&help_line(name));
            out.push_str(&format!("# TYPE {name} gauge\n"));
            for (labels, value) in series {
                out.push_str(&format!("{name}{labels} {value}\n"));
            }
        }
        for (name, series) in &inner.histograms {
            out.push_str(&help_line(name));
            out.push_str(&format!("# TYPE {name} histogram\n"));
            for (labels, h) in series {
                let base = labels.trim_start_matches('{').trim_end_matches('}');
                let with = |extra: &str| -> String {
                    if base.is_empty() {
                        format!("{{{extra}}}")
                    } else {
                        format!("{{{base},{extra}}}")
                    }
                };
                for (i, b) in h.bounds.iter().enumerate() {
                    out.push_str(&format!(
                        "{name}_bucket{} {}\n",
                        with(&format!("le=\"{b}\"")),
                        h.counts[i]
                    ));
                }
                out.push_str(&format!(
                    "{name}_bucket{} {}\n",
                    with("le=\"+Inf\""),
                    h.count
                ));
                out.push_str(&format!("{name}_sum{labels} {}\n", h.sum));
                out.push_str(&format!("{name}_count{labels} {}\n", h.count));
            }
        }
        out
    }
}

/// Interprets protocol events into the metric families documented in
/// DESIGN.md §9: round latency, ring phase durations, bytes per peer,
/// prediction absolute error, and selection counts per device.
pub struct MetricsSink {
    registry: Arc<MetricsRegistry>,
    // RingEnter timestamp per round, for the ring-phase histogram.
    ring_enter_us: BTreeMap<u32, u64>,
    // Open spans by (node, span id) -> (segment name, start t_us), for
    // the per-segment latency histograms.
    open_spans: BTreeMap<(u32, u64), (String, u64)>,
}

impl MetricsSink {
    /// Wraps a shared registry.
    pub fn new(registry: Arc<MetricsRegistry>) -> Self {
        MetricsSink {
            registry,
            ring_enter_us: BTreeMap::new(),
            open_spans: BTreeMap::new(),
        }
    }
}

fn device_label(device: u32) -> [(&'static str, String); 1] {
    [("device", device.to_string())]
}

impl Sink for MetricsSink {
    fn record(&mut self, event: &Event) {
        let reg = &self.registry;
        match &event.kind {
            EventKind::LocalSteps { device, steps, .. } => {
                reg.inc_counter(
                    "hadfl_local_steps_total",
                    &device_label(*device),
                    *steps as f64,
                );
            }
            EventKind::RingEnter { round, .. } => {
                self.ring_enter_us.insert(*round, event.t_us);
            }
            EventKind::RingExit { round, dissolved } => {
                if let Some(entered) = self.ring_enter_us.remove(round) {
                    let secs = event.t_us.saturating_sub(entered) as f64 / 1e6;
                    reg.observe("hadfl_ring_phase_seconds", &[], secs, LATENCY_BUCKETS);
                }
                if *dissolved {
                    reg.inc_counter("hadfl_ring_dissolved_total", &[], 1.0);
                }
            }
            EventKind::Merge { .. } => {
                reg.inc_counter("hadfl_merges_total", &[], 1.0);
            }
            EventKind::BypassDeclared { .. } => {
                reg.inc_counter("hadfl_bypass_total", &[], 1.0);
            }
            EventKind::RingRepair { .. } => {
                reg.inc_counter("hadfl_ring_repair_total", &[], 1.0);
            }
            EventKind::RoundPlanned { selected, .. } => {
                reg.inc_counter("hadfl_rounds_total", &[], 1.0);
                for d in selected {
                    reg.inc_counter("hadfl_selected_total", &device_label(*d), 1.0);
                }
            }
            EventKind::Prediction {
                device,
                predicted,
                actual,
                ..
            } => {
                let err = (predicted - actual).abs();
                reg.set_gauge("hadfl_prediction_abs_error", &device_label(*device), err);
                reg.observe("hadfl_prediction_abs_error_hist", &[], err, ERROR_BUCKETS);
            }
            EventKind::DeviceDropped { device, .. } => {
                reg.inc_counter("hadfl_dropped_total", &device_label(*device), 1.0);
            }
            EventKind::RoundComplete { duration_us, .. } => {
                reg.observe(
                    "hadfl_round_latency_seconds",
                    &[],
                    *duration_us as f64 / 1e6,
                    LATENCY_BUCKETS,
                );
            }
            EventKind::FrameSent { dst, bytes, .. } => {
                let peer = [("peer", dst.to_string())];
                reg.inc_counter("hadfl_sent_bytes_total", &peer, *bytes as f64);
                reg.inc_counter("hadfl_sent_frames_total", &peer, 1.0);
            }
            EventKind::FrameReceived { src, bytes, .. } => {
                let peer = [("peer", src.to_string())];
                reg.inc_counter("hadfl_recv_bytes_total", &peer, *bytes as f64);
                reg.inc_counter("hadfl_recv_frames_total", &peer, 1.0);
            }
            EventKind::OpProfile {
                op,
                calls,
                self_ns,
                bytes,
                ..
            } => {
                let labels = [("op", op.clone())];
                reg.inc_counter("hadfl_op_seconds_total", &labels, *self_ns as f64 / 1e9);
                reg.inc_counter("hadfl_op_calls_total", &labels, *calls as f64);
                if *bytes > 0 {
                    reg.inc_counter("hadfl_op_bytes_total", &labels, *bytes as f64);
                }
            }
            EventKind::PoolProfile {
                region,
                dispatches,
                max_workers,
                tasks,
                busy_ns,
                park_ns,
                wall_ns,
                max_chunk_ns,
                ..
            } => {
                let labels = [("region", region.clone())];
                reg.inc_counter(
                    "hadfl_pool_busy_seconds_total",
                    &labels,
                    *busy_ns as f64 / 1e9,
                );
                reg.inc_counter(
                    "hadfl_pool_park_seconds_total",
                    &labels,
                    *park_ns as f64 / 1e9,
                );
                reg.inc_counter(
                    "hadfl_pool_wall_seconds_total",
                    &labels,
                    *wall_ns as f64 / 1e9,
                );
                reg.inc_counter("hadfl_pool_tasks_total", &labels, *tasks as f64);
                reg.inc_counter("hadfl_pool_dispatches_total", &labels, *dispatches as f64);
                reg.set_gauge("hadfl_pool_max_workers", &labels, *max_workers as f64);
                if *tasks > 0 {
                    let mean = *busy_ns as f64 / *tasks as f64;
                    let ratio = if mean > 0.0 {
                        *max_chunk_ns as f64 / mean
                    } else {
                        1.0
                    };
                    reg.set_gauge("hadfl_pool_imbalance_ratio", &labels, ratio);
                }
            }
            EventKind::SpanStart { span, name, .. } => {
                self.open_spans
                    .insert((event.node, *span), (name.clone(), event.t_us));
            }
            EventKind::SpanEnd { span, .. } => {
                if let Some((segment, started)) = self.open_spans.remove(&(event.node, *span)) {
                    let secs = event.t_us.saturating_sub(started) as f64 / 1e6;
                    reg.observe(
                        "hadfl_segment_latency_seconds",
                        &[("segment", segment)],
                        secs,
                        LATENCY_BUCKETS,
                    );
                }
            }
            _ => {}
        }
    }
}

/// Handle to the background exposition server; shuts down on
/// [`MetricsServer::shutdown`] or drop.
pub struct MetricsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl MetricsServer {
    /// The bound address (useful with a `:0` request).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the accept loop and joins the server thread.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

/// Serves `registry.render()` to every HTTP request on `addr`
/// (conventionally scraped at `/metrics`; the path is not inspected).
///
/// # Errors
///
/// Propagates bind errors.
pub fn serve_metrics(addr: &str, registry: Arc<MetricsRegistry>) -> std::io::Result<MetricsServer> {
    let listener = TcpListener::bind(addr)?;
    listener.set_nonblocking(true)?;
    let bound = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let stop_flag = Arc::clone(&stop);
    let handle = std::thread::spawn(move || {
        while !stop_flag.load(Ordering::SeqCst) {
            match listener.accept() {
                Ok((mut stream, _)) => {
                    // Drain whatever request arrived (best effort), then
                    // answer with the exposition body and close.
                    let _ = stream.set_read_timeout(Some(Duration::from_millis(200)));
                    let mut scratch = [0u8; 1024];
                    let _ = stream.read(&mut scratch);
                    let body = registry.render();
                    let response = format!(
                        "HTTP/1.1 200 OK\r\nContent-Type: text/plain; version=0.0.4\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{}",
                        body.len(),
                        body
                    );
                    let _ = stream.write_all(response.as_bytes());
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(20));
                }
                Err(_) => std::thread::sleep(Duration::from_millis(20)),
            }
        }
    });
    Ok(MetricsServer {
        addr: bound,
        stop,
        handle: Some(handle),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::SCHEMA_VERSION;

    fn event(t_us: u64, kind: EventKind) -> Event {
        Event {
            v: SCHEMA_VERSION,
            seq: 0,
            node: 0,
            t_us,
            lam: 0,
            kind,
        }
    }

    #[test]
    fn sink_aggregates_events() {
        let registry = MetricsRegistry::new();
        let mut sink = MetricsSink::new(Arc::clone(&registry));
        sink.record(&event(
            0,
            EventKind::LocalSteps {
                device: 1,
                steps: 64,
                version: 64,
            },
        ));
        sink.record(&event(
            10,
            EventKind::RingEnter {
                round: 1,
                ring: vec![0, 1],
            },
        ));
        sink.record(&event(
            30_010,
            EventKind::RingExit {
                round: 1,
                dissolved: false,
            },
        ));
        sink.record(&event(
            40_000,
            EventKind::FrameSent {
                src: 0,
                dst: 2,
                bytes: 100,
                kind: "param_accum".into(),
                lamport: 0,
            },
        ));
        let labels = [("device", "1".to_string())];
        assert_eq!(registry.counter("hadfl_local_steps_total", &labels), 64.0);
        let peer = [("peer", "2".to_string())];
        assert_eq!(registry.counter("hadfl_sent_bytes_total", &peer), 100.0);
        let text = registry.render();
        assert!(text.contains("# TYPE hadfl_local_steps_total counter"));
        assert!(text.contains("hadfl_ring_phase_seconds_bucket"));
        assert!(text.contains("hadfl_ring_phase_seconds_count 1"));
    }

    #[test]
    fn span_pairs_feed_segment_latency_histogram() {
        let registry = MetricsRegistry::new();
        let mut sink = MetricsSink::new(Arc::clone(&registry));
        sink.record(&event(
            1_000,
            EventKind::SpanStart {
                span: 1,
                parent: 0,
                name: "ring_reduce".into(),
                round: 1,
                device: 0,
            },
        ));
        // An end without a matching start is ignored.
        sink.record(&event(
            2_000,
            EventKind::SpanEnd {
                span: 99,
                round: 1,
                device: 0,
            },
        ));
        sink.record(&event(
            21_000,
            EventKind::SpanEnd {
                span: 1,
                round: 1,
                device: 0,
            },
        ));
        let text = registry.render();
        // 20 ms lands in the 0.02 bucket, inclusively.
        assert!(
            text.contains(
                "hadfl_segment_latency_seconds_bucket{segment=\"ring_reduce\",le=\"0.02\"} 1"
            ),
            "{text}"
        );
        assert!(
            text.contains("hadfl_segment_latency_seconds_count{segment=\"ring_reduce\"} 1"),
            "{text}"
        );
    }

    #[test]
    fn profile_events_feed_op_and_pool_families() {
        let registry = MetricsRegistry::new();
        let mut sink = MetricsSink::new(Arc::clone(&registry));
        sink.record(&event(
            0,
            EventKind::OpProfile {
                op: "matmul".into(),
                calls: 4,
                total_ns: 2_000_000_000,
                self_ns: 1_500_000_000,
                bytes: 4096,
            },
        ));
        sink.record(&event(
            0,
            EventKind::PoolProfile {
                region: "train_step;par".into(),
                dispatches: 2,
                max_workers: 4,
                tasks: 10,
                busy_ns: 800_000_000,
                park_ns: 200_000_000,
                wall_ns: 300_000_000,
                max_chunk_ns: 160_000_000,
                min_chunk_ns: 40_000_000,
            },
        ));
        let op = [("op", "matmul".to_string())];
        assert_eq!(registry.counter("hadfl_op_seconds_total", &op), 1.5);
        assert_eq!(registry.counter("hadfl_op_calls_total", &op), 4.0);
        assert_eq!(registry.counter("hadfl_op_bytes_total", &op), 4096.0);
        let region = [("region", "train_step;par".to_string())];
        assert_eq!(
            registry.counter("hadfl_pool_busy_seconds_total", &region),
            0.8
        );
        assert_eq!(
            registry.counter("hadfl_pool_park_seconds_total", &region),
            0.2
        );
        assert_eq!(registry.counter("hadfl_pool_tasks_total", &region), 10.0);
        assert_eq!(registry.gauge("hadfl_pool_max_workers", &region), 4.0);
        // imbalance = max_chunk / mean_chunk = 160ms / 80ms = 2.
        assert_eq!(registry.gauge("hadfl_pool_imbalance_ratio", &region), 2.0);
    }

    #[test]
    fn histogram_buckets_are_inclusive_upper_bounds() {
        let registry = MetricsRegistry::new();
        // Exactly on a boundary counts in that bucket (le is <=).
        registry.observe("h", &[], 0.001, LATENCY_BUCKETS);
        // Past the largest finite bound: only +Inf counts it.
        registry.observe("h", &[], 11.0, LATENCY_BUCKETS);
        let text = registry.render();
        assert!(text.contains("h_bucket{le=\"0.001\"} 1"), "{text}");
        assert!(text.contains("h_bucket{le=\"10\"} 1"), "{text}");
        assert!(text.contains("h_bucket{le=\"+Inf\"} 2"), "{text}");
    }

    #[test]
    fn histogram_sum_and_count_stay_consistent() {
        let registry = MetricsRegistry::new();
        let values = [0.004, 0.05, 0.3, 2.0];
        for v in values {
            registry.observe("h", &[], v, LATENCY_BUCKETS);
        }
        let text = registry.render();
        let sum: f64 = values.iter().sum();
        assert!(text.contains(&format!("h_sum {sum}")), "{text}");
        assert!(text.contains("h_count 4"), "{text}");
        // Cumulative buckets never decrease and end at count.
        let mut last = 0u64;
        for line in text.lines().filter(|l| l.starts_with("h_bucket")) {
            let n: u64 = line.rsplit(' ').next().unwrap().parse().unwrap();
            assert!(n >= last, "{text}");
            last = n;
        }
        assert_eq!(last, 4, "{text}");
    }

    #[test]
    fn empty_registry_renders_no_series() {
        let registry = MetricsRegistry::new();
        assert_eq!(registry.render(), "");
        // A counter series alone must not invent histogram output.
        registry.inc_counter("hadfl_rounds_total", &[], 1.0);
        let text = registry.render();
        assert!(!text.contains("_bucket"), "{text}");
        assert!(!text.contains("histogram"), "{text}");
    }

    #[test]
    fn exposition_format_has_help_and_type_for_every_family() {
        let registry = MetricsRegistry::new();
        let mut sink = MetricsSink::new(Arc::clone(&registry));
        sink.record(&event(
            0,
            EventKind::LocalSteps {
                device: 1,
                steps: 64,
                version: 64,
            },
        ));
        sink.record(&event(
            0,
            EventKind::Prediction {
                round: 1,
                device: 1,
                predicted: 10.0,
                actual: 8.0,
            },
        ));
        sink.record(&event(
            0,
            EventKind::RoundComplete {
                round: 1,
                duration_us: 5_000,
            },
        ));
        registry.describe("fleet_custom_total", "A collector-registered family.");
        registry.inc_counter("fleet_custom_total", &[], 2.0);
        registry.inc_counter("undescribed_total", &[], 1.0);
        let text = registry.render();
        // Every series line's family must be introduced by # HELP then
        // # TYPE, in that order, exactly once.
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            let series = line.split(&['{', ' '][..]).next().expect("series name");
            let family = series
                .trim_end_matches("_bucket")
                .trim_end_matches("_sum")
                .trim_end_matches("_count");
            let help = format!("# HELP {family} ");
            let tipe = format!("# TYPE {family} ");
            let help_at = text
                .find(&help)
                .unwrap_or_else(|| panic!("no HELP for {family}: {text}"));
            let type_at = text
                .find(&tipe)
                .unwrap_or_else(|| panic!("no TYPE for {family}: {text}"));
            assert!(help_at < type_at, "HELP must precede TYPE for {family}");
            assert_eq!(text.matches(&help).count(), 1, "{family}");
        }
        assert!(
            text.contains("# HELP fleet_custom_total A collector-registered family."),
            "{text}"
        );
        assert!(
            text.contains("# HELP hadfl_local_steps_total Local SGD steps completed, by device."),
            "{text}"
        );
        assert!(
            text.contains("# HELP undescribed_total No description registered."),
            "{text}"
        );
        assert!(
            text.contains("# TYPE hadfl_round_latency_seconds histogram"),
            "{text}"
        );
    }

    #[test]
    fn server_answers_http() {
        let registry = MetricsRegistry::new();
        registry.inc_counter("hadfl_rounds_total", &[], 3.0);
        let server = serve_metrics("127.0.0.1:0", Arc::clone(&registry)).unwrap();
        let mut stream = std::net::TcpStream::connect(server.addr()).unwrap();
        stream
            .write_all(b"GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n")
            .unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        assert!(response.starts_with("HTTP/1.1 200 OK"), "{response}");
        assert!(
            response.contains("Content-Type: text/plain; version=0.0.4"),
            "{response}"
        );
        assert!(response.contains("# HELP hadfl_rounds_total"), "{response}");
        assert!(response.contains("hadfl_rounds_total 3"), "{response}");
        server.shutdown();
    }
}
