//! The typed event vocabulary of the HADFL runtime.
//!
//! One [`Event`] is one observable protocol fact: a device entered a
//! ring, the coordinator planned a round, a frame crossed the wire.
//! Events are schema-versioned ([`SCHEMA_VERSION`]) and serialize to
//! exactly one JSON object per line in the JSONL sink, so logs from
//! different nodes — or different releases — can be merged and audited
//! offline by `hadfl-trace`.
//!
//! Timestamps are whatever the emitting participant's
//! `hadfl::clock::Clock` read at the moment of emission, in
//! microseconds. Under a `ManualClock` schedule they are fully
//! deterministic; under `WallClock` they are per-process monotonic
//! readings (epoch = process start), which is all the per-node
//! timeline analysis needs.

use serde::{Deserialize, Serialize};

/// Version stamp carried by every event (`v` field). Bump on any
/// incompatible change to [`Event`] or [`EventKind`].
pub const SCHEMA_VERSION: u32 = 1;

/// One timestamped, sequence-numbered protocol event.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Event {
    /// Schema version ([`SCHEMA_VERSION`] at write time).
    pub v: u32,
    /// Per-node emission counter, strictly increasing from 0. Breaks
    /// timestamp ties and detects dropped lines.
    pub seq: u64,
    /// The emitting participant: device id, or `k` for the coordinator
    /// of a `k`-device cluster.
    pub node: u32,
    /// Clock reading at emission, microseconds.
    pub t_us: u64,
    /// The node's Lamport clock at emission (see
    /// [`crate::LamportClock`]): bumped on every frame send, max-merged
    /// on every receive. 0 means "no causal exchange yet" — including
    /// every event from pre-stamp logs, whose missing field
    /// deserializes to 0 and keeps them valid under `SCHEMA_VERSION` 1
    /// (the addition is backward compatible, so no bump).
    #[serde(default)]
    pub lam: u64,
    /// What happened.
    pub kind: EventKind,
}

/// The event taxonomy (see DESIGN.md §9 "Observability").
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum EventKind {
    /// A device's protocol loop started.
    DeviceStarted {
        /// The device.
        device: u32,
    },
    /// A device's protocol loop ended (Shutdown processed).
    DeviceFinished {
        /// The device.
        device: u32,
        /// Final cumulative parameter version (local step count).
        version: u64,
    },
    /// A batch of local SGD steps completed (batched to keep the hot
    /// training loop out of the sink path).
    LocalSteps {
        /// The training device.
        device: u32,
        /// Steps in this batch.
        steps: u64,
        /// Cumulative version after the batch.
        version: u64,
    },
    /// A selected device received its `RoundPlan` and entered the ring.
    RingEnter {
        /// Synchronization round.
        round: u32,
        /// The planned ring order.
        ring: Vec<u32>,
    },
    /// The device left the ring phase and resumed training (or
    /// abandoned the round).
    RingExit {
        /// Synchronization round.
        round: u32,
        /// True if the ring dissolved without producing a merge for
        /// this device.
        dissolved: bool,
    },
    /// A running parameter sum was accumulated and forwarded
    /// (the reduce half of the ring).
    Accumulate {
        /// Synchronization round.
        round: u32,
        /// Hop count of the accumulation after this device's
        /// contribution.
        hops: u32,
    },
    /// Merged parameters were installed (the distribute half).
    Merge {
        /// Synchronization round.
        round: u32,
        /// Live ring members at merge time.
        participants: u32,
    },
    /// A handshake probe expired: the device declared its upstream dead
    /// and warned the ring (§III-D).
    BypassDeclared {
        /// Synchronization round.
        round: u32,
        /// The device found dead.
        dead: u32,
    },
    /// A `BypassWarning` was acted on: the ring was repaired around the
    /// dead member and the pending frame re-sent.
    RingRepair {
        /// Synchronization round.
        round: u32,
        /// The bypassed device.
        dead: u32,
    },
    /// The coordinator planned a round (Eq. 8 selection draw).
    /// `versions` and `probabilities` are parallel to `available`.
    RoundPlanned {
        /// Synchronization round.
        round: u32,
        /// Devices that reported in time.
        available: Vec<u32>,
        /// Reported cumulative versions.
        versions: Vec<f64>,
        /// Normalized Eq. 8 first-draw selection probabilities.
        probabilities: Vec<f64>,
        /// The `N_p` devices drawn into the ring.
        selected: Vec<u32>,
        /// Available but unselected devices (broadcast targets).
        unselected: Vec<u32>,
        /// Ring member elected to broadcast the merged model.
        broadcaster: u32,
    },
    /// Eq. 7 forecast versus the actual reported version, logged by the
    /// coordinator before feeding the observation back to the
    /// predictor.
    Prediction {
        /// Synchronization round.
        round: u32,
        /// The device predicted.
        device: u32,
        /// Brown's double-exponential-smoothing forecast.
        predicted: f64,
        /// The version the device actually reported.
        actual: f64,
    },
    /// The coordinator gave up on a device (missed report deadline).
    DeviceDropped {
        /// Round in which the device went silent.
        round: u32,
        /// The dropped device.
        device: u32,
    },
    /// The coordinator completed a round's bookkeeping; `duration_us`
    /// spans window start to plan emission.
    RoundComplete {
        /// Synchronization round.
        round: u32,
        /// Window + collect duration, microseconds.
        duration_us: u64,
    },
    /// The coordinator broadcast Shutdown after the final round.
    ShutdownSent {
        /// The last completed round.
        round: u32,
    },
    /// A protocol segment opened on a device (see DESIGN.md §9's span
    /// taxonomy: `train`, `wait_for_plan`, `ring_reduce`,
    /// `ring_gather`, `bypass_repair`, `merge`, `broadcast_blend`).
    /// Span ids are per-node counters starting at 1; the analyzer
    /// keys spans by `(node, span)`.
    SpanStart {
        /// Per-node span id (unique within the emitting node's log).
        span: u64,
        /// Enclosing span's id, or 0 for a top-level span.
        parent: u64,
        /// Segment name from the fixed taxonomy.
        name: String,
        /// Synchronization round the segment belongs to.
        round: u32,
        /// The device the segment ran on.
        device: u32,
    },
    /// The matching close of a [`EventKind::SpanStart`]; duration is
    /// the `t_us` difference (same node, so no cross-host skew).
    SpanEnd {
        /// The span being closed.
        span: u64,
        /// Synchronization round (restated for self-contained lines).
        round: u32,
        /// The device (restated).
        device: u32,
    },
    /// A payload frame left this node. Mirrors exactly one
    /// `NetStats::record` call on the sending port — framing bytes,
    /// hellos, and heartbeats are *not* events, so summed `bytes`
    /// reconcile with the payload ledger.
    FrameSent {
        /// Sending participant.
        src: u32,
        /// Receiving participant.
        dst: u32,
        /// Encoded payload length.
        bytes: u64,
        /// Wire message kind (`Message::kind()`).
        kind: String,
        /// The causal stamp sealed into the frame — strictly
        /// increasing per sender, so `(src, lamport)` uniquely matches
        /// this send to its receive. 0 in pre-stamp logs.
        #[serde(default)]
        lamport: u64,
    },
    /// A payload frame arrived at this node (same contract as
    /// [`EventKind::FrameSent`], receive side).
    FrameReceived {
        /// Sending participant.
        src: u32,
        /// Receiving participant.
        dst: u32,
        /// Encoded payload length.
        bytes: u64,
        /// Wire message kind (`Message::kind()`).
        kind: String,
        /// The stamp carried by the frame (the *sender's* tick, not
        /// the receiver's merged clock). 0 in pre-stamp logs.
        #[serde(default)]
        lamport: u64,
    },
    /// The node's own `NetStats` ledger at shutdown — the ground truth
    /// the per-frame events must sum to (parity-checked by
    /// `hadfl-trace --check`).
    Ledger {
        /// Total payload bytes this node sent.
        sent_bytes: u64,
        /// Total payload bytes this node received.
        recv_bytes: u64,
        /// Payload frames recorded (sends + receives).
        frames: u64,
    },
    /// One profiled operation's aggregate from the in-process compute
    /// profiler (`hadfl-prof`), emitted once per op when a node's run
    /// ends. `op` is the leaf scope name (`matmul`, `wire_encode`, …),
    /// so a fleet's `hadfl_op_seconds` metrics sum across nodes.
    OpProfile {
        /// Leaf scope name.
        op: String,
        /// Times the scope closed.
        calls: u64,
        /// Total nanoseconds inside the scope (including children).
        total_ns: u64,
        /// Nanoseconds not covered by child scopes.
        self_ns: u64,
        /// Bytes processed, where the site reports them (0 otherwise).
        bytes: u64,
    },
    /// One pool region's dispatch aggregate from `hadfl-prof`: where a
    /// parallel region's wall time went (busy vs parked) and how even
    /// its chunks were. Emitted once per region at run end.
    PoolProfile {
        /// The dispatcher's scope path when the region opened.
        region: String,
        /// Dispatches through the region.
        dispatches: u64,
        /// Most workers any dispatch used.
        max_workers: u64,
        /// Tasks (chunks) executed.
        tasks: u64,
        /// Nanoseconds workers spent computing tasks.
        busy_ns: u64,
        /// Worker lifetime not spent on tasks.
        park_ns: u64,
        /// Dispatcher-side region wall nanoseconds.
        wall_ns: u64,
        /// Slowest single chunk.
        max_chunk_ns: u64,
        /// Fastest single chunk.
        min_chunk_ns: u64,
    },
}

impl Event {
    /// Serializes to the canonical single-line JSON form.
    ///
    /// # Errors
    ///
    /// Returns the serializer's message if the event holds a non-finite
    /// float (the schema forbids them; emitters must sanitize).
    pub fn to_json(&self) -> Result<String, String> {
        serde_json::to_string(self).map_err(|e| e.to_string())
    }

    /// Parses one JSONL line.
    ///
    /// # Errors
    ///
    /// Returns a description of the malformed line.
    pub fn from_json(line: &str) -> Result<Event, String> {
        serde_json::from_str(line).map_err(|e| e.to_string())
    }

    /// The event's kind as a short stable label (metric/report keys).
    pub fn kind_label(&self) -> &'static str {
        match &self.kind {
            EventKind::DeviceStarted { .. } => "device_started",
            EventKind::DeviceFinished { .. } => "device_finished",
            EventKind::LocalSteps { .. } => "local_steps",
            EventKind::RingEnter { .. } => "ring_enter",
            EventKind::RingExit { .. } => "ring_exit",
            EventKind::Accumulate { .. } => "accumulate",
            EventKind::Merge { .. } => "merge",
            EventKind::BypassDeclared { .. } => "bypass_declared",
            EventKind::RingRepair { .. } => "ring_repair",
            EventKind::RoundPlanned { .. } => "round_planned",
            EventKind::Prediction { .. } => "prediction",
            EventKind::DeviceDropped { .. } => "device_dropped",
            EventKind::RoundComplete { .. } => "round_complete",
            EventKind::ShutdownSent { .. } => "shutdown_sent",
            EventKind::SpanStart { .. } => "span_start",
            EventKind::SpanEnd { .. } => "span_end",
            EventKind::FrameSent { .. } => "frame_sent",
            EventKind::FrameReceived { .. } => "frame_received",
            EventKind::Ledger { .. } => "ledger",
            EventKind::OpProfile { .. } => "op_profile",
            EventKind::PoolProfile { .. } => "pool_profile",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_every_variant() {
        let kinds = vec![
            EventKind::DeviceStarted { device: 1 },
            EventKind::DeviceFinished {
                device: 1,
                version: 42,
            },
            EventKind::LocalSteps {
                device: 2,
                steps: 64,
                version: 128,
            },
            EventKind::RingEnter {
                round: 3,
                ring: vec![0, 2, 1],
            },
            EventKind::RingExit {
                round: 3,
                dissolved: false,
            },
            EventKind::Accumulate { round: 3, hops: 2 },
            EventKind::Merge {
                round: 3,
                participants: 3,
            },
            EventKind::BypassDeclared { round: 4, dead: 2 },
            EventKind::RingRepair { round: 4, dead: 2 },
            EventKind::RoundPlanned {
                round: 5,
                available: vec![0, 1, 2],
                versions: vec![10.0, 20.0, 30.0],
                probabilities: vec![0.25, 0.5, 0.25],
                selected: vec![1, 2],
                unselected: vec![0],
                broadcaster: 1,
            },
            EventKind::Prediction {
                round: 5,
                device: 0,
                predicted: 11.5,
                actual: 10.0,
            },
            EventKind::DeviceDropped {
                round: 6,
                device: 3,
            },
            EventKind::RoundComplete {
                round: 6,
                duration_us: 120_000,
            },
            EventKind::ShutdownSent { round: 6 },
            EventKind::SpanStart {
                span: 3,
                parent: 0,
                name: "ring_reduce".into(),
                round: 5,
                device: 1,
            },
            EventKind::SpanEnd {
                span: 3,
                round: 5,
                device: 1,
            },
            EventKind::FrameSent {
                src: 0,
                dst: 4,
                bytes: 17,
                kind: "version_report".into(),
                lamport: 9,
            },
            EventKind::FrameReceived {
                src: 4,
                dst: 0,
                bytes: 21,
                kind: "round_plan".into(),
                lamport: 12,
            },
            EventKind::Ledger {
                sent_bytes: 100,
                recv_bytes: 90,
                frames: 12,
            },
            EventKind::OpProfile {
                op: "matmul".into(),
                calls: 128,
                total_ns: 2_000_000,
                self_ns: 1_800_000,
                bytes: 4096,
            },
            EventKind::PoolProfile {
                region: "train_step;matmul".into(),
                dispatches: 128,
                max_workers: 4,
                tasks: 1024,
                busy_ns: 1_500_000,
                park_ns: 300_000,
                wall_ns: 600_000,
                max_chunk_ns: 4_000,
                min_chunk_ns: 900,
            },
        ];
        for (i, kind) in kinds.into_iter().enumerate() {
            let event = Event {
                v: SCHEMA_VERSION,
                seq: i as u64,
                node: 0,
                t_us: 1_000 * i as u64,
                lam: i as u64 * 2,
                kind,
            };
            let line = event.to_json().unwrap();
            assert!(!line.contains('\n'), "one line per event: {line}");
            let back = Event::from_json(&line).unwrap();
            assert_eq!(back, event);
        }
    }

    #[test]
    fn pre_stamp_lines_still_parse() {
        // A line written before the causal-stamp fields existed: no
        // `lam` on the envelope, no `lamport` on the frame event. Both
        // default to 0 — the schema addition is backward compatible.
        let line = "{\"v\":1,\"seq\":7,\"node\":2,\"t_us\":500,\"kind\":{\"FrameSent\":\
                    {\"src\":2,\"dst\":4,\"bytes\":17,\"kind\":\"version_report\"}}}";
        let event = Event::from_json(line).unwrap();
        assert_eq!(event.lam, 0);
        let EventKind::FrameSent { lamport, bytes, .. } = event.kind else {
            panic!("wrong kind");
        };
        assert_eq!(lamport, 0);
        assert_eq!(bytes, 17);
    }

    #[test]
    fn rejects_garbage() {
        assert!(Event::from_json("").is_err());
        assert!(Event::from_json("not json").is_err());
        assert!(Event::from_json("{\"v\":1}").is_err());
        assert!(Event::from_json(
            "{\"v\":1,\"seq\":0,\"node\":0,\"t_us\":0,\"kind\":\"NoSuchKind\"}"
        )
        .is_err());
    }
}
