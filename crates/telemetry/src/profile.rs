//! Renders merged [`hadfl_prof`] dumps for `hadfl-trace profile`.
//!
//! The binary loads one `profile-node-<id>.json` per participant,
//! merges them with [`hadfl_prof::merge_dumps`], and hands the result
//! here. Three views come out:
//!
//! - a call tree indented from the `;`-joined stack paths, with
//!   total / self time, call counts, and bytes per node;
//! - an op table: stacks summed by leaf op name, sorted by self time,
//!   so `matmul` reached through `dense_fwd` and `conv2d_fwd` shows as
//!   one line;
//! - a pool table with a utilization verdict per region (parked
//!   workers, chunk imbalance).
//!
//! [`check_profile`] backs `--check`: every pool region whose mean
//! dispatch is long enough to measure must account for ≥95% of its
//! dispatch wall time as busy+park — anything less means the pool
//! instrumentation lost track of worker time.

use hadfl_prof::{PoolRow, ProfileDump};

/// Minimum `(busy+park)/wall` fraction a healthy pool region must
/// account for (the acceptance bar from the profiler's design).
pub const MIN_ACCOUNTED_FRACTION: f64 = 0.95;

/// Mean dispatch wall below which the accounted-fraction floor does
/// not apply. A dispatch brackets its busy window with two clock
/// reads plus region bookkeeping — fixed cost that is noise on a 40µs
/// matmul band but a built-in 5-15% of a 3µs elementwise dispatch, on
/// any host. Micro-dispatch regions are still reported (and flagged
/// by the imbalance/parked verdicts); they just can't fail the floor.
pub const MIN_CHECKED_DISPATCH_NS: u64 = 20_000;

/// Human-scaled nanoseconds: `123ns`, `12.3us`, `4.56ms`, `1.23s`.
fn fmt_ns(ns: u64) -> String {
    if ns < 1_000 {
        format!("{ns}ns")
    } else if ns < 1_000_000 {
        format!("{:.1}us", ns as f64 / 1_000.0)
    } else if ns < 1_000_000_000 {
        format!("{:.2}ms", ns as f64 / 1_000_000.0)
    } else {
        format!("{:.2}s", ns as f64 / 1_000_000_000.0)
    }
}

/// Human-scaled byte counts: `512B`, `4.0KB`, `1.2MB`.
fn fmt_bytes(bytes: u64) -> String {
    if bytes < 1_024 {
        format!("{bytes}B")
    } else if bytes < 1_024 * 1_024 {
        format!("{:.1}KB", bytes as f64 / 1_024.0)
    } else {
        format!("{:.1}MB", bytes as f64 / (1_024.0 * 1_024.0))
    }
}

/// One-line health verdict for a pool region.
///
/// - dispatch wall time exceeding the dispatcher's calibrated serial
///   estimate ⇒ parallelizing made the op *slower* than just running
///   it on the dispatching thread — the threshold for this op class is
///   wrong (serial-better);
/// - busy fraction below 50% of `workers × wall` ⇒ the workers spent
///   most of the region parked: the region is too small for its worker
///   count or spawn overhead dominates;
/// - slowest chunk more than 2× the mean ⇒ chunking is too coarse to
///   balance;
/// - otherwise the region is healthy.
pub fn pool_verdict(row: &PoolRow) -> String {
    if row.wall_ns == 0 || row.tasks == 0 {
        return "no data".to_string();
    }
    let busy = row.busy_fraction();
    let imbalance = row.imbalance();
    // Both sides are sums over the same dispatches, so comparing the
    // totals compares the means.
    if row.serial_est_ns > 0 && row.wall_ns > row.serial_est_ns {
        format!(
            "serial-better — {:.1}x slower than the calibrated serial estimate: \
             this op should not have parallelized at this size",
            row.wall_ns as f64 / row.serial_est_ns as f64
        )
    } else if busy < 0.5 {
        format!(
            "workers {:.0}% parked — region too small for {} workers or spawn overhead dominates",
            (1.0 - busy) * 100.0,
            row.max_workers
        )
    } else if imbalance > 2.0 {
        format!("chunking too coarse — slowest chunk {imbalance:.1}x the mean")
    } else {
        "healthy".to_string()
    }
}

/// Structural checks for `--check`. Returns one message per violation;
/// empty means the profile passes.
pub fn check_profile(dump: &ProfileDump) -> Vec<String> {
    let mut errors = Vec::new();
    for pool in &dump.pools {
        if pool.wall_ns == 0 || pool.wall_ns < pool.dispatches.max(1) * MIN_CHECKED_DISPATCH_NS {
            continue;
        }
        let accounted = pool.accounted_fraction();
        if accounted < MIN_ACCOUNTED_FRACTION {
            errors.push(format!(
                "pool region '{}': busy+park accounts for only {:.1}% of dispatch wall time \
                 (floor {:.0}%)",
                pool.region,
                accounted * 100.0,
                MIN_ACCOUNTED_FRACTION * 100.0
            ));
        }
    }
    for stack in &dump.stacks {
        if stack.self_ns > stack.total_ns {
            errors.push(format!(
                "stack '{}': self time {} exceeds total {}",
                stack.stack, stack.self_ns, stack.total_ns
            ));
        }
    }
    errors
}

/// The full text report for a merged dump: call tree, op table, pool
/// table with verdicts. Deterministic — rows come out in the dump's
/// own (sorted) order, ops by descending self time with name
/// tie-break.
pub fn render_profile(dump: &ProfileDump, nodes: usize) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "== merged profile: {nodes} node(s), {} stack(s), {} pool region(s) ==\n",
        dump.stacks.len(),
        dump.pools.len()
    ));

    if dump.stacks.is_empty() {
        out.push_str("no scopes recorded\n");
    } else {
        out.push_str("\ncall tree (total / self / calls / bytes):\n");
        // Stack paths arrive sorted, so a parent's row always precedes
        // its children's; depth = segment count gives the indent.
        let name_width = dump
            .stacks
            .iter()
            .map(|row| {
                let depth = row.stack.matches(';').count();
                let leaf = row.stack.rsplit(';').next().unwrap_or(&row.stack);
                2 * depth + leaf.len()
            })
            .max()
            .unwrap_or(0)
            .max(12);
        for row in &dump.stacks {
            let depth = row.stack.matches(';').count();
            let leaf = row.stack.rsplit(';').next().unwrap_or(&row.stack);
            let bytes = if row.bytes > 0 {
                format!("  {}", fmt_bytes(row.bytes))
            } else {
                String::new()
            };
            out.push_str(&format!(
                "  {blank:indent$}{leaf:<width$}  {total:>9} {selft:>9}  x{count}{bytes}\n",
                blank = "",
                indent = 2 * depth,
                width = name_width - 2 * depth,
                total = fmt_ns(row.total_ns),
                selft = fmt_ns(row.self_ns),
                count = row.count,
            ));
        }

        // The op table folds every path ending in the same leaf into
        // one row — the per-kernel cost regardless of caller.
        let mut ops: std::collections::BTreeMap<&str, (u64, u64, u64)> =
            std::collections::BTreeMap::new();
        for row in &dump.stacks {
            let leaf = row.stack.rsplit(';').next().unwrap_or(&row.stack);
            let agg = ops.entry(leaf).or_default();
            agg.0 += row.count;
            agg.1 += row.self_ns;
            agg.2 += row.bytes;
        }
        let mut rows: Vec<(&str, u64, u64, u64)> = ops
            .into_iter()
            .map(|(op, (calls, self_ns, bytes))| (op, calls, self_ns, bytes))
            .collect();
        rows.sort_by(|a, b| b.2.cmp(&a.2).then(a.0.cmp(b.0)));
        let total_self: u64 = rows.iter().map(|r| r.2).sum();
        out.push_str("\nops by self time:\n");
        for (op, calls, self_ns, bytes) in rows {
            let share = if total_self > 0 {
                100.0 * self_ns as f64 / total_self as f64
            } else {
                0.0
            };
            let bytes = if bytes > 0 {
                format!("  {}", fmt_bytes(bytes))
            } else {
                String::new()
            };
            out.push_str(&format!(
                "  {op:<20} {selft:>9} ({share:>4.1}%)  x{calls}{bytes}\n",
                selft = fmt_ns(self_ns),
            ));
        }
    }

    if !dump.pools.is_empty() {
        out.push_str("\npool regions:\n");
        for pool in &dump.pools {
            out.push_str(&format!(
                "  {region}: {workers} worker(s), {tasks} task(s)/{dispatches} dispatch(es), \
                 busy {busy:.0}%, accounted {acct:.0}%, imbalance {imb:.2} -> {verdict}\n",
                region = pool.region,
                workers = pool.max_workers,
                tasks = pool.tasks,
                dispatches = pool.dispatches,
                busy = pool.busy_fraction() * 100.0,
                acct = pool.accounted_fraction() * 100.0,
                imb = pool.imbalance(),
                verdict = pool_verdict(pool),
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use hadfl_prof::{StackRow, PROF_SCHEMA_VERSION};

    fn dump() -> ProfileDump {
        ProfileDump {
            v: PROF_SCHEMA_VERSION,
            node: 0,
            stacks: vec![
                StackRow {
                    stack: "train_step".into(),
                    count: 8,
                    total_ns: 12_000_000,
                    self_ns: 2_000_000,
                    bytes: 0,
                },
                StackRow {
                    stack: "train_step;dense_fwd".into(),
                    count: 8,
                    total_ns: 6_000_000,
                    self_ns: 1_000_000,
                    bytes: 0,
                },
                StackRow {
                    stack: "train_step;dense_fwd;matmul".into(),
                    count: 8,
                    total_ns: 5_000_000,
                    self_ns: 5_000_000,
                    bytes: 2 * 1024 * 1024,
                },
            ],
            pools: vec![PoolRow {
                region: "train_step;dense_fwd;matmul;par".into(),
                dispatches: 8,
                max_workers: 4,
                tasks: 32,
                busy_ns: 4_000_000,
                park_ns: 1_000_000,
                wake_ns: 0,
                wall_ns: 1_300_000,
                serial_est_ns: 2_000_000,
                max_chunk_ns: 200_000,
                min_chunk_ns: 100_000,
            }],
        }
    }

    #[test]
    fn tree_indents_by_depth_and_ops_fold_by_leaf() {
        let text = render_profile(&dump(), 2);
        assert!(text.contains("2 node(s), 3 stack(s)"), "{text}");
        assert!(text.contains("  train_step "), "{text}");
        assert!(text.contains("    dense_fwd"), "{text}");
        assert!(text.contains("      matmul"), "{text}");
        // matmul dominates self time, so it leads the op table.
        let ops_at = text.find("ops by self time").unwrap();
        let first_op = text[ops_at..].lines().nth(1).unwrap();
        assert!(first_op.trim_start().starts_with("matmul"), "{first_op}");
        assert!(text.contains("2.0MB"), "{text}");
    }

    #[test]
    fn healthy_pool_gets_a_healthy_verdict() {
        let row = &dump().pools[0];
        // busy 4ms over 4 workers x 1.3ms wall = 77%, imbalance
        // 200us / 125us = 1.6 -> healthy.
        assert_eq!(pool_verdict(row), "healthy");
        assert!(check_profile(&dump()).is_empty());
    }

    #[test]
    fn parked_pool_and_coarse_chunks_are_called_out() {
        let mut row = dump().pools[0].clone();
        row.busy_ns = 1_000_000;
        row.park_ns = 4_000_000;
        assert!(
            pool_verdict(&row).contains("parked"),
            "{}",
            pool_verdict(&row)
        );
        let mut coarse = dump().pools[0].clone();
        coarse.max_chunk_ns = 500_000;
        assert!(
            pool_verdict(&coarse).contains("too coarse"),
            "{}",
            pool_verdict(&coarse)
        );
    }

    #[test]
    fn check_flags_unaccounted_wall_time() {
        let mut d = dump();
        d.pools[0].busy_ns = 100_000;
        d.pools[0].park_ns = 100_000;
        let errors = check_profile(&d);
        assert_eq!(errors.len(), 1);
        assert!(
            errors[0].contains("busy+park accounts for only"),
            "{}",
            errors[0]
        );
    }

    #[test]
    fn micro_dispatch_regions_are_exempt_from_the_floor() {
        // Same poorly-accounted region, but the wall time spread over
        // enough dispatches that each one averages under 20µs: the
        // fixed per-dispatch measurement cost explains the gap, so
        // the floor must not fire.
        let mut d = dump();
        d.pools[0].busy_ns = 100_000;
        d.pools[0].park_ns = 100_000;
        d.pools[0].dispatches = 100;
        assert!(check_profile(&d).is_empty(), "{:?}", check_profile(&d));
    }

    #[test]
    fn serial_better_dispatches_are_called_out() {
        // Wall 1.3ms against a 1.0ms calibrated serial estimate: the
        // dispatch lost to just running the op on the calling thread.
        let mut row = dump().pools[0].clone();
        row.serial_est_ns = 1_000_000;
        let v = pool_verdict(&row);
        assert!(v.contains("serial-better"), "{v}");
        assert!(v.contains("1.3x"), "{v}");
        // No estimate recorded (pre-autotune dump) -> cannot fire.
        row.serial_est_ns = 0;
        assert!(!pool_verdict(&row).contains("serial-better"));
        // Estimate above wall (parallelism won) -> cannot fire; the
        // healthy fixture already carries such an estimate.
        assert_eq!(pool_verdict(&dump().pools[0]), "healthy");
    }

    #[test]
    fn verdict_without_data_says_so() {
        let mut row = dump().pools[0].clone();
        row.tasks = 0;
        assert_eq!(pool_verdict(&row), "no data");
    }
}
