//! Offline analysis of merged event logs: the library behind the
//! `hadfl-trace` binary.
//!
//! Input is one JSONL log per node (tolerant parsing: malformed lines
//! are counted, not fatal). The analyzer merges the per-node streams
//! into one timeline and derives the paper's headline diagnostics:
//!
//! - per-round prediction absolute error (Eq. 7 forecast vs. actual),
//! - selection-frequency histogram vs. the Eq. 8 expectation logged by
//!   the coordinator,
//! - per-device ring-blocked ("straggler idle") time,
//! - communication volume, checked against both each node's `NetStats`
//!   ledger (exact) and the paper's 2·K·M per-round ring bound.

use std::collections::BTreeMap;

use crate::event::{Event, EventKind, SCHEMA_VERSION};

/// One node's parsed log.
#[derive(Debug, Clone, Default)]
pub struct ParsedLog {
    /// Events in file order.
    pub events: Vec<Event>,
    /// Lines that failed to parse (blank lines are ignored, not
    /// counted).
    pub garbage_lines: usize,
}

/// Parses one JSONL document, skipping malformed lines.
pub fn parse_jsonl(text: &str) -> ParsedLog {
    let mut log = ParsedLog::default();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        match Event::from_json(line) {
            Ok(event) => log.events.push(event),
            Err(_) => log.garbage_lines += 1,
        }
    }
    log
}

/// Merges per-node logs into one timeline.
///
/// When any event carries a Lamport stamp (`lam > 0`) the order is
/// `(lam, node, seq)` — a linear extension of happens-before, immune
/// to cross-node wall-clock skew: a frame's receive always sorts after
/// its send because the receiver max-merged the sender's stamp. Each
/// node's own events stay in `seq` order because its clock is
/// monotonic. Pre-stamp logs (all `lam == 0`) fall back to the legacy
/// `(t_us, node, seq)` wall-clock order.
pub fn merge(logs: &[ParsedLog]) -> Vec<Event> {
    let mut all: Vec<Event> = logs.iter().flat_map(|l| l.events.clone()).collect();
    if all.iter().any(|e| e.lam > 0) {
        all.sort_by_key(|e| (e.lam, e.node, e.seq));
    } else {
        all.sort_by_key(|e| (e.t_us, e.node, e.seq));
    }
    all
}

/// Per-node frame-event totals versus the node's own [`EventKind::Ledger`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LedgerCheck {
    /// The node.
    pub node: u32,
    /// Bytes summed over the node's `FrameSent` events.
    pub sent_event_bytes: u64,
    /// Bytes summed over the node's `FrameReceived` events.
    pub recv_event_bytes: u64,
    /// `FrameSent` + `FrameReceived` events.
    pub event_frames: u64,
    /// The node's `Ledger` event, if it emitted one.
    pub ledger: Option<(u64, u64, u64)>,
}

impl LedgerCheck {
    /// True when the per-frame events reproduce the ledger exactly.
    pub fn matches(&self) -> bool {
        match self.ledger {
            Some((sent, recv, frames)) => {
                self.sent_event_bytes == sent
                    && self.recv_event_bytes == recv
                    && self.event_frames == frames
            }
            None => false,
        }
    }
}

/// Sums each node's frame events and pairs them with its ledger.
pub fn ledger_parity(events: &[Event]) -> Vec<LedgerCheck> {
    let mut checks: BTreeMap<u32, LedgerCheck> = BTreeMap::new();
    for event in events {
        let entry = checks.entry(event.node).or_insert_with(|| LedgerCheck {
            node: event.node,
            sent_event_bytes: 0,
            recv_event_bytes: 0,
            event_frames: 0,
            ledger: None,
        });
        match &event.kind {
            EventKind::FrameSent { bytes, .. } => {
                entry.sent_event_bytes += bytes;
                entry.event_frames += 1;
            }
            EventKind::FrameReceived { bytes, .. } => {
                entry.recv_event_bytes += bytes;
                entry.event_frames += 1;
            }
            EventKind::Ledger {
                sent_bytes,
                recv_bytes,
                frames,
            } => {
                entry.ledger = Some((*sent_bytes, *recv_bytes, *frames));
            }
            _ => {}
        }
    }
    checks.into_values().collect()
}

/// Selection tally for one device.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectionRow {
    /// The device.
    pub device: u32,
    /// Rounds in which the device was drawn.
    pub selected: u64,
    /// Sum of the logged Eq. 8 first-draw probabilities — the
    /// expectation the realized share is compared against.
    pub expected_share: f64,
    /// Realized share of all selection slots.
    pub realized_share: f64,
}

/// The merged-timeline report.
#[derive(Debug, Clone, Default)]
pub struct Report {
    /// Rounds the coordinator planned.
    pub rounds: u64,
    /// Participants seen emitting events.
    pub nodes: Vec<u32>,
    /// `(round, mean |predicted - actual|)` per round with predictions.
    pub prediction_error: Vec<(u32, f64)>,
    /// Selection histogram rows, by device.
    pub selection: Vec<SelectionRow>,
    /// Per-device seconds spent inside ring phases (training-blocked).
    pub ring_blocked_secs: Vec<(u32, f64)>,
    /// Total payload bytes over all `FrameSent` events.
    pub total_sent_bytes: u64,
    /// Total payload frames sent.
    pub total_sent_frames: u64,
    /// Ring-phase parameter bytes (`param_accum` + `merged_params`).
    pub ring_param_bytes: u64,
    /// The 2·K·M bound those ring bytes must respect: `rounds × 2 ×
    /// mean(K) × max param frame`.
    pub ring_param_bound: u64,
    /// Per-node ledger parity results.
    pub ledgers: Vec<LedgerCheck>,
    /// Devices dropped by the coordinator, with the round.
    pub dropped: Vec<(u32, u32)>,
    /// Bypasses declared (round, dead device).
    pub bypasses: Vec<(u32, u32)>,
}

/// Builds the [`Report`] from a merged timeline.
pub fn report(events: &[Event]) -> Report {
    let mut rep = Report::default();
    let mut nodes: Vec<u32> = events.iter().map(|e| e.node).collect();
    nodes.sort_unstable();
    nodes.dedup();
    rep.nodes = nodes;

    // Prediction error per round.
    let mut per_round: BTreeMap<u32, Vec<f64>> = BTreeMap::new();
    // Selection tallies.
    let mut selected: BTreeMap<u32, u64> = BTreeMap::new();
    let mut expected: BTreeMap<u32, f64> = BTreeMap::new();
    let mut total_slots = 0u64;
    let mut selected_sizes: Vec<f64> = Vec::new();
    // Ring-blocked time: node -> (round -> enter t_us).
    let mut ring_enter: BTreeMap<(u32, u32), u64> = BTreeMap::new();
    let mut blocked: BTreeMap<u32, f64> = BTreeMap::new();
    let mut max_param_frame = 0u64;

    for event in events {
        match &event.kind {
            EventKind::RoundPlanned {
                available,
                probabilities,
                selected: sel,
                ..
            } => {
                rep.rounds += 1;
                selected_sizes.push(sel.len() as f64);
                total_slots += sel.len() as u64;
                for d in sel {
                    *selected.entry(*d).or_insert(0) += 1;
                }
                for (d, p) in available.iter().zip(probabilities) {
                    *expected.entry(*d).or_insert(0.0) += p;
                }
            }
            EventKind::Prediction {
                round,
                predicted,
                actual,
                ..
            } => {
                per_round
                    .entry(*round)
                    .or_default()
                    .push((predicted - actual).abs());
            }
            EventKind::RingEnter { round, .. } => {
                ring_enter.insert((event.node, *round), event.t_us);
            }
            EventKind::RingExit { round, .. } => {
                if let Some(entered) = ring_enter.remove(&(event.node, *round)) {
                    *blocked.entry(event.node).or_insert(0.0) +=
                        event.t_us.saturating_sub(entered) as f64 / 1e6;
                }
            }
            EventKind::FrameSent { bytes, kind, .. } => {
                rep.total_sent_bytes += bytes;
                rep.total_sent_frames += 1;
                if kind == "param_accum" || kind == "merged_params" {
                    rep.ring_param_bytes += bytes;
                    max_param_frame = max_param_frame.max(*bytes);
                }
            }
            EventKind::DeviceDropped { round, device } => {
                rep.dropped.push((*device, *round));
            }
            EventKind::BypassDeclared { round, dead } => {
                rep.bypasses.push((*round, *dead));
            }
            _ => {}
        }
    }

    rep.prediction_error = per_round
        .into_iter()
        .map(|(round, errs)| {
            let mean = errs.iter().sum::<f64>() / errs.len() as f64;
            (round, mean)
        })
        .collect();

    let mut devices: Vec<u32> = selected.keys().chain(expected.keys()).copied().collect();
    devices.sort_unstable();
    devices.dedup();
    rep.selection = devices
        .into_iter()
        .map(|device| SelectionRow {
            device,
            selected: selected.get(&device).copied().unwrap_or(0),
            expected_share: expected.get(&device).copied().unwrap_or(0.0)
                / rep.rounds.max(1) as f64,
            realized_share: selected.get(&device).copied().unwrap_or(0) as f64
                / total_slots.max(1) as f64,
        })
        .collect();

    rep.ring_blocked_secs = blocked.into_iter().collect();

    // Paper bound: a K-member ring moves 2(K−1) < 2K parameter frames
    // per round, each at most the largest param frame M on the wire.
    let mean_k = if selected_sizes.is_empty() {
        0.0
    } else {
        selected_sizes.iter().sum::<f64>() / selected_sizes.len() as f64
    };
    rep.ring_param_bound = (rep.rounds as f64 * 2.0 * mean_k * max_param_frame as f64) as u64;
    rep.ledgers = ledger_parity(events);
    rep
}

impl Report {
    /// Human-readable rendering (what `hadfl-trace` prints).
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "nodes: {:?}   rounds planned: {}\n",
            self.nodes, self.rounds
        ));

        out.push_str("\nprediction error (Eq. 7), mean |forecast - actual| per round:\n");
        if self.prediction_error.is_empty() {
            out.push_str("  (no prediction events)\n");
        }
        for (round, err) in &self.prediction_error {
            out.push_str(&format!("  round {round:>3}: {err:.3}\n"));
        }

        out.push_str("\nselection frequency vs Eq. 8 expectation:\n");
        for row in &self.selection {
            out.push_str(&format!(
                "  device {:>2}: selected {:>4}x  realized share {:.3}  expected share {:.3}\n",
                row.device, row.selected, row.realized_share, row.expected_share
            ));
        }

        out.push_str("\nring-blocked time per device (straggler idle):\n");
        for (node, secs) in &self.ring_blocked_secs {
            out.push_str(&format!("  device {node:>2}: {secs:.4} s\n"));
        }

        out.push_str(&format!(
            "\ncommunication: {} payload bytes over {} frames\n",
            self.total_sent_bytes, self.total_sent_frames
        ));
        out.push_str(&format!(
            "  ring parameter traffic: {} bytes vs 2*K*M bound {} ({})\n",
            self.ring_param_bytes,
            self.ring_param_bound,
            if self.ring_param_bytes <= self.ring_param_bound {
                "within bound"
            } else {
                "EXCEEDS BOUND"
            }
        ));
        for check in &self.ledgers {
            match check.ledger {
                Some((sent, recv, frames)) => out.push_str(&format!(
                    "  node {:>2} ledger: events {}/{}B {}f vs NetStats {}/{}B {}f -> {}\n",
                    check.node,
                    check.sent_event_bytes,
                    check.recv_event_bytes,
                    check.event_frames,
                    sent,
                    recv,
                    frames,
                    if check.matches() { "match" } else { "MISMATCH" }
                )),
                None => out.push_str(&format!(
                    "  node {:>2}: {} sent / {} received event bytes (no ledger event)\n",
                    check.node, check.sent_event_bytes, check.recv_event_bytes
                )),
            }
        }

        if !self.dropped.is_empty() {
            out.push_str(&format!("\ndropped devices: {:?}\n", self.dropped));
        }
        if !self.bypasses.is_empty() {
            out.push_str(&format!("bypasses (round, dead): {:?}\n", self.bypasses));
        }
        out
    }
}

/// Outcome of [`check_full`]: hard structural errors plus advisory
/// warnings (cross-node wall-clock skew is a warning, not an error —
/// every process stamps `t_us` from its own epoch, so a receive
/// "before" its send is routine and exactly what the causal merge
/// exists to absorb).
#[derive(Debug, Clone, Default)]
pub struct CheckReport {
    /// Problems that make the log untrustworthy.
    pub errors: Vec<String>,
    /// Observations worth surfacing (clock skew between nodes).
    pub warnings: Vec<String>,
}

/// [`check`] plus cross-node wall-clock skew detection: for every
/// received frame whose causally-preceding send is in the logs, a
/// receive timestamp earlier than the send timestamp is reported,
/// summarized per directed sender→receiver pair.
pub fn check_full(logs: &[ParsedLog]) -> CheckReport {
    let merged = merge(logs);
    let mut skew: BTreeMap<(u32, u32), (u64, u64)> = BTreeMap::new(); // (src,dst) -> (count, max µs)
    let mut sends: BTreeMap<(u32, u64), u64> = BTreeMap::new(); // (src, lamport) -> send t_us
    for event in &merged {
        if let EventKind::FrameSent { src, lamport, .. } = &event.kind {
            if *lamport > 0 {
                sends.insert((*src, *lamport), event.t_us);
            }
        }
    }
    for event in &merged {
        if let EventKind::FrameReceived { src, lamport, .. } = &event.kind {
            if *lamport == 0 {
                continue;
            }
            if let Some(&sent_at) = sends.get(&(*src, *lamport)) {
                if event.t_us < sent_at {
                    let entry = skew.entry((*src, event.node)).or_insert((0, 0));
                    entry.0 += 1;
                    entry.1 = entry.1.max(sent_at - event.t_us);
                }
            }
        }
    }
    let warnings = skew
        .into_iter()
        .map(|((src, dst), (count, max_us))| {
            format!(
                "wall-clock skew: node {dst} logged {count} receive(s) from node {src} \
                 before the causally-preceding send (max {max_us} us); \
                 merged order is causal, so the timeline is unaffected"
            )
        })
        .collect();
    CheckReport {
        errors: check(logs),
        warnings,
    }
}

/// Structural validation for `hadfl-trace --check`: schema versions,
/// per-node sequence continuity, garbage lines, and exact ledger
/// parity. Returns the list of problems (empty = clean).
pub fn check(logs: &[ParsedLog]) -> Vec<String> {
    let mut errors = Vec::new();
    for (i, log) in logs.iter().enumerate() {
        if log.garbage_lines > 0 {
            errors.push(format!("log {i}: {} malformed lines", log.garbage_lines));
        }
        let mut last_seq: BTreeMap<u32, u64> = BTreeMap::new();
        for event in &log.events {
            if event.v != SCHEMA_VERSION {
                errors.push(format!(
                    "log {i}: schema version {} (reader speaks {})",
                    event.v, SCHEMA_VERSION
                ));
                break;
            }
            if let Some(prev) = last_seq.get(&event.node) {
                if event.seq <= *prev {
                    errors.push(format!(
                        "log {i}: node {} seq went {} -> {} (dropped or reordered lines)",
                        event.node, prev, event.seq
                    ));
                    break;
                }
            }
            last_seq.insert(event.node, event.seq);
        }
    }
    let merged = merge(logs);
    for check in ledger_parity(&merged) {
        if check.ledger.is_some() && !check.matches() {
            errors.push(format!(
                "node {}: frame events ({} sent / {} recv bytes, {} frames) do not reproduce its NetStats ledger {:?}",
                check.node,
                check.sent_event_bytes,
                check.recv_event_bytes,
                check.event_frames,
                check.ledger
            ));
        }
    }
    errors
}

/// One paired `SpanStart`/`SpanEnd` interval on a node's own clock.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Span {
    /// Emitting node.
    pub node: u32,
    /// Per-node span id (first span of an actor is 1).
    pub id: u64,
    /// Enclosing span's id on the same node (0 = top level).
    pub parent: u64,
    /// Segment name (`train`, `ring_reduce`, …).
    pub name: String,
    /// Round the segment belongs to.
    pub round: u32,
    /// Start/end in the node's own microsecond clock.
    pub start_us: u64,
    /// End timestamp; equals `start_us` for instantaneous segments.
    pub end_us: u64,
}

/// Pairs span events by `(node, span id)`. Returns the closed spans
/// (in start order per node) and the count of starts never closed.
pub fn spans(events: &[Event]) -> (Vec<Span>, usize) {
    let mut open: BTreeMap<(u32, u64), Span> = BTreeMap::new();
    let mut closed = Vec::new();
    for event in events {
        match &event.kind {
            EventKind::SpanStart {
                span,
                parent,
                name,
                round,
                ..
            } => {
                open.insert(
                    (event.node, *span),
                    Span {
                        node: event.node,
                        id: *span,
                        parent: *parent,
                        name: name.clone(),
                        round: *round,
                        start_us: event.t_us,
                        end_us: event.t_us,
                    },
                );
            }
            EventKind::SpanEnd { span, .. } => {
                if let Some(mut s) = open.remove(&(event.node, *span)) {
                    s.end_us = event.t_us.max(s.start_us);
                    closed.push(s);
                }
            }
            _ => {}
        }
    }
    let unclosed = open.len();
    closed.sort_by_key(|s| (s.node, s.start_us, s.id));
    (closed, unclosed)
}

/// Renders paired spans as one ASCII Gantt lane per span, grouped by
/// node, over a shared `width`-character time axis. `round` filters to
/// one round's spans.
pub fn render_gantt(spans: &[Span], round: Option<u32>, width: usize) -> String {
    let picked: Vec<&Span> = spans
        .iter()
        .filter(|s| round.is_none_or(|r| s.round == r))
        .collect();
    if picked.is_empty() {
        return "no spans\n".to_string();
    }
    let t0 = picked.iter().map(|s| s.start_us).min().unwrap_or(0);
    let t1 = picked.iter().map(|s| s.end_us).max().unwrap_or(t0);
    let total = (t1 - t0).max(1);
    let width = width.max(10);
    let mut out = format!("span timeline: t0 = {t0} us, {total} us total\n",);
    let mut last_node = None;
    for s in &picked {
        if last_node != Some(s.node) {
            out.push_str(&format!("node {}\n", s.node));
            last_node = Some(s.node);
        }
        let a = ((s.start_us - t0) as f64 / total as f64 * width as f64) as usize;
        let b = ((s.end_us - t0) as f64 / total as f64 * width as f64) as usize;
        let b = b.clamp(a, width.saturating_sub(1));
        let mut bar = vec![b' '; width];
        for c in bar.iter_mut().take(b + 1).skip(a) {
            *c = b'=';
        }
        bar[a] = b'|';
        out.push_str(&format!(
            "  r{:<3} {:<15} [{}] {:>8} .. {:<8} us\n",
            s.round,
            s.name,
            String::from_utf8_lossy(&bar),
            s.start_us - t0,
            s.end_us - t0,
        ));
    }
    out
}

/// Renders paired spans as a JSON array (machine-readable Gantt).
pub fn spans_to_json(spans: &[Span], round: Option<u32>) -> String {
    let rows: Vec<String> = spans
        .iter()
        .filter(|s| round.is_none_or(|r| s.round == r))
        .map(|s| {
            format!(
                "{{\"node\":{},\"span\":{},\"parent\":{},\"name\":\"{}\",\"round\":{},\"start_us\":{},\"end_us\":{}}}",
                s.node, s.id, s.parent, s.name, s.round, s.start_us, s.end_us
            )
        })
        .collect();
    format!("[{}]", rows.join(","))
}

/// One hop of the round's critical path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CriticalStep {
    /// Node whose clock the hop elapsed on (receiver for network hops).
    pub node: u32,
    /// Attributed segment: a span name, `network`, or `unattributed`.
    pub segment: String,
    /// Hop latency in microseconds.
    pub weight_us: u64,
}

/// The longest happens-before chain from a round's `RoundPlanned` to
/// its causally-latest `RingExit`, with the end-to-end latency
/// attributed hop by hop to spans and network edges.
#[derive(Debug, Clone, Default)]
pub struct CriticalPath {
    /// The round analyzed.
    pub round: u32,
    /// End-to-end critical-path latency in microseconds.
    pub total_us: u64,
    /// Device whose on-node time dominates the path.
    pub straggler: Option<u32>,
    /// Segment with the largest attributed share.
    pub dominant_segment: Option<String>,
    /// Total microseconds attributed to each segment.
    pub per_segment_us: BTreeMap<String, u64>,
    /// Total on-node microseconds per node along the path.
    pub per_node_us: BTreeMap<u32, u64>,
    /// The chain itself, in causal order.
    pub steps: Vec<CriticalStep>,
    /// Eq. 7 cross-check: `(device, predicted, actual)` for the round.
    pub predictions: Vec<(u32, f64, f64)>,
    /// Eq. 8 cross-check: the round's first-draw probabilities.
    pub expected_shares: Vec<(u32, f64)>,
    /// Structural problems (`--check` fails on these).
    pub errors: Vec<String>,
    /// Advisory observations (skew, unmatched sends).
    pub warnings: Vec<String>,
}

/// Rounds with a `RoundPlanned` event, ascending.
pub fn rounds_planned(events: &[Event]) -> Vec<u32> {
    let mut rounds: Vec<u32> = events
        .iter()
        .filter_map(|e| match &e.kind {
            EventKind::RoundPlanned { round, .. } => Some(*round),
            _ => None,
        })
        .collect();
    rounds.sort_unstable();
    rounds.dedup();
    rounds
}

/// Reconstructs the happens-before graph over the merged timeline and
/// extracts `round`'s critical path.
///
/// Vertices are events; edges are (a) consecutive events on one node,
/// weighted by that node's own clock delta — skew-free because both
/// ends share an epoch — and (b) matched `FrameSent`→`FrameReceived`
/// pairs (by sender and Lamport stamp), weighted by the cross-node
/// timestamp delta clamped at zero. The merged causal order is a
/// topological order of this DAG (same-node edges follow `seq` with a
/// monotone clock; a receive max-merges its send's stamp), so one
/// forward pass computes longest distances.
pub fn critical_path(events: &[Event], round: u32) -> CriticalPath {
    let mut cp = CriticalPath {
        round,
        ..CriticalPath::default()
    };
    let n = events.len();

    // Same-node chains, in merged (= per-node seq) order.
    let mut next_on_node: Vec<Option<usize>> = vec![None; n];
    let mut last_seen: BTreeMap<u32, usize> = BTreeMap::new();
    for (i, e) in events.iter().enumerate() {
        if let Some(&prev) = last_seen.get(&e.node) {
            next_on_node[prev] = Some(i);
        }
        last_seen.insert(e.node, i);
    }

    // Frame matching by (sender, Lamport stamp).
    let mut send_at: BTreeMap<(u32, u64), usize> = BTreeMap::new();
    for (i, e) in events.iter().enumerate() {
        if let EventKind::FrameSent { src, lamport, .. } = &e.kind {
            if *lamport > 0 && send_at.insert((*src, *lamport), i).is_some() {
                cp.errors
                    .push(format!("duplicate send stamp (src {src}, lam {lamport})"));
            }
        }
    }
    let mut frame_edge: Vec<Option<usize>> = vec![None; n]; // send idx -> recv idx
    let mut matched_sends = 0usize;
    let mut skew: BTreeMap<(u32, u32), (u64, u64)> = BTreeMap::new(); // (src,dst) -> (count, max us)
    for (i, e) in events.iter().enumerate() {
        if let EventKind::FrameReceived { src, lamport, .. } = &e.kind {
            if *lamport == 0 {
                continue;
            }
            match send_at.get(&(*src, *lamport)) {
                Some(&s) => {
                    // The receiver's observe guarantees its clock
                    // strictly dominates the frame's stamp — compare
                    // against the stamp, not the send event's reading,
                    // which concurrent emitters may have advanced.
                    if e.lam <= *lamport {
                        cp.errors.push(format!(
                            "lamport violation: node {} received (src {src}, lam {lamport}) \
                             without advancing past the frame's stamp",
                            e.node
                        ));
                    }
                    if s >= i {
                        cp.errors.push(format!(
                            "causal order violation: receive of (src {src}, lam {lamport}) \
                             merged before its send"
                        ));
                    } else {
                        frame_edge[s] = Some(i);
                        matched_sends += 1;
                        if e.t_us < events[s].t_us {
                            let entry = skew.entry((*src, e.node)).or_insert((0, 0));
                            entry.0 += 1;
                            entry.1 = entry.1.max(events[s].t_us - e.t_us);
                        }
                    }
                }
                None => cp.errors.push(format!(
                    "unmatched receive: node {} got (src {src}, lam {lamport}) but no log \
                     records that send",
                    e.node
                )),
            }
        }
    }
    for ((src, dst), (count, max_us)) in &skew {
        cp.warnings.push(format!(
            "skew: node {dst} received {count} frame(s) from node {src} before the \
             send's wall clock (max {max_us} us); attribution uses causal order"
        ));
    }
    let stamped_sends = send_at.len();
    if matched_sends < stamped_sends {
        cp.warnings.push(format!(
            "{} stamped send(s) have no logged receive (dropped frames or a missing node log)",
            stamped_sends - matched_sends
        ));
    }

    // Eq. 7 / Eq. 8 context for the round.
    for e in events {
        match &e.kind {
            EventKind::Prediction {
                round: r,
                device,
                predicted,
                actual,
            } if *r == round => cp.predictions.push((*device, *predicted, *actual)),
            EventKind::RoundPlanned {
                round: r,
                available,
                probabilities,
                ..
            } if *r == round => {
                cp.expected_shares = available
                    .iter()
                    .copied()
                    .zip(probabilities.iter().copied())
                    .collect();
            }
            _ => {}
        }
    }

    // Source: the coordinator's RoundPlanned{round}.
    let Some(source) = events
        .iter()
        .position(|e| matches!(&e.kind, EventKind::RoundPlanned { round: r, .. } if *r == round))
    else {
        cp.errors
            .push(format!("round {round}: no RoundPlanned event"));
        return cp;
    };
    // A round with no RingExit anywhere was cut short — the final
    // round routinely races the shutdown broadcast, so no device ever
    // logs leaving its ring. That is an incomplete round, not a broken
    // causal graph.
    if !events
        .iter()
        .any(|e| matches!(&e.kind, EventKind::RingExit { round: r, .. } if *r == round))
    {
        cp.warnings.push(format!(
            "round {round}: no RingExit logged (round truncated by shutdown?); \
             skipping attribution"
        ));
        return cp;
    }

    // Longest-path DP in merged (topological) order. On equal length a
    // same-node hop beats a network hop: with consistent clocks every
    // source→target path sums to the same wall time (concurrency means
    // many chains tie), and keeping the chain on-node attributes the
    // wait to the span where the device actually sat blocked instead
    // of to the wire.
    let mut dist: Vec<Option<u64>> = vec![None; n];
    let mut prev: Vec<Option<(usize, bool)>> = vec![None; n]; // (pred, is_network)
    dist[source] = Some(0);
    for i in source..n {
        let Some(d) = dist[i] else { continue };
        let mut relax = |j: usize, w: u64, network: bool, dist: &mut Vec<Option<u64>>| {
            let better = match dist[j] {
                None => true,
                Some(old) if d + w > old => true,
                Some(old) => d + w == old && !network && matches!(prev[j], Some((_, true))),
            };
            if better {
                dist[j] = Some(d + w);
                prev[j] = Some((i, network));
            }
        };
        if let Some(j) = next_on_node[i] {
            let w = events[j].t_us.saturating_sub(events[i].t_us);
            relax(j, w, false, &mut dist);
        }
        if let Some(j) = frame_edge[i] {
            let w = events[j].t_us.saturating_sub(events[i].t_us);
            relax(j, w, true, &mut dist);
        }
    }

    // Target: the causally-latest reachable RingExit{round}.
    let Some(target) = (source..n).rev().find(|&i| {
        dist[i].is_some()
            && matches!(&events[i].kind, EventKind::RingExit { round: r, .. } if *r == round)
    }) else {
        cp.errors.push(format!(
            "round {round}: no RingExit reachable from RoundPlanned (incomplete logs?)"
        ));
        return cp;
    };
    cp.total_us = dist[target].unwrap_or(0);

    // Walk the chain backwards, attributing each hop.
    let (closed_spans, _) = spans(events);
    let mut chain = Vec::new();
    let mut at = target;
    while at != source {
        let Some((p, network)) = prev[at] else { break };
        let weight = dist[at].unwrap_or(0) - dist[p].unwrap_or(0);
        let segment = if network {
            "network".to_string()
        } else {
            innermost_span(
                &closed_spans,
                events[at].node,
                events[p].t_us,
                events[at].t_us,
            )
            .unwrap_or_else(|| "unattributed".to_string())
        };
        chain.push(CriticalStep {
            node: events[at].node,
            segment,
            weight_us: weight,
        });
        at = p;
    }
    chain.reverse();
    for step in &chain {
        *cp.per_segment_us.entry(step.segment.clone()).or_insert(0) += step.weight_us;
        if step.segment != "network" {
            *cp.per_node_us.entry(step.node).or_insert(0) += step.weight_us;
        }
    }
    cp.straggler = cp
        .per_node_us
        .iter()
        .max_by_key(|(node, us)| (**us, std::cmp::Reverse(**node)))
        .map(|(&node, _)| node);
    cp.dominant_segment = cp
        .per_segment_us
        .iter()
        .max_by(|a, b| a.1.cmp(b.1).then(b.0.cmp(a.0)))
        .map(|(name, _)| name.clone());
    cp.steps = chain;
    cp
}

/// The innermost closed span of `node` containing `[from_us, to_us]`.
fn innermost_span(spans: &[Span], node: u32, from_us: u64, to_us: u64) -> Option<String> {
    spans
        .iter()
        .filter(|s| s.node == node && s.start_us <= from_us && s.end_us >= to_us)
        .max_by_key(|s| s.start_us)
        .map(|s| s.name.clone())
}

impl CriticalPath {
    /// Human-readable rendering (what `hadfl-trace critical-path`
    /// prints for one round).
    pub fn render(&self) -> String {
        let mut out = format!(
            "round {}: critical path {} us end-to-end\n",
            self.round, self.total_us
        );
        for step in &self.steps {
            if step.weight_us == 0 {
                continue;
            }
            out.push_str(&format!(
                "  {:>8} us  {:<14} node {}\n",
                step.weight_us, step.segment, step.node
            ));
        }
        out.push_str("  per segment:\n");
        for (segment, us) in &self.per_segment_us {
            let share = 100.0 * *us as f64 / self.total_us.max(1) as f64;
            out.push_str(&format!("    {segment:<14} {us:>8} us  ({share:.1}%)\n"));
        }
        match (self.straggler, &self.dominant_segment) {
            (Some(node), Some(segment)) => out.push_str(&format!(
                "  straggler: device {node}   dominant segment: {segment}\n"
            )),
            _ => out.push_str("  straggler: (no on-node time attributed)\n"),
        }
        if let Some(node) = self.straggler {
            if let Some(&(_, predicted, actual)) =
                self.predictions.iter().find(|(d, _, _)| *d == node)
            {
                out.push_str(&format!(
                    "  Eq. 7 cross-check: straggler {node} predicted {predicted:.1} vs actual {actual:.1} versions\n"
                ));
            }
            if let Some(&(_, p)) = self.expected_shares.iter().find(|(d, _)| *d == node) {
                out.push_str(&format!(
                    "  Eq. 8 cross-check: straggler {node} first-draw probability {p:.3}\n"
                ));
            }
        }
        for w in &self.warnings {
            out.push_str(&format!("  warning: {w}\n"));
        }
        for e in &self.errors {
            out.push_str(&format!("  ERROR: {e}\n"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn event(node: u32, seq: u64, t_us: u64, kind: EventKind) -> Event {
        Event {
            v: SCHEMA_VERSION,
            seq,
            node,
            t_us,
            lam: 0,
            kind,
        }
    }

    fn frame(src: u32, dst: u32, bytes: u64, kind: &str) -> EventKind {
        EventKind::FrameSent {
            src,
            dst,
            bytes,
            kind: kind.into(),
            lamport: 0,
        }
    }

    #[test]
    fn parse_tolerates_garbage() {
        let good = event(0, 0, 5, EventKind::DeviceStarted { device: 0 })
            .to_json()
            .unwrap();
        let text = format!("{good}\nnot json at all\n\n{{\"v\":9}}\n{good}\n");
        let log = parse_jsonl(&text);
        assert_eq!(log.events.len(), 2);
        assert_eq!(log.garbage_lines, 2);
    }

    #[test]
    fn merge_orders_by_time_then_node_then_seq() {
        let a = ParsedLog {
            events: vec![
                event(1, 0, 50, EventKind::DeviceStarted { device: 1 }),
                event(1, 1, 10, EventKind::DeviceStarted { device: 1 }),
            ],
            garbage_lines: 0,
        };
        let b = ParsedLog {
            events: vec![event(0, 0, 50, EventKind::DeviceStarted { device: 0 })],
            garbage_lines: 0,
        };
        let merged = merge(&[a, b]);
        let order: Vec<(u64, u32)> = merged.iter().map(|e| (e.t_us, e.node)).collect();
        assert_eq!(order, vec![(10, 1), (50, 0), (50, 1)]);
    }

    #[test]
    fn report_derives_the_headline_diagnostics() {
        let coord = 2u32;
        let events = vec![
            event(
                coord,
                0,
                100,
                EventKind::RoundPlanned {
                    round: 1,
                    available: vec![0, 1],
                    versions: vec![10.0, 20.0],
                    probabilities: vec![0.5, 0.5],
                    selected: vec![0, 1],
                    unselected: vec![],
                    broadcaster: 0,
                },
            ),
            event(
                coord,
                1,
                100,
                EventKind::Prediction {
                    round: 1,
                    device: 0,
                    predicted: 12.0,
                    actual: 10.0,
                },
            ),
            event(
                coord,
                2,
                100,
                EventKind::Prediction {
                    round: 1,
                    device: 1,
                    predicted: 21.0,
                    actual: 20.0,
                },
            ),
            event(
                0,
                0,
                110,
                EventKind::RingEnter {
                    round: 1,
                    ring: vec![0, 1],
                },
            ),
            event(0, 1, 200, frame(0, 1, 40, "param_accum")),
            event(
                0,
                2,
                310,
                EventKind::RingExit {
                    round: 1,
                    dissolved: false,
                },
            ),
            event(
                0,
                3,
                400,
                EventKind::Ledger {
                    sent_bytes: 40,
                    recv_bytes: 0,
                    frames: 1,
                },
            ),
        ];
        let rep = report(&events);
        assert_eq!(rep.rounds, 1);
        assert_eq!(rep.prediction_error, vec![(1, 1.5)]);
        assert_eq!(rep.selection.len(), 2);
        assert_eq!(rep.selection[0].selected, 1);
        assert!((rep.selection[0].expected_share - 0.5).abs() < 1e-12);
        assert_eq!(rep.ring_blocked_secs, vec![(0, 0.0002)]);
        assert_eq!(rep.total_sent_bytes, 40);
        assert_eq!(rep.ring_param_bytes, 40);
        // 1 round * 2 * K=2 * M=40 = 160.
        assert_eq!(rep.ring_param_bound, 160);
        assert!(rep.ledgers[0].matches());
        let text = rep.render();
        assert!(text.contains("within bound"), "{text}");
        assert!(text.contains("match"), "{text}");
    }

    fn stamped(node: u32, seq: u64, t_us: u64, lam: u64, kind: EventKind) -> Event {
        Event {
            v: SCHEMA_VERSION,
            seq,
            node,
            t_us,
            lam,
            kind,
        }
    }

    fn sent(src: u32, dst: u32, lamport: u64) -> EventKind {
        EventKind::FrameSent {
            src,
            dst,
            bytes: 40,
            kind: "round_plan".into(),
            lamport,
        }
    }

    fn received(src: u32, dst: u32, lamport: u64) -> EventKind {
        EventKind::FrameReceived {
            src,
            dst,
            bytes: 40,
            kind: "round_plan".into(),
            lamport,
        }
    }

    #[test]
    fn stamped_merge_is_causal_not_wall_clock() {
        // Node 1's wall clock is far behind node 0's: the receive's
        // t_us precedes the send's. The causal order must still place
        // the send first.
        let sender = ParsedLog {
            events: vec![stamped(0, 0, 1_000_000, 5, sent(0, 1, 5))],
            garbage_lines: 0,
        };
        let receiver = ParsedLog {
            events: vec![stamped(1, 0, 10, 6, received(0, 1, 5))],
            garbage_lines: 0,
        };
        let merged = merge(&[receiver.clone(), sender.clone()]);
        let order: Vec<u32> = merged.iter().map(|e| e.node).collect();
        assert_eq!(order, vec![0, 1]);
        // And the skew shows up as a warning, never an error.
        let outcome = check_full(&[sender, receiver]);
        assert!(outcome.errors.is_empty(), "{:?}", outcome.errors);
        assert_eq!(outcome.warnings.len(), 1, "{:?}", outcome.warnings);
        assert!(
            outcome.warnings[0].contains("skew"),
            "{:?}",
            outcome.warnings
        );
    }

    #[test]
    fn span_pairing_and_gantt() {
        let events = vec![
            stamped(
                0,
                0,
                100,
                1,
                EventKind::SpanStart {
                    span: 1,
                    parent: 0,
                    name: "train".into(),
                    round: 1,
                    device: 0,
                },
            ),
            stamped(
                0,
                1,
                900,
                2,
                EventKind::SpanEnd {
                    span: 1,
                    round: 1,
                    device: 0,
                },
            ),
            // A start with no end stays unclosed.
            stamped(
                0,
                2,
                950,
                3,
                EventKind::SpanStart {
                    span: 2,
                    parent: 0,
                    name: "wait_for_plan".into(),
                    round: 1,
                    device: 0,
                },
            ),
        ];
        let (closed, unclosed) = spans(&events);
        assert_eq!(closed.len(), 1);
        assert_eq!(unclosed, 1);
        assert_eq!(closed[0].name, "train");
        assert_eq!((closed[0].start_us, closed[0].end_us), (100, 900));
        let gantt = render_gantt(&closed, Some(1), 40);
        assert!(gantt.contains("train"), "{gantt}");
        assert!(gantt.contains("node 0"), "{gantt}");
        let json = spans_to_json(&closed, None);
        assert!(json.contains("\"name\":\"train\""), "{json}");
    }

    /// A hand-computed two-device round: the coordinator plans at
    /// lam 1, device 0 is slow in ring_reduce, device 1 exits last.
    /// Critical path: plan -> (network 50) -> d0 ring_reduce 300 ->
    /// (network 20) -> d1 ring_gather 100 -> exit. Total 470 us.
    #[test]
    fn critical_path_matches_hand_computation() {
        let plan = EventKind::RoundPlanned {
            round: 1,
            available: vec![0, 1],
            versions: vec![10.0, 30.0],
            probabilities: vec![0.7, 0.3],
            selected: vec![0, 1],
            unselected: vec![],
            broadcaster: 0,
        };
        let coord = vec![
            stamped(2, 0, 1_000, 1, plan),
            stamped(
                2,
                1,
                1_000,
                1,
                EventKind::Prediction {
                    round: 1,
                    device: 0,
                    predicted: 12.0,
                    actual: 10.0,
                },
            ),
            stamped(2, 2, 1_000, 2, sent(2, 0, 2)),
        ];
        let d0 = vec![
            stamped(0, 0, 2_050, 3, received(2, 0, 2)),
            stamped(
                0,
                1,
                2_050,
                4,
                EventKind::SpanStart {
                    span: 1,
                    parent: 0,
                    name: "ring_reduce".into(),
                    round: 1,
                    device: 0,
                },
            ),
            stamped(0, 2, 2_350, 5, sent(0, 1, 5)),
            stamped(
                0,
                3,
                2_350,
                6,
                EventKind::SpanEnd {
                    span: 1,
                    round: 1,
                    device: 0,
                },
            ),
            stamped(
                0,
                4,
                2_350,
                7,
                EventKind::RingExit {
                    round: 1,
                    dissolved: false,
                },
            ),
        ];
        let d1 = vec![
            stamped(1, 0, 5_370, 6, received(0, 1, 5)),
            stamped(
                1,
                1,
                5_370,
                7,
                EventKind::SpanStart {
                    span: 1,
                    parent: 0,
                    name: "ring_gather".into(),
                    round: 1,
                    device: 1,
                },
            ),
            stamped(
                1,
                2,
                5_470,
                8,
                EventKind::SpanEnd {
                    span: 1,
                    round: 1,
                    device: 1,
                },
            ),
            stamped(
                1,
                3,
                5_470,
                9,
                EventKind::RingExit {
                    round: 1,
                    dissolved: false,
                },
            ),
        ];
        let logs = [
            ParsedLog {
                events: coord,
                garbage_lines: 0,
            },
            ParsedLog {
                events: d0,
                garbage_lines: 0,
            },
            ParsedLog {
                events: d1,
                garbage_lines: 0,
            },
        ];
        let merged = merge(&logs);
        let cp = critical_path(&merged, 1);
        assert!(cp.errors.is_empty(), "{:?}", cp.errors);
        // plan->send 0, network 2050-1000=1050? No: d0 received at
        // 2050, sent at 1000 -> network hop 1050; reduce 300; network
        // 5370-2350=3020; gather 100. Total = 4470.
        assert_eq!(cp.total_us, 4_470);
        assert_eq!(cp.straggler, Some(0));
        assert_eq!(cp.per_segment_us.get("ring_reduce"), Some(&300));
        assert_eq!(cp.per_segment_us.get("ring_gather"), Some(&100));
        assert_eq!(cp.per_segment_us.get("network"), Some(&4_070));
        assert_eq!(cp.dominant_segment.as_deref(), Some("network"));
        let text = cp.render();
        assert!(text.contains("straggler: device 0"), "{text}");
        assert!(text.contains("Eq. 7"), "{text}");
        assert!(text.contains("Eq. 8"), "{text}");
    }

    #[test]
    fn critical_path_flags_unmatched_receive() {
        let events = vec![
            stamped(
                2,
                0,
                1_000,
                1,
                EventKind::RoundPlanned {
                    round: 1,
                    available: vec![0],
                    versions: vec![1.0],
                    probabilities: vec![1.0],
                    selected: vec![0],
                    unselected: vec![],
                    broadcaster: 0,
                },
            ),
            stamped(0, 0, 2_000, 5, received(2, 0, 4)),
        ];
        let cp = critical_path(&events, 1);
        assert!(
            cp.errors.iter().any(|e| e.contains("unmatched receive")),
            "{:?}",
            cp.errors
        );
    }

    #[test]
    fn check_catches_ledger_mismatch_and_bad_seq() {
        let bad_ledger = ParsedLog {
            events: vec![
                event(0, 0, 10, frame(0, 1, 40, "param_sync")),
                event(
                    0,
                    1,
                    20,
                    EventKind::Ledger {
                        sent_bytes: 41,
                        recv_bytes: 0,
                        frames: 1,
                    },
                ),
            ],
            garbage_lines: 0,
        };
        let errors = check(&[bad_ledger]);
        assert!(errors.iter().any(|e| e.contains("ledger")), "{errors:?}");

        let bad_seq = ParsedLog {
            events: vec![
                event(0, 5, 10, EventKind::DeviceStarted { device: 0 }),
                event(0, 5, 20, EventKind::DeviceStarted { device: 0 }),
            ],
            garbage_lines: 0,
        };
        let errors = check(&[bad_seq]);
        assert!(errors.iter().any(|e| e.contains("seq")), "{errors:?}");

        let clean = ParsedLog {
            events: vec![
                event(0, 0, 10, frame(0, 1, 40, "param_sync")),
                event(
                    0,
                    1,
                    20,
                    EventKind::Ledger {
                        sent_bytes: 40,
                        recv_bytes: 0,
                        frames: 1,
                    },
                ),
            ],
            garbage_lines: 0,
        };
        assert!(check(&[clean]).is_empty());
    }
}
