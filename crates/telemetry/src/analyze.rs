//! Offline analysis of merged event logs: the library behind the
//! `hadfl-trace` binary.
//!
//! Input is one JSONL log per node (tolerant parsing: malformed lines
//! are counted, not fatal). The analyzer merges the per-node streams
//! into one timeline and derives the paper's headline diagnostics:
//!
//! - per-round prediction absolute error (Eq. 7 forecast vs. actual),
//! - selection-frequency histogram vs. the Eq. 8 expectation logged by
//!   the coordinator,
//! - per-device ring-blocked ("straggler idle") time,
//! - communication volume, checked against both each node's `NetStats`
//!   ledger (exact) and the paper's 2·K·M per-round ring bound.

use std::collections::BTreeMap;

use crate::event::{Event, EventKind, SCHEMA_VERSION};

/// One node's parsed log.
#[derive(Debug, Clone, Default)]
pub struct ParsedLog {
    /// Events in file order.
    pub events: Vec<Event>,
    /// Lines that failed to parse (blank lines are ignored, not
    /// counted).
    pub garbage_lines: usize,
}

/// Parses one JSONL document, skipping malformed lines.
pub fn parse_jsonl(text: &str) -> ParsedLog {
    let mut log = ParsedLog::default();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        match Event::from_json(line) {
            Ok(event) => log.events.push(event),
            Err(_) => log.garbage_lines += 1,
        }
    }
    log
}

/// Merges per-node logs into one timeline ordered by
/// `(t_us, node, seq)`.
pub fn merge(logs: &[ParsedLog]) -> Vec<Event> {
    let mut all: Vec<Event> = logs.iter().flat_map(|l| l.events.clone()).collect();
    all.sort_by_key(|e| (e.t_us, e.node, e.seq));
    all
}

/// Per-node frame-event totals versus the node's own [`EventKind::Ledger`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LedgerCheck {
    /// The node.
    pub node: u32,
    /// Bytes summed over the node's `FrameSent` events.
    pub sent_event_bytes: u64,
    /// Bytes summed over the node's `FrameReceived` events.
    pub recv_event_bytes: u64,
    /// `FrameSent` + `FrameReceived` events.
    pub event_frames: u64,
    /// The node's `Ledger` event, if it emitted one.
    pub ledger: Option<(u64, u64, u64)>,
}

impl LedgerCheck {
    /// True when the per-frame events reproduce the ledger exactly.
    pub fn matches(&self) -> bool {
        match self.ledger {
            Some((sent, recv, frames)) => {
                self.sent_event_bytes == sent
                    && self.recv_event_bytes == recv
                    && self.event_frames == frames
            }
            None => false,
        }
    }
}

/// Sums each node's frame events and pairs them with its ledger.
pub fn ledger_parity(events: &[Event]) -> Vec<LedgerCheck> {
    let mut checks: BTreeMap<u32, LedgerCheck> = BTreeMap::new();
    for event in events {
        let entry = checks.entry(event.node).or_insert_with(|| LedgerCheck {
            node: event.node,
            sent_event_bytes: 0,
            recv_event_bytes: 0,
            event_frames: 0,
            ledger: None,
        });
        match &event.kind {
            EventKind::FrameSent { bytes, .. } => {
                entry.sent_event_bytes += bytes;
                entry.event_frames += 1;
            }
            EventKind::FrameReceived { bytes, .. } => {
                entry.recv_event_bytes += bytes;
                entry.event_frames += 1;
            }
            EventKind::Ledger {
                sent_bytes,
                recv_bytes,
                frames,
            } => {
                entry.ledger = Some((*sent_bytes, *recv_bytes, *frames));
            }
            _ => {}
        }
    }
    checks.into_values().collect()
}

/// Selection tally for one device.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectionRow {
    /// The device.
    pub device: u32,
    /// Rounds in which the device was drawn.
    pub selected: u64,
    /// Sum of the logged Eq. 8 first-draw probabilities — the
    /// expectation the realized share is compared against.
    pub expected_share: f64,
    /// Realized share of all selection slots.
    pub realized_share: f64,
}

/// The merged-timeline report.
#[derive(Debug, Clone, Default)]
pub struct Report {
    /// Rounds the coordinator planned.
    pub rounds: u64,
    /// Participants seen emitting events.
    pub nodes: Vec<u32>,
    /// `(round, mean |predicted - actual|)` per round with predictions.
    pub prediction_error: Vec<(u32, f64)>,
    /// Selection histogram rows, by device.
    pub selection: Vec<SelectionRow>,
    /// Per-device seconds spent inside ring phases (training-blocked).
    pub ring_blocked_secs: Vec<(u32, f64)>,
    /// Total payload bytes over all `FrameSent` events.
    pub total_sent_bytes: u64,
    /// Total payload frames sent.
    pub total_sent_frames: u64,
    /// Ring-phase parameter bytes (`param_accum` + `merged_params`).
    pub ring_param_bytes: u64,
    /// The 2·K·M bound those ring bytes must respect: `rounds × 2 ×
    /// mean(K) × max param frame`.
    pub ring_param_bound: u64,
    /// Per-node ledger parity results.
    pub ledgers: Vec<LedgerCheck>,
    /// Devices dropped by the coordinator, with the round.
    pub dropped: Vec<(u32, u32)>,
    /// Bypasses declared (round, dead device).
    pub bypasses: Vec<(u32, u32)>,
}

/// Builds the [`Report`] from a merged timeline.
pub fn report(events: &[Event]) -> Report {
    let mut rep = Report::default();
    let mut nodes: Vec<u32> = events.iter().map(|e| e.node).collect();
    nodes.sort_unstable();
    nodes.dedup();
    rep.nodes = nodes;

    // Prediction error per round.
    let mut per_round: BTreeMap<u32, Vec<f64>> = BTreeMap::new();
    // Selection tallies.
    let mut selected: BTreeMap<u32, u64> = BTreeMap::new();
    let mut expected: BTreeMap<u32, f64> = BTreeMap::new();
    let mut total_slots = 0u64;
    let mut selected_sizes: Vec<f64> = Vec::new();
    // Ring-blocked time: node -> (round -> enter t_us).
    let mut ring_enter: BTreeMap<(u32, u32), u64> = BTreeMap::new();
    let mut blocked: BTreeMap<u32, f64> = BTreeMap::new();
    let mut max_param_frame = 0u64;

    for event in events {
        match &event.kind {
            EventKind::RoundPlanned {
                available,
                probabilities,
                selected: sel,
                ..
            } => {
                rep.rounds += 1;
                selected_sizes.push(sel.len() as f64);
                total_slots += sel.len() as u64;
                for d in sel {
                    *selected.entry(*d).or_insert(0) += 1;
                }
                for (d, p) in available.iter().zip(probabilities) {
                    *expected.entry(*d).or_insert(0.0) += p;
                }
            }
            EventKind::Prediction {
                round,
                predicted,
                actual,
                ..
            } => {
                per_round
                    .entry(*round)
                    .or_default()
                    .push((predicted - actual).abs());
            }
            EventKind::RingEnter { round, .. } => {
                ring_enter.insert((event.node, *round), event.t_us);
            }
            EventKind::RingExit { round, .. } => {
                if let Some(entered) = ring_enter.remove(&(event.node, *round)) {
                    *blocked.entry(event.node).or_insert(0.0) +=
                        event.t_us.saturating_sub(entered) as f64 / 1e6;
                }
            }
            EventKind::FrameSent { bytes, kind, .. } => {
                rep.total_sent_bytes += bytes;
                rep.total_sent_frames += 1;
                if kind == "param_accum" || kind == "merged_params" {
                    rep.ring_param_bytes += bytes;
                    max_param_frame = max_param_frame.max(*bytes);
                }
            }
            EventKind::DeviceDropped { round, device } => {
                rep.dropped.push((*device, *round));
            }
            EventKind::BypassDeclared { round, dead } => {
                rep.bypasses.push((*round, *dead));
            }
            _ => {}
        }
    }

    rep.prediction_error = per_round
        .into_iter()
        .map(|(round, errs)| {
            let mean = errs.iter().sum::<f64>() / errs.len() as f64;
            (round, mean)
        })
        .collect();

    let mut devices: Vec<u32> = selected.keys().chain(expected.keys()).copied().collect();
    devices.sort_unstable();
    devices.dedup();
    rep.selection = devices
        .into_iter()
        .map(|device| SelectionRow {
            device,
            selected: selected.get(&device).copied().unwrap_or(0),
            expected_share: expected.get(&device).copied().unwrap_or(0.0)
                / rep.rounds.max(1) as f64,
            realized_share: selected.get(&device).copied().unwrap_or(0) as f64
                / total_slots.max(1) as f64,
        })
        .collect();

    rep.ring_blocked_secs = blocked.into_iter().collect();

    // Paper bound: a K-member ring moves 2(K−1) < 2K parameter frames
    // per round, each at most the largest param frame M on the wire.
    let mean_k = if selected_sizes.is_empty() {
        0.0
    } else {
        selected_sizes.iter().sum::<f64>() / selected_sizes.len() as f64
    };
    rep.ring_param_bound = (rep.rounds as f64 * 2.0 * mean_k * max_param_frame as f64) as u64;
    rep.ledgers = ledger_parity(events);
    rep
}

impl Report {
    /// Human-readable rendering (what `hadfl-trace` prints).
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "nodes: {:?}   rounds planned: {}\n",
            self.nodes, self.rounds
        ));

        out.push_str("\nprediction error (Eq. 7), mean |forecast - actual| per round:\n");
        if self.prediction_error.is_empty() {
            out.push_str("  (no prediction events)\n");
        }
        for (round, err) in &self.prediction_error {
            out.push_str(&format!("  round {round:>3}: {err:.3}\n"));
        }

        out.push_str("\nselection frequency vs Eq. 8 expectation:\n");
        for row in &self.selection {
            out.push_str(&format!(
                "  device {:>2}: selected {:>4}x  realized share {:.3}  expected share {:.3}\n",
                row.device, row.selected, row.realized_share, row.expected_share
            ));
        }

        out.push_str("\nring-blocked time per device (straggler idle):\n");
        for (node, secs) in &self.ring_blocked_secs {
            out.push_str(&format!("  device {node:>2}: {secs:.4} s\n"));
        }

        out.push_str(&format!(
            "\ncommunication: {} payload bytes over {} frames\n",
            self.total_sent_bytes, self.total_sent_frames
        ));
        out.push_str(&format!(
            "  ring parameter traffic: {} bytes vs 2*K*M bound {} ({})\n",
            self.ring_param_bytes,
            self.ring_param_bound,
            if self.ring_param_bytes <= self.ring_param_bound {
                "within bound"
            } else {
                "EXCEEDS BOUND"
            }
        ));
        for check in &self.ledgers {
            match check.ledger {
                Some((sent, recv, frames)) => out.push_str(&format!(
                    "  node {:>2} ledger: events {}/{}B {}f vs NetStats {}/{}B {}f -> {}\n",
                    check.node,
                    check.sent_event_bytes,
                    check.recv_event_bytes,
                    check.event_frames,
                    sent,
                    recv,
                    frames,
                    if check.matches() { "match" } else { "MISMATCH" }
                )),
                None => out.push_str(&format!(
                    "  node {:>2}: {} sent / {} received event bytes (no ledger event)\n",
                    check.node, check.sent_event_bytes, check.recv_event_bytes
                )),
            }
        }

        if !self.dropped.is_empty() {
            out.push_str(&format!("\ndropped devices: {:?}\n", self.dropped));
        }
        if !self.bypasses.is_empty() {
            out.push_str(&format!("bypasses (round, dead): {:?}\n", self.bypasses));
        }
        out
    }
}

/// Structural validation for `hadfl-trace --check`: schema versions,
/// per-node sequence continuity, garbage lines, and exact ledger
/// parity. Returns the list of problems (empty = clean).
pub fn check(logs: &[ParsedLog]) -> Vec<String> {
    let mut errors = Vec::new();
    for (i, log) in logs.iter().enumerate() {
        if log.garbage_lines > 0 {
            errors.push(format!("log {i}: {} malformed lines", log.garbage_lines));
        }
        let mut last_seq: BTreeMap<u32, u64> = BTreeMap::new();
        for event in &log.events {
            if event.v != SCHEMA_VERSION {
                errors.push(format!(
                    "log {i}: schema version {} (reader speaks {})",
                    event.v, SCHEMA_VERSION
                ));
                break;
            }
            if let Some(prev) = last_seq.get(&event.node) {
                if event.seq <= *prev {
                    errors.push(format!(
                        "log {i}: node {} seq went {} -> {} (dropped or reordered lines)",
                        event.node, prev, event.seq
                    ));
                    break;
                }
            }
            last_seq.insert(event.node, event.seq);
        }
    }
    let merged = merge(logs);
    for check in ledger_parity(&merged) {
        if check.ledger.is_some() && !check.matches() {
            errors.push(format!(
                "node {}: frame events ({} sent / {} recv bytes, {} frames) do not reproduce its NetStats ledger {:?}",
                check.node,
                check.sent_event_bytes,
                check.recv_event_bytes,
                check.event_frames,
                check.ledger
            ));
        }
    }
    errors
}

#[cfg(test)]
mod tests {
    use super::*;

    fn event(node: u32, seq: u64, t_us: u64, kind: EventKind) -> Event {
        Event {
            v: SCHEMA_VERSION,
            seq,
            node,
            t_us,
            kind,
        }
    }

    fn frame(src: u32, dst: u32, bytes: u64, kind: &str) -> EventKind {
        EventKind::FrameSent {
            src,
            dst,
            bytes,
            kind: kind.into(),
        }
    }

    #[test]
    fn parse_tolerates_garbage() {
        let good = event(0, 0, 5, EventKind::DeviceStarted { device: 0 })
            .to_json()
            .unwrap();
        let text = format!("{good}\nnot json at all\n\n{{\"v\":9}}\n{good}\n");
        let log = parse_jsonl(&text);
        assert_eq!(log.events.len(), 2);
        assert_eq!(log.garbage_lines, 2);
    }

    #[test]
    fn merge_orders_by_time_then_node_then_seq() {
        let a = ParsedLog {
            events: vec![
                event(1, 0, 50, EventKind::DeviceStarted { device: 1 }),
                event(1, 1, 10, EventKind::DeviceStarted { device: 1 }),
            ],
            garbage_lines: 0,
        };
        let b = ParsedLog {
            events: vec![event(0, 0, 50, EventKind::DeviceStarted { device: 0 })],
            garbage_lines: 0,
        };
        let merged = merge(&[a, b]);
        let order: Vec<(u64, u32)> = merged.iter().map(|e| (e.t_us, e.node)).collect();
        assert_eq!(order, vec![(10, 1), (50, 0), (50, 1)]);
    }

    #[test]
    fn report_derives_the_headline_diagnostics() {
        let coord = 2u32;
        let events = vec![
            event(
                coord,
                0,
                100,
                EventKind::RoundPlanned {
                    round: 1,
                    available: vec![0, 1],
                    versions: vec![10.0, 20.0],
                    probabilities: vec![0.5, 0.5],
                    selected: vec![0, 1],
                    unselected: vec![],
                    broadcaster: 0,
                },
            ),
            event(
                coord,
                1,
                100,
                EventKind::Prediction {
                    round: 1,
                    device: 0,
                    predicted: 12.0,
                    actual: 10.0,
                },
            ),
            event(
                coord,
                2,
                100,
                EventKind::Prediction {
                    round: 1,
                    device: 1,
                    predicted: 21.0,
                    actual: 20.0,
                },
            ),
            event(
                0,
                0,
                110,
                EventKind::RingEnter {
                    round: 1,
                    ring: vec![0, 1],
                },
            ),
            event(0, 1, 200, frame(0, 1, 40, "param_accum")),
            event(
                0,
                2,
                310,
                EventKind::RingExit {
                    round: 1,
                    dissolved: false,
                },
            ),
            event(
                0,
                3,
                400,
                EventKind::Ledger {
                    sent_bytes: 40,
                    recv_bytes: 0,
                    frames: 1,
                },
            ),
        ];
        let rep = report(&events);
        assert_eq!(rep.rounds, 1);
        assert_eq!(rep.prediction_error, vec![(1, 1.5)]);
        assert_eq!(rep.selection.len(), 2);
        assert_eq!(rep.selection[0].selected, 1);
        assert!((rep.selection[0].expected_share - 0.5).abs() < 1e-12);
        assert_eq!(rep.ring_blocked_secs, vec![(0, 0.0002)]);
        assert_eq!(rep.total_sent_bytes, 40);
        assert_eq!(rep.ring_param_bytes, 40);
        // 1 round * 2 * K=2 * M=40 = 160.
        assert_eq!(rep.ring_param_bound, 160);
        assert!(rep.ledgers[0].matches());
        let text = rep.render();
        assert!(text.contains("within bound"), "{text}");
        assert!(text.contains("match"), "{text}");
    }

    #[test]
    fn check_catches_ledger_mismatch_and_bad_seq() {
        let bad_ledger = ParsedLog {
            events: vec![
                event(0, 0, 10, frame(0, 1, 40, "param_sync")),
                event(
                    0,
                    1,
                    20,
                    EventKind::Ledger {
                        sent_bytes: 41,
                        recv_bytes: 0,
                        frames: 1,
                    },
                ),
            ],
            garbage_lines: 0,
        };
        let errors = check(&[bad_ledger]);
        assert!(errors.iter().any(|e| e.contains("ledger")), "{errors:?}");

        let bad_seq = ParsedLog {
            events: vec![
                event(0, 5, 10, EventKind::DeviceStarted { device: 0 }),
                event(0, 5, 20, EventKind::DeviceStarted { device: 0 }),
            ],
            garbage_lines: 0,
        };
        let errors = check(&[bad_seq]);
        assert!(errors.iter().any(|e| e.contains("seq")), "{errors:?}");

        let clean = ParsedLog {
            events: vec![
                event(0, 0, 10, frame(0, 1, 40, "param_sync")),
                event(
                    0,
                    1,
                    20,
                    EventKind::Ledger {
                        sent_bytes: 40,
                        recv_bytes: 0,
                        frames: 1,
                    },
                ),
            ],
            garbage_lines: 0,
        };
        assert!(check(&[clean]).is_empty());
    }
}
