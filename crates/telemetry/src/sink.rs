//! Event sinks: where emitted [`Event`]s go.
//!
//! A [`Telemetry`](crate::Telemetry) handle fans every event out to its
//! sinks under one short lock. Sinks must therefore be cheap and never
//! block on protocol state; the JSONL sink buffers through
//! `BufWriter`, the ring buffer drops its oldest entry when full, and
//! the metrics sink (in [`crate::metrics`]) just bumps counters.

use std::collections::VecDeque;
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;
use std::sync::Arc;

use parking_lot::Mutex;

use crate::event::Event;

/// A destination for emitted events.
pub trait Sink: Send {
    /// Consumes one event. Must not panic and must not block for long:
    /// this runs inside the emitting protocol thread.
    fn record(&mut self, event: &Event);

    /// Flushes buffered output (called on [`crate::Telemetry::flush`]).
    fn flush(&mut self) {}
}

/// Bounded in-memory sink for tests: keeps the most recent `capacity`
/// events. Clones share the same buffer, so a test can keep one clone
/// and hand the other to a [`Telemetry`](crate::Telemetry) handle.
#[derive(Debug, Clone)]
pub struct RingBufferSink {
    buf: Arc<Mutex<VecDeque<Event>>>,
    capacity: usize,
    dropped: Arc<Mutex<u64>>,
}

impl RingBufferSink {
    /// Creates a buffer holding at most `capacity` events (min 1).
    pub fn new(capacity: usize) -> Self {
        RingBufferSink {
            buf: Arc::new(Mutex::new(VecDeque::new())),
            capacity: capacity.max(1),
            dropped: Arc::new(Mutex::new(0)),
        }
    }

    /// Copies out the buffered events, oldest first.
    pub fn snapshot(&self) -> Vec<Event> {
        self.buf.lock().iter().cloned().collect()
    }

    /// Events evicted because the buffer was full.
    pub fn dropped(&self) -> u64 {
        *self.dropped.lock()
    }

    /// Number of buffered events.
    pub fn len(&self) -> usize {
        self.buf.lock().len()
    }

    /// True when nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.buf.lock().is_empty()
    }
}

impl Sink for RingBufferSink {
    fn record(&mut self, event: &Event) {
        // lint:allow(blocking-in-emit): in-memory ring shared only with snapshot readers; parking_lot, uncontended, no I/O under the guard
        let mut buf = self.buf.lock();
        if buf.len() == self.capacity {
            buf.pop_front();
            // lint:allow(blocking-in-emit): same in-memory ring bookkeeping
            *self.dropped.lock() += 1;
        }
        buf.push_back(event.clone());
    }
}

/// JSONL sink: one schema-versioned JSON object per line. Write errors
/// are remembered, not raised — telemetry must never take the protocol
/// down with it.
pub struct JsonlSink<W: Write + Send> {
    out: W,
    lines: u64,
    failed: bool,
}

impl JsonlSink<BufWriter<File>> {
    /// Creates (truncates) the file at `path` behind a `BufWriter`.
    ///
    /// # Errors
    ///
    /// Propagates file-creation errors.
    pub fn create(path: &Path) -> std::io::Result<Self> {
        Ok(JsonlSink::new(BufWriter::new(File::create(path)?)))
    }
}

impl<W: Write + Send> JsonlSink<W> {
    /// Wraps any writer (e.g. a `Vec<u8>` in tests).
    pub fn new(out: W) -> Self {
        JsonlSink {
            out,
            lines: 0,
            failed: false,
        }
    }

    /// Lines successfully serialized so far.
    pub fn lines(&self) -> u64 {
        self.lines
    }

    /// True if any write or serialization failed.
    pub fn failed(&self) -> bool {
        self.failed
    }

    /// Consumes the sink and returns the writer (flushing is the
    /// caller's business from here).
    pub fn into_inner(self) -> W {
        self.out
    }
}

/// An `Arc`-shared in-memory writer: keep one clone, hand the other to
/// a [`JsonlSink`], and read the captured bytes back after the run.
/// Test/bench helper — a real deployment writes to a file.
#[derive(Debug, Clone, Default)]
pub struct SharedBuffer(Arc<Mutex<Vec<u8>>>);

impl SharedBuffer {
    /// An empty shared buffer.
    pub fn new() -> Self {
        SharedBuffer::default()
    }

    /// Copies out everything written so far.
    pub fn contents(&self) -> Vec<u8> {
        self.0.lock().clone()
    }
}

impl Write for SharedBuffer {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

impl<W: Write + Send> Sink for JsonlSink<W> {
    fn record(&mut self, event: &Event) {
        match event.to_json() {
            Ok(line) => {
                if writeln!(self.out, "{line}").is_ok() {
                    self.lines += 1;
                } else {
                    self.failed = true;
                }
            }
            Err(_) => self.failed = true,
        }
    }

    fn flush(&mut self) {
        if self.out.flush().is_err() {
            self.failed = true;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{EventKind, SCHEMA_VERSION};

    fn event(seq: u64) -> Event {
        Event {
            v: SCHEMA_VERSION,
            seq,
            node: 0,
            t_us: seq * 10,
            lam: 0,
            kind: EventKind::DeviceStarted { device: 0 },
        }
    }

    #[test]
    fn ring_buffer_keeps_newest() {
        let mut sink = RingBufferSink::new(3);
        for seq in 0..5 {
            sink.record(&event(seq));
        }
        let seqs: Vec<u64> = sink.snapshot().iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![2, 3, 4]);
        assert_eq!(sink.dropped(), 2);
        assert_eq!(sink.len(), 3);
    }

    #[test]
    fn clones_share_the_buffer() {
        let sink = RingBufferSink::new(8);
        let mut writer = sink.clone();
        writer.record(&event(0));
        assert_eq!(sink.len(), 1);
    }

    #[test]
    fn jsonl_writes_one_line_per_event() {
        let mut sink = JsonlSink::new(Vec::new());
        for seq in 0..3 {
            sink.record(&event(seq));
        }
        sink.flush();
        assert!(!sink.failed());
        assert_eq!(sink.lines(), 3);
        let text = String::from_utf8(sink.into_inner()).unwrap();
        assert_eq!(text.lines().count(), 3);
        for line in text.lines() {
            Event::from_json(line).unwrap();
        }
    }
}
