//! # hadfl-telemetry — observability for the HADFL runtime
//!
//! A cross-cutting event layer threaded through the protocol actors
//! (`hadfl::exec`), the socket transport (`hadfl-net`), and the
//! simulation driver: every participant holds a cheap [`Telemetry`]
//! handle and emits typed [`Event`]s at protocol milestones. The
//! handle is **zero-cost when disabled** — [`Telemetry::disabled`] is
//! a `None` and `emit` returns immediately — so the hot training and
//! ring loops pay nothing in production-default builds (proved by the
//! `telemetry` criterion bench in `crates/bench`).
//!
//! Three sinks ship with the crate:
//!
//! - [`RingBufferSink`] — bounded in-memory buffer for tests,
//! - [`JsonlSink`] — one schema-versioned JSON object per line,
//! - [`MetricsSink`] + [`serve_metrics`] — a Prometheus-style registry
//!   with a text-exposition HTTP endpoint.
//!
//! The [`analyze`] module (and the `hadfl-trace` binary built from it)
//! merges per-node JSONL logs and reports the paper's headline
//! diagnostics: Eq. 7 prediction error, Eq. 8 selection frequencies,
//! straggler idle time, and the 2·K·M communication bound, with exact
//! parity against each node's `NetStats` ledger.
//!
//! Timestamps come from the emitter's `hadfl::clock::Clock` reading,
//! passed into [`Telemetry::emit`] as a `Duration`; this crate holds
//! no clock of its own, so `ManualClock` schedules produce
//! byte-identical JSONL.

pub mod analyze;
pub mod causal;
pub mod event;
pub mod follow;
pub mod health;
pub mod metrics;
pub mod profile;
pub mod ship;
pub mod sink;

pub use causal::LamportClock;
pub use event::{Event, EventKind, SCHEMA_VERSION};
pub use follow::FollowState;
pub use health::{Alert, HealthEngine, HealthOptions, HealthReport, Severity};
pub use metrics::{serve_metrics, MetricsRegistry, MetricsServer, MetricsSink};
pub use ship::{BatchShipper, ShipBatch, ShipOptions, ShipSink, ShipStats, VecShipper};
pub use sink::{JsonlSink, RingBufferSink, SharedBuffer, Sink};

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;

struct Inner {
    node: u32,
    seq: AtomicU64,
    /// The node's Lamport clock. The transport port ticks it on send
    /// and observes inbound stamps; `emit` reads it into every event's
    /// `lam` field, so event order and frame stamps share one scale.
    lamport: LamportClock,
    sinks: Mutex<Vec<Box<dyn Sink>>>,
}

/// Handle protocol code emits through. Clone freely: clones share the
/// node id, the sequence counter, and the sinks.
///
/// ```
/// use hadfl_telemetry::{EventKind, RingBufferSink, Telemetry};
/// use std::time::Duration;
///
/// let buffer = RingBufferSink::new(16);
/// let tel = Telemetry::new(0, vec![Box::new(buffer.clone())]);
/// tel.emit(
///     Duration::from_millis(3),
///     EventKind::DeviceStarted { device: 0 },
/// );
/// assert_eq!(buffer.snapshot().len(), 1);
///
/// // Disabled handles cost one branch and emit nowhere.
/// let off = Telemetry::disabled();
/// assert!(!off.enabled());
/// off.emit(Duration::ZERO, EventKind::DeviceStarted { device: 0 });
/// ```
#[derive(Clone, Default)]
pub struct Telemetry(Option<Arc<Inner>>);

impl std::fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.0 {
            Some(inner) => write!(f, "Telemetry(node {})", inner.node),
            None => write!(f, "Telemetry(disabled)"),
        }
    }
}

impl Telemetry {
    /// The no-op handle: `emit` is a single `Option` check.
    pub fn disabled() -> Self {
        Telemetry(None)
    }

    /// A live handle for participant `node` fanning out to `sinks`.
    pub fn new(node: u32, sinks: Vec<Box<dyn Sink>>) -> Self {
        Telemetry(Some(Arc::new(Inner {
            node,
            seq: AtomicU64::new(0),
            lamport: LamportClock::new(),
            sinks: Mutex::new(sinks),
        })))
    }

    /// The node's Lamport clock — the transport port must tick this
    /// exact clock on send and observe inbound frame stamps on it, so
    /// its `FrameSent`/`FrameReceived` events and every actor event
    /// land on one causal scale. A disabled handle returns a fresh
    /// clock: the port still stamps frames correctly (receivers
    /// max-merge whatever arrives) and nobody records the readings.
    pub fn lamport_clock(&self) -> LamportClock {
        match &self.0 {
            Some(inner) => inner.lamport.clone(),
            None => LamportClock::new(),
        }
    }

    /// Whether events go anywhere. Guard expensive event construction
    /// (cloning rings, formatting) behind this.
    pub fn enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Adds a sink after construction. Needed when a sink's transport
    /// wants the handle's own [`LamportClock`] (the `ShipSink`'s TCP
    /// shipper stamps outgoing batches with it), which only exists
    /// once the handle does. No-op on a disabled handle.
    pub fn attach_sink(&self, sink: Box<dyn Sink>) {
        if let Some(inner) = &self.0 {
            inner.sinks.lock().push(sink);
        }
    }

    /// The emitting participant id, if enabled.
    pub fn node(&self) -> Option<u32> {
        self.0.as_ref().map(|inner| inner.node)
    }

    /// Stamps and fans out one event. `now` is the emitter's `Clock`
    /// reading — pass the same `now` your protocol step runs under and
    /// `ManualClock` runs stay deterministic.
    ///
    /// A `FrameSent` event takes its Lamport reading from the frame's
    /// own stamp rather than the clock's current value: between the
    /// send's `tick` and this emit, another thread (the heartbeat
    /// loop, the reader observing an inbound stamp) may have advanced
    /// the shared clock past what the receiver will merge to, which
    /// would place the send *after* its own receive in the causal
    /// merge. The stamp is the send's true logical time.
    pub fn emit(&self, now: Duration, kind: EventKind) {
        let Some(inner) = &self.0 else { return };
        let lam = match &kind {
            EventKind::FrameSent { lamport, .. } if *lamport > 0 => *lamport,
            _ => inner.lamport.current(),
        };
        let event = Event {
            v: SCHEMA_VERSION,
            seq: inner.seq.fetch_add(1, Ordering::SeqCst),
            node: inner.node,
            t_us: now.as_micros() as u64,
            lam,
            kind,
        };
        // lint:allow(blocking-in-emit): uncontended parking_lot fan-out lock; sinks themselves must not block
        let mut sinks = inner.sinks.lock();
        for sink in sinks.iter_mut() {
            sink.record(&event);
        }
    }

    /// Emits a profiler dump as telemetry events: one
    /// [`EventKind::OpProfile`] per *leaf op* (stack rows summed by
    /// their last path segment, so `train_step;dense_fwd;matmul` and
    /// `train_step;conv2d_fwd;im2col;matmul` both feed the `matmul`
    /// op) and one [`EventKind::PoolProfile`] per pool region. The
    /// full hierarchy stays in the on-disk dump; events carry the
    /// per-op aggregates the metrics registry and collector want.
    ///
    /// Call once at shutdown, before [`Telemetry::flush`]. No-op on a
    /// disabled handle or an empty dump.
    pub fn emit_profile(&self, now: Duration, dump: &hadfl_prof::ProfileDump) {
        if self.0.is_none() {
            return;
        }
        // BTreeMap: leaf ops emit in name order, deterministically.
        let mut ops: std::collections::BTreeMap<&str, (u64, u64, u64, u64)> =
            std::collections::BTreeMap::new();
        for row in &dump.stacks {
            let leaf = row.stack.rsplit(';').next().unwrap_or(&row.stack);
            let agg = ops.entry(leaf).or_default();
            agg.0 += row.count;
            agg.1 += row.total_ns;
            agg.2 += row.self_ns;
            agg.3 += row.bytes;
        }
        for (op, (calls, total_ns, self_ns, bytes)) in ops {
            self.emit(
                now,
                EventKind::OpProfile {
                    op: op.to_string(),
                    calls,
                    total_ns,
                    self_ns,
                    bytes,
                },
            );
        }
        for pool in &dump.pools {
            self.emit(
                now,
                EventKind::PoolProfile {
                    region: pool.region.clone(),
                    dispatches: pool.dispatches,
                    max_workers: pool.max_workers,
                    tasks: pool.tasks,
                    busy_ns: pool.busy_ns,
                    park_ns: pool.park_ns,
                    wall_ns: pool.wall_ns,
                    max_chunk_ns: pool.max_chunk_ns,
                    min_chunk_ns: pool.min_chunk_ns,
                },
            );
        }
    }

    /// Flushes every sink (call before process exit so JSONL buffers
    /// reach disk).
    pub fn flush(&self) {
        if let Some(inner) = &self.0 {
            let mut sinks = inner.sinks.lock();
            for sink in sinks.iter_mut() {
                sink.flush();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequences_are_contiguous_and_stamped() {
        let buffer = RingBufferSink::new(8);
        let tel = Telemetry::new(3, vec![Box::new(buffer.clone())]);
        for ms in [5u64, 9, 12] {
            tel.emit(
                Duration::from_millis(ms),
                EventKind::DeviceStarted { device: 3 },
            );
        }
        let events = buffer.snapshot();
        assert_eq!(events.len(), 3);
        for (i, event) in events.iter().enumerate() {
            assert_eq!(event.seq, i as u64);
            assert_eq!(event.node, 3);
            assert_eq!(event.v, SCHEMA_VERSION);
        }
        assert_eq!(events[2].t_us, 12_000);
    }

    #[test]
    fn clones_share_the_sequence() {
        let buffer = RingBufferSink::new(8);
        let tel = Telemetry::new(0, vec![Box::new(buffer.clone())]);
        let clone = tel.clone();
        tel.emit(Duration::ZERO, EventKind::DeviceStarted { device: 0 });
        clone.emit(
            Duration::ZERO,
            EventKind::DeviceFinished {
                device: 0,
                version: 1,
            },
        );
        let seqs: Vec<u64> = buffer.snapshot().iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![0, 1]);
    }

    #[test]
    fn emit_profile_aggregates_stacks_by_leaf_op() {
        use hadfl_prof::{PoolRow, ProfileDump, StackRow, PROF_SCHEMA_VERSION};
        let buffer = RingBufferSink::new(16);
        let tel = Telemetry::new(0, vec![Box::new(buffer.clone())]);
        let dump = ProfileDump {
            v: PROF_SCHEMA_VERSION,
            node: 0,
            stacks: vec![
                StackRow {
                    stack: "train_step;dense_fwd;matmul".into(),
                    count: 2,
                    total_ns: 100,
                    self_ns: 100,
                    bytes: 8,
                },
                StackRow {
                    stack: "train_step;conv2d_fwd;matmul".into(),
                    count: 3,
                    total_ns: 50,
                    self_ns: 40,
                    bytes: 4,
                },
            ],
            pools: vec![PoolRow {
                region: "par".into(),
                dispatches: 1,
                max_workers: 2,
                tasks: 4,
                busy_ns: 80,
                park_ns: 20,
                wake_ns: 0,
                wall_ns: 100,
                serial_est_ns: 0,
                max_chunk_ns: 30,
                min_chunk_ns: 10,
            }],
        };
        tel.emit_profile(Duration::from_millis(7), &dump);
        let events = buffer.snapshot();
        assert_eq!(events.len(), 2, "one merged op + one pool row");
        match &events[0].kind {
            EventKind::OpProfile {
                op,
                calls,
                self_ns,
                bytes,
                ..
            } => {
                assert_eq!(op, "matmul");
                assert_eq!(*calls, 5);
                assert_eq!(*self_ns, 140);
                assert_eq!(*bytes, 12);
            }
            other => panic!("expected OpProfile, got {other:?}"),
        }
        match &events[1].kind {
            EventKind::PoolProfile { region, tasks, .. } => {
                assert_eq!(region, "par");
                assert_eq!(*tasks, 4);
            }
            other => panic!("expected PoolProfile, got {other:?}"),
        }
    }

    #[test]
    fn disabled_is_inert() {
        let tel = Telemetry::disabled();
        assert!(!tel.enabled());
        assert_eq!(tel.node(), None);
        tel.emit(Duration::ZERO, EventKind::ShutdownSent { round: 1 });
        tel.flush();
    }
}
