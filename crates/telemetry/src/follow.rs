//! Rolling live view for `hadfl-trace --follow`.
//!
//! [`FollowState`] ingests events incrementally (from a collector
//! spool file being tailed, or any merged stream) and renders a
//! compact rolling dashboard: recent round latencies and, per round,
//! which device held the ring longest — the live straggler
//! attribution the paper's Eq. 7/Eq. 8 machinery exists to react to.
//!
//! Ring durations are computed per node from that node's own
//! `RingEnter`→`RingExit` timestamps (same clock, no cross-host
//! skew); round durations come from the coordinator's
//! `RoundComplete`.

use std::collections::BTreeMap;

use crate::event::{Event, EventKind};

/// Per-node ring occupancy within one round.
#[derive(Debug, Default, Clone)]
struct RingStay {
    enter_t_us: Option<u64>,
    exit_t_us: Option<u64>,
    dissolved: bool,
}

/// Rolling per-round view.
#[derive(Debug, Default, Clone)]
struct RoundView {
    duration_us: Option<u64>,
    stays: BTreeMap<u32, RingStay>,
    merges: u32,
    bypassed: Vec<u32>,
}

/// Incremental state behind the `--follow` dashboard.
#[derive(Debug, Default)]
pub struct FollowState {
    rounds: BTreeMap<u32, RoundView>,
    events_seen: u64,
    /// Sum of `dropped` counts announced by shipped batches, when the
    /// feeder knows them (spool comment lines).
    pub dropped_reported: u64,
}

impl FollowState {
    /// An empty view.
    pub fn new() -> Self {
        FollowState::default()
    }

    /// Events ingested so far.
    pub fn events_seen(&self) -> u64 {
        self.events_seen
    }

    /// Feeds one event.
    pub fn observe(&mut self, event: &Event) {
        self.events_seen += 1;
        match &event.kind {
            EventKind::RingEnter { round, .. } => {
                let stay = self
                    .rounds
                    .entry(*round)
                    .or_default()
                    .stays
                    .entry(event.node)
                    .or_default();
                stay.enter_t_us = Some(event.t_us);
            }
            EventKind::RingExit { round, dissolved } => {
                let stay = self
                    .rounds
                    .entry(*round)
                    .or_default()
                    .stays
                    .entry(event.node)
                    .or_default();
                stay.exit_t_us = Some(event.t_us);
                stay.dissolved = *dissolved;
            }
            EventKind::Merge { round, .. } => {
                self.rounds.entry(*round).or_default().merges += 1;
            }
            EventKind::BypassDeclared { round, dead } => {
                let view = self.rounds.entry(*round).or_default();
                if !view.bypassed.contains(dead) {
                    view.bypassed.push(*dead);
                }
            }
            EventKind::RoundComplete { round, duration_us } => {
                self.rounds.entry(*round).or_default().duration_us = Some(*duration_us);
            }
            _ => {}
        }
    }

    /// The slowest ring member of a round: `(node, stay_us)`, from
    /// completed stays only.
    fn slowest(view: &RoundView) -> Option<(u32, u64)> {
        view.stays
            .iter()
            .filter_map(|(&node, stay)| match (stay.enter_t_us, stay.exit_t_us) {
                (Some(enter), Some(exit)) if exit >= enter => Some((node, exit - enter)),
                _ => None,
            })
            .max_by_key(|&(node, stay)| (stay, node))
    }

    /// Renders the rolling dashboard over the latest `window` rounds.
    pub fn render(&self, window: usize) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "events {:>8}   rounds {:>5}   thinned {:>6}\n",
            self.events_seen,
            self.rounds.len(),
            self.dropped_reported
        ));
        out.push_str("round     status    round_ms   slowest_node   stay_ms\n");
        let skip = self.rounds.len().saturating_sub(window);
        for (&round, view) in self.rounds.iter().skip(skip) {
            let status = if view.duration_us.is_some() {
                "done"
            } else if view.stays.values().any(|s| s.dissolved) && view.merges == 0 {
                "dissolved"
            } else {
                "open"
            };
            let round_ms = view
                .duration_us
                .map(|us| format!("{:.1}", us as f64 / 1000.0))
                .unwrap_or_else(|| "-".into());
            let (slow_node, stay_ms) = match Self::slowest(view) {
                Some((node, us)) => (node.to_string(), format!("{:.1}", us as f64 / 1000.0)),
                None => ("-".into(), "-".into()),
            };
            let bypass = if view.bypassed.is_empty() {
                String::new()
            } else {
                format!("   bypassed {:?}", view.bypassed)
            };
            out.push_str(&format!(
                "{round:>5}  {status:>9}  {round_ms:>9}  {slow_node:>13}  {stay_ms:>8}{bypass}\n"
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::SCHEMA_VERSION;

    fn at(node: u32, t_us: u64, kind: EventKind) -> Event {
        Event {
            v: SCHEMA_VERSION,
            seq: 0,
            node,
            t_us,
            lam: 0,
            kind,
        }
    }

    #[test]
    fn attributes_the_slowest_ring_member() {
        let mut state = FollowState::new();
        for (node, enter, exit) in [
            (0u32, 1_000u64, 5_000u64),
            (1, 1_200, 30_000),
            (2, 900, 4_000),
        ] {
            state.observe(&at(
                node,
                enter,
                EventKind::RingEnter {
                    round: 1,
                    ring: vec![0, 1, 2],
                },
            ));
            state.observe(&at(
                node,
                exit,
                EventKind::RingExit {
                    round: 1,
                    dissolved: false,
                },
            ));
        }
        state.observe(&at(
            9,
            31_000,
            EventKind::RoundComplete {
                round: 1,
                duration_us: 31_000,
            },
        ));
        let rendered = state.render(10);
        assert!(rendered.contains("done"), "{rendered}");
        // Node 1 held the ring 28.8 ms — the straggler column.
        let row = rendered
            .lines()
            .find(|l| l.contains("done"))
            .expect("round row");
        assert!(row.contains(" 1 ") && row.contains("28.8"), "{row}");
        assert_eq!(state.events_seen(), 7);
    }

    #[test]
    fn open_and_dissolved_rounds_are_labeled() {
        let mut state = FollowState::new();
        state.observe(&at(
            0,
            100,
            EventKind::RingEnter {
                round: 1,
                ring: vec![0, 1],
            },
        ));
        assert!(state.render(10).contains("open"));
        state.observe(&at(
            0,
            900,
            EventKind::RingExit {
                round: 1,
                dissolved: true,
            },
        ));
        state.observe(&at(0, 950, EventKind::BypassDeclared { round: 1, dead: 1 }));
        let rendered = state.render(10);
        assert!(rendered.contains("dissolved"), "{rendered}");
        assert!(rendered.contains("bypassed [1]"), "{rendered}");
    }

    #[test]
    fn window_limits_the_table() {
        let mut state = FollowState::new();
        for round in 1..=20u32 {
            state.observe(&at(
                9,
                round as u64 * 1_000,
                EventKind::RoundComplete {
                    round,
                    duration_us: 500,
                },
            ));
        }
        let rendered = state.render(5);
        assert!(!rendered.contains("\n   15  "), "{rendered}");
        assert!(rendered.contains("\n   16  "), "{rendered}");
        assert!(rendered.contains("\n   20  "), "{rendered}");
    }
}
