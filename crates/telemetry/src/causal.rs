//! Lamport clocks for causal ordering of cross-node telemetry.
//!
//! Wall clocks on different hosts skew; ordering a merged multi-node
//! timeline by `t_us` silently misorders events whenever the skew
//! exceeds the event spacing. A Lamport clock gives each node a
//! logical counter that is bumped on every frame send and max-merged
//! on every receive, so `lam(send) < lam(receive)` always holds and
//! sorting by `(lam, node, seq)` is a valid linear extension of
//! happens-before — immune to arbitrary per-node clock offsets.
//!
//! The clock lives here (not in `hadfl::wire`, which defines the
//! on-wire stamp format) because it is shared between a node's
//! [`crate::Telemetry`] handle — every emitted [`crate::Event`]
//! carries the current reading in its `lam` field — and the node's
//! transport port, which ticks it on send and observes inbound stamps
//! on receive. One clock per node keeps frame stamps and event stamps
//! on the same scale.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A shareable Lamport clock. Clones observe the same counter.
///
/// The merge laws (checked by proptests below):
/// - [`LamportClock::tick`] strictly increases the counter;
/// - [`LamportClock::observe`] leaves the counter strictly above both
///   its old value and the observed stamp;
/// - observing stamps in any order converges to the same value
///   (max-merge is commutative and associative).
#[derive(Debug, Clone, Default)]
pub struct LamportClock(Arc<AtomicU64>);

impl LamportClock {
    /// A fresh clock at 0. The zero reading is reserved for "never
    /// participated in causal exchange" — legacy logs deserialize
    /// their missing `lam` fields to 0 and the analyzer falls back to
    /// wall-clock ordering for them.
    pub fn new() -> Self {
        LamportClock(Arc::new(AtomicU64::new(0)))
    }

    /// The current reading, without advancing.
    pub fn current(&self) -> u64 {
        self.0.load(Ordering::SeqCst)
    }

    /// Advances the clock for a local send and returns the new value —
    /// the stamp to put on the outgoing frame.
    pub fn tick(&self) -> u64 {
        self.0.fetch_add(1, Ordering::SeqCst) + 1
    }

    /// Merges an inbound stamp: the clock becomes
    /// `max(current, seen) + 1`, which is returned. The result is
    /// strictly greater than `seen`, so every event the receiver emits
    /// afterwards sorts after the send in `(lam, node, seq)` order.
    pub fn observe(&self, seen: u64) -> u64 {
        let mut cur = self.0.load(Ordering::SeqCst);
        loop {
            let next = cur.max(seen) + 1;
            match self
                .0
                .compare_exchange(cur, next, Ordering::SeqCst, Ordering::SeqCst)
            {
                Ok(_) => return next,
                Err(now) => cur = now,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn tick_is_strictly_monotonic() {
        let clock = LamportClock::new();
        let mut last = clock.current();
        for _ in 0..100 {
            let next = clock.tick();
            assert!(next > last);
            last = next;
        }
    }

    #[test]
    fn clones_share_the_counter() {
        let a = LamportClock::new();
        let b = a.clone();
        a.tick();
        b.observe(10);
        assert_eq!(a.current(), b.current());
        assert_eq!(a.current(), 11);
    }

    proptest! {
        /// observe() dominates both inputs: the merged clock is
        /// strictly above the prior local value and the seen stamp.
        #[test]
        fn observe_dominates(local in 0u64..1 << 48, seen in 0u64..1 << 48) {
            let clock = LamportClock(Arc::new(AtomicU64::new(local)));
            let merged = clock.observe(seen);
            prop_assert!(merged > local);
            prop_assert!(merged > seen);
            prop_assert_eq!(merged, local.max(seen) + 1);
        }

        /// The max-merge core is commutative: observing two stamps in
        /// either order strictly dominates every input either way, and
        /// the per-receive `+1` bump (one per observe, regardless of
        /// order) bounds both results to the same `+2` envelope — the
        /// final readings differ by at most 1, never in which events
        /// they causally dominate.
        #[test]
        fn observe_order_is_irrelevant(
            start in 0u64..1 << 48,
            a in 0u64..1 << 48,
            b in 0u64..1 << 48,
        ) {
            let ab = LamportClock(Arc::new(AtomicU64::new(start)));
            ab.observe(a);
            ab.observe(b);
            let ba = LamportClock(Arc::new(AtomicU64::new(start)));
            ba.observe(b);
            ba.observe(a);
            let top = start.max(a).max(b);
            for merged in [ab.current(), ba.current()] {
                prop_assert!(merged > top);
                prop_assert!(merged <= top + 2);
            }
            prop_assert!(ab.current().abs_diff(ba.current()) <= 1);
        }

        /// The send/receive law the analyzer's merge relies on: a tick
        /// on the sender followed by an observe on any receiver leaves
        /// the receiver strictly after the sender's stamp.
        #[test]
        fn send_happens_before_receive(
            sender in 0u64..1 << 48,
            receiver in 0u64..1 << 48,
        ) {
            let s = LamportClock(Arc::new(AtomicU64::new(sender)));
            let stamp = s.tick();
            let r = LamportClock(Arc::new(AtomicU64::new(receiver)));
            let recv = r.observe(stamp);
            prop_assert!(stamp > sender);
            prop_assert!(recv > stamp);
        }
    }
}
