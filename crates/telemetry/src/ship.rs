//! Live telemetry shipping: a bounded, non-blocking queue between the
//! emitting protocol threads and one background shipper thread.
//!
//! [`ShipSink`] is a [`Sink`] whose `record` never blocks and never
//! performs I/O (the `blocking-in-emit` lint rule pins this): events
//! are classified and offered to a [`ShipQueue`], and a dedicated
//! shipper thread drains the queue, assembles [`ShipBatch`]es, and
//! hands them to a [`BatchShipper`] — the transport-specific half
//! (`hadfl-net`'s `TcpShipper` seals batches like any other frame, so
//! Lamport stamps ride along).
//!
//! # Backpressure and the never-drop classes
//!
//! The queue is bounded for *droppable* events only. Under pressure it
//! degrades in two stages rather than falling off a cliff:
//!
//! - above `sample_watermark` (half the capacity), droppable events
//!   are sampled 1-in-`sample_every`;
//! - at full capacity, droppable events are dropped outright.
//!
//! Counters (`LocalSteps`, `FrameSent`, `FrameReceived`), `Ledger`
//! entries, and the round-plan/bypass control events are **never**
//! dropped — they bypass the bound entirely, because the collector's
//! health rules and byte-parity checks are only sound over a complete
//! stream of them. Span and lifecycle events are the droppable class:
//! they are high-rate, and a thinned Gantt chart is still a Gantt
//! chart. Every batch carries an explicit `dropped` count so thinning
//! is visible, never silent.

use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};

use crate::event::{Event, EventKind};
use crate::sink::Sink;

/// One assembled batch handed to a [`BatchShipper`].
#[derive(Debug, Clone, PartialEq)]
pub struct ShipBatch {
    /// The shipping participant (the node that owns the sink).
    pub node: u32,
    /// Droppable-class events thinned since the previous batch.
    pub dropped: u32,
    /// The surviving events, in emission order.
    pub events: Vec<Event>,
}

impl ShipBatch {
    /// Serializes the batch's events to the JSONL wire payload (one
    /// event per line, same schema as the JSONL sink). Events that
    /// fail to serialize are skipped — the schema forbids them and the
    /// emitter is the bug, not the wire.
    pub fn to_jsonl(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.events.len() * 96);
        for event in &self.events {
            if let Ok(line) = event.to_json() {
                out.extend_from_slice(line.as_bytes());
                out.push(b'\n');
            }
        }
        out
    }

    /// Parses a payload produced by [`ShipBatch::to_jsonl`], returning
    /// the events and the number of malformed lines.
    pub fn parse_jsonl(payload: &[u8]) -> (Vec<Event>, usize) {
        let text = String::from_utf8_lossy(payload);
        let mut events = Vec::new();
        let mut garbage = 0usize;
        for line in text.lines() {
            if line.trim().is_empty() {
                continue;
            }
            match Event::from_json(line) {
                Ok(event) => events.push(event),
                Err(_) => garbage += 1,
            }
        }
        (events, garbage)
    }
}

/// The transport half of shipping: ships one batch at a time from the
/// shipper thread (blocking I/O is fine *here* — this is exactly the
/// thread the bounded queue exists to protect the emitters from).
pub trait BatchShipper: Send {
    /// Ships one batch. Errors are returned, counted by the sink, and
    /// otherwise swallowed: telemetry must never take the run down.
    fn ship(&mut self, batch: &ShipBatch) -> Result<(), String>;

    /// Flushes any transport buffering (end of run).
    fn flush(&mut self) {}
}

/// In-memory shipper for tests and the simnet adapter: batches pile up
/// in a shared vector. Clones share the store.
#[derive(Debug, Clone, Default)]
pub struct VecShipper {
    batches: Arc<parking_lot::Mutex<Vec<ShipBatch>>>,
}

impl VecShipper {
    /// An empty shared store.
    pub fn new() -> Self {
        VecShipper::default()
    }

    /// Copies out everything shipped so far.
    pub fn batches(&self) -> Vec<ShipBatch> {
        self.batches.lock().clone()
    }
}

impl BatchShipper for VecShipper {
    fn ship(&mut self, batch: &ShipBatch) -> Result<(), String> {
        self.batches.lock().push(batch.clone());
        Ok(())
    }
}

/// Tuning knobs of a [`ShipSink`].
#[derive(Debug, Clone)]
pub struct ShipOptions {
    /// Bound on *droppable* queued events. Critical-class events are
    /// exempt (they must arrive; they are low-rate by construction).
    pub capacity: usize,
    /// Keep 1 in `sample_every` droppable events while the queue sits
    /// between the watermark and the cap (min 1 = no thinning).
    pub sample_every: u64,
    /// Ship a partial batch after this long without traffic.
    pub batch_interval: Duration,
    /// Ship a batch once it holds this many events.
    pub batch_max_events: usize,
}

impl Default for ShipOptions {
    fn default() -> Self {
        ShipOptions {
            capacity: 8192,
            sample_every: 8,
            batch_interval: Duration::from_millis(200),
            batch_max_events: 512,
        }
    }
}

/// Whether an event may never be dropped by the shipping layer.
///
/// Counters and ledger entries feed exact byte/step parity checks;
/// round-plan, prediction, and bypass/repair events feed the
/// collector's health rules. Sampling any of them would turn a
/// thinned stream into a *lying* stream. Spans and device lifecycle
/// events are rate-proportional rendering data — safe to thin.
pub fn is_critical(kind: &EventKind) -> bool {
    !matches!(
        kind,
        EventKind::SpanStart { .. }
            | EventKind::SpanEnd { .. }
            | EventKind::DeviceStarted { .. }
            | EventKind::DeviceFinished { .. }
    )
}

/// The producer half of the shipping queue: classification, the
/// two-stage backpressure gate, and drop accounting. Pure with respect
/// to time and I/O, so the proptests can drive it deterministically
/// with a scripted drain pattern.
pub struct ShipQueue {
    tx: Sender<Event>,
    /// Droppable events currently queued (incremented on enqueue,
    /// decremented by the consumer on dequeue).
    depth: Arc<AtomicUsize>,
    /// Droppable events thinned since the last batch was sealed.
    dropped: Arc<AtomicU32>,
    /// Total droppable events thinned over the sink's lifetime.
    dropped_total: Arc<AtomicU64>,
    /// Deterministic 1-in-N sampling counter.
    sample_seq: AtomicU64,
    opts: ShipOptions,
}

/// The consumer half: receives events and maintains the depth counter.
pub struct ShipQueueConsumer {
    rx: Receiver<Event>,
    depth: Arc<AtomicUsize>,
}

impl ShipQueueConsumer {
    /// Blocks up to `timeout` for the next event.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<Event, RecvTimeoutError> {
        let event = self.rx.recv_timeout(timeout)?;
        self.note_dequeued(&event);
        Ok(event)
    }

    /// Non-blocking receive (test and flush drains).
    pub fn try_recv(&self) -> Option<Event> {
        let event = self.rx.try_recv().ok()?;
        self.note_dequeued(&event);
        Some(event)
    }

    fn note_dequeued(&self, event: &Event) {
        if !is_critical(&event.kind) {
            self.depth.fetch_sub(1, Ordering::SeqCst);
        }
    }
}

impl ShipQueue {
    /// A fresh queue and its consumer.
    pub fn new(opts: ShipOptions) -> (ShipQueue, ShipQueueConsumer) {
        let (tx, rx) = unbounded();
        let depth = Arc::new(AtomicUsize::new(0));
        let queue = ShipQueue {
            tx,
            depth: Arc::clone(&depth),
            dropped: Arc::new(AtomicU32::new(0)),
            dropped_total: Arc::new(AtomicU64::new(0)),
            sample_seq: AtomicU64::new(0),
            opts,
        };
        (queue, ShipQueueConsumer { rx, depth })
    }

    /// Offers one event. Critical events always enqueue; droppable
    /// events pass the two-stage gate. Returns whether the event was
    /// enqueued. Never blocks, never locks, never touches I/O.
    pub fn offer(&self, event: &Event) -> bool {
        if is_critical(&event.kind) {
            return self.tx.send(event.clone()).is_ok();
        }
        let depth = self.depth.load(Ordering::SeqCst);
        let cap = self.opts.capacity.max(1);
        let thinned = if depth >= cap {
            true
        } else if depth >= cap / 2 {
            // Deterministic 1-in-N: the counter advances only while
            // the gate is active, so the kept/thinned pattern depends
            // on queue pressure, not on wall time.
            let seq = self.sample_seq.fetch_add(1, Ordering::SeqCst);
            !seq.is_multiple_of(self.opts.sample_every.max(1))
        } else {
            false
        };
        if thinned {
            self.dropped.fetch_add(1, Ordering::SeqCst);
            self.dropped_total.fetch_add(1, Ordering::SeqCst);
            return false;
        }
        self.depth.fetch_add(1, Ordering::SeqCst);
        if self.tx.send(event.clone()).is_err() {
            self.depth.fetch_sub(1, Ordering::SeqCst);
            return false;
        }
        true
    }

    /// Takes the drop count accumulated since the last call — the
    /// `dropped` field of the batch being sealed.
    pub fn take_dropped(&self) -> u32 {
        self.dropped.swap(0, Ordering::SeqCst)
    }

    /// Droppable events currently queued.
    pub fn depth(&self) -> usize {
        self.depth.load(Ordering::SeqCst)
    }

    /// Shared lifetime drop counter (survives the queue, for stats
    /// handles).
    fn dropped_total_handle(&self) -> Arc<AtomicU64> {
        Arc::clone(&self.dropped_total)
    }
}

/// Read-only counters of a running [`ShipSink`].
#[derive(Debug, Clone)]
pub struct ShipStats {
    shipped_events: Arc<AtomicU64>,
    shipped_batches: Arc<AtomicU64>,
    failed_batches: Arc<AtomicU64>,
    dropped_total: Arc<AtomicU64>,
}

impl ShipStats {
    /// Events successfully handed to the transport.
    pub fn shipped_events(&self) -> u64 {
        self.shipped_events.load(Ordering::SeqCst)
    }

    /// Batches successfully handed to the transport.
    pub fn shipped_batches(&self) -> u64 {
        self.shipped_batches.load(Ordering::SeqCst)
    }

    /// Batches the transport reported as failed.
    pub fn failed_batches(&self) -> u64 {
        self.failed_batches.load(Ordering::SeqCst)
    }

    /// Droppable events thinned over the sink's lifetime.
    pub fn dropped_total(&self) -> u64 {
        self.dropped_total.load(Ordering::SeqCst)
    }
}

/// A [`Sink`] that ships events to a collector via a background
/// thread. See the module docs for the backpressure contract.
pub struct ShipSink {
    queue: Arc<ShipQueue>,
    stats: ShipStats,
    /// Bumped by `flush`; the shipper acknowledges by catching
    /// `flush_acked` up. The handshake runs over the same channel the
    /// events do, so an ack means every prior event was shipped.
    flush_requested: Arc<AtomicU64>,
    flush_acked: Arc<AtomicU64>,
    /// Set by `Drop`; the worker drains, ships, and exits. Needed
    /// because the worker holds its own `Arc<ShipQueue>` (for drop
    /// counters), so the channel never reports disconnection.
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl ShipSink {
    /// Spawns the shipper thread for `node`, draining into `shipper`.
    pub fn new(node: u32, opts: ShipOptions, shipper: Box<dyn BatchShipper>) -> Self {
        let (queue, consumer) = ShipQueue::new(opts.clone());
        let queue = Arc::new(queue);
        let stats = ShipStats {
            shipped_events: Arc::new(AtomicU64::new(0)),
            shipped_batches: Arc::new(AtomicU64::new(0)),
            failed_batches: Arc::new(AtomicU64::new(0)),
            dropped_total: queue.dropped_total_handle(),
        };
        let flush_requested = Arc::new(AtomicU64::new(0));
        let flush_acked = Arc::new(AtomicU64::new(0));
        let stop = Arc::new(AtomicBool::new(false));
        let worker = ShipWorker {
            node,
            opts,
            queue: Arc::clone(&queue),
            consumer,
            shipper,
            stats: stats.clone(),
            flush_requested: Arc::clone(&flush_requested),
            flush_acked: Arc::clone(&flush_acked),
            stop: Arc::clone(&stop),
        };
        let handle = std::thread::Builder::new()
            .name(format!("hadfl-ship-{node}"))
            .spawn(move || worker.run())
            .ok();
        ShipSink {
            queue,
            stats,
            flush_requested,
            flush_acked,
            stop,
            handle,
        }
    }

    /// Counter handles that outlive the sink.
    pub fn stats(&self) -> ShipStats {
        self.stats.clone()
    }
}

impl Sink for ShipSink {
    fn record(&mut self, event: &Event) {
        // Hot path: classification + atomics + a channel send. No
        // locks, no I/O — the shipper thread does the blocking work.
        self.queue.offer(event);
    }

    fn flush(&mut self) {
        // Not the emit hot path: flush may wait. Handshake with the
        // shipper thread so every queued event is on the wire (or
        // counted as failed) before this returns.
        let epoch = self.flush_requested.fetch_add(1, Ordering::SeqCst) + 1;
        let deadline = 400; // x 5 ms = 2 s bound
        for _ in 0..deadline {
            if self.flush_acked.load(Ordering::SeqCst) >= epoch {
                return;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
    }
}

impl Drop for ShipSink {
    fn drop(&mut self) {
        // One final flush epoch so queued events go on the wire, then
        // tell the worker to exit and wait for it. The join is bounded
        // in practice by `batch_interval`: the worker re-checks the
        // stop flag every recv timeout.
        self.flush_requested.fetch_add(1, Ordering::SeqCst);
        self.stop.store(true, Ordering::SeqCst);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

struct ShipWorker {
    node: u32,
    opts: ShipOptions,
    queue: Arc<ShipQueue>,
    consumer: ShipQueueConsumer,
    shipper: Box<dyn BatchShipper>,
    stats: ShipStats,
    flush_requested: Arc<AtomicU64>,
    flush_acked: Arc<AtomicU64>,
    stop: Arc<AtomicBool>,
}

impl ShipWorker {
    fn run(mut self) {
        let mut buf: Vec<Event> = Vec::with_capacity(self.opts.batch_max_events);
        loop {
            let disconnected = match self.consumer.recv_timeout(self.opts.batch_interval) {
                Ok(event) => {
                    buf.push(event);
                    false
                }
                Err(RecvTimeoutError::Timeout) => false,
                Err(RecvTimeoutError::Disconnected) => true,
            };
            let disconnected = disconnected || self.stop.load(Ordering::SeqCst);
            let flush_wanted = self.flush_requested.load(Ordering::SeqCst)
                > self.flush_acked.load(Ordering::SeqCst);
            if flush_wanted || disconnected {
                // Drain everything already enqueued before sealing.
                while let Some(event) = self.consumer.try_recv() {
                    buf.push(event);
                    if buf.len() >= self.opts.batch_max_events {
                        self.seal_and_ship(&mut buf);
                    }
                }
            }
            if buf.len() >= self.opts.batch_max_events
                || (!buf.is_empty() && (flush_wanted || disconnected))
            {
                self.seal_and_ship(&mut buf);
            }
            if flush_wanted || disconnected {
                // Ship a drop-only batch if thinning happened with no
                // surviving events to carry the count.
                let dropped = self.queue.take_dropped();
                if dropped > 0 {
                    let batch = ShipBatch {
                        node: self.node,
                        dropped,
                        events: Vec::new(),
                    };
                    self.ship(&batch);
                }
                self.shipper.flush();
                self.flush_acked.store(
                    self.flush_requested.load(Ordering::SeqCst),
                    Ordering::SeqCst,
                );
            }
            if disconnected {
                return;
            }
        }
    }

    fn seal_and_ship(&mut self, buf: &mut Vec<Event>) {
        let batch = ShipBatch {
            node: self.node,
            dropped: self.queue.take_dropped(),
            events: std::mem::take(buf),
        };
        self.ship(&batch);
    }

    fn ship(&mut self, batch: &ShipBatch) {
        match self.shipper.ship(batch) {
            Ok(()) => {
                self.stats
                    .shipped_events
                    .fetch_add(batch.events.len() as u64, Ordering::SeqCst);
                self.stats.shipped_batches.fetch_add(1, Ordering::SeqCst);
            }
            Err(_) => {
                self.stats.failed_batches.fetch_add(1, Ordering::SeqCst);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::SCHEMA_VERSION;

    fn event(seq: u64, kind: EventKind) -> Event {
        Event {
            v: SCHEMA_VERSION,
            seq,
            node: 1,
            t_us: seq * 100,
            lam: seq,
            kind,
        }
    }

    fn span(seq: u64) -> Event {
        event(
            seq,
            EventKind::SpanStart {
                span: seq,
                parent: 0,
                name: "train".into(),
                round: 1,
                device: 1,
            },
        )
    }

    fn ledger(seq: u64) -> Event {
        event(
            seq,
            EventKind::Ledger {
                sent_bytes: seq,
                recv_bytes: seq,
                frames: 1,
            },
        )
    }

    #[test]
    fn critical_events_bypass_a_full_queue() {
        let (queue, _consumer) = ShipQueue::new(ShipOptions {
            capacity: 2,
            sample_every: 1,
            ..ShipOptions::default()
        });
        // Fill the droppable bound without draining.
        assert!(queue.offer(&span(0)));
        assert!(queue.offer(&span(1)));
        assert!(!queue.offer(&span(2)), "over capacity: thinned");
        assert_eq!(queue.depth(), 2);
        // Ledger entries keep landing regardless.
        for seq in 10..20 {
            assert!(queue.offer(&ledger(seq)));
        }
        assert_eq!(queue.take_dropped(), 1);
        assert_eq!(queue.take_dropped(), 0, "take_dropped drains the count");
    }

    #[test]
    fn sampling_kicks_in_at_the_watermark() {
        let (queue, _consumer) = ShipQueue::new(ShipOptions {
            capacity: 8,
            sample_every: 4,
            ..ShipOptions::default()
        });
        let mut kept = 0;
        for seq in 0..8 {
            // Depth crosses the watermark (4) mid-way; beyond it only
            // 1 in 4 survives.
            if queue.offer(&span(seq)) {
                kept += 1;
            }
        }
        assert!(kept < 8, "some events must be thinned past the watermark");
        assert_eq!(queue.take_dropped() as usize + kept, 8, "no silent loss");
    }

    #[test]
    fn ship_sink_delivers_batches_with_flush() {
        let shipper = VecShipper::new();
        let mut sink = ShipSink::new(
            7,
            ShipOptions {
                batch_interval: Duration::from_millis(10),
                ..ShipOptions::default()
            },
            Box::new(shipper.clone()),
        );
        for seq in 0..20 {
            sink.record(&ledger(seq));
        }
        sink.flush();
        let batches = shipper.batches();
        let total: usize = batches.iter().map(|b| b.events.len()).sum();
        assert_eq!(total, 20, "flush must deliver everything queued");
        assert!(batches.iter().all(|b| b.node == 7));
        assert_eq!(sink.stats().shipped_events(), 20);
        assert_eq!(sink.stats().dropped_total(), 0);
    }

    #[test]
    fn jsonl_payload_roundtrips() {
        let batch = ShipBatch {
            node: 3,
            dropped: 2,
            events: vec![ledger(0), span(1)],
        };
        let payload = batch.to_jsonl();
        let (events, garbage) = ShipBatch::parse_jsonl(&payload);
        assert_eq!(garbage, 0);
        assert_eq!(events, batch.events);
    }
}
