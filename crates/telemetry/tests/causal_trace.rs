//! Acceptance tests for causal tracing: a fully scripted
//! `ManualClock` cluster (two devices + coordinator over the channel
//! fabric, every port Lamport-stamped) whose critical path is computed
//! by hand, and the same script under ±500 ms per-node wall-clock skew
//! whose *merged* timeline must come out identical because the order
//! is causal, not chronological.
//!
//! The script (per-node local milliseconds):
//!
//! ```text
//! t=0   d0,d1: begin_training(round 1)
//! t=2   coordinator sends ReportRequest; devices report
//! t=3   coordinator drains reports, emits RoundPlanned{1} and a
//!       Prediction, sends RoundPlan{ring:[0,1], broadcaster:0}
//! t=5   d0 receives the plan, initiates the reduce (ParamAccum)
//! t=6   d1 receives the plan, waits in ring_reduce
//! t=9   d1 receives the accumulation, merges, sends MergedParams
//! t=12  d0 receives the merged model, exits the ring
//! t=13  coordinator sends Shutdown; devices upload and finish
//! ```
//!
//! Hand-computed critical path for round 1 (see DESIGN.md §9): from
//! RoundPlanned@3ms the chain takes the plan frame to d0 (+2 ms
//! network), rides d0's timeline through ring entry (instantaneous at
//! local 5 ms), then sits 7 ms in d0's `ring_gather` span until the
//! merged model arrives at 12 ms, where the causally-latest RingExit
//! ends the round: **9 ms total = 2 ms network + 7 ms ring_gather,
//! straggler device 0, dominant segment ring_gather**.

use std::sync::Arc;
use std::time::Duration;

use hadfl::clock::{Clock, ManualClock};
use hadfl::exec::{DeviceActor, ProtocolTiming, TrainState};
use hadfl::transport::{coordinator_id, ChannelTransport, Port};
use hadfl::wire::Message;
use hadfl::HadflError;
use hadfl_telemetry::analyze::{check_full, critical_path, merge, parse_jsonl, ParsedLog};
use hadfl_telemetry::{EventKind, JsonlSink, SharedBuffer, Telemetry};

/// Minimal deterministic train state for single-stepped actors.
struct ToyTrain {
    params: Vec<f32>,
    version: f64,
}

impl TrainState for ToyTrain {
    fn params(&self) -> Vec<f32> {
        self.params.clone()
    }

    fn set_params(&mut self, params: &[f32]) -> Result<(), HadflError> {
        self.params = params.to_vec();
        Ok(())
    }

    fn train_step(&mut self) -> Result<(), HadflError> {
        self.version += 1.0;
        Ok(())
    }

    fn version(&self) -> f64 {
        self.version
    }
}

/// Runs the scripted cluster with the given per-node wall-clock
/// offsets (device 0, device 1, coordinator) and returns each node's
/// JSONL bytes. The schedule is identical in every run; only the
/// epoch each node's clock starts from differs.
fn scripted_run(offset_ms: [u64; 3]) -> Vec<Vec<u8>> {
    let coord = coordinator_id(2);
    let bufs: Vec<SharedBuffer> = (0..3).map(|_| SharedBuffer::new()).collect();
    let tels: Vec<Telemetry> = bufs
        .iter()
        .enumerate()
        .map(|(id, buf)| Telemetry::new(id as u32, vec![Box::new(JsonlSink::new(buf.clone()))]))
        .collect();
    let clocks: Vec<ManualClock> = (0..3).map(|_| ManualClock::new()).collect();
    // Local time `ms` on node `i` is offset + ms: the offsets emulate
    // hosts whose wall clocks disagree.
    let at = |i: usize, ms: u64| clocks[i].set(Duration::from_millis(offset_ms[i] + ms));
    at(0, 0);
    at(1, 0);
    at(2, 0);

    let mut hub = ChannelTransport::hub(3);
    let mut ports: Vec<_> = (0..3)
        .map(|id| {
            let clock: Arc<dyn Clock> = Arc::new(clocks[id].clone());
            hub.claim_instrumented(id, tels[id].clone(), Some(clock))
                .unwrap()
        })
        .collect();
    let mut pc = ports.remove(coord);
    let mut p1 = ports.remove(1);
    let mut p0 = ports.remove(0);

    let toy = || ToyTrain {
        params: vec![0.0, 0.0],
        version: 0.0,
    };
    let mut a0 =
        DeviceActor::new(0, 3, toy(), 0.5, ProtocolTiming::quick()).with_telemetry(tels[0].clone());
    let mut a1 =
        DeviceActor::new(1, 3, toy(), 0.5, ProtocolTiming::quick()).with_telemetry(tels[1].clone());
    a0.begin_training(clocks[0].now(), 1);
    a1.begin_training(clocks[1].now(), 1);

    // Training window: two local steps on d0, one on d1.
    a0.on_idle(&mut p0).unwrap();
    a0.on_idle(&mut p0).unwrap();
    a1.on_idle(&mut p1).unwrap();

    // t=2: report requests out, reports back.
    at(2, 2);
    pc.send(0, &Message::ReportRequest { round: 1 }).unwrap();
    pc.send(1, &Message::ReportRequest { round: 1 }).unwrap();
    at(0, 2);
    let msg = p0.try_recv().unwrap().unwrap();
    a0.on_message(&mut p0, msg, clocks[0].now()).unwrap();
    at(1, 2);
    let msg = p1.try_recv().unwrap().unwrap();
    a1.on_message(&mut p1, msg, clocks[1].now()).unwrap();

    // t=3: the coordinator ingests reports, plans round 1.
    at(2, 3);
    while pc.try_recv().unwrap().is_some() {}
    tels[2].emit(
        clocks[2].now(),
        EventKind::RoundPlanned {
            round: 1,
            available: vec![0, 1],
            versions: vec![2.0, 1.0],
            probabilities: vec![0.75, 0.25],
            selected: vec![0, 1],
            unselected: vec![],
            broadcaster: 0,
        },
    );
    tels[2].emit(
        clocks[2].now(),
        EventKind::Prediction {
            round: 1,
            device: 0,
            predicted: 2.5,
            actual: 2.0,
        },
    );
    let plan = Message::RoundPlan {
        round: 1,
        ring: vec![0, 1],
        broadcaster: 0,
        unselected: vec![],
    };
    pc.send(0, &plan).unwrap();
    pc.send(1, &plan).unwrap();

    // t=5: d0 joins and initiates the reduce.
    at(0, 5);
    let msg = p0.try_recv().unwrap().unwrap();
    a0.on_message(&mut p0, msg, clocks[0].now()).unwrap();
    // t=6: d1 joins and waits for the accumulation.
    at(1, 6);
    let msg = p1.try_recv().unwrap().unwrap();
    a1.on_message(&mut p1, msg, clocks[1].now()).unwrap();
    // t=9: d1 merges and sends the model back around.
    at(1, 9);
    let msg = p1.try_recv().unwrap().unwrap();
    a1.on_message(&mut p1, msg, clocks[1].now()).unwrap();
    // t=12: d0 installs the merged model and exits the ring.
    at(0, 12);
    let msg = p0.try_recv().unwrap().unwrap();
    a0.on_message(&mut p0, msg, clocks[0].now()).unwrap();

    // t=13: shutdown and final uploads.
    at(2, 13);
    pc.send(0, &Message::Shutdown).unwrap();
    pc.send(1, &Message::Shutdown).unwrap();
    at(0, 13);
    let msg = p0.try_recv().unwrap().unwrap();
    a0.on_message(&mut p0, msg, clocks[0].now()).unwrap();
    at(1, 13);
    let msg = p1.try_recv().unwrap().unwrap();
    a1.on_message(&mut p1, msg, clocks[1].now()).unwrap();
    assert!(a0.is_finished() && a1.is_finished());
    at(2, 14);
    while pc.try_recv().unwrap().is_some() {}

    for tel in &tels {
        tel.flush();
    }
    bufs.iter().map(SharedBuffer::contents).collect()
}

fn parse_all(raw: &[Vec<u8>]) -> Vec<ParsedLog> {
    raw.iter()
        .map(|bytes| {
            let log = parse_jsonl(std::str::from_utf8(bytes).unwrap());
            assert_eq!(log.garbage_lines, 0);
            log
        })
        .collect()
}

/// The PR's acceptance test: the scripted round's critical path comes
/// out exactly as computed by hand — total, straggler, dominant
/// segment, and per-segment microseconds — both through the library
/// and through the real `hadfl-trace critical-path --check` binary.
#[test]
fn scripted_critical_path_matches_hand_computation() {
    let raw = scripted_run([0, 0, 0]);
    let logs = parse_all(&raw);
    let outcome = check_full(&logs);
    assert!(outcome.errors.is_empty(), "{:?}", outcome.errors);
    assert!(outcome.warnings.is_empty(), "{:?}", outcome.warnings);

    let merged = merge(&logs);
    let cp = critical_path(&merged, 1);
    assert!(cp.errors.is_empty(), "{:?}", cp.errors);
    assert_eq!(cp.total_us, 9_000, "RoundPlanned@3ms -> RingExit@12ms");
    assert_eq!(cp.straggler, Some(0), "device 0 carries the waited time");
    assert_eq!(cp.dominant_segment.as_deref(), Some("ring_gather"));
    assert_eq!(cp.per_segment_us.get("network"), Some(&2_000));
    assert_eq!(cp.per_segment_us.get("ring_gather"), Some(&7_000));
    let attributed: u64 = cp.per_segment_us.values().sum();
    assert_eq!(attributed, cp.total_us, "every microsecond is attributed");

    // The real binary reproduces the same attribution and exits 0
    // under --check.
    let dir = std::env::temp_dir().join(format!("hadfl-causal-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let paths: Vec<std::path::PathBuf> = raw
        .iter()
        .enumerate()
        .map(|(id, bytes)| {
            let path = dir.join(format!("node-{id}.jsonl"));
            std::fs::write(&path, bytes).unwrap();
            path
        })
        .collect();
    let trace = env!("CARGO_BIN_EXE_hadfl-trace");
    let out = std::process::Command::new(trace)
        .arg("critical-path")
        .arg("--check")
        .args(&paths)
        .output()
        .unwrap();
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success(),
        "{stdout}\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(
        stdout.contains("round 1: critical path 9000 us"),
        "{stdout}"
    );
    assert!(
        stdout.contains("straggler: device 0   dominant segment: ring_gather"),
        "{stdout}"
    );
    assert!(stdout.contains("Eq. 7 cross-check"), "{stdout}");
    assert!(stdout.contains("Eq. 8 cross-check"), "{stdout}");

    // And the spans subcommand renders the Gantt for the same logs.
    let out = std::process::Command::new(trace)
        .arg("spans")
        .arg("--round")
        .arg("1")
        .args(&paths)
        .output()
        .unwrap();
    assert!(out.status.success());
    let gantt = String::from_utf8_lossy(&out.stdout);
    for needle in ["ring_gather", "ring_reduce", "wait_for_plan", "merge"] {
        assert!(gantt.contains(needle), "gantt lacks {needle}:\n{gantt}");
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// ±500 ms of per-node wall-clock skew (device 0 runs 500 ms behind
/// the coordinator, device 1 500 ms ahead) must not change the merged
/// timeline at all: ordering is by Lamport stamp, and the stamps are a
/// function of the schedule, not the clocks. The skew itself must be
/// detected and reported as a warning, never an error.
#[test]
fn merged_timeline_is_immune_to_wall_clock_skew() {
    let base = parse_all(&scripted_run([500, 500, 500]));
    let skew = parse_all(&scripted_run([0, 1_000, 500]));

    let order = |logs: &[ParsedLog]| -> Vec<(u32, u64, &'static str)> {
        merge(logs)
            .iter()
            .map(|e| (e.node, e.seq, e.kind_label()))
            .collect()
    };
    assert_eq!(
        order(&base),
        order(&skew),
        "causal merge must ignore per-node epochs"
    );

    let outcome = check_full(&skew);
    assert!(outcome.errors.is_empty(), "{:?}", outcome.errors);
    assert!(
        outcome
            .warnings
            .iter()
            .any(|w| w.contains("wall-clock skew")),
        "skew must surface as a warning: {:?}",
        outcome.warnings
    );

    // The critical path still reconstructs without causal errors.
    let cp = critical_path(&merge(&skew), 1);
    assert!(cp.errors.is_empty(), "{:?}", cp.errors);
}

/// The same schedule twice produces byte-identical JSONL per node —
/// span ids, Lamport stamps, and timestamps are all deterministic
/// functions of the script.
#[test]
fn scripted_span_logs_are_byte_identical() {
    let a = scripted_run([0, 0, 0]);
    let b = scripted_run([0, 0, 0]);
    assert_eq!(a, b);
    let logs = parse_all(&a);
    let spans: Vec<&str> = merge(&logs)
        .iter()
        .filter_map(|e| match &e.kind {
            hadfl_telemetry::EventKind::SpanStart { name, .. } => Some(name.as_str()),
            _ => None,
        })
        .map(|s| match s {
            "train" => "train",
            "wait_for_plan" => "wait_for_plan",
            "ring_reduce" => "ring_reduce",
            "ring_gather" => "ring_gather",
            "merge" => "merge",
            other => panic!("unexpected span name {other}"),
        })
        .collect();
    for needle in [
        "train",
        "wait_for_plan",
        "ring_reduce",
        "ring_gather",
        "merge",
    ] {
        assert!(spans.contains(&needle), "missing span {needle}: {spans:?}");
    }
}
