//! Property tests for the shipping layer's backpressure contract:
//! under *any* queue capacity, sampling rate, and offer/drain
//! interleaving, thinning only ever touches the droppable classes —
//! counters, ledger entries, and protocol events survive exactly —
//! and every thinned event is accounted in the reported drop counts.

use std::time::Duration;

use proptest::prelude::*;

use hadfl_telemetry::ship::{is_critical, ShipBatch, ShipOptions, ShipQueue, ShipSink, VecShipper};
use hadfl_telemetry::sink::Sink;
use hadfl_telemetry::{Event, EventKind, SCHEMA_VERSION};

/// Events cycle through the taxonomy: droppable spans/lifecycle mixed
/// with critical ledger, frame, and round events, with a byte payload
/// the ledger-parity check sums.
fn event(seq: u64, choice: u8, bytes: u64) -> Event {
    let kind = match choice % 6 {
        0 => EventKind::SpanStart {
            span: seq,
            parent: 0,
            name: "train".into(),
            round: 1,
            device: 1,
        },
        1 => EventKind::SpanEnd {
            span: seq,
            round: 1,
            device: 1,
        },
        2 => EventKind::DeviceStarted { device: 1 },
        3 => EventKind::Ledger {
            sent_bytes: bytes,
            recv_bytes: bytes / 2,
            frames: 1 + bytes % 7,
        },
        4 => EventKind::FrameSent {
            src: 1,
            dst: 2,
            bytes,
            kind: "param_accum".into(),
            lamport: seq,
        },
        _ => EventKind::RoundComplete {
            round: seq as u32,
            duration_us: bytes,
        },
    };
    Event {
        v: SCHEMA_VERSION,
        seq,
        node: 1,
        t_us: seq * 10,
        lam: seq,
        kind,
    }
}

/// Ledger totals over a stream: the "counters must stay exact" side of
/// the parity check.
fn ledger_totals(events: &[&Event]) -> (u64, u64, u64, u64) {
    let mut totals = (0u64, 0u64, 0u64, 0u64);
    for e in events {
        match &e.kind {
            EventKind::Ledger {
                sent_bytes,
                recv_bytes,
                frames,
            } => {
                totals.0 += sent_bytes;
                totals.1 += recv_bytes;
                totals.2 += frames;
            }
            EventKind::FrameSent { bytes, .. } => totals.3 += bytes,
            _ => {}
        }
    }
    totals
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Drive the queue through an arbitrary offer/drain script and
    /// check the three invariants of the backpressure gate.
    #[test]
    fn queue_thins_only_droppables_and_accounts_every_drop(
        capacity in 1usize..48,
        sample_every in 1u64..10,
        offers in proptest::collection::vec(0u8..12, 1..40),
        drains in proptest::collection::vec(0u8..12, 1..40),
        kinds in proptest::collection::vec(0u8..6, 1..256),
        byte_sizes in proptest::collection::vec(0u64..10_000, 1..256),
    ) {
        let (queue, consumer) = ShipQueue::new(ShipOptions {
            capacity,
            sample_every,
            ..ShipOptions::default()
        });
        let mut offered: Vec<Event> = Vec::new();
        let mut delivered: Vec<Event> = Vec::new();
        let mut reported_drops = 0u64;
        let mut next = 0usize;
        // The two scripts zip into (offer burst, drain burst) steps.
        for (&offer_n, &drain_n) in offers.iter().zip(&drains) {
            for _ in 0..offer_n {
                let (Some(&choice), Some(&bytes)) = (kinds.get(next), byte_sizes.get(next)) else {
                    break;
                };
                let e = event(next as u64, choice, bytes);
                next += 1;
                queue.offer(&e);
                offered.push(e);
            }
            for _ in 0..drain_n {
                match consumer.try_recv() {
                    Some(e) => delivered.push(e),
                    None => break,
                }
            }
            // Seal a "batch": collect the drop count like the worker.
            reported_drops += queue.take_dropped() as u64;
        }
        while let Some(e) = consumer.try_recv() {
            delivered.push(e);
        }
        reported_drops += queue.take_dropped() as u64;

        // 1. The critical subsequence survives exactly, in order.
        let offered_critical: Vec<u64> = offered.iter()
            .filter(|e| is_critical(&e.kind)).map(|e| e.seq).collect();
        let delivered_critical: Vec<u64> = delivered.iter()
            .filter(|e| is_critical(&e.kind)).map(|e| e.seq).collect();
        prop_assert_eq!(offered_critical, delivered_critical);

        // 2. Ledger/counter parity with the unsampled stream is exact.
        let offered_refs: Vec<&Event> = offered.iter().collect();
        let delivered_refs: Vec<&Event> = delivered.iter().collect();
        prop_assert_eq!(ledger_totals(&offered_refs), ledger_totals(&delivered_refs));

        // 3. Every thinned event is reported: offered = delivered +
        //    reported drops, and the drop counter never counts
        //    critical events.
        let offered_droppable = offered.iter().filter(|e| !is_critical(&e.kind)).count() as u64;
        let delivered_droppable = delivered.iter().filter(|e| !is_critical(&e.kind)).count() as u64;
        prop_assert_eq!(reported_drops, offered_droppable - delivered_droppable);
        prop_assert_eq!(queue.depth(), 0);
    }

    /// End-to-end through a real `ShipSink` worker thread: the batches
    /// a shipper receives carry exactly the surviving events, and
    /// their `dropped` fields sum to exactly the thinned count.
    #[test]
    fn ship_sink_batches_carry_exact_drop_counts(
        capacity in 1usize..24,
        sample_every in 1u64..6,
        kinds in proptest::collection::vec(0u8..6, 1..128),
        byte_sizes in proptest::collection::vec(0u64..10_000, 1..128),
    ) {
        let shipper = VecShipper::new();
        let offered: Vec<Event> = kinds.iter().zip(&byte_sizes).enumerate()
            .map(|(i, (&choice, &bytes))| event(i as u64, choice, bytes))
            .collect();
        {
            let mut sink = ShipSink::new(1, ShipOptions {
                capacity,
                sample_every,
                batch_interval: Duration::from_millis(5),
                batch_max_events: 16,
            }, Box::new(shipper.clone()));
            for e in &offered {
                sink.record(e);
            }
            sink.flush();
        } // drop joins the worker

        let batches: Vec<ShipBatch> = shipper.batches();
        let delivered: Vec<&Event> = batches.iter().flat_map(|b| b.events.iter()).collect();
        let reported: u64 = batches.iter().map(|b| b.dropped as u64).sum();

        let offered_critical: Vec<u64> = offered.iter()
            .filter(|e| is_critical(&e.kind)).map(|e| e.seq).collect();
        let delivered_critical: Vec<u64> = delivered.iter()
            .filter(|e| is_critical(&e.kind)).map(|e| e.seq).collect();
        prop_assert_eq!(offered_critical, delivered_critical);

        let offered_refs: Vec<&Event> = offered.iter().collect();
        prop_assert_eq!(ledger_totals(&offered_refs), ledger_totals(&delivered));

        let offered_droppable = offered.iter().filter(|e| !is_critical(&e.kind)).count() as u64;
        let delivered_droppable = delivered.iter().filter(|e| !is_critical(&e.kind)).count() as u64;
        prop_assert_eq!(reported, offered_droppable - delivered_droppable);
    }
}
