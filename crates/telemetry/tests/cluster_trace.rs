//! Acceptance tests for the observability layer against a live
//! cluster: a telemetry-enabled loopback run must produce per-node
//! JSONL that the `hadfl-trace` binary validates (exact `NetStats`
//! ledger parity) and analyzes (Eq. 7 prediction error, Eq. 8
//! selection histogram, 2·K·M communication bound) — and the event
//! stream must be byte-identical across identical `ManualClock`
//! schedules.
//!
//! These live in the telemetry crate (dev-dependency cycle onto the
//! runtime crates) so `CARGO_BIN_EXE_hadfl-trace` points at the real
//! analyzer binary.

use std::sync::Arc;
use std::thread;
use std::time::Duration;

use hadfl::clock::{Clock, ManualClock, WallClock};
use hadfl::exec::{
    run_coordinator_instrumented, run_device_instrumented, DeviceActor, ProtocolTiming, TrainState,
};
use hadfl::transport::{coordinator_id, ChannelTransport, Port};
use hadfl::wire::Message;
use hadfl::{HadflConfig, HadflError, Workload};
use hadfl_net::cluster::ClusterConfig;
use hadfl_net::tcp::{BoundNode, StatsHandle, TcpOptions, TcpPort};
use hadfl_simnet::{DeviceId, Endpoint};
use hadfl_telemetry::analyze::{ledger_parity, parse_jsonl};
use hadfl_telemetry::{Event, EventKind, JsonlSink, SharedBuffer, Telemetry};

/// Runs a telemetry-enabled 5-participant loopback cluster (4 devices +
/// coordinator, the `hadfl-node` process topology with one thread per
/// process) and returns the JSONL directory plus every node's final
/// `NetStats`.
fn run_instrumented_cluster(dir: &std::path::Path) -> Vec<hadfl_simnet::NetStats> {
    let powers = [3.0, 2.0, 1.0, 1.0];
    let k = powers.len();
    let workload = Workload::quick("mlp", 41);
    let config = HadflConfig::builder()
        .num_selected(2)
        .seed(41)
        .build()
        .unwrap();
    let timing = ProtocolTiming::quick();

    let nodes: Vec<BoundNode> = (0..=k)
        .map(|id| BoundNode::bind(id, "127.0.0.1:0").unwrap())
        .collect();
    let addrs: Vec<String> = nodes
        .iter()
        .map(|b| b.local_addr().unwrap().to_string())
        .collect();
    let cluster = ClusterConfig::from_addrs(&addrs).unwrap();

    let clock: Arc<dyn Clock> = WallClock::shared();
    let tels: Vec<Telemetry> = (0..=k)
        .map(|id| {
            let path = dir.join(format!("node-{id}.jsonl"));
            let sink = JsonlSink::create(&path).unwrap();
            Telemetry::new(id as u32, vec![Box::new(sink)])
        })
        .collect();
    let mut ports: Vec<TcpPort> = nodes
        .into_iter()
        .zip(&tels)
        .map(|(node, tel)| {
            node.into_port_instrumented(
                &cluster,
                TcpOptions::default(),
                Arc::clone(&clock),
                tel.clone(),
            )
            .unwrap()
        })
        .collect();
    let handles: Vec<StatsHandle> = ports.iter().map(TcpPort::stats_handle).collect();
    let coordinator_port = ports.remove(k);
    let built = workload.build(k).unwrap();

    thread::scope(|scope| {
        for (i, (port, rt)) in ports.drain(..).zip(built.runtimes).enumerate() {
            let sleep = Duration::from_secs_f64(0.004 / powers[i]);
            let config = &config;
            let timing = timing.clone();
            let clock = Arc::clone(&clock);
            let tel = tels[i].clone();
            scope.spawn(move || {
                run_device_instrumented(port, rt, config, sleep, &timing, &*clock, tel)
                    .expect("device loop")
            });
        }
        run_coordinator_instrumented(
            coordinator_port,
            &config,
            Duration::from_millis(120),
            3,
            &timing,
            &*clock,
            tels[k].clone(),
        )
        .expect("coordinator loop")
    });

    for (handle, tel) in handles.iter().zip(&tels) {
        handle.emit_ledger();
        tel.flush();
    }
    handles.iter().map(StatsHandle::stats).collect()
}

/// The PR's acceptance test: each node's frame events sum to exactly
/// its `NetStats` ledger, `hadfl-trace --check` passes, and the report
/// covers Eq. 7 prediction error, the Eq. 8 selection histogram, and
/// the ledger-matching communication total.
#[test]
fn cluster_jsonl_passes_hadfl_trace() {
    let dir = std::env::temp_dir().join(format!("hadfl-trace-accept-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let stats = run_instrumented_cluster(&dir);
    let k = stats.len() - 1;

    // Satellite 1: telemetry byte/frame counters equal the NetStats
    // ledger, node by node, exactly.
    let paths: Vec<std::path::PathBuf> = (0..=k)
        .map(|id| dir.join(format!("node-{id}.jsonl")))
        .collect();
    for (id, (path, stats)) in paths.iter().zip(&stats).enumerate() {
        let log = parse_jsonl(&std::fs::read_to_string(path).unwrap());
        assert_eq!(log.garbage_lines, 0, "node {id} wrote malformed JSONL");
        let parity = ledger_parity(&log.events);
        assert_eq!(parity.len(), 1, "one node per file");
        let check = &parity[0];
        let me = if id == k {
            Endpoint::Server
        } else {
            Endpoint::Device(DeviceId(id))
        };
        assert_eq!(
            check.sent_event_bytes,
            stats.sent_by(me),
            "node {id} sent bytes"
        );
        assert_eq!(
            check.recv_event_bytes,
            stats.received_by(me),
            "node {id} received bytes"
        );
        assert_eq!(check.event_frames, stats.messages(), "node {id} frames");
        assert!(check.matches(), "node {id} Ledger event must agree");
    }

    // The real binary: --check exits 0 with ledger parity …
    let trace = env!("CARGO_BIN_EXE_hadfl-trace");
    let check_out = std::process::Command::new(trace)
        .arg("--check")
        .args(&paths)
        .output()
        .unwrap();
    let check_stdout = String::from_utf8_lossy(&check_out.stdout);
    assert!(
        check_out.status.success(),
        "--check failed: {check_stdout}\n{}",
        String::from_utf8_lossy(&check_out.stderr)
    );
    assert!(
        check_stdout.contains("ledger parity holds"),
        "{check_stdout}"
    );

    // … and the report covers the paper's diagnostics.
    let report_out = std::process::Command::new(trace)
        .args(&paths)
        .output()
        .unwrap();
    assert!(report_out.status.success());
    let report = String::from_utf8_lossy(&report_out.stdout);
    for needle in [
        "prediction error (Eq. 7)",
        "selection frequency vs Eq. 8 expectation",
        "ring-blocked time per device",
        "2*K*M bound",
    ] {
        assert!(
            report.contains(needle),
            "report lacks {needle:?}:\n{report}"
        );
    }
    let matches = report.matches("-> match").count();
    assert_eq!(matches, k + 1, "every node's ledger must match:\n{report}");

    std::fs::remove_dir_all(&dir).ok();
}

/// Minimal deterministic train state for single-stepped actors.
struct ToyTrain {
    params: Vec<f32>,
    version: f64,
}

impl TrainState for ToyTrain {
    fn params(&self) -> Vec<f32> {
        self.params.clone()
    }

    fn set_params(&mut self, params: &[f32]) -> Result<(), HadflError> {
        self.params = params.to_vec();
        Ok(())
    }

    fn train_step(&mut self) -> Result<(), HadflError> {
        self.version += 1.0;
        Ok(())
    }

    fn version(&self) -> f64 {
        self.version
    }
}

/// Satellite 4: single-steps a `DeviceActor` through a fixed
/// `ManualClock` schedule — training window, report, ring entry, merge,
/// shutdown — and demands byte-identical JSONL across runs.
#[test]
fn manual_clock_schedule_is_byte_deterministic() {
    let run = || -> Vec<u8> {
        let k = 2;
        let buf = SharedBuffer::new();
        let tel = Telemetry::new(0, vec![Box::new(JsonlSink::new(buf.clone()))]);
        let clock = ManualClock::new();
        let mut hub = ChannelTransport::hub(k + 1);
        let mut port = hub.claim(0).unwrap();
        let mut peer = hub.claim(1).unwrap();
        let mut coord = hub.claim(coordinator_id(k)).unwrap();

        let train = ToyTrain {
            params: vec![0.0, 0.0],
            version: 0.0,
        };
        let mut actor = DeviceActor::new(0, k + 1, train, 0.5, ProtocolTiming::quick())
            .with_telemetry(tel.clone());

        clock.advance(Duration::from_millis(5));
        for _ in 0..3 {
            actor.on_idle(&mut port).unwrap();
        }
        actor
            .on_message(&mut port, Message::ReportRequest { round: 1 }, clock.now())
            .unwrap();
        clock.advance(Duration::from_millis(7));
        actor
            .on_message(
                &mut port,
                Message::RoundPlan {
                    round: 1,
                    ring: vec![0, 1],
                    broadcaster: 0,
                    unselected: vec![],
                },
                clock.now(),
            )
            .unwrap();
        clock.advance(Duration::from_millis(3));
        actor
            .on_message(
                &mut port,
                Message::MergedParams {
                    round: 1,
                    ttl: 1,
                    params: vec![1.0, 1.0],
                },
                clock.now(),
            )
            .unwrap();
        clock.advance(Duration::from_millis(2));
        for _ in 0..2 {
            actor.on_idle(&mut port).unwrap();
        }
        actor
            .on_message(&mut port, Message::Shutdown, clock.now())
            .unwrap();
        assert!(actor.is_finished());

        // Drain so the channel hub doesn't accumulate state.
        while peer.try_recv().unwrap().is_some() {}
        while coord.try_recv().unwrap().is_some() {}
        tel.flush();
        buf.contents()
    };

    let a = run();
    let b = run();
    assert!(!a.is_empty(), "the schedule must emit events");
    assert_eq!(a, b, "same ManualClock schedule must emit identical bytes");

    // The stream parses back and covers the expected transitions.
    let log = parse_jsonl(std::str::from_utf8(&a).unwrap());
    assert_eq!(log.garbage_lines, 0);
    let labels: Vec<&str> = log.events.iter().map(Event::kind_label).collect();
    for needle in ["local_steps", "ring_enter", "ring_exit", "device_finished"] {
        assert!(labels.contains(&needle), "missing {needle}: {labels:?}");
    }
    let Some(EventKind::LocalSteps { steps, version, .. }) = log
        .events
        .iter()
        .find(|e| e.kind_label() == "local_steps")
        .map(|e| e.kind.clone())
    else {
        unreachable!("asserted above");
    };
    assert_eq!(steps, 3, "first batch covers the pre-report window");
    assert_eq!(version, 3);
}
