//! Acceptance test for the compute profiler: a `ManualClock`-scripted
//! two-device schedule must produce exactly the hand-computed call
//! tree — same stacks, same counts, same nanoseconds — and the
//! `hadfl-trace profile` binary must render and `--check` it.
//!
//! The clock only moves when the script moves it (the toy train step
//! advances it 1 ms per call), so every duration below is computed on
//! paper, not measured. Lives in the telemetry crate so
//! `CARGO_BIN_EXE_hadfl-trace` points at the real binary.

use std::sync::Arc;
use std::time::Duration;

use hadfl::clock::{profiler_time, Clock, ManualClock};
use hadfl::exec::{DeviceActor, ProtocolTiming, TrainState};
use hadfl::transport::ChannelTransport;
use hadfl::wire::Message;
use hadfl::HadflError;
use hadfl_prof::{merge_dumps, PoolRow, ProfileDump, Profiler, StackRow};

/// A training stub that advances the shared [`ManualClock`] by 1 ms
/// per step — the only way virtual time passes inside a profiled
/// scope, so `local_step` durations are scripted, not measured.
struct ClockedTrain {
    params: Vec<f32>,
    version: f64,
    clock: ManualClock,
}

impl TrainState for ClockedTrain {
    fn params(&self) -> Vec<f32> {
        self.params.clone()
    }

    fn set_params(&mut self, params: &[f32]) -> Result<(), HadflError> {
        self.params = params.to_vec();
        Ok(())
    }

    fn train_step(&mut self) -> Result<(), HadflError> {
        self.clock.advance(Duration::from_millis(1));
        self.version += 1.0;
        Ok(())
    }

    fn version(&self) -> f64 {
        self.version
    }
}

/// Runs the scripted schedule once and returns both devices' dumps.
///
/// Device 0 is a selected ring member (not the initiator): 3 local
/// steps, then it accumulates an inbound `ParamAccum` and closes the
/// two-member reduce. Device 1 is unselected: 2 local steps, then it
/// blends an inbound `ParamSync` broadcast.
fn run_scripted_pair() -> (ProfileDump, ProfileDump) {
    let k = 2;
    let clock = ManualClock::new();
    let mut hub = ChannelTransport::hub(k + 1);
    let mut port0 = hub.claim(0).unwrap();
    let mut port1 = hub.claim(1).unwrap();
    let _coord = hub.claim(k).unwrap();

    let train = |clock: &ManualClock| ClockedTrain {
        params: vec![0.0, 0.0],
        version: 0.0,
        clock: clock.clone(),
    };

    // Device 0: selected, second in the ring, closes the reduce.
    let prof0 = Profiler::new(0, profiler_time(Arc::new(clock.clone())));
    let guard = prof0.install();
    let mut actor0 = DeviceActor::new(0, k + 1, train(&clock), 0.5, ProtocolTiming::quick());
    for _ in 0..3 {
        actor0.on_idle(&mut port0).unwrap();
    }
    actor0
        .on_message(&mut port0, Message::ReportRequest { round: 1 }, clock.now())
        .unwrap();
    actor0
        .on_message(
            &mut port0,
            Message::RoundPlan {
                round: 1,
                ring: vec![1, 0],
                broadcaster: 1,
                unselected: vec![],
            },
            clock.now(),
        )
        .unwrap();
    actor0
        .on_message(
            &mut port0,
            Message::ParamAccum {
                round: 1,
                hops: 1,
                params: vec![2.0, 2.0],
            },
            clock.now(),
        )
        .unwrap();
    actor0
        .on_message(&mut port0, Message::Shutdown, clock.now())
        .unwrap();
    drop(guard);

    // Device 1: unselected, blends the broadcast while training.
    let prof1 = Profiler::new(1, profiler_time(Arc::new(clock.clone())));
    let guard = prof1.install();
    let mut actor1 = DeviceActor::new(1, k + 1, train(&clock), 0.5, ProtocolTiming::quick());
    for _ in 0..2 {
        actor1.on_idle(&mut port1).unwrap();
    }
    actor1
        .on_message(
            &mut port1,
            Message::ParamSync {
                round: 1,
                params: vec![1.0, 1.0],
            },
            clock.now(),
        )
        .unwrap();
    actor1
        .on_message(&mut port1, Message::Shutdown, clock.now())
        .unwrap();
    drop(guard);

    (prof0.dump(), prof1.dump())
}

fn row(stack: &str, count: u64, ns: u64, bytes: u64) -> StackRow {
    StackRow {
        stack: stack.to_string(),
        count,
        total_ns: ns,
        self_ns: ns,
        bytes,
    }
}

#[test]
fn scripted_two_device_run_matches_the_hand_computed_tree() {
    let (dump0, dump1) = run_scripted_pair();

    // Device 0: three 1 ms training steps, then the ring close. The
    // aggregate kernels run at a frozen clock, so their durations are
    // exactly zero; byte counts follow the scope_bytes formulas
    // (accumulate touches 8 bytes per f32 pair, scale 4).
    assert_eq!(
        dump0.stacks,
        vec![
            row("local_step", 3, 3_000_000, 0),
            row("ring_accumulate", 1, 0, 0),
            row("ring_accumulate;accumulate_params", 1, 0, 16),
            row("ring_merge", 1, 0, 0),
            row("ring_merge;scale_params", 1, 0, 8),
        ],
        "device 0 call tree"
    );
    // The 2-element vectors stay under the par threshold, so each
    // kernel's pool region is one serial dispatch: one worker (the
    // dispatcher), one chunk, zero elapsed at a frozen clock. The
    // region key is the dispatching scope's path.
    let serial_region = |key: &str| PoolRow {
        region: key.to_string(),
        dispatches: 1,
        max_workers: 1,
        tasks: 1,
        busy_ns: 0,
        park_ns: 0,
        wake_ns: 0,
        wall_ns: 0,
        serial_est_ns: 0,
        max_chunk_ns: 0,
        min_chunk_ns: 0,
    };
    assert_eq!(
        dump0.pools,
        vec![
            serial_region("ring_accumulate;accumulate_params"),
            serial_region("ring_merge;scale_params"),
        ],
        "device 0 pool regions"
    );

    // Device 1: two 1 ms steps, then the broadcast blend.
    assert_eq!(
        dump1.stacks,
        vec![
            row("broadcast_blend", 1, 0, 0),
            row("broadcast_blend;blend_params", 1, 0, 16),
            row("local_step", 2, 2_000_000, 0),
        ],
        "device 1 call tree"
    );

    // The merge sums `local_step` across nodes and unions the rest.
    let merged = merge_dumps(&[dump0, dump1]);
    let paths: Vec<&str> = merged.stacks.iter().map(|r| r.stack.as_str()).collect();
    assert_eq!(
        paths,
        vec![
            "broadcast_blend",
            "broadcast_blend;blend_params",
            "local_step",
            "ring_accumulate",
            "ring_accumulate;accumulate_params",
            "ring_merge",
            "ring_merge;scale_params",
        ]
    );
    let local = merged
        .stacks
        .iter()
        .find(|r| r.stack == "local_step")
        .unwrap();
    assert_eq!((local.count, local.total_ns), (5, 5_000_000));
}

#[test]
fn identical_schedules_dump_identical_bytes() {
    let (a0, a1) = run_scripted_pair();
    let (b0, b1) = run_scripted_pair();
    let a = serde_json::to_string(&merge_dumps(&[a0, a1])).unwrap();
    let b = serde_json::to_string(&merge_dumps(&[b0, b1])).unwrap();
    assert_eq!(a, b, "ManualClock profiles must be byte-identical");
}

#[test]
fn trace_profile_binary_renders_and_checks_the_dumps() {
    let (dump0, dump1) = run_scripted_pair();
    let dir = std::env::temp_dir().join(format!("hadfl-prof-accept-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let p0 = dir.join("profile-node-0.json");
    let p1 = dir.join("profile-node-1.json");
    std::fs::write(&p0, serde_json::to_string(&dump0).unwrap()).unwrap();
    std::fs::write(&p1, serde_json::to_string(&dump1).unwrap()).unwrap();
    let folded = dir.join("merged.folded");

    let trace = env!("CARGO_BIN_EXE_hadfl-trace");
    let out = std::process::Command::new(trace)
        .arg("profile")
        .arg("--check")
        .arg("--folded")
        .arg(&folded)
        .arg(&p0)
        .arg(&p1)
        .output()
        .unwrap();
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(stdout.contains("2 node(s)"), "{stdout}");
    assert!(stdout.contains("local_step"), "{stdout}");
    assert!(stdout.contains("x5"), "merged local_step count: {stdout}");
    assert!(stdout.contains("profile check ok"), "{stdout}");

    // The folded export carries the merged self times: 5 scripted
    // 1 ms steps.
    let folded_text = std::fs::read_to_string(&folded).unwrap();
    assert!(folded_text.contains("local_step 5000000"), "{folded_text}");
    std::fs::remove_dir_all(&dir).ok();
}
