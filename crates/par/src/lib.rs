//! Deterministic persistent-pool chunk-parallel compute substrate.
//!
//! HADFL's premise is that per-device computing power sets the local
//! epoch budget `E_i`, yet a substrate whose kernels leave every core
//! but one idle misrepresents exactly the quantity the algorithm
//! schedules around. This crate makes the hot loops scale with cores
//! *without* giving up the bit-exact determinism the protocol model
//! checker and the byte-identical telemetry tests depend on.
//!
//! The contract (DESIGN.md §10):
//!
//! 1. **Fixed chunk boundaries.** Work is split into chunks whose
//!    boundaries depend only on the problem size — never on the thread
//!    count. A worker pool claims chunk *indices* from an atomic
//!    counter, so which thread computes a chunk varies run to run, but
//!    what each chunk computes never does.
//! 2. **Disjoint writes or ordered combines.** Elementwise kernels
//!    write disjoint output chunks (any schedule gives the same bytes);
//!    reductions fold per-chunk partials in ascending chunk order on
//!    the calling thread.
//!
//! Together these make every kernel's output a pure function of its
//! inputs and the fixed chunk policy: running under `HADFL_THREADS=1`
//! and `HADFL_THREADS=64` produces bit-identical floats.
//!
//! # Execution model
//!
//! Parallel dispatch goes through a **persistent worker pool**: worker
//! threads are spawned lazily on the first parallel dispatch and then
//! *parked* (`std::thread::park`) between dispatches. A dispatch
//! publishes a job (a raw fat pointer to the caller's stack closure
//! plus the shared claim counter) into the pool's job slot, bumps an
//! atomic **epoch** with `Release` ordering, and unparks the workers;
//! each worker observes the new epoch with `Acquire`, takes a
//! participation ticket if the job still wants hands, drains chunk
//! indices, and checks in by decrementing a countdown. The dispatcher
//! drains alongside the workers and parks until the countdown reaches
//! zero, which both joins the dispatch and keeps the borrowed job
//! alive until no worker can touch it. Worker panics are caught,
//! carried across the handoff, and resumed on the dispatching thread,
//! so a panicking chunk still propagates to the caller — and the pool
//! survives to serve the next dispatch.
//!
//! # Thresholds (measured autotune)
//!
//! Whether a region parallelizes at all is decided by [`plan_for`]
//! against a per-[`OpClass`] work threshold. The thresholds come from
//! a one-shot per-process calibration: the pool's dispatch overhead is
//! probed with no-op dispatches and divided by a measured per-element
//! serial FMA cost (an eight-accumulator sweep mirroring both the
//! `calibration/serial_fma_1m` bench row and the throughput of the
//! slice-of-8 kernels), so the cutoff is "parallel only when the
//! serial time would dominate the dispatch cost". Override with
//! `HADFL_PAR_THRESHOLD` (all classes) or
//! `HADFL_PAR_THRESHOLD_{MATMUL,REDUCE,ELEMENTWISE}` (element counts).
//!
//! Thread count resolution: the [`with_threads`] thread-local override
//! (which still respects the thresholds) or [`with_threads_forced`]
//! (which bypasses them — determinism tests), else the `HADFL_THREADS`
//! environment variable, else [`std::thread::available_parallelism`].
//!
//! # Example
//!
//! ```
//! use hadfl_par::{plan, with_threads};
//!
//! let mut data = vec![1.0f32; 10_000];
//! // Same bytes at any thread count: chunk boundaries are fixed.
//! with_threads(4, || {
//!     plan(data.len() as u64).chunks_mut(&mut data, 4096, |_idx, chunk| {
//!         for v in chunk {
//!             *v *= 2.0;
//!         }
//!     });
//! });
//! assert!(data.iter().all(|&v| v == 2.0));
//! ```

use std::any::Any;
use std::cell::{Cell, UnsafeCell};
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicIsize, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock, PoisonError};
use std::thread::{JoinHandle, Thread};
use std::time::Instant;

use hadfl_prof::PoolRegion;

/// Fallback parallel cutoff (scalar operations) used when a measured
/// threshold is unavailable — and the static floor below which
/// [`plan_for`] goes serial without even consulting the calibration.
pub const PAR_WORK_THRESHOLD: u64 = 64 * 1024;

/// No [`plan_for`] decision calibrates for regions smaller than this:
/// they are serial unconditionally (unless forced), so processes that
/// only ever run tiny kernels never pay the one-shot probe.
pub const MIN_AUTOTUNE_WORK: u64 = 16 * 1024;

/// Ceiling on spawned pool workers, regardless of overrides.
const MAX_POOL_WORKERS: usize = 15;

static MAX_THREADS: OnceLock<usize> = OnceLock::new();
static POOL: OnceLock<Mutex<WorkerPool>> = OnceLock::new();
static CALIBRATION: OnceLock<Calibration> = OnceLock::new();

thread_local! {
    /// Test override installed by [`with_threads`] / [`with_threads_forced`].
    static OVERRIDE: Cell<Option<usize>> = const { Cell::new(None) };
    /// Set by [`with_threads_forced`]: bypass the work thresholds.
    static FORCE: Cell<bool> = const { Cell::new(false) };
    /// Set while running as a pool worker (or while the dispatcher
    /// drains its own chunks): nested kernels stay serial instead of
    /// multiplying thread counts or re-entering the pool.
    static IN_WORKER: Cell<bool> = const { Cell::new(false) };
}

/// The process-wide worker budget: `HADFL_THREADS` if set to a
/// positive integer, else the machine's available parallelism.
/// Resolved once and cached.
pub fn max_threads() -> usize {
    *MAX_THREADS.get_or_init(|| {
        std::env::var("HADFL_THREADS")
            .ok()
            .and_then(|s| s.trim().parse::<usize>().ok())
            .filter(|&n| n >= 1)
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(std::num::NonZeroUsize::get)
                    .unwrap_or(1)
            })
    })
}

/// The thread count parallel regions started from this thread will
/// use: the [`with_threads`] override if one is active, else
/// [`max_threads`]. Inside a pool worker this is always 1 (no nested
/// fan-out).
pub fn current_threads() -> usize {
    if IN_WORKER.with(Cell::get) {
        return 1;
    }
    OVERRIDE.with(Cell::get).unwrap_or_else(max_threads)
}

fn with_override<R>(n: usize, force: bool, f: impl FnOnce() -> R) -> R {
    struct Restore {
        prev: Option<usize>,
        prev_force: bool,
    }
    impl Drop for Restore {
        fn drop(&mut self) {
            let (prev, prev_force) = (self.prev, self.prev_force);
            OVERRIDE.with(|o| o.set(prev));
            FORCE.with(|x| x.set(prev_force));
        }
    }
    let _restore = Restore {
        prev: OVERRIDE.with(|o| o.replace(Some(n.max(1)))),
        prev_force: FORCE.with(|x| x.replace(force)),
    };
    f()
}

/// Runs `f` with the calling thread's parallelism pinned to `n`,
/// restoring the previous setting afterwards (panic-safe).
///
/// The override changes only the thread *count*; the autotuned work
/// thresholds still apply, so a region too small to amortize a pool
/// dispatch stays serial — this is what production code sees under
/// `HADFL_THREADS`. Tests that need small inputs to genuinely exercise
/// the parallel path use [`with_threads_forced`]. The override is
/// thread-local — concurrent tests cannot race each other.
pub fn with_threads<R>(n: usize, f: impl FnOnce() -> R) -> R {
    with_override(n, false, f)
}

/// [`with_threads`], but also bypassing the work thresholds so even
/// tiny regions take the parallel path. Intended for determinism
/// tests: the fixed-chunk contract means the bytes must match the
/// serial run anyway, and forcing makes small inputs actually cross
/// the pool.
pub fn with_threads_forced<R>(n: usize, f: impl FnOnce() -> R) -> R {
    with_override(n, true, f)
}

/// Number of fixed-size chunks covering `len` elements.
pub fn chunk_count(len: usize, chunk_len: usize) -> usize {
    assert!(chunk_len > 0, "chunk_len must be positive");
    len.div_ceil(chunk_len)
}

// ---------------------------------------------------------------------------
// Measured autotune
// ---------------------------------------------------------------------------

/// Coarse kernel families with distinct parallel break-even points.
/// The *work* unit for every class is "one scalar flop-ish operation"
/// (one FMA for matmul, one element visit for the others), so the
/// thresholds are comparable across classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpClass {
    /// Disjoint per-element writes: `axpy`, scaling, parameter merges,
    /// `im2col`/`col2im`. Memory-bandwidth-bound, so threads help the
    /// least — the most conservative cutoff.
    Elementwise,
    /// Chunked sums (`dot`, `sum`, `norm_l2`): bandwidth-bound reads
    /// but no output traffic.
    Reduce,
    /// Register-tiled matrix products: compute-bound, scales best —
    /// the most eager cutoff.
    Matmul,
}

impl OpClass {
    const ALL: [OpClass; 3] = [OpClass::Elementwise, OpClass::Reduce, OpClass::Matmul];

    fn index(self) -> usize {
        match self {
            OpClass::Elementwise => 0,
            OpClass::Reduce => 1,
            OpClass::Matmul => 2,
        }
    }

    fn env_suffix(self) -> &'static str {
        match self {
            OpClass::Elementwise => "ELEMENTWISE",
            OpClass::Reduce => "REDUCE",
            OpClass::Matmul => "MATMUL",
        }
    }

    /// How many multiples of the dispatch overhead the *serial* time
    /// must reach before parallelizing pays. Bandwidth-bound classes
    /// see smaller parallel speedups, so they demand more margin.
    fn break_even_margin(self) -> f64 {
        match self {
            OpClass::Elementwise => 4.0,
            OpClass::Reduce => 3.0,
            OpClass::Matmul => 2.0,
        }
    }
}

/// One-shot per-process measurement backing the [`plan_for`] cutoffs.
#[derive(Debug, Clone, Copy)]
pub struct Calibration {
    /// Minimum observed wall time of a no-op pool dispatch (publish,
    /// wake, drain nothing, join), in nanoseconds.
    pub dispatch_ns: u64,
    /// Measured serial cost of one FMA in an eight-accumulator sweep,
    /// in nanoseconds — the throughput the slice-of-8 kernels actually
    /// see, not the latency of a dependent chain.
    pub elem_ns: f64,
    /// Work cutoffs per [`OpClass`] (indexed by `OpClass::index`).
    pub thresholds: [u64; 3],
}

fn env_u64(name: &str) -> Option<u64> {
    std::env::var(name).ok()?.trim().parse::<u64>().ok()
}

/// Serial throughput probe: the same multiply-add sweep as the
/// `calibration/serial_fma_1m` bench row, but in slice-of-8 form so
/// the compiler vectorizes it exactly like the SIMD kernels. Minimum
/// of several passes, like the committed bench methodology.
fn probe_elem_ns() -> f64 {
    const N: usize = 1 << 16;
    let mut buf = vec![1.0f32; N];
    let mut best = f64::INFINITY;
    for _ in 0..5 {
        let start = Instant::now();
        let mut acc = [0.0f32; 8];
        for chunk in buf.chunks_exact_mut(8) {
            for (a, v) in acc.iter_mut().zip(chunk.iter_mut()) {
                *v = v.mul_add(0.999_999_9, 1.0e-9);
                *a += *v;
            }
        }
        let dt = start.elapsed().as_nanos() as f64;
        std::hint::black_box(&mut buf);
        std::hint::black_box(acc);
        best = best.min(dt / N as f64);
    }
    best.max(0.01)
}

/// Pool round-trip probe: minimum wall time over several no-op
/// dispatches at the process's real helper count. Runs through the
/// actual pool (spawning it if needed) so wake latency is included,
/// but records nothing into any installed profiler.
fn probe_dispatch_ns() -> u64 {
    let helpers = max_threads().saturating_sub(1).clamp(1, MAX_POOL_WORKERS);
    let region = PoolRegion::disabled();
    let mut pool = global_pool().lock().unwrap_or_else(PoisonError::into_inner);
    let mut best = u64::MAX;
    for _ in 0..8 {
        let start = Instant::now();
        pool.dispatch_inner(helpers + 1, helpers, &|_| {}, &region);
        best = best.min(start.elapsed().as_nanos() as u64);
    }
    best.max(1_000)
}

/// The process calibration, measured on first use. Cheap to call after
/// that (one atomic load).
pub fn calibration() -> &'static Calibration {
    CALIBRATION.get_or_init(|| {
        let dispatch_ns = probe_dispatch_ns();
        let elem_ns = probe_elem_ns();
        let blanket = env_u64("HADFL_PAR_THRESHOLD");
        let mut thresholds = [0u64; 3];
        for class in OpClass::ALL {
            let measured = (dispatch_ns as f64 * class.break_even_margin() / elem_ns) as u64;
            let fallback = measured.clamp(MIN_AUTOTUNE_WORK, 32 * 1024 * 1024);
            let var = format!("HADFL_PAR_THRESHOLD_{}", class.env_suffix());
            thresholds[class.index()] = env_u64(&var).or(blanket).unwrap_or(fallback);
        }
        Calibration {
            dispatch_ns,
            elem_ns,
            thresholds,
        }
    })
}

/// The measured work cutoff below which `class` regions stay serial.
pub fn serial_threshold(class: OpClass) -> u64 {
    calibration().thresholds[class.index()]
}

/// Estimated serial wall time for a region of `work` scalar
/// operations, from the calibrated per-element cost. Recorded into the
/// profiler's pool table so `hadfl-trace profile` can flag dispatches
/// that ran longer than just doing the work serially.
pub fn serial_estimate_ns(class: OpClass, work: u64) -> u64 {
    let _ = class;
    (work as f64 * calibration().elem_ns) as u64
}

// ---------------------------------------------------------------------------
// Plans
// ---------------------------------------------------------------------------

/// A dispatch decision for one parallel region: how many workers the
/// region will use, given its estimated scalar-operation count.
#[derive(Debug, Clone, Copy)]
pub struct Plan {
    workers: usize,
    work: u64,
}

/// Sizes a parallel region of `class` doing `work` scalar operations:
/// serial when only one thread is configured, when running inside a
/// pool worker, or when `work` is below the class's measured
/// threshold; the full [`current_threads`] otherwise. A
/// [`with_threads_forced`] override skips the size cutoff so tests can
/// force the parallel path.
pub fn plan_for(class: OpClass, work: u64) -> Plan {
    if IN_WORKER.with(Cell::get) {
        return Plan { workers: 1, work };
    }
    let t = OVERRIDE.with(Cell::get).unwrap_or_else(max_threads);
    if t <= 1 {
        return Plan { workers: 1, work };
    }
    if FORCE.with(Cell::get) {
        return Plan { workers: t, work };
    }
    // Static floor first: tiny regions never pay the one-shot probe.
    if work < MIN_AUTOTUNE_WORK || work < serial_threshold(class) {
        return Plan { workers: 1, work };
    }
    Plan { workers: t, work }
}

/// [`plan_for`] with the conservative [`OpClass::Elementwise`] cutoff —
/// the right default for disjoint per-element kernels.
pub fn plan(work: u64) -> Plan {
    plan_for(OpClass::Elementwise, work)
}

impl Plan {
    /// `true` when this region will run entirely on the calling thread.
    pub fn is_serial(&self) -> bool {
        self.workers <= 1
    }

    /// The worker count this region will use (including the caller).
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Runs `task(i)` for every `i in 0..n_tasks`, distributing task
    /// indices over the pool via an atomic claim counter. Tasks must
    /// be independent; any two schedules produce the same outputs
    /// because outputs are a function of the index alone.
    pub fn run(&self, n_tasks: usize, task: impl Fn(usize) + Sync) {
        let w = self.workers.min(n_tasks);
        // Every dispatch — serial or parallel — is one pool region when
        // a profiler is installed on the dispatching thread; workers
        // feed it through lock-free atomics. Disabled cost is one
        // thread-local flag read for the whole dispatch.
        let region = PoolRegion::begin("par");
        if w <= 1 {
            let wt = region.worker_start();
            for i in 0..n_tasks {
                let t = region.task_start();
                task(i);
                region.task_end(t);
            }
            region.worker_end(wt);
            region.finish();
            return;
        }
        // `u64::MAX` marks task-level dispatches with no meaningful
        // element count — no serial estimate for those.
        if self.work < u64::MAX / 2 {
            region.set_serial_estimate(serial_estimate_ns(OpClass::Elementwise, self.work));
        }
        let task_ref: &(dyn Fn(usize) + Sync) = &task;
        let mut pool = global_pool().lock().unwrap_or_else(PoisonError::into_inner);
        pool.dispatch_inner(n_tasks, w - 1, task_ref, &region);
        drop(pool);
        region.finish();
    }

    /// Splits `data` into fixed `chunk_len`-sized chunks (the last may
    /// be ragged) and runs `f(chunk_index, chunk)` on each. Chunks are
    /// disjoint `&mut` windows, so the result is byte-identical to the
    /// serial loop regardless of worker count or schedule.
    ///
    /// # Panics
    ///
    /// Panics if `chunk_len` is zero.
    pub fn chunks_mut<T: Send>(
        &self,
        data: &mut [T],
        chunk_len: usize,
        f: impl Fn(usize, &mut [T]) + Sync,
    ) {
        let len = data.len();
        let n_chunks = chunk_count(len, chunk_len);
        if self.is_serial() || n_chunks <= 1 {
            let region = PoolRegion::begin("par");
            let wt = region.worker_start();
            for (i, chunk) in data.chunks_mut(chunk_len).enumerate() {
                let t = region.task_start();
                f(i, chunk);
                region.task_end(t);
            }
            region.worker_end(wt);
            region.finish();
            return;
        }
        let base = SendPtr(data.as_mut_ptr());
        self.run(n_chunks, |i| {
            // Capture the `SendPtr` wrapper itself (not the raw-pointer
            // field, which edition-2021 closures would otherwise pick).
            let base = &base;
            let start = i * chunk_len;
            let end = (start + chunk_len).min(len);
            // SAFETY: chunk `i` covers exactly [start, end) with
            // `start = i * chunk_len`, so chunks for distinct indices
            // never overlap, each index is claimed exactly once by the
            // atomic counter in `run`, and `data` outlives the dispatch
            // (the dispatcher joins all participants before returning).
            // Disjoint `&mut` reborrows of one live `&mut [T]` are
            // therefore sound.
            let chunk = unsafe { std::slice::from_raw_parts_mut(base.0.add(start), end - start) };
            f(i, chunk);
        });
    }

    /// Computes `f(i)` for `i in 0..n` and returns the results in index
    /// order.
    pub fn map_collect<R: Send>(&self, n: usize, f: impl Fn(usize) -> R + Sync) -> Vec<R> {
        let mut out: Vec<Option<R>> = (0..n).map(|_| None).collect();
        self.chunks_mut(&mut out, 1, |i, slot| slot[0] = Some(f(i)));
        out.into_iter()
            .map(|r| r.expect("every task index runs exactly once"))
            .collect()
    }

    /// Maps every chunk index to a partial result, then folds the
    /// partials **in ascending chunk order** on the calling thread —
    /// the deterministic-combine half of the substrate contract.
    /// Returns `None` when `n == 0`.
    pub fn reduce<R: Send>(
        &self,
        n: usize,
        map: impl Fn(usize) -> R + Sync,
        mut fold: impl FnMut(R, R) -> R,
    ) -> Option<R> {
        let mut partials = self.map_collect(n, map).into_iter();
        let first = partials.next()?;
        Some(partials.fold(first, &mut fold))
    }
}

fn drain(next: &AtomicUsize, n_tasks: usize, task: &(dyn Fn(usize) + Sync), region: &PoolRegion) {
    loop {
        let i = next.fetch_add(1, Ordering::Relaxed);
        if i >= n_tasks {
            return;
        }
        let t = region.task_start();
        task(i);
        region.task_end(t);
    }
}

/// Raw-pointer wrapper so disjoint chunk addresses can cross the
/// pool-worker boundary.
#[derive(Clone, Copy)]
struct SendPtr<T>(*mut T);

// SAFETY: the pointer is only dereferenced through the disjoint-chunk
// protocol in `chunks_mut`, which hands each worker a non-overlapping
// window of a `&mut [T]` that outlives the dispatch.
unsafe impl<T: Send> Send for SendPtr<T> {}
unsafe impl<T: Send> Sync for SendPtr<T> {}

// ---------------------------------------------------------------------------
// The persistent worker pool
// ---------------------------------------------------------------------------

/// One published dispatch: everything a worker needs, as raw pointers
/// into the dispatcher's stack frame. Valid from the epoch bump until
/// every signalled worker has checked in — the dispatcher blocks on
/// that countdown before unwinding or returning, so no pointer here
/// ever dangles while a worker can read it.
struct Job {
    task: *const (dyn Fn(usize) + Sync),
    n_tasks: usize,
    next: *const AtomicUsize,
    region: *const PoolRegion,
    panic: *const Mutex<Option<Box<dyn Any + Send>>>,
    dispatcher: Thread,
}

/// State shared between a pool's owner and its workers.
struct PoolShared {
    /// Bumped (Release) once per dispatch after [`PoolShared::job`] is
    /// written; workers detect work by comparing against their last
    /// seen value (Acquire).
    epoch: AtomicUsize,
    /// Participation tickets for the current dispatch: workers that
    /// decrement it from a positive value drain tasks, the rest just
    /// check in. May go negative — only the sign matters.
    tickets: AtomicIsize,
    /// Workers yet to check in for the current dispatch. The
    /// dispatcher parks until this reaches zero; the worker that takes
    /// it to zero unparks the dispatcher.
    remaining: AtomicUsize,
    /// Set by `Drop`; parked workers exit on their next wake.
    shutdown: AtomicBool,
    /// Live worker threads (spawned minus exited) — observable through
    /// [`WorkerPool::liveness_probe`] even after the pool drops.
    live: AtomicUsize,
    /// The published job. Written by the dispatcher strictly before
    /// the epoch bump and cleared only after all check-ins, so workers
    /// only ever read a fully published value.
    job: UnsafeCell<Option<Job>>,
}

// SAFETY: `job` is protected by the epoch/countdown handoff protocol
// described on the fields: all worker reads happen between the
// Release epoch bump (after the write) and the Acquire countdown
// drain (before the clear). Everything else is atomics.
unsafe impl Send for PoolShared {}
unsafe impl Sync for PoolShared {}

/// A persistent pool of parked worker threads. The crate keeps one
/// process-global instance behind [`plan`]/[`plan_for`]; owning one
/// directly is for lifecycle tests and embedders that want isolation.
///
/// Workers spawn lazily on first dispatch, park between dispatches,
/// and are joined on drop.
pub struct WorkerPool {
    shared: Arc<PoolShared>,
    workers: Vec<JoinHandle<()>>,
}

impl Default for WorkerPool {
    fn default() -> Self {
        Self::new()
    }
}

impl WorkerPool {
    /// An empty pool; the first dispatch spawns its workers.
    pub fn new() -> Self {
        WorkerPool {
            shared: Arc::new(PoolShared {
                epoch: AtomicUsize::new(0),
                tickets: AtomicIsize::new(0),
                remaining: AtomicUsize::new(0),
                shutdown: AtomicBool::new(false),
                live: AtomicUsize::new(0),
                job: UnsafeCell::new(None),
            }),
            workers: Vec::new(),
        }
    }

    /// Worker threads spawned so far.
    pub fn spawned_workers(&self) -> usize {
        self.workers.len()
    }

    /// A counter of this pool's live (not yet exited) worker threads
    /// that stays valid after the pool drops — lifecycle tests use it
    /// to prove shutdown leaks no threads.
    pub fn liveness_probe(&self) -> impl Fn() -> usize + Send + 'static {
        let shared = Arc::clone(&self.shared);
        move || shared.live.load(Ordering::Acquire)
    }

    /// Runs `task(i)` for `i in 0..n_tasks` across this pool with up
    /// to `helpers` worker threads assisting the calling thread.
    pub fn dispatch(&mut self, n_tasks: usize, helpers: usize, task: impl Fn(usize) + Sync) {
        let region = PoolRegion::begin("par");
        self.dispatch_inner(n_tasks, helpers, &task, &region);
        region.finish();
    }

    fn ensure(&mut self, helpers: usize) {
        let helpers = helpers.min(MAX_POOL_WORKERS);
        // A worker must start life agreeing with the current epoch, or
        // it would mistake history for a fresh job (or miss the next
        // one). Dispatches are serialized by `&mut self`, so one load
        // covers every worker spawned here.
        let birth_epoch = self.shared.epoch.load(Ordering::Acquire);
        while self.workers.len() < helpers {
            let shared = Arc::clone(&self.shared);
            shared.live.fetch_add(1, Ordering::Relaxed);
            let handle = std::thread::Builder::new()
                .name("hadfl-par".into())
                .spawn(move || worker_loop(shared, birth_epoch))
                .expect("spawn hadfl-par worker");
            self.workers.push(handle);
        }
    }

    fn dispatch_inner(
        &mut self,
        n_tasks: usize,
        helpers: usize,
        task: &(dyn Fn(usize) + Sync),
        region: &PoolRegion,
    ) {
        self.ensure(helpers);
        let signalled = self.workers.len();
        if signalled == 0 {
            let wt = region.worker_start();
            drain(&AtomicUsize::new(0), n_tasks, task, region);
            region.worker_end(wt);
            return;
        }
        let next = AtomicUsize::new(0);
        let panic_slot: Mutex<Option<Box<dyn Any + Send>>> = Mutex::new(None);
        // SAFETY: lifetime erasure only — the pointer is dead before
        // this frame unwinds (see the countdown wait below).
        #[allow(clippy::missing_transmute_annotations)]
        let task_ptr: *const (dyn Fn(usize) + Sync) =
            unsafe { std::mem::transmute(task as *const (dyn Fn(usize) + Sync)) };
        let job = Job {
            task: task_ptr,
            n_tasks,
            next: &next,
            region,
            panic: &panic_slot,
            dispatcher: std::thread::current(),
        };
        // Publish order: job and counters first, then the Release
        // epoch bump that makes them visible, then the wakes.
        unsafe { *self.shared.job.get() = Some(job) };
        self.shared
            .tickets
            .store(helpers as isize, Ordering::Relaxed);
        self.shared.remaining.store(signalled, Ordering::Relaxed);
        self.shared.epoch.fetch_add(1, Ordering::Release);
        for h in &self.workers {
            h.thread().unpark();
        }

        // Drain alongside the workers. IN_WORKER keeps kernels nested
        // inside chunks serial on this thread too — without it they
        // would re-enter the pool lock the caller already holds.
        let was_in_worker = IN_WORKER.with(|f| f.replace(true));
        let wt = region.worker_start();
        let mine = catch_unwind(AssertUnwindSafe(|| drain(&next, n_tasks, task, region)));
        region.worker_end(wt);
        IN_WORKER.with(|f| f.set(was_in_worker));

        // The job slot aliases this stack frame (`next`, `panic_slot`,
        // `region`, the caller's closure): every signalled worker must
        // check in before this frame may return or unwind. Park until
        // the countdown drains — the last worker unparks us, and the
        // permit semantics of `unpark` make the wake race-free.
        while self.shared.remaining.load(Ordering::Acquire) != 0 {
            std::thread::park();
        }
        unsafe { *self.shared.job.get() = None };
        if let Err(p) = mine {
            resume_unwind(p);
        }
        let worker_panic = panic_slot
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .take();
        if let Some(p) = worker_panic {
            resume_unwind(p);
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        for h in &self.workers {
            h.thread().unpark();
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

fn worker_loop(shared: Arc<PoolShared>, mut last_epoch: usize) {
    loop {
        let epoch = shared.epoch.load(Ordering::Acquire);
        if epoch == last_epoch {
            if shared.shutdown.load(Ordering::Acquire) {
                break;
            }
            std::thread::park();
            continue;
        }
        last_epoch = epoch;
        let dispatcher = {
            // SAFETY: the Acquire epoch load above synchronizes with
            // the Release bump that followed the job write, and the
            // slot is not rewritten until this worker (and every
            // other) checks in below.
            let job = unsafe { (*shared.job.get()).as_ref() }.expect("epoch bump publishes a job");
            if shared.tickets.fetch_sub(1, Ordering::AcqRel) > 0 {
                // SAFETY: all `Job` pointers outlive the dispatch; the
                // dispatcher blocks on the countdown we have not yet
                // decremented.
                let task = unsafe { &*job.task };
                let next = unsafe { &*job.next };
                let region = unsafe { &*job.region };
                IN_WORKER.with(|f| f.set(true));
                let wt = region.worker_start();
                let got = catch_unwind(AssertUnwindSafe(|| drain(next, job.n_tasks, task, region)));
                region.worker_end(wt);
                IN_WORKER.with(|f| f.set(false));
                if let Err(p) = got {
                    let mut slot = unsafe { &*job.panic }
                        .lock()
                        .unwrap_or_else(PoisonError::into_inner);
                    if slot.is_none() {
                        *slot = Some(p);
                    }
                }
            }
            job.dispatcher.clone()
        };
        // Check in strictly after the last touch of the job slot; the
        // AcqRel countdown orders that touch before the dispatcher's
        // Acquire read of zero.
        if shared.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
            dispatcher.unpark();
        }
    }
    shared.live.fetch_sub(1, Ordering::Release);
}

fn global_pool() -> &'static Mutex<WorkerPool> {
    POOL.get_or_init(|| Mutex::new(WorkerPool::new()))
}

// ---------------------------------------------------------------------------
// Free-function conveniences
// ---------------------------------------------------------------------------

/// Elementwise convenience: fixed `chunk_len` windows of `data`, work
/// estimated as one operation per element.
pub fn par_chunks_mut<T: Send>(
    data: &mut [T],
    chunk_len: usize,
    f: impl Fn(usize, &mut [T]) + Sync,
) {
    plan(data.len() as u64).chunks_mut(data, chunk_len, f);
}

/// Task-level convenience: `n` independent tasks assumed individually
/// heavy enough to parallelize whenever more than one thread is
/// configured.
pub fn par_map_collect<R: Send>(n: usize, f: impl Fn(usize) -> R + Sync) -> Vec<R> {
    plan(u64::MAX).map_collect(n, f)
}

/// Reduction convenience over `n` chunks: partials fold in ascending
/// chunk order, sized with the [`OpClass::Reduce`] cutoff. Returns
/// `None` when `n == 0`.
pub fn par_reduce<R: Send>(
    n: usize,
    work: u64,
    map: impl Fn(usize) -> R + Sync,
    fold: impl FnMut(R, R) -> R,
) -> Option<R> {
    plan_for(OpClass::Reduce, work).reduce(n, map, fold)
}

/// The fixed chunk length every elementwise f32 kernel in the
/// workspace uses. Reductions built on this chunking (`dot`, `sum`,
/// `norm_l2`) are deterministic at any thread count because the chunk
/// boundaries — and therefore the float-addition association — depend
/// only on the input length.
pub const F32_CHUNK: usize = 32 * 1024;

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn chunk_count_covers_ragged_tails() {
        assert_eq!(chunk_count(0, 4), 0);
        assert_eq!(chunk_count(1, 4), 1);
        assert_eq!(chunk_count(4, 4), 1);
        assert_eq!(chunk_count(5, 4), 2);
        assert_eq!(chunk_count(8, 4), 2);
    }

    #[test]
    #[should_panic(expected = "chunk_len must be positive")]
    fn zero_chunk_len_panics() {
        chunk_count(3, 0);
    }

    #[test]
    fn with_threads_overrides_and_restores() {
        let outer = current_threads();
        with_threads(7, || {
            assert_eq!(current_threads(), 7);
            with_threads(2, || assert_eq!(current_threads(), 2));
            assert_eq!(current_threads(), 7);
        });
        assert_eq!(current_threads(), outer);
    }

    #[test]
    fn override_restored_after_panic() {
        let outer = current_threads();
        let caught = std::panic::catch_unwind(|| with_threads(5, || panic!("boom")));
        assert!(caught.is_err());
        assert_eq!(current_threads(), outer);
    }

    #[test]
    fn small_work_stays_serial_unless_forced() {
        assert!(plan(MIN_AUTOTUNE_WORK - 1).is_serial() || max_threads() == 1);
        // A plain thread override no longer forces tiny work parallel…
        with_threads(4, || assert!(plan(1).is_serial()));
        // …but the forced override does.
        with_threads_forced(4, || assert_eq!(plan(1).workers, 4));
    }

    #[test]
    fn forced_override_restores_threshold_behavior() {
        with_threads_forced(4, || {
            assert_eq!(plan(1).workers, 4);
            with_threads(4, || assert!(plan(1).is_serial()));
            assert_eq!(plan(1).workers, 4);
        });
        assert!(plan(1).is_serial());
    }

    #[test]
    fn thresholds_are_measured_and_overridable() {
        let cal = calibration();
        assert!(cal.dispatch_ns >= 1_000);
        assert!(cal.elem_ns > 0.0);
        for class in OpClass::ALL {
            let t = serial_threshold(class);
            assert!(t >= MIN_AUTOTUNE_WORK, "{class:?} threshold {t}");
        }
        // Margins order the cutoffs: matmul parallelizes soonest.
        assert!(serial_threshold(OpClass::Matmul) <= serial_threshold(OpClass::Reduce));
        assert!(serial_threshold(OpClass::Reduce) <= serial_threshold(OpClass::Elementwise));
        // Work above every cutoff parallelizes without forcing.
        with_threads(4, || {
            assert_eq!(plan_for(OpClass::Matmul, u64::MAX / 4).workers, 4);
        });
    }

    #[test]
    fn chunks_mut_is_identical_across_thread_counts() {
        let make = || (0..10_001).map(|i| i as f32).collect::<Vec<f32>>();
        let run = |threads: usize| {
            with_threads_forced(threads, || {
                let mut data = make();
                plan(u64::MAX).chunks_mut(&mut data, 97, |idx, chunk| {
                    for (off, v) in chunk.iter_mut().enumerate() {
                        *v = v.mul_add(1.5, (idx * 97 + off) as f32);
                    }
                });
                data
            })
        };
        let serial = run(1);
        for t in [2, 4, 8] {
            assert_eq!(serial, run(t), "thread count {t}");
        }
    }

    #[test]
    fn map_collect_preserves_index_order() {
        let got = with_threads_forced(4, || plan(u64::MAX).map_collect(100, |i| i * i));
        assert_eq!(got, (0..100).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn reduce_folds_in_chunk_order() {
        // String concatenation is order-sensitive: any out-of-order
        // combine would scramble it.
        let got = with_threads_forced(4, || {
            plan(u64::MAX).reduce(
                26,
                |i| ((b'a' + i as u8) as char).to_string(),
                |a, b| a + &b,
            )
        });
        assert_eq!(got.as_deref(), Some("abcdefghijklmnopqrstuvwxyz"));
        assert_eq!(plan(0).reduce(0, |_| 0u32, |a, b| a + b), None);
    }

    #[test]
    fn every_task_runs_exactly_once() {
        let hits = AtomicU64::new(0);
        with_threads_forced(8, || {
            plan(u64::MAX).run(1000, |i| {
                hits.fetch_add(1 + i as u64, Ordering::Relaxed);
            });
        });
        assert_eq!(hits.load(Ordering::Relaxed), 1000 + 999 * 1000 / 2);
    }

    #[test]
    fn pool_survives_many_dispatches_and_a_panic() {
        // Park → wake → park across dispatches, including one that
        // panics: the persistent pool must keep serving afterwards.
        let hits = AtomicU64::new(0);
        for round in 0..50u64 {
            with_threads_forced(4, || {
                plan(u64::MAX).run(16, |i| {
                    hits.fetch_add(round + i as u64, Ordering::Relaxed);
                });
            });
        }
        let caught = std::panic::catch_unwind(|| {
            with_threads_forced(4, || plan(u64::MAX).run(8, |_| panic!("mid-life panic")))
        });
        assert!(caught.is_err());
        let before = hits.load(Ordering::Relaxed);
        with_threads_forced(4, || {
            plan(u64::MAX).run(16, |_| {
                hits.fetch_add(1, Ordering::Relaxed);
            });
        });
        assert_eq!(hits.load(Ordering::Relaxed), before + 16);
    }

    #[test]
    fn worker_panic_propagates() {
        let caught = std::panic::catch_unwind(|| {
            with_threads_forced(4, || {
                plan(u64::MAX).run(16, |i| {
                    if i == 7 {
                        panic!("chunk 7 failed");
                    }
                });
            })
        });
        assert!(caught.is_err());
    }

    #[test]
    fn nested_regions_stay_serial_inside_workers() {
        with_threads_forced(4, || {
            plan(u64::MAX).run(8, |_| {
                // Inside any drain — worker or dispatcher — the nested
                // plan must not fan out again.
                assert_eq!(current_threads(), 1);
                assert!(plan(u64::MAX).is_serial());
            });
        });
    }

    #[test]
    fn concurrent_dispatchers_share_the_pool() {
        // Several threads dispatching at once serialize on the pool
        // lock but must all complete with every task run exactly once.
        let totals: Vec<u64> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    s.spawn(|| {
                        let hits = AtomicU64::new(0);
                        with_threads_forced(4, || {
                            plan(u64::MAX).run(100, |_| {
                                hits.fetch_add(1, Ordering::Relaxed);
                            });
                        });
                        hits.load(Ordering::Relaxed)
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        assert_eq!(totals, vec![100, 100, 100, 100]);
    }

    #[test]
    fn private_pool_lifecycle_joins_all_workers() {
        let mut pool = WorkerPool::new();
        assert_eq!(pool.spawned_workers(), 0);
        let live = pool.liveness_probe();
        let hits = AtomicU64::new(0);
        // park → wake → park across several dispatches
        for _ in 0..10 {
            pool.dispatch(32, 3, |_| {
                hits.fetch_add(1, Ordering::Relaxed);
            });
        }
        assert_eq!(hits.load(Ordering::Relaxed), 320);
        assert_eq!(pool.spawned_workers(), 3);
        assert_eq!(live(), 3);
        drop(pool);
        // Drop joins the workers, so no thread may outlive the pool.
        assert_eq!(live(), 0, "worker threads leaked past drop");
    }

    #[test]
    fn pool_dispatches_record_into_an_installed_profiler() {
        use hadfl_prof::{ManualTime, Profiler};
        let prof = Profiler::new(0, std::sync::Arc::new(ManualTime::new()));
        {
            let _g = prof.install();
            let mut data = vec![0f32; 1000];
            with_threads_forced(4, || {
                plan(u64::MAX).chunks_mut(&mut data, 100, |_, chunk| {
                    for v in chunk {
                        *v += 1.0;
                    }
                });
            });
            assert!(data.iter().all(|&v| v == 1.0));
        }
        let dump = prof.dump();
        assert_eq!(dump.pools.len(), 1);
        let p = &dump.pools[0];
        assert_eq!(p.region, "par");
        assert_eq!((p.dispatches, p.tasks, p.max_workers), (1, 10, 4));
    }

    #[test]
    fn empty_input_is_a_noop() {
        let mut empty: Vec<f32> = Vec::new();
        par_chunks_mut(&mut empty, 8, |_, _| panic!("no chunks expected"));
        assert!(par_map_collect(0, |i| i).is_empty());
    }
}
