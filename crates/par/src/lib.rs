//! Deterministic scoped chunk-parallel compute substrate.
//!
//! HADFL's premise is that per-device computing power sets the local
//! epoch budget `E_i`, yet a substrate whose kernels leave every core
//! but one idle misrepresents exactly the quantity the algorithm
//! schedules around. This crate makes the hot loops scale with cores
//! *without* giving up the bit-exact determinism the protocol model
//! checker and the byte-identical telemetry tests depend on.
//!
//! The contract (DESIGN.md §10):
//!
//! 1. **Fixed chunk boundaries.** Work is split into chunks whose
//!    boundaries depend only on the problem size — never on the thread
//!    count. A worker pool claims chunk *indices* from an atomic
//!    counter, so which thread computes a chunk varies run to run, but
//!    what each chunk computes never does.
//! 2. **Disjoint writes or ordered combines.** Elementwise kernels
//!    write disjoint output chunks (any schedule gives the same bytes);
//!    reductions fold per-chunk partials in ascending chunk order on
//!    the calling thread.
//!
//! Together these make every kernel's output a pure function of its
//! inputs and the fixed chunk policy: running under `HADFL_THREADS=1`
//! and `HADFL_THREADS=64` produces bit-identical floats.
//!
//! Thread count resolution: the [`with_threads`] thread-local override
//! (tests), else the `HADFL_THREADS` environment variable, else
//! [`std::thread::available_parallelism`]. Parallel dispatch uses
//! `std::thread::scope`, so borrowed inputs need no `'static` bounds
//! and a panicking chunk propagates to the caller.
//!
//! # Example
//!
//! ```
//! use hadfl_par::{plan, with_threads};
//!
//! let mut data = vec![1.0f32; 10_000];
//! // Same bytes at any thread count: chunk boundaries are fixed.
//! with_threads(4, || {
//!     plan(data.len() as u64).chunks_mut(&mut data, 4096, |_idx, chunk| {
//!         for v in chunk {
//!             *v *= 2.0;
//!         }
//!     });
//! });
//! assert!(data.iter().all(|&v| v == 2.0));
//! ```

use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

use hadfl_prof::PoolRegion;

/// Below this many scalar operations a parallel region is not worth
/// the `thread::scope` spawn cost and runs serially (unless a
/// [`with_threads`] override forces the parallel path for testing).
pub const PAR_WORK_THRESHOLD: u64 = 64 * 1024;

static MAX_THREADS: OnceLock<usize> = OnceLock::new();

thread_local! {
    /// Test override installed by [`with_threads`].
    static OVERRIDE: Cell<Option<usize>> = const { Cell::new(None) };
    /// Set while running as a pool worker: nested kernels stay serial
    /// instead of multiplying thread counts.
    static IN_WORKER: Cell<bool> = const { Cell::new(false) };
}

/// The process-wide worker budget: `HADFL_THREADS` if set to a
/// positive integer, else the machine's available parallelism.
/// Resolved once and cached.
pub fn max_threads() -> usize {
    *MAX_THREADS.get_or_init(|| {
        std::env::var("HADFL_THREADS")
            .ok()
            .and_then(|s| s.trim().parse::<usize>().ok())
            .filter(|&n| n >= 1)
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(std::num::NonZeroUsize::get)
                    .unwrap_or(1)
            })
    })
}

/// The thread count parallel regions started from this thread will
/// use: the [`with_threads`] override if one is active, else
/// [`max_threads`]. Inside a pool worker this is always 1 (no nested
/// fan-out).
pub fn current_threads() -> usize {
    if IN_WORKER.with(Cell::get) {
        return 1;
    }
    OVERRIDE.with(Cell::get).unwrap_or_else(max_threads)
}

/// Runs `f` with the calling thread's parallelism pinned to `n`,
/// restoring the previous setting afterwards (panic-safe).
///
/// Intended for determinism tests: the override also bypasses the
/// [`PAR_WORK_THRESHOLD`] serial cutoff, so small inputs genuinely
/// exercise the parallel path. The override is thread-local —
/// concurrent tests cannot race each other.
pub fn with_threads<R>(n: usize, f: impl FnOnce() -> R) -> R {
    struct Restore(Option<usize>);
    impl Drop for Restore {
        fn drop(&mut self) {
            let prev = self.0;
            OVERRIDE.with(|o| o.set(prev));
        }
    }
    let _restore = Restore(OVERRIDE.with(|o| o.replace(Some(n.max(1)))));
    f()
}

/// Number of fixed-size chunks covering `len` elements.
pub fn chunk_count(len: usize, chunk_len: usize) -> usize {
    assert!(chunk_len > 0, "chunk_len must be positive");
    len.div_ceil(chunk_len)
}

/// A dispatch decision for one parallel region: how many workers the
/// region will use, given its estimated scalar-operation count.
#[derive(Debug, Clone, Copy)]
pub struct Plan {
    workers: usize,
}

/// Sizes a parallel region: serial when only one thread is configured
/// or the region is too small to amortize thread spawns, the full
/// [`current_threads`] otherwise. A [`with_threads`] override skips
/// the size cutoff so tests can force the parallel path.
pub fn plan(work: u64) -> Plan {
    let t = current_threads();
    let forced = OVERRIDE.with(Cell::get).is_some() && !IN_WORKER.with(Cell::get);
    if t <= 1 || (!forced && work < PAR_WORK_THRESHOLD) {
        Plan { workers: 1 }
    } else {
        Plan { workers: t }
    }
}

impl Plan {
    /// `true` when this region will run entirely on the calling thread.
    pub fn is_serial(&self) -> bool {
        self.workers <= 1
    }

    /// Runs `task(i)` for every `i in 0..n_tasks`, distributing task
    /// indices over the workers via an atomic claim counter. Tasks must
    /// be independent; any two schedules produce the same outputs
    /// because outputs are a function of the index alone.
    pub fn run(&self, n_tasks: usize, task: impl Fn(usize) + Sync) {
        let w = self.workers.min(n_tasks);
        // Every dispatch — serial or parallel — is one pool region when
        // a profiler is installed on the dispatching thread; workers
        // feed it through lock-free atomics. Disabled cost is one
        // thread-local flag read for the whole dispatch.
        let region = PoolRegion::begin("par");
        if w <= 1 {
            let wt = region.worker_start();
            for i in 0..n_tasks {
                let t = region.task_start();
                task(i);
                region.task_end(t);
            }
            region.worker_end(wt);
            region.finish();
            return;
        }
        let next = AtomicUsize::new(0);
        let task_ref: &(dyn Fn(usize) + Sync) = &task;
        let region_ref = &region;
        std::thread::scope(|scope| {
            for _ in 1..w {
                let next = &next;
                scope.spawn(move || {
                    IN_WORKER.with(|f| f.set(true));
                    let wt = region_ref.worker_start();
                    drain(next, n_tasks, task_ref, region_ref);
                    region_ref.worker_end(wt);
                    IN_WORKER.with(|f| f.set(false));
                });
            }
            // The dispatching thread drains alongside the spawned
            // workers and counts as one of them.
            let wt = region_ref.worker_start();
            drain(&next, n_tasks, task_ref, region_ref);
            region_ref.worker_end(wt);
        });
        region.finish();
    }

    /// Splits `data` into fixed `chunk_len`-sized chunks (the last may
    /// be ragged) and runs `f(chunk_index, chunk)` on each. Chunks are
    /// disjoint `&mut` windows, so the result is byte-identical to the
    /// serial loop regardless of worker count or schedule.
    ///
    /// # Panics
    ///
    /// Panics if `chunk_len` is zero.
    pub fn chunks_mut<T: Send>(
        &self,
        data: &mut [T],
        chunk_len: usize,
        f: impl Fn(usize, &mut [T]) + Sync,
    ) {
        let len = data.len();
        let n_chunks = chunk_count(len, chunk_len);
        if self.is_serial() || n_chunks <= 1 {
            let region = PoolRegion::begin("par");
            let wt = region.worker_start();
            for (i, chunk) in data.chunks_mut(chunk_len).enumerate() {
                let t = region.task_start();
                f(i, chunk);
                region.task_end(t);
            }
            region.worker_end(wt);
            region.finish();
            return;
        }
        let base = SendPtr(data.as_mut_ptr());
        self.run(n_chunks, |i| {
            // Capture the `SendPtr` wrapper itself (not the raw-pointer
            // field, which edition-2021 closures would otherwise pick).
            let base = &base;
            let start = i * chunk_len;
            let end = (start + chunk_len).min(len);
            // SAFETY: chunk `i` covers exactly [start, end) with
            // `start = i * chunk_len`, so chunks for distinct indices
            // never overlap, each index is claimed exactly once by the
            // atomic counter in `run`, and `data` outlives the scoped
            // workers. Disjoint `&mut` reborrows of one live `&mut [T]`
            // are therefore sound.
            let chunk = unsafe { std::slice::from_raw_parts_mut(base.0.add(start), end - start) };
            f(i, chunk);
        });
    }

    /// Computes `f(i)` for `i in 0..n` and returns the results in index
    /// order.
    pub fn map_collect<R: Send>(&self, n: usize, f: impl Fn(usize) -> R + Sync) -> Vec<R> {
        let mut out: Vec<Option<R>> = (0..n).map(|_| None).collect();
        self.chunks_mut(&mut out, 1, |i, slot| slot[0] = Some(f(i)));
        out.into_iter()
            .map(|r| r.expect("every task index runs exactly once"))
            .collect()
    }

    /// Maps every chunk index to a partial result, then folds the
    /// partials **in ascending chunk order** on the calling thread —
    /// the deterministic-combine half of the substrate contract.
    /// Returns `None` when `n == 0`.
    pub fn reduce<R: Send>(
        &self,
        n: usize,
        map: impl Fn(usize) -> R + Sync,
        mut fold: impl FnMut(R, R) -> R,
    ) -> Option<R> {
        let mut partials = self.map_collect(n, map).into_iter();
        let first = partials.next()?;
        Some(partials.fold(first, &mut fold))
    }
}

fn drain(next: &AtomicUsize, n_tasks: usize, task: &(dyn Fn(usize) + Sync), region: &PoolRegion) {
    loop {
        let i = next.fetch_add(1, Ordering::Relaxed);
        if i >= n_tasks {
            return;
        }
        let t = region.task_start();
        task(i);
        region.task_end(t);
    }
}

/// Raw-pointer wrapper so disjoint chunk addresses can cross the
/// scoped-thread boundary.
#[derive(Clone, Copy)]
struct SendPtr<T>(*mut T);

// SAFETY: the pointer is only dereferenced through the disjoint-chunk
// protocol in `chunks_mut`, which hands each worker a non-overlapping
// window of a `&mut [T]` that outlives the scope.
unsafe impl<T: Send> Send for SendPtr<T> {}
unsafe impl<T: Send> Sync for SendPtr<T> {}

/// Elementwise convenience: fixed `chunk_len` windows of `data`, work
/// estimated as one operation per element.
pub fn par_chunks_mut<T: Send>(
    data: &mut [T],
    chunk_len: usize,
    f: impl Fn(usize, &mut [T]) + Sync,
) {
    plan(data.len() as u64).chunks_mut(data, chunk_len, f);
}

/// Task-level convenience: `n` independent tasks assumed individually
/// heavy enough to parallelize whenever more than one thread is
/// configured.
pub fn par_map_collect<R: Send>(n: usize, f: impl Fn(usize) -> R + Sync) -> Vec<R> {
    plan(u64::MAX).map_collect(n, f)
}

/// Reduction convenience over `n` chunks: partials fold in ascending
/// chunk order. Returns `None` when `n == 0`.
pub fn par_reduce<R: Send>(
    n: usize,
    work: u64,
    map: impl Fn(usize) -> R + Sync,
    fold: impl FnMut(R, R) -> R,
) -> Option<R> {
    plan(work).reduce(n, map, fold)
}

/// The fixed chunk length every elementwise f32 kernel in the
/// workspace uses. Reductions built on this chunking (`dot`, `sum`,
/// `norm_l2`) are deterministic at any thread count because the chunk
/// boundaries — and therefore the float-addition association — depend
/// only on the input length.
pub const F32_CHUNK: usize = 32 * 1024;

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn chunk_count_covers_ragged_tails() {
        assert_eq!(chunk_count(0, 4), 0);
        assert_eq!(chunk_count(1, 4), 1);
        assert_eq!(chunk_count(4, 4), 1);
        assert_eq!(chunk_count(5, 4), 2);
        assert_eq!(chunk_count(8, 4), 2);
    }

    #[test]
    #[should_panic(expected = "chunk_len must be positive")]
    fn zero_chunk_len_panics() {
        chunk_count(3, 0);
    }

    #[test]
    fn with_threads_overrides_and_restores() {
        let outer = current_threads();
        with_threads(7, || {
            assert_eq!(current_threads(), 7);
            with_threads(2, || assert_eq!(current_threads(), 2));
            assert_eq!(current_threads(), 7);
        });
        assert_eq!(current_threads(), outer);
    }

    #[test]
    fn override_restored_after_panic() {
        let outer = current_threads();
        let caught = std::panic::catch_unwind(|| with_threads(5, || panic!("boom")));
        assert!(caught.is_err());
        assert_eq!(current_threads(), outer);
    }

    #[test]
    fn small_work_stays_serial_without_override() {
        assert!(plan(PAR_WORK_THRESHOLD - 1).is_serial() || max_threads() == 1);
        // An override forces the parallel path even for tiny work.
        with_threads(4, || assert_eq!(plan(1).workers, 4));
    }

    #[test]
    fn chunks_mut_is_identical_across_thread_counts() {
        let make = || (0..10_001).map(|i| i as f32).collect::<Vec<f32>>();
        let run = |threads: usize| {
            with_threads(threads, || {
                let mut data = make();
                plan(u64::MAX).chunks_mut(&mut data, 97, |idx, chunk| {
                    for (off, v) in chunk.iter_mut().enumerate() {
                        *v = v.mul_add(1.5, (idx * 97 + off) as f32);
                    }
                });
                data
            })
        };
        let serial = run(1);
        for t in [2, 4, 8] {
            assert_eq!(serial, run(t), "thread count {t}");
        }
    }

    #[test]
    fn map_collect_preserves_index_order() {
        let got = with_threads(4, || plan(u64::MAX).map_collect(100, |i| i * i));
        assert_eq!(got, (0..100).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn reduce_folds_in_chunk_order() {
        // String concatenation is order-sensitive: any out-of-order
        // combine would scramble it.
        let got = with_threads(4, || {
            plan(u64::MAX).reduce(
                26,
                |i| ((b'a' + i as u8) as char).to_string(),
                |a, b| a + &b,
            )
        });
        assert_eq!(got.as_deref(), Some("abcdefghijklmnopqrstuvwxyz"));
        assert_eq!(plan(0).reduce(0, |_| 0u32, |a, b| a + b), None);
    }

    #[test]
    fn every_task_runs_exactly_once() {
        let hits = AtomicU64::new(0);
        with_threads(8, || {
            plan(u64::MAX).run(1000, |i| {
                hits.fetch_add(1 + i as u64, Ordering::Relaxed);
            });
        });
        assert_eq!(hits.load(Ordering::Relaxed), 1000 + 999 * 1000 / 2);
    }

    #[test]
    fn worker_panic_propagates() {
        let caught = std::panic::catch_unwind(|| {
            with_threads(4, || {
                plan(u64::MAX).run(16, |i| {
                    if i == 7 {
                        panic!("chunk 7 failed");
                    }
                });
            })
        });
        assert!(caught.is_err());
    }

    #[test]
    fn nested_regions_stay_serial_inside_workers() {
        with_threads(4, || {
            plan(u64::MAX).run(8, |_| {
                // Inside a worker the nested plan must not fan out again.
                assert_eq!(current_threads(), 1);
                assert!(plan(u64::MAX).is_serial());
            });
        });
    }

    #[test]
    fn pool_dispatches_record_into_an_installed_profiler() {
        use hadfl_prof::{ManualTime, Profiler};
        let prof = Profiler::new(0, std::sync::Arc::new(ManualTime::new()));
        {
            let _g = prof.install();
            let mut data = vec![0f32; 1000];
            with_threads(4, || {
                plan(u64::MAX).chunks_mut(&mut data, 100, |_, chunk| {
                    for v in chunk {
                        *v += 1.0;
                    }
                });
            });
            assert!(data.iter().all(|&v| v == 1.0));
        }
        let dump = prof.dump();
        assert_eq!(dump.pools.len(), 1);
        let p = &dump.pools[0];
        assert_eq!(p.region, "par");
        assert_eq!((p.dispatches, p.tasks, p.max_workers), (1, 10, 4));
    }

    #[test]
    fn empty_input_is_a_noop() {
        let mut empty: Vec<f32> = Vec::new();
        par_chunks_mut(&mut empty, 8, |_, _| panic!("no chunks expected"));
        assert!(par_map_collect(0, |i| i).is_empty());
    }
}
