//! End-to-end collector tests: the 1k-device simulated fleet shipped
//! over real TCP into a running [`CollectorServer`], and a scripted
//! [`ManualClock`] reproduction of every health rule.

use std::io::{Read as _, Write as _};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::Mutex;

use hadfl::clock::{Clock, ManualClock, WallClock};
use hadfl_net::collector::{Collector, CollectorOptions, CollectorServer};
use hadfl_net::ship::TcpShipper;
use hadfl_simnet::{simulate_fleet, DeadSpec, FleetConfig, StragglerSpec};
use hadfl_telemetry::health::HealthOptions;
use hadfl_telemetry::ship::{ShipOptions, ShipSink};
use hadfl_telemetry::sink::Sink;
use hadfl_telemetry::{Event, EventKind, FollowState, MetricsRegistry, SCHEMA_VERSION};

/// Minimal HTTP/1.1 GET against the collector's endpoint; returns the
/// full response (headers + body).
fn http_get(addr: std::net::SocketAddr, path: &str) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect http");
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .expect("timeout");
    write!(
        stream,
        "GET {path} HTTP/1.1\r\nHost: collector\r\nConnection: close\r\n\r\n"
    )
    .expect("send request");
    let mut response = String::new();
    let _ = stream.read_to_string(&mut response);
    response
}

#[test]
fn thousand_device_fleet_ships_through_a_live_collector() {
    let cfg = FleetConfig {
        devices: 1000,
        rounds: 5,
        num_selected: 32,
        param_bytes: 64 * 1024,
        straggler: Some(StragglerSpec {
            device: 3,
            from_round: 1,
            slow_factor: 10.0,
        }),
        dead: Some(DeadSpec {
            device: 7,
            at_round: 3,
        }),
        ..FleetConfig::default()
    };
    let mut events = Vec::new();
    let report = simulate_fleet(&cfg, &mut |e| events.push(e)).expect("fleet run");
    assert_eq!(report.events_emitted, events.len() as u64);

    let spool = std::env::temp_dir().join(format!(
        "hadfl-collector-fleet-{}.jsonl",
        std::process::id()
    ));
    let opts = CollectorOptions {
        spool: Some(spool.clone()),
        ..CollectorOptions::default()
    };
    let registry = MetricsRegistry::new();
    let collector = Collector::new(WallClock::shared(), registry, &opts).expect("collector setup");
    let server = CollectorServer::start(
        "127.0.0.1:0",
        "127.0.0.1:0",
        Arc::new(Mutex::new(collector)),
        Duration::from_millis(20),
        CollectorOptions::default().max_frame_bytes,
    )
    .expect("collector server");

    // Ship the whole fleet's stream through the production path: the
    // ShipSink queue + shipper thread + sealed TCP frames. Capacity is
    // raised above the event count so the parity check stays exact.
    let coordinator = cfg.devices as u32;
    let shipper = TcpShipper::new(
        &server.ingest_addr().to_string(),
        coordinator,
        hadfl_telemetry::LamportClock::new(),
    );
    let ledger = shipper.ledger();
    {
        let mut sink = ShipSink::new(
            coordinator,
            ShipOptions {
                capacity: events.len() + 1,
                ..ShipOptions::default()
            },
            Box::new(shipper),
        );
        for event in &events {
            sink.record(event);
        }
        sink.flush();
    } // drop joins the shipper thread after a final flush

    // Wait for the collector to apply every event.
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let applied = server.collector().lock().status().events_applied;
        if applied >= report.events_emitted {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "collector applied only {applied}/{} events",
            report.events_emitted
        );
        std::thread::sleep(Duration::from_millis(50));
    }

    let status = server.collector().lock().status();
    assert_eq!(status.events_applied, report.events_emitted);
    assert_eq!(status.garbage_lines, 0);
    assert_eq!(status.events_dropped, 0, "capacity was above event count");

    // Telemetry is ledgered apart from param traffic, and the claim
    // under test: observing the fleet costs < 5% of moving its
    // parameters. Both sides of the wire must agree on the ledger.
    assert_eq!(
        status.telemetry_bytes,
        ledger.payload_bytes(),
        "shipper and collector ledgers disagree"
    );
    assert!(
        status.telemetry_bytes < report.param_bytes_total / 20,
        "telemetry {} bytes >= 5% of param {} bytes",
        status.telemetry_bytes,
        report.param_bytes_total
    );

    // The injected faults each raise their alert, within 3 rounds.
    let alerts = status.report.alerts;
    let straggler = alerts
        .iter()
        .find(|a| a.rule == "straggler" && a.device == Some(3))
        .expect("straggler alert for device 3");
    assert!(
        straggler.round.unwrap_or(u32::MAX) <= 1 + 2,
        "straggler alert too late: {straggler:?}"
    );
    let dead = alerts
        .iter()
        .find(|a| a.rule == "dead-device" && a.device == Some(7))
        .expect("dead-device alert for device 7");
    assert!(
        dead.round.unwrap_or(u32::MAX) <= 3 + 2,
        "dead-device alert too late: {dead:?}"
    );
    assert!(
        !alerts.iter().any(|a| a.rule == "round-watchdog"),
        "no stalled rounds in a completed run: {alerts:?}"
    );

    // The HTTP surface serves the same picture.
    let health = http_get(server.http_addr(), "/health");
    assert!(health.contains("200 OK"), "{health}");
    assert!(health.contains("application/json"), "{health}");
    assert!(health.contains("\"straggler\""), "{health}");
    assert!(health.contains("\"dead-device\""), "{health}");
    let metrics = http_get(server.http_addr(), "/metrics");
    assert!(
        metrics.contains("Content-Type: text/plain; version=0.0.4"),
        "{metrics}"
    );
    assert!(metrics.contains("hadfl_fleet_nodes"), "{metrics}");
    assert!(
        metrics.contains("hadfl_fleet_alerts{rule=\"straggler\"}"),
        "{metrics}"
    );

    server.shutdown();

    // The spool is the merged `(lam, node, seq)` timeline, in exactly
    // the format `hadfl-trace --follow` tails.
    let spooled = std::fs::read_to_string(&spool).expect("read spool");
    let mut follow = FollowState::new();
    let mut last_lam = 0u64;
    for line in spooled.lines() {
        let event = Event::from_json(line).expect("spool line parses");
        assert!(event.lam >= last_lam, "spool out of causal order");
        last_lam = event.lam;
        follow.observe(&event);
    }
    assert_eq!(follow.events_seen(), report.events_emitted);
    let rendered = follow.render(16);
    assert!(rendered.contains("round"), "{rendered}");
    let _ = std::fs::remove_file(&spool);
}

/// Builds one scripted event; `lam` doubles as seq for brevity.
fn ev(node: u32, lam: u64, kind: EventKind) -> Event {
    Event {
        v: SCHEMA_VERSION,
        seq: lam,
        node,
        t_us: lam * 1_000,
        lam,
        kind,
    }
}

/// Scripts a collector on a [`ManualClock`] through every health rule
/// and returns the serialized alerts, in the order they were raised.
fn scripted_alerts() -> Vec<String> {
    let clock = ManualClock::new();
    let opts = CollectorOptions {
        health: HealthOptions {
            round_deadline: Duration::from_secs(10),
            budget_bytes: Some(1_000),
            ..HealthOptions::default()
        },
        ..CollectorOptions::default()
    };
    let registry = MetricsRegistry::new();
    let clock_dyn: Arc<dyn Clock> = Arc::new(clock.clone());
    let mut collector = Collector::new(clock_dyn, registry, &opts).expect("collector setup");

    // Round 1 planned; everyone healthy so far.
    collector.ingest_event(ev(
        1000,
        1,
        EventKind::RoundPlanned {
            round: 1,
            available: vec![0, 1, 2],
            versions: vec![100.0, 100.0, 100.0],
            probabilities: vec![1.0 / 3.0; 3],
            selected: vec![0, 1],
            unselected: vec![2],
            broadcaster: 0,
        },
    ));
    collector.tick();
    assert!(collector.alerts().is_empty(), "{:?}", collector.alerts());

    // 1. No ring progress for 11s > 10s deadline: round-watchdog.
    clock.advance(Duration::from_secs(11));
    collector.tick();

    // 2. Device 1 found dead twice: dead-device via repeated bypass.
    collector.ingest_event(ev(0, 2, EventKind::BypassDeclared { round: 1, dead: 1 }));
    collector.ingest_event(ev(0, 3, EventKind::BypassDeclared { round: 1, dead: 1 }));
    collector.tick();

    // 3. Round 1 dissolves without a merge; planning round 2 closes it
    //    as a dead ring.
    collector.ingest_event(ev(
        0,
        4,
        EventKind::RingExit {
            round: 1,
            dissolved: true,
        },
    ));
    collector.ingest_event(ev(
        1000,
        5,
        EventKind::RoundPlanned {
            round: 2,
            available: vec![0, 2],
            versions: vec![110.0, 110.0],
            probabilities: vec![0.5; 2],
            selected: vec![0, 2],
            unselected: vec![],
            broadcaster: 0,
        },
    ));
    collector.tick();

    // 4. Device 5's Eq. 7 forecasts keep overshooting: straggler.
    collector.ingest_event(ev(
        1000,
        6,
        EventKind::Prediction {
            round: 2,
            device: 5,
            predicted: 200.0,
            actual: 100.0,
        },
    ));
    collector.ingest_event(ev(
        1000,
        7,
        EventKind::Prediction {
            round: 3,
            device: 5,
            predicted: 210.0,
            actual: 105.0,
        },
    ));
    collector.tick();

    // 5. Param traffic crosses the configured budget: budget-burn.
    collector.ingest_event(ev(
        0,
        8,
        EventKind::FrameSent {
            src: 0,
            dst: 2,
            bytes: 2_000,
            kind: "param_accum".into(),
            lamport: 8,
        },
    ));
    collector.tick();

    collector
        .alerts()
        .iter()
        .map(|a| serde_json::to_string(a).expect("alert serializes"))
        .collect()
}

#[test]
fn manual_clock_script_reproduces_every_alert_deterministically() {
    let alerts = scripted_alerts();
    let rules: Vec<&str> = alerts
        .iter()
        .map(|a| {
            if a.contains("\"round-watchdog\"") {
                "round-watchdog"
            } else if a.contains("\"dead-device\"") {
                "dead-device"
            } else if a.contains("\"dead-ring\"") {
                "dead-ring"
            } else if a.contains("\"straggler\"") {
                "straggler"
            } else if a.contains("\"budget-burn\"") {
                "budget-burn"
            } else {
                "?"
            }
        })
        .collect();
    assert_eq!(
        rules,
        vec![
            "round-watchdog",
            "dead-device",
            "dead-ring",
            "straggler",
            "budget-burn"
        ],
        "{alerts:#?}"
    );
    // Virtual time makes the whole script reproducible bit-for-bit.
    assert_eq!(alerts, scripted_alerts());
}
