//! Loopback-TCP integration tests: the threaded executor's protocol
//! loops running over real sockets.

use std::collections::BTreeMap;
use std::thread;
use std::time::Duration;

use hadfl::clock::WallClock;
use hadfl::exec::{
    run_coordinator, run_device, run_threaded, ProtocolTiming, ThreadedOptions, ThreadedRound,
};
use hadfl::transport::{coordinator_id, ChannelTransport, Port};
use hadfl::wire::Message;
use hadfl::{HadflConfig, HadflError, Workload};
use hadfl_net::cluster::ClusterConfig;
use hadfl_net::tcp::{BoundNode, TcpOptions, TcpPort};
use hadfl_simnet::{DeviceId, Endpoint, NetStats};
use hadfl_telemetry::{EventKind, RingBufferSink, Telemetry};

fn tcp_opts() -> TcpOptions {
    TcpOptions {
        connect_timeout: Duration::from_millis(500),
        read_timeout: Duration::from_millis(25),
        write_timeout: Duration::from_millis(500),
        max_dial_attempts: 5,
        backoff_base: Duration::from_millis(10),
        backoff_cap: Duration::from_millis(100),
        heartbeat_interval: Some(Duration::from_millis(100)),
        max_frame_bytes: 8 << 20,
    }
}

/// Binds `n` loopback listeners on kernel-chosen ports and describes
/// them as a cluster (highest id coordinates).
fn bind_cluster(n: usize) -> (ClusterConfig, Vec<BoundNode>) {
    let nodes: Vec<BoundNode> = (0..n)
        .map(|id| BoundNode::bind(id, "127.0.0.1:0").unwrap())
        .collect();
    let addrs: Vec<String> = nodes
        .iter()
        .map(|b| b.local_addr().unwrap().to_string())
        .collect();
    (ClusterConfig::from_addrs(&addrs).unwrap(), nodes)
}

/// Consensus accuracy of the final models a coordinator collected.
fn consensus_accuracy(
    workload: &Workload,
    k: usize,
    final_models: &BTreeMap<usize, Vec<f32>>,
) -> f32 {
    let refs: Vec<&[f32]> = final_models.values().map(Vec::as_slice).collect();
    let consensus = hadfl::aggregate::average_params(&refs).unwrap();
    let mut built = workload.build(k).unwrap();
    built.evaluate_params(&consensus).unwrap().accuracy
}

/// Acceptance path: 4 devices + coordinator over loopback TCP complete
/// every configured round and land within noise of the in-process
/// threaded executor on the same seed.
///
/// Structural invariants (every round finishes, nobody is dropped,
/// everyone uploads) are asserted on every run. The accuracy bar is
/// timing-sensitive on contended hosts — wall-clock report windows
/// decide which training steps make each sync, so two runs with the
/// same step count can blend models at different maturities — and a
/// single starved run can land at the chance floor without any
/// protocol bug. So the accuracy check gets up to three attempts: a
/// real convergence regression fails all of them, while scheduler
/// jitter cannot plausibly lose three comparable runs in a row.
#[test]
fn tcp_cluster_converges_like_threaded_executor() {
    let workload = Workload::quick("mlp", 91);
    let config = HadflConfig::builder()
        .num_selected(2)
        .seed(91)
        .build()
        .unwrap();
    let powers = [4.0, 2.0, 1.0, 1.0];
    let opts = ThreadedOptions::quick(&powers);

    let baseline = run_threaded(&workload, &config, &opts).unwrap();
    let work = |rounds: &[ThreadedRound]| -> u64 {
        rounds
            .last()
            .map(|r| r.versions.iter().sum())
            .unwrap_or_default()
    };

    let k = powers.len();
    const ATTEMPTS: usize = 3;
    for attempt in 1..=ATTEMPTS {
        let (cluster, nodes) = bind_cluster(k + 1);
        let built = workload.build(k).unwrap();
        let mut nodes = nodes.into_iter();
        let mut device_ports: Vec<TcpPort> = Vec::with_capacity(k);
        for _ in 0..k {
            device_ports.push(
                nodes
                    .next()
                    .unwrap()
                    .into_port(&cluster, tcp_opts())
                    .unwrap(),
            );
        }
        let coordinator_port = nodes
            .next()
            .unwrap()
            .into_port(&cluster, tcp_opts())
            .unwrap();
        assert_eq!(coordinator_port.id(), coordinator_id(k));

        let run = thread::scope(|scope| {
            for (i, (port, rt)) in device_ports.drain(..).zip(built.runtimes).enumerate() {
                let sleep = Duration::from_secs_f64(opts.step_sleep.as_secs_f64() / powers[i]);
                let config = &config;
                let timing = opts.timing.clone();
                scope.spawn(move || run_device(port, rt, config, sleep, &timing).unwrap());
            }
            run_coordinator(
                coordinator_port,
                &config,
                opts.window,
                opts.rounds,
                &opts.timing,
            )
            .unwrap()
        });

        assert_eq!(run.rounds.len(), opts.rounds);
        assert!(
            run.dropped.is_empty(),
            "no deaths injected: {:?}",
            run.dropped
        );
        assert_eq!(
            run.final_models.len(),
            k,
            "all devices must upload final parameters"
        );
        let tcp_accuracy = consensus_accuracy(&workload, k, &run.final_models);
        // Accuracy assertions only hold when training actually
        // happened. On a starved host (1-CPU CI runners), ten threads
        // share one core and the wall-clock report window closes after
        // a handful of steps — that is scheduler behaviour, not a
        // protocol bug. The accuracy checks apply only when the TCP
        // run's step counts are within 2x of the baseline's AND the
        // baseline itself demonstrably learned; a starved run still
        // must satisfy every structural assertion above.
        let (tcp_work, base_work) = (work(&run.rounds), work(&baseline.rounds));
        let comparable = tcp_work * 2 >= base_work && base_work * 2 >= tcp_work;
        if !(comparable && baseline.final_accuracy > 0.25) {
            eprintln!(
                "skipping accuracy checks: starved host — {tcp_work} TCP steps vs \
                 {base_work} threaded steps, baseline accuracy {}",
                baseline.final_accuracy
            );
            assert!(tcp_accuracy.is_finite());
            return;
        }
        // The headline invariant is the test's name: TCP lands within
        // noise of the threaded executor. The absolute chance-floor
        // bar only applies when the baseline clears the floor with
        // margin — a starved baseline at 0.26 says nothing about where
        // a within-noise TCP run must land.
        let floor_applies = baseline.final_accuracy > 0.45;
        let converged = (tcp_accuracy - baseline.final_accuracy).abs() < 0.25
            && (!floor_applies || tcp_accuracy > 0.25);
        if converged {
            return;
        }
        assert!(
            attempt < ATTEMPTS,
            "TCP consensus missed the accuracy bar in {ATTEMPTS} comparable runs: \
             got {tcp_accuracy}, threaded baseline {}",
            baseline.final_accuracy
        );
        eprintln!(
            "attempt {attempt}: comparable work ({tcp_work} TCP steps vs {base_work} \
             threaded) but accuracy {tcp_accuracy} missed the bar (baseline {}); \
             retrying — single-run accuracy is jittery on a contended host",
            baseline.final_accuracy
        );
    }
}

/// §III-D over real sockets: a device that goes silent mid-run is
/// probed, bypassed by its ring, and dropped by the coordinator; the
/// remaining devices finish every round.
#[test]
fn tcp_cluster_survives_peer_death() {
    let k = 4;
    let zombie_id = 2usize;
    let workload = Workload::quick("mlp", 92);
    // Everyone is selected each round, so the zombie sits in the ring.
    let config = HadflConfig::builder()
        .num_selected(k)
        .seed(92)
        .build()
        .unwrap();
    let timing = ProtocolTiming::quick();
    let step_sleep = Duration::from_millis(4);

    let (cluster, nodes) = bind_cluster(k + 1);
    let built = workload.build(k).unwrap();
    let mut ports: Vec<Option<TcpPort>> = nodes
        .into_iter()
        .map(|node| Some(node.into_port(&cluster, tcp_opts()).unwrap()))
        .collect();
    let coordinator_port = ports[k].take().unwrap();

    let run = thread::scope(|scope| {
        for (i, rt) in built.runtimes.into_iter().enumerate() {
            let port = ports[i].take().unwrap();
            let config = &config;
            let timing = timing.clone();
            if i == zombie_id {
                // The zombie answers the first report request, then
                // vanishes: its port drops, its listener closes, and
                // every later frame to it is met with silence.
                scope.spawn(move || {
                    let mut port = port;
                    loop {
                        match port.recv_timeout(Duration::from_secs(20)).unwrap() {
                            Some(Message::ReportRequest { round }) => {
                                port.send(
                                    coordinator_id(k),
                                    &Message::VersionReport {
                                        device: zombie_id as u32,
                                        round,
                                        version: 1.0,
                                    },
                                )
                                .unwrap();
                                return;
                            }
                            Some(_) => {}
                            None => panic!("zombie never saw a report request"),
                        }
                    }
                });
            } else {
                scope.spawn(move || run_device(port, rt, config, step_sleep, &timing).unwrap());
            }
        }
        run_coordinator(
            coordinator_port,
            &config,
            Duration::from_millis(60),
            2,
            &timing,
        )
        .unwrap()
    });

    assert_eq!(run.rounds.len(), 2, "the cluster must finish both rounds");
    assert!(
        run.dropped.iter().any(|&(d, _)| d == zombie_id),
        "the silent device must be dropped: {:?}",
        run.dropped
    );
    assert!(!run.final_models.contains_key(&zombie_id));
    assert!(
        run.final_models.len() >= 2,
        "survivors must upload: {:?}",
        run.final_models.keys()
    );
    let accuracy = consensus_accuracy(&workload, k, &run.final_models);
    assert!(accuracy.is_finite());
}

/// For one scripted exchange, every TCP port's payload ledger matches
/// the channel fabric's — same per-endpoint bytes, same message counts,
/// transport chatter excluded — and each port's telemetry frame events
/// sum to exactly its `NetStats` ledger.
#[test]
fn tcp_ledger_matches_channel_fabric() {
    let k = 2;
    let script: [(usize, usize, Message); 4] = [
        (
            0,
            1,
            Message::ParamSync {
                round: 1,
                params: vec![0.5; 33],
            },
        ),
        (
            1,
            coordinator_id(k),
            Message::VersionReport {
                device: 1,
                round: 1,
                version: 9.0,
            },
        ),
        (
            coordinator_id(k),
            0,
            Message::RoundPlan {
                round: 2,
                ring: vec![0, 1],
                broadcaster: 1,
                unselected: vec![],
            },
        ),
        (
            1,
            0,
            Message::ParamAccum {
                round: 2,
                hops: 1,
                params: vec![1.0; 33],
            },
        ),
    ];

    // Channel fabric: one hub ledger covers the whole exchange.
    let mut hub = ChannelTransport::hub(k + 1);
    let mut channel_ports: Vec<_> = (0..=k).map(|id| hub.claim(id).unwrap()).collect();
    for (from, to, msg) in &script {
        channel_ports[*from].send(*to, msg).unwrap();
    }
    for port in &mut channel_ports {
        while port.try_recv().unwrap().is_some() {}
    }
    let hub_stats = hub.net_stats();

    // TCP: each port keeps its own ledger of the flows it took part in,
    // and an instrumented port mirrors every ledger entry as a frame
    // event.
    let (cluster, nodes) = bind_cluster(k + 1);
    let mut opts = tcp_opts();
    opts.heartbeat_interval = None; // chatter-free, deterministic counts
    let sinks: Vec<RingBufferSink> = (0..=k).map(|_| RingBufferSink::new(1024)).collect();
    let mut tcp_ports: Vec<TcpPort> = nodes
        .into_iter()
        .enumerate()
        .map(|(id, node)| {
            let tel = Telemetry::new(id as u32, vec![Box::new(sinks[id].clone())]);
            node.into_port_instrumented(&cluster, opts.clone(), WallClock::shared(), tel)
                .unwrap()
        })
        .collect();
    let handles: Vec<_> = tcp_ports.iter().map(TcpPort::stats_handle).collect();
    for (from, to, msg) in &script {
        tcp_ports[*from].send(*to, msg).unwrap();
    }
    // Frames from different senders ride different connections, so a
    // recipient's arrival order across senders is unspecified: check
    // each inbox as a multiset.
    for (id, port) in tcp_ports.iter_mut().enumerate() {
        let mut expected: Vec<&Message> = script
            .iter()
            .filter(|(_, to, _)| *to == id)
            .map(|(_, _, m)| m)
            .collect();
        let mut got = Vec::new();
        while got.len() < expected.len() {
            match port.recv_timeout(Duration::from_secs(5)).unwrap() {
                Some(msg) => got.push(msg),
                None => break,
            }
        }
        let key = |m: &Message| format!("{m:?}");
        expected.sort_by_key(|m| key(m));
        got.sort_by_key(|m| key(m));
        assert_eq!(
            got.iter().collect::<Vec<_>>(),
            expected,
            "inbox of participant {id}"
        );
    }

    let endpoint = |id: usize| -> Endpoint {
        if id == k {
            Endpoint::Server
        } else {
            Endpoint::Device(DeviceId(id))
        }
    };
    for (id, port) in tcp_ports.iter().enumerate() {
        let local: NetStats = port.stats();
        assert_eq!(
            local.sent_by(endpoint(id)),
            hub_stats.sent_by(endpoint(id)),
            "sent bytes of participant {id}"
        );
        assert_eq!(
            local.received_by(endpoint(id)),
            hub_stats.received_by(endpoint(id)),
            "received bytes of participant {id}"
        );
        // Framing, hellos, and heartbeats ride outside the ledger.
        assert!(port.raw_bytes() > local.sent_by(endpoint(id)));
    }
    let payload: u64 = script.iter().map(|(_, _, m)| m.encoded_len() as u64).sum();
    assert_eq!(hub_stats.total_bytes(), payload);

    // Satellite check: per-port telemetry frame events sum to exactly
    // the port's own NetStats ledger, and the Ledger event the stats
    // handle stamps repeats the same totals.
    for (id, (port, (sink, handle))) in tcp_ports.iter().zip(sinks.iter().zip(&handles)).enumerate()
    {
        handle.emit_ledger();
        let stats = port.stats();
        let mut sent = 0u64;
        let mut recv = 0u64;
        let mut frames = 0u64;
        let mut ledger = None;
        for event in sink.snapshot() {
            match event.kind {
                EventKind::FrameSent { src, bytes, .. } => {
                    assert_eq!(src, id as u32, "sent frames carry the emitting port");
                    sent += bytes;
                    frames += 1;
                }
                EventKind::FrameReceived { dst, bytes, .. } => {
                    assert_eq!(dst, id as u32, "received frames carry the emitting port");
                    recv += bytes;
                    frames += 1;
                }
                EventKind::Ledger {
                    sent_bytes,
                    recv_bytes,
                    frames,
                } => ledger = Some((sent_bytes, recv_bytes, frames)),
                other => panic!("unexpected transport event: {other:?}"),
            }
        }
        assert_eq!(
            sent,
            stats.sent_by(endpoint(id)),
            "telemetry sent bytes of participant {id}"
        );
        assert_eq!(
            recv,
            stats.received_by(endpoint(id)),
            "telemetry received bytes of participant {id}"
        );
        assert_eq!(frames, stats.messages(), "telemetry frames of {id}");
        assert_eq!(
            ledger,
            Some((sent, recv, frames)),
            "Ledger event must restate the frame-event sums for {id}"
        );
    }
}

/// The real deal: four `hadfl-node` OS processes plus a coordinator
/// process, wired by a TOML cluster file, train to a consensus — with
/// telemetry on, each process writing a JSONL event log whose frame
/// events reconcile exactly with its `NetStats` ledger.
#[test]
fn hadfl_node_processes_train_to_consensus() {
    let k = 4;
    // Reserve kernel-assigned ports, then free them for the processes.
    let (cluster, nodes) = bind_cluster(k + 1);
    drop(nodes);
    let dir = std::env::temp_dir().join(format!("hadfl-net-proc-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let tel_dir = dir.join("telemetry");
    let path = dir.join("cluster.toml");
    let mut toml = String::new();
    for node in &cluster.nodes {
        toml.push_str(&format!(
            "[[nodes]]\nid = {}\naddr = \"{}\"\nrole = \"{}\"\npower = {:.1}\n\n",
            node.id, node.addr, node.role, node.power
        ));
    }
    std::fs::write(&path, toml).unwrap();

    let bin = env!("CARGO_BIN_EXE_hadfl-node");
    let spawn = |id: usize| {
        std::process::Command::new(bin)
            .args(["--cluster", path.to_str().unwrap()])
            .args(["--id", &id.to_string()])
            .args(["--seed", "93", "--rounds", "2", "--window-ms", "120"])
            .args(["--telemetry-dir", tel_dir.to_str().unwrap()])
            .stdout(std::process::Stdio::piped())
            .stderr(std::process::Stdio::piped())
            .spawn()
            .unwrap()
    };
    let devices: Vec<_> = (0..k).map(spawn).collect();
    let coordinator = spawn(k);

    let out = coordinator.wait_with_output().unwrap();
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success(),
        "coordinator failed: {stdout}\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(
        stdout.contains("consensus accuracy"),
        "coordinator must report a consensus: {stdout}"
    );
    for device in devices {
        let out = device.wait_with_output().unwrap();
        assert!(
            out.status.success(),
            "device failed: {}",
            String::from_utf8_lossy(&out.stderr)
        );
    }

    // Satellite: every process's event log exists, parses cleanly, and
    // its frame events sum to exactly the Ledger event the node stamped
    // from its own NetStats at exit — the analyzer-level parity the
    // `hadfl-trace --check` CI gate enforces, here across 5 real OS
    // processes.
    let logs: Vec<hadfl_telemetry::analyze::ParsedLog> = (0..=k)
        .map(|id| {
            let path = tel_dir.join(format!("node-{id}.jsonl"));
            let text = std::fs::read_to_string(&path)
                .unwrap_or_else(|e| panic!("missing event log {}: {e}", path.display()));
            hadfl_telemetry::analyze::parse_jsonl(&text)
        })
        .collect();
    for (id, log) in logs.iter().enumerate() {
        assert_eq!(log.garbage_lines, 0, "node {id} wrote malformed JSONL");
        assert!(!log.events.is_empty(), "node {id} emitted nothing");
        let parity = hadfl_telemetry::analyze::ledger_parity(&log.events);
        assert_eq!(parity.len(), 1);
        assert!(
            parity[0].matches(),
            "node {id}: frame events must reconcile with its NetStats ledger: {:?}",
            parity[0]
        );
    }
    let errors = hadfl_telemetry::analyze::check(&logs);
    assert!(
        errors.is_empty(),
        "hadfl-trace --check would fail: {errors:?}"
    );

    std::fs::remove_dir_all(&dir).ok();
}

/// Oversized length prefixes must not allocate: the victim drops the
/// connection and stays healthy for well-formed peers.
#[test]
fn oversized_frames_are_rejected() {
    use std::io::Write;
    use std::net::TcpStream;

    let (cluster, nodes) = bind_cluster(3);
    let mut nodes = nodes.into_iter();
    let mut opts = tcp_opts();
    opts.max_frame_bytes = 1024;
    let victim_node = nodes.next().unwrap();
    let victim_addr = victim_node.local_addr().unwrap();
    let mut victim = victim_node.into_port(&cluster, opts.clone()).unwrap();
    let mut peer = nodes.next().unwrap().into_port(&cluster, opts).unwrap();

    // A raw attacker announces a 2 GiB frame.
    let mut rogue = TcpStream::connect(victim_addr).unwrap();
    rogue.write_all(&(2u32 << 30).to_le_bytes()).unwrap();
    rogue.write_all(&[0u8; 64]).unwrap();

    // The victim still serves honest traffic.
    peer.send(0, &Message::Handshake { from: 1 }).unwrap();
    assert_eq!(
        victim.recv_timeout(Duration::from_secs(5)).unwrap(),
        Some(Message::Handshake { from: 1 })
    );
    assert!(
        victim.try_recv().unwrap().is_none(),
        "the rogue frame must not surface"
    );
}

/// The transport reports `InvalidConfig`, not a hang, when a peer's
/// address never comes up (bounded redial budget).
#[test]
fn transport_errors_surface_as_hadfl_errors() {
    let (cluster, mut nodes) = bind_cluster(3);
    drop(nodes.remove(1));
    let mut opts = tcp_opts();
    opts.max_dial_attempts = 2;
    let mut port = nodes.remove(0).into_port(&cluster, opts).unwrap();
    match port.send(1, &Message::Shutdown) {
        Err(HadflError::InvalidConfig(msg)) => {
            assert!(msg.contains("unreachable"), "got: {msg}")
        }
        other => panic!("expected InvalidConfig, got {other:?}"),
    }
}
