//! Static cluster description: who participates, where they listen,
//! and which node coordinates.
//!
//! A cluster file is the deployment analogue of the simulator's
//! `powers` slice: one entry per participant. Two formats are
//! accepted, chosen by file extension — JSON (`.json`):
//!
//! ```json
//! {
//!   "nodes": [
//!     { "id": 0, "addr": "10.0.0.1:7101", "role": "device", "power": 3.0 },
//!     { "id": 1, "addr": "10.0.0.2:7101", "role": "device" },
//!     { "id": 2, "addr": "10.0.0.9:7100", "role": "coordinator" }
//!   ]
//! }
//! ```
//!
//! and a TOML subset (`.toml`, one `[[nodes]]` table per participant
//! with the same keys). Ids must be dense from 0 and the coordinator
//! must hold the highest id, matching
//! [`hadfl::transport::coordinator_id`].

use std::fmt;
use std::path::Path;

use hadfl::HadflError;
use serde_json::Value;

/// A participant's role in the cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Role {
    /// Trains locally and joins ring synchronizations.
    Device,
    /// Plans rounds and collects reports (participant id `k`).
    Coordinator,
}

impl fmt::Display for Role {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Role::Device => "device",
            Role::Coordinator => "coordinator",
        })
    }
}

/// One participant: id, listen address, role, and emulated compute
/// power (devices only; the paper's heterogeneity knob).
#[derive(Debug, Clone, PartialEq)]
pub struct NodeSpec {
    /// Dense participant id; the coordinator holds the highest.
    pub id: usize,
    /// `host:port` this node listens on.
    pub addr: String,
    /// The node's role.
    pub role: Role,
    /// Relative compute power (ignored for the coordinator).
    pub power: f64,
}

/// The full static peer registry.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterConfig {
    /// All participants, sorted by id.
    pub nodes: Vec<NodeSpec>,
}

fn bad(msg: impl Into<String>) -> HadflError {
    HadflError::InvalidConfig(msg.into())
}

impl ClusterConfig {
    /// Number of devices (`k`); the coordinator is participant `k`.
    pub fn devices(&self) -> usize {
        self.nodes.len() - 1
    }

    /// Total participants, devices plus coordinator.
    pub fn participants(&self) -> usize {
        self.nodes.len()
    }

    /// The spec of participant `id`.
    ///
    /// # Errors
    ///
    /// Returns [`HadflError::InvalidConfig`] for an unknown id.
    pub fn node(&self, id: usize) -> Result<&NodeSpec, HadflError> {
        self.nodes
            .get(id)
            .ok_or_else(|| bad(format!("no node {id} in cluster")))
    }

    /// Device power ratios, indexed by device id.
    pub fn powers(&self) -> Vec<f64> {
        self.nodes[..self.devices()]
            .iter()
            .map(|n| n.power)
            .collect()
    }

    /// Validates density, role placement, and addresses.
    ///
    /// # Errors
    ///
    /// Returns [`HadflError::InvalidConfig`] when ids are not dense from
    /// 0, the coordinator is missing, not unique, or not the highest
    /// id, fewer than 2 devices are listed, a power is not positive, or
    /// an address is empty.
    pub fn validate(&self) -> Result<(), HadflError> {
        if self.nodes.len() < 3 {
            return Err(bad("a cluster needs at least 2 devices and a coordinator"));
        }
        for (i, node) in self.nodes.iter().enumerate() {
            if node.id != i {
                return Err(bad(format!(
                    "node ids must be dense from 0; position {i} has id {}",
                    node.id
                )));
            }
            if node.addr.is_empty() {
                return Err(bad(format!("node {i} has an empty address")));
            }
            let expect = if i == self.nodes.len() - 1 {
                Role::Coordinator
            } else {
                Role::Device
            };
            if node.role != expect {
                return Err(bad(format!(
                    "node {i} must be a {expect} (the coordinator holds the highest id)"
                )));
            }
            if node.role == Role::Device && !(node.power > 0.0 && node.power.is_finite()) {
                return Err(bad(format!("device {i} has bad power {}", node.power)));
            }
        }
        Ok(())
    }

    /// Parses a cluster file's contents; `path` picks the format by
    /// extension (`.json` or `.toml`).
    ///
    /// # Errors
    ///
    /// Returns [`HadflError::InvalidConfig`] for syntax errors, missing
    /// or mistyped fields, and anything [`validate`](Self::validate)
    /// rejects.
    pub fn parse(path: &Path, contents: &str) -> Result<Self, HadflError> {
        let config = match path.extension().and_then(|e| e.to_str()) {
            Some("json") => Self::from_json(contents)?,
            Some("toml") => Self::from_toml(contents)?,
            other => {
                return Err(bad(format!(
                    "unsupported cluster file extension {other:?} (use .json or .toml)"
                )))
            }
        };
        config.validate()?;
        Ok(config)
    }

    /// Parses the JSON cluster format.
    ///
    /// # Errors
    ///
    /// Returns [`HadflError::InvalidConfig`] for syntax errors or
    /// missing/mistyped fields (validation is separate).
    pub fn from_json(contents: &str) -> Result<Self, HadflError> {
        let value: Value = serde_json::from_str(contents)
            .map_err(|e| bad(format!("cluster file is not valid JSON: {e}")))?;
        let nodes = value
            .get("nodes")
            .and_then(Value::as_array)
            .ok_or_else(|| bad("cluster file needs a top-level \"nodes\" array"))?;
        let nodes = nodes
            .iter()
            .map(node_from_value)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(ClusterConfig { nodes })
    }

    /// Parses the TOML-subset cluster format: `[[nodes]]` tables with
    /// `id`, `addr`, `role`, and optional `power` keys.
    ///
    /// # Errors
    ///
    /// Returns [`HadflError::InvalidConfig`] for lines outside the
    /// subset or missing/mistyped fields.
    pub fn from_toml(contents: &str) -> Result<Self, HadflError> {
        // A [[nodes]] table under construction: id, addr, role, power.
        type PartialNode = (Option<usize>, Option<String>, Option<Role>, f64);
        let mut nodes = Vec::new();
        let mut current: Option<PartialNode> = None;
        let mut flush = |cur: &mut Option<PartialNode>| -> Result<(), HadflError> {
            if let Some((id, addr, role, power)) = cur.take() {
                nodes.push(NodeSpec {
                    id: id.ok_or_else(|| bad("[[nodes]] entry missing id"))?,
                    addr: addr.ok_or_else(|| bad("[[nodes]] entry missing addr"))?,
                    role: role.ok_or_else(|| bad("[[nodes]] entry missing role"))?,
                    power,
                });
            }
            Ok(())
        };
        for raw in contents.lines() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            if line == "[[nodes]]" {
                flush(&mut current)?;
                current = Some((None, None, None, 1.0));
                continue;
            }
            let (key, value) = line
                .split_once('=')
                .ok_or_else(|| bad(format!("unsupported cluster TOML line: {line:?}")))?;
            let entry = current
                .as_mut()
                .ok_or_else(|| bad(format!("key {:?} outside a [[nodes]] table", key.trim())))?;
            let value = value.trim();
            match key.trim() {
                "id" => {
                    entry.0 = Some(
                        value
                            .parse::<usize>()
                            .map_err(|_| bad(format!("bad node id {value:?}")))?,
                    )
                }
                "addr" => entry.1 = Some(unquote(value)?),
                "role" => entry.2 = Some(role_of(&unquote(value)?)?),
                "power" => {
                    entry.3 = value
                        .parse::<f64>()
                        .map_err(|_| bad(format!("bad power {value:?}")))?
                }
                other => return Err(bad(format!("unknown cluster key {other:?}"))),
            }
        }
        flush(&mut current)?;
        Ok(ClusterConfig { nodes })
    }

    /// Serializes the cluster as pretty JSON (what
    /// [`parse`](Self::parse) accepts for a `.json` path).
    pub fn to_json(&self) -> String {
        let nodes: Vec<Value> = self
            .nodes
            .iter()
            .map(|n| {
                Value::Object(vec![
                    ("id".to_string(), Value::U64(n.id as u64)),
                    ("addr".to_string(), Value::Str(n.addr.clone())),
                    ("role".to_string(), Value::Str(n.role.to_string())),
                    ("power".to_string(), Value::F64(n.power)),
                ])
            })
            .collect();
        let root = Value::Object(vec![("nodes".to_string(), Value::Array(nodes))]);
        // lint:allow(unwrap-in-protocol): serializing the Value tree built just above cannot
        // fail — every float in it was validated finite by `Cluster::new`
        serde_json::to_string_pretty(&root).expect("cluster JSON has no non-finite floats")
    }

    /// Builds a loopback cluster for `k` devices from concrete
    /// addresses (the test harness binds port 0 first, then describes
    /// the cluster); `addrs[k]` is the coordinator.
    ///
    /// # Errors
    ///
    /// Returns [`HadflError::InvalidConfig`] when the result does not
    /// validate (fewer than 3 addresses).
    pub fn from_addrs(addrs: &[String]) -> Result<Self, HadflError> {
        let nodes = addrs
            .iter()
            .enumerate()
            .map(|(id, addr)| NodeSpec {
                id,
                addr: addr.clone(),
                role: if id == addrs.len() - 1 {
                    Role::Coordinator
                } else {
                    Role::Device
                },
                power: 1.0,
            })
            .collect();
        let config = ClusterConfig { nodes };
        config.validate()?;
        Ok(config)
    }
}

fn unquote(value: &str) -> Result<String, HadflError> {
    let value = value.trim();
    if value.len() >= 2 && value.starts_with('"') && value.ends_with('"') {
        Ok(value[1..value.len() - 1].to_string())
    } else {
        Err(bad(format!("expected a quoted string, got {value:?}")))
    }
}

fn role_of(s: &str) -> Result<Role, HadflError> {
    match s {
        "device" => Ok(Role::Device),
        "coordinator" => Ok(Role::Coordinator),
        other => Err(bad(format!(
            "unknown role {other:?} (device | coordinator)"
        ))),
    }
}

fn node_from_value(value: &Value) -> Result<NodeSpec, HadflError> {
    let id = value
        .get("id")
        .and_then(Value::as_u64)
        .ok_or_else(|| bad("node entry missing numeric \"id\""))? as usize;
    let addr = value
        .get("addr")
        .and_then(Value::as_str)
        .ok_or_else(|| bad("node entry missing string \"addr\""))?
        .to_string();
    let role = role_of(
        value
            .get("role")
            .and_then(Value::as_str)
            .ok_or_else(|| bad("node entry missing string \"role\""))?,
    )?;
    let power = match value.get("power") {
        None => 1.0,
        Some(p) => p
            .as_f64()
            .ok_or_else(|| bad("node \"power\" must be a number"))?,
    };
    Ok(NodeSpec {
        id,
        addr,
        role,
        power,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ClusterConfig {
        ClusterConfig::from_addrs(&[
            "127.0.0.1:7101".to_string(),
            "127.0.0.1:7102".to_string(),
            "127.0.0.1:7100".to_string(),
        ])
        .unwrap()
    }

    #[test]
    fn json_round_trips() {
        let cluster = sample();
        let back = ClusterConfig::parse(Path::new("c.json"), &cluster.to_json()).unwrap();
        assert_eq!(back, cluster);
        assert_eq!(back.devices(), 2);
        assert_eq!(back.powers(), vec![1.0, 1.0]);
    }

    #[test]
    fn toml_subset_parses() {
        let toml = r#"
# loopback cluster
[[nodes]]
id = 0
addr = "127.0.0.1:7101"
role = "device"
power = 3.0

[[nodes]]
id = 1
addr = "127.0.0.1:7102"
role = "device"

[[nodes]]
id = 2
addr = "127.0.0.1:7100"
role = "coordinator"
"#;
        let cluster = ClusterConfig::parse(Path::new("c.toml"), toml).unwrap();
        assert_eq!(cluster.devices(), 2);
        assert_eq!(cluster.powers(), vec![3.0, 1.0]);
        assert_eq!(cluster.node(2).unwrap().role, Role::Coordinator);
    }

    #[test]
    fn validation_rejects_misplaced_coordinator() {
        let mut cluster = sample();
        cluster.nodes.swap(0, 2);
        for (i, n) in cluster.nodes.iter_mut().enumerate() {
            n.id = i;
        }
        assert!(cluster.validate().is_err());
    }

    #[test]
    fn validation_rejects_sparse_ids() {
        let mut cluster = sample();
        cluster.nodes[1].id = 5;
        assert!(cluster.validate().is_err());
    }

    #[test]
    fn parse_rejects_unknown_extension_and_garbage() {
        assert!(ClusterConfig::parse(Path::new("c.yaml"), "{}").is_err());
        assert!(ClusterConfig::parse(Path::new("c.json"), "not json").is_err());
        assert!(ClusterConfig::parse(Path::new("c.toml"), "id = 0").is_err());
    }
}
