//! TCP transport for the telemetry shipping queue.
//!
//! [`TcpShipper`] is the [`BatchShipper`] the `ShipSink`'s background
//! thread drains into: each batch becomes one
//! [`Message::TelemetryBatch`] sealed with the node's own Lamport
//! clock ([`wire::seal`]), so collector-side merges put telemetry
//! frames on the same causal scale as every protocol frame. Framing is
//! the transport's usual 4-byte LE length prefix.
//!
//! Telemetry bytes are ledgered by the shipper's own counter
//! ([`TcpShipper::wire_bytes`]), never by `NetStats` and never as
//! `FrameSent` events: the paper's `2·K·M` accounting must see only
//! protocol traffic, and a telemetry `FrameSent` event describing a
//! telemetry frame would feed the queue it reports on.

#![warn(clippy::unwrap_used, clippy::expect_used)]

use std::io::Write;
use std::net::TcpStream;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use hadfl::wire::{self, CausalStamp, Message};
use hadfl_telemetry::ship::{BatchShipper, ShipBatch};
use hadfl_telemetry::LamportClock;

/// Shared read handle onto a shipper's byte ledger.
#[derive(Debug, Clone, Default)]
pub struct ShipLedger {
    payload_bytes: Arc<AtomicU64>,
    frames: Arc<AtomicU64>,
}

impl ShipLedger {
    /// Telemetry payload bytes put on the wire (message encoding,
    /// excluding the causal stamp and length prefix — the same
    /// accounting `NetStats` uses for param frames, so the two ledgers
    /// are directly comparable).
    pub fn payload_bytes(&self) -> u64 {
        self.payload_bytes.load(Ordering::SeqCst)
    }

    /// Telemetry frames shipped.
    pub fn frames(&self) -> u64 {
        self.frames.load(Ordering::SeqCst)
    }
}

/// Ships telemetry batches to a collector over one lazy TCP
/// connection, redialing (bounded) when the collector restarts.
pub struct TcpShipper {
    addr: String,
    node: u32,
    lamport: LamportClock,
    stream: Option<TcpStream>,
    connect_timeout: Duration,
    write_timeout: Duration,
    ledger: ShipLedger,
}

impl TcpShipper {
    /// A shipper for participant `node` targeting `addr`. `lamport`
    /// must be the node's own telemetry clock
    /// (`Telemetry::lamport_clock`) so batch stamps interleave
    /// correctly with protocol frames.
    pub fn new(addr: &str, node: u32, lamport: LamportClock) -> Self {
        TcpShipper {
            addr: addr.to_string(),
            node,
            lamport,
            stream: None,
            connect_timeout: Duration::from_secs(2),
            write_timeout: Duration::from_secs(2),
            ledger: ShipLedger::default(),
        }
    }

    /// The byte ledger (shareable before the sink takes ownership).
    pub fn ledger(&self) -> ShipLedger {
        self.ledger.clone()
    }

    fn connect(&mut self) -> Result<(), String> {
        if self.stream.is_some() {
            return Ok(());
        }
        let addrs: Vec<_> = std::net::ToSocketAddrs::to_socket_addrs(self.addr.as_str())
            .map_err(|e| format!("resolve {}: {e}", self.addr))?
            .collect();
        let first = addrs
            .first()
            .ok_or_else(|| format!("resolve {}: no addresses", self.addr))?;
        let stream = TcpStream::connect_timeout(first, self.connect_timeout)
            .map_err(|e| format!("connect {}: {e}", self.addr))?;
        let _ = stream.set_nodelay(true);
        let _ = stream.set_write_timeout(Some(self.write_timeout));
        self.stream = Some(stream);
        Ok(())
    }

    fn write_once(&mut self, frame: &[u8]) -> Result<(), String> {
        self.connect()?;
        let Some(stream) = self.stream.as_mut() else {
            return Err("no connection".into());
        };
        let write = stream
            .write_all(&(frame.len() as u32).to_le_bytes())
            .and_then(|()| stream.write_all(frame));
        if let Err(e) = write {
            self.stream = None;
            return Err(format!("write {}: {e}", self.addr));
        }
        Ok(())
    }
}

impl BatchShipper for TcpShipper {
    fn ship(&mut self, batch: &ShipBatch) -> Result<(), String> {
        let msg = Message::TelemetryBatch {
            node: batch.node,
            dropped: batch.dropped,
            payload: batch.to_jsonl(),
        };
        let frame = wire::seal(
            CausalStamp {
                origin: self.node,
                lamport: self.lamport.tick(),
            },
            &msg,
        );
        // One retry across a fresh connection: the collector may have
        // restarted between batches.
        let result = self.write_once(&frame).or_else(|_| self.write_once(&frame));
        if result.is_ok() {
            self.ledger
                .payload_bytes
                .fetch_add((frame.len() - wire::STAMP_LEN) as u64, Ordering::SeqCst);
            self.ledger.frames.fetch_add(1, Ordering::SeqCst);
        }
        result
    }

    fn flush(&mut self) {
        if let Some(stream) = self.stream.as_mut() {
            let _ = stream.flush();
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use std::io::Read;
    use std::net::TcpListener;

    use hadfl_telemetry::{Event, EventKind, SCHEMA_VERSION};

    #[test]
    fn ships_sealed_telemetry_batches_over_tcp() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            let mut len = [0u8; 4];
            stream.read_exact(&mut len).unwrap();
            let mut frame = vec![0u8; u32::from_le_bytes(len) as usize];
            stream.read_exact(&mut frame).unwrap();
            frame
        });

        let clock = LamportClock::new();
        clock.tick(); // simulate earlier protocol traffic
        let mut shipper = TcpShipper::new(&addr.to_string(), 3, clock.clone());
        let ledger = shipper.ledger();
        let batch = ShipBatch {
            node: 3,
            dropped: 5,
            events: vec![Event {
                v: SCHEMA_VERSION,
                seq: 0,
                node: 3,
                t_us: 42,
                lam: 1,
                kind: EventKind::Ledger {
                    sent_bytes: 10,
                    recv_bytes: 20,
                    frames: 2,
                },
            }],
        };
        shipper.ship(&batch).unwrap();

        let frame = server.join().unwrap();
        let (stamp, msg) = wire::open(&frame).unwrap();
        assert_eq!(stamp.origin, 3);
        assert_eq!(stamp.lamport, 2, "stamp is the clock's next tick");
        let Message::TelemetryBatch {
            node,
            dropped,
            payload,
        } = msg
        else {
            panic!("wrong message kind");
        };
        assert_eq!(node, 3);
        assert_eq!(dropped, 5);
        let (events, garbage) = ShipBatch::parse_jsonl(&payload);
        assert_eq!(garbage, 0);
        assert_eq!(events, batch.events);
        assert_eq!(
            ledger.payload_bytes(),
            (frame.len() - wire::STAMP_LEN) as u64
        );
        assert_eq!(ledger.frames(), 1);
    }

    #[test]
    fn unreachable_collector_is_an_error_not_a_panic() {
        // A port that nothing listens on: both attempts fail cleanly.
        let mut shipper = TcpShipper::new("127.0.0.1:1", 0, LamportClock::new());
        let batch = ShipBatch {
            node: 0,
            dropped: 0,
            events: vec![],
        };
        assert!(shipper.ship(&batch).is_err());
        assert_eq!(shipper.ledger().frames(), 0);
    }
}
