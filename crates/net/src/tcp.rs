//! TCP implementation of [`hadfl::transport::Port`].
//!
//! Frames are the untouched [`Message`] wire encoding behind a 4-byte
//! little-endian length prefix. Each pair of participants uses one
//! lazily-dialed connection per direction: the sender dials on first
//! send (with bounded exponential backoff, so nodes can start in any
//! order), identifies itself with [`Message::Hello`], and keeps the
//! socket for the rest of the run. The accepting side spawns one reader
//! per inbound connection.
//!
//! Liveness is tracked two ways: a heartbeat ticker stamps every open
//! outbound connection at a configurable interval, and every inbound
//! frame refreshes the sender's `last_seen` entry. The protocol's
//! §III-D handshake remains the authority on death — the transport's
//! [`TcpPort::is_live`] view only feeds it earlier suspicion (and the
//! node binary's status output).
//!
//! Byte accounting matches [`hadfl::transport::ChannelTransport`]:
//! [`Port::stats`] charges exactly the encoded payload of protocol
//! messages, while [`TcpPort::raw_bytes`] additionally counts length
//! prefixes, hellos, and heartbeats — the transport's own overhead.

// Transport hot path: a panic here kills a reader or heartbeat thread
// silently and wedges the node. Any remaining unwrap must carry an
// `#[allow]` with its invariant spelled out.
#![warn(clippy::unwrap_used, clippy::expect_used)]

use std::collections::BTreeMap;
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender, TryRecvError};
use hadfl::clock::{Clock, WallClock};
use hadfl::transport::{endpoint_of, Port};
use hadfl::wire::{self, CausalStamp, Message};
use hadfl::HadflError;
use hadfl_simnet::NetStats;
use hadfl_telemetry::{EventKind, LamportClock, Telemetry};
use parking_lot::Mutex;

use crate::cluster::ClusterConfig;

/// Socket-level knobs of a [`TcpPort`].
#[derive(Debug, Clone)]
pub struct TcpOptions {
    /// Per-attempt dial timeout.
    pub connect_timeout: Duration,
    /// Socket read timeout; also the granularity at which reader
    /// threads notice shutdown.
    pub read_timeout: Duration,
    /// Socket write timeout, set on every dialed connection. A peer
    /// whose TCP connection is alive but which stopped reading would
    /// otherwise block `write_all` forever once the socket buffer
    /// fills; with the timeout the send fails and the §III-D machinery
    /// takes over.
    pub write_timeout: Duration,
    /// Dial attempts per send before the peer is declared unreachable.
    pub max_dial_attempts: u32,
    /// First reconnect backoff; doubles per attempt.
    pub backoff_base: Duration,
    /// Backoff ceiling.
    pub backoff_cap: Duration,
    /// Heartbeat period over idle outbound connections; `None` disables
    /// the ticker.
    pub heartbeat_interval: Option<Duration>,
    /// Frames longer than this are rejected before allocation — a
    /// corrupt or hostile length prefix must not OOM the node.
    pub max_frame_bytes: u32,
}

impl Default for TcpOptions {
    fn default() -> Self {
        TcpOptions {
            connect_timeout: Duration::from_secs(1),
            read_timeout: Duration::from_millis(100),
            write_timeout: Duration::from_secs(5),
            max_dial_attempts: 6,
            backoff_base: Duration::from_millis(25),
            backoff_cap: Duration::from_secs(2),
            heartbeat_interval: Some(Duration::from_millis(500)),
            max_frame_bytes: 256 << 20,
        }
    }
}

/// State shared between the port and its reader/heartbeat threads.
struct Shared {
    me: usize,
    devices: usize,
    inbound_tx: Sender<Message>,
    stats: Mutex<NetStats>,
    raw_bytes: AtomicU64,
    /// Clock readings (durations since the port's clock epoch) of the
    /// last traffic per peer. Timestamps go through the [`Clock`] seam
    /// so tests and the model checker can run on virtual time.
    last_seen: Mutex<BTreeMap<usize, Duration>>,
    shutdown: AtomicBool,
    clock: Arc<dyn Clock>,
    opts: TcpOptions,
    /// Emits one `FrameSent`/`FrameReceived` per `stats` ledger entry;
    /// disabled by default, enabled via the `*_instrumented`
    /// constructors.
    tel: Telemetry,
    /// The node's Lamport clock: ticked on every outbound frame
    /// (payloads, hellos, heartbeats) and max-merged on every inbound
    /// stamp. Shared with `tel` when instrumented so frame stamps and
    /// event `lam` fields share one scale.
    lamport: LamportClock,
}

impl Shared {
    /// Seals `msg` for the wire under a fresh tick of this node's
    /// Lamport clock, returning the frame and its stamp.
    fn seal(&self, msg: &Message) -> (bytes::Bytes, CausalStamp) {
        let stamp = CausalStamp {
            origin: self.me as u32,
            lamport: self.lamport.tick(),
        };
        (wire::seal(stamp, msg), stamp)
    }
}

impl Shared {
    fn note_seen(&self, peer: usize) {
        let now = self.clock.now();
        self.last_seen.lock().insert(peer, now);
    }
}

/// A participant's listener, bound ahead of port construction.
///
/// Binding and port construction are split so a test harness can bind
/// every node on port 0, read back the kernel-assigned addresses, and
/// only then write the cluster config the ports are built from.
pub struct BoundNode {
    id: usize,
    listener: TcpListener,
}

impl BoundNode {
    /// Binds participant `id`'s listener on `addr` (use port 0 to let
    /// the kernel choose).
    ///
    /// # Errors
    ///
    /// Returns [`HadflError::InvalidConfig`] when the bind fails.
    pub fn bind(id: usize, addr: &str) -> Result<Self, HadflError> {
        let listener = TcpListener::bind(addr)
            .map_err(|e| HadflError::InvalidConfig(format!("node {id}: bind {addr}: {e}")))?;
        Ok(BoundNode { id, listener })
    }

    /// The bound socket address.
    ///
    /// # Errors
    ///
    /// Returns [`HadflError::InvalidConfig`] when the socket is gone.
    pub fn local_addr(&self) -> Result<SocketAddr, HadflError> {
        self.listener
            .local_addr()
            .map_err(|e| HadflError::InvalidConfig(format!("local_addr: {e}")))
    }

    /// Turns the bound listener into a live [`TcpPort`] for `cluster`.
    ///
    /// # Errors
    ///
    /// Returns [`HadflError::InvalidConfig`] when the cluster does not
    /// validate or the listener cannot be configured.
    pub fn into_port(
        self,
        cluster: &ClusterConfig,
        opts: TcpOptions,
    ) -> Result<TcpPort, HadflError> {
        self.into_port_with_clock(cluster, opts, WallClock::shared())
    }

    /// [`Self::into_port`] with an injected [`Clock`] — deterministic
    /// tests drive liveness horizons and dial backoff on virtual time.
    ///
    /// # Errors
    ///
    /// As [`Self::into_port`].
    pub fn into_port_with_clock(
        self,
        cluster: &ClusterConfig,
        opts: TcpOptions,
        clock: Arc<dyn Clock>,
    ) -> Result<TcpPort, HadflError> {
        self.into_port_instrumented(cluster, opts, clock, Telemetry::disabled())
    }

    /// [`Self::into_port_with_clock`] with a [`Telemetry`] handle: the
    /// port emits one `FrameSent` per outbound payload frame and one
    /// `FrameReceived` per inbound payload frame, mirroring its
    /// [`Port::stats`] ledger entry for entry.
    ///
    /// # Errors
    ///
    /// As [`Self::into_port`].
    pub fn into_port_instrumented(
        self,
        cluster: &ClusterConfig,
        opts: TcpOptions,
        clock: Arc<dyn Clock>,
        tel: Telemetry,
    ) -> Result<TcpPort, HadflError> {
        cluster.validate()?;
        cluster.node(self.id)?;
        let (inbound_tx, inbound_rx) = unbounded();
        let lamport = tel.lamport_clock();
        let shared = Arc::new(Shared {
            me: self.id,
            devices: cluster.devices(),
            inbound_tx,
            stats: Mutex::new(NetStats::new()),
            raw_bytes: AtomicU64::new(0),
            last_seen: Mutex::new(BTreeMap::new()),
            shutdown: AtomicBool::new(false),
            clock,
            opts: opts.clone(),
            tel,
            lamport,
        });
        self.listener
            .set_nonblocking(true)
            .map_err(|e| HadflError::InvalidConfig(format!("listener nonblocking: {e}")))?;
        let accept_shared = Arc::clone(&shared);
        let listener = self.listener;
        thread::spawn(move || accept_loop(listener, accept_shared));
        let conns = Arc::new(Mutex::new(BTreeMap::new()));
        if let Some(interval) = opts.heartbeat_interval {
            let hb_shared = Arc::clone(&shared);
            let hb_conns = Arc::clone(&conns);
            thread::spawn(move || heartbeat_loop(hb_shared, hb_conns, interval));
        }
        Ok(TcpPort {
            cluster: cluster.clone(),
            shared,
            conns,
            inbound_rx,
        })
    }
}

/// TCP-backed [`Port`]; see the module docs.
pub struct TcpPort {
    cluster: ClusterConfig,
    shared: Arc<Shared>,
    conns: Arc<Mutex<BTreeMap<usize, TcpStream>>>,
    inbound_rx: Receiver<Message>,
}

impl TcpPort {
    /// Binds participant `id`'s configured address and builds its port
    /// in one step (the deployment path; tests use [`BoundNode`]).
    ///
    /// # Errors
    ///
    /// Returns [`HadflError::InvalidConfig`] when the cluster does not
    /// validate or the bind fails.
    pub fn connect(
        cluster: &ClusterConfig,
        id: usize,
        opts: TcpOptions,
    ) -> Result<Self, HadflError> {
        cluster.validate()?;
        BoundNode::bind(id, &cluster.node(id)?.addr)?.into_port(cluster, opts)
    }

    /// [`Self::connect`] with a [`Telemetry`] handle (see
    /// [`BoundNode::into_port_instrumented`]).
    ///
    /// # Errors
    ///
    /// As [`Self::connect`].
    pub fn connect_instrumented(
        cluster: &ClusterConfig,
        id: usize,
        opts: TcpOptions,
        tel: Telemetry,
    ) -> Result<Self, HadflError> {
        cluster.validate()?;
        BoundNode::bind(id, &cluster.node(id)?.addr)?.into_port_instrumented(
            cluster,
            opts,
            WallClock::shared(),
            tel,
        )
    }

    /// Whether `peer` produced any traffic (frames or heartbeats)
    /// within `horizon`. `false` also for peers never heard from.
    pub fn is_live(&self, peer: usize, horizon: Duration) -> bool {
        let now = self.shared.clock.now();
        self.shared
            .last_seen
            .lock()
            .get(&peer)
            .is_some_and(|&seen| now.saturating_sub(seen) <= horizon)
    }

    /// Every byte this port put on or took off the wire, including
    /// length prefixes, hellos, and heartbeats — the gap to
    /// [`Port::stats`] is the transport's own overhead.
    pub fn raw_bytes(&self) -> u64 {
        self.shared.raw_bytes.load(Ordering::Relaxed)
    }

    /// A handle onto this port's counters that stays readable after the
    /// port itself is moved into a protocol loop.
    pub fn stats_handle(&self) -> StatsHandle {
        StatsHandle(Arc::clone(&self.shared))
    }

    fn dial(&self, to: usize) -> Result<TcpStream, HadflError> {
        let addr_str = &self.cluster.node(to)?.addr;
        let opts = &self.shared.opts;
        let mut backoff = opts.backoff_base;
        let mut last_err = String::new();
        for attempt in 0..opts.max_dial_attempts {
            if attempt > 0 {
                self.shared.clock.sleep(backoff);
                backoff = (backoff * 2).min(opts.backoff_cap);
            }
            let addrs: Vec<SocketAddr> = match addr_str.to_socket_addrs() {
                Ok(addrs) => addrs.collect(),
                Err(e) => {
                    last_err = format!("resolve {addr_str}: {e}");
                    continue;
                }
            };
            let Some(addr) = addrs.first() else {
                last_err = format!("resolve {addr_str}: no addresses");
                continue;
            };
            match TcpStream::connect_timeout(addr, opts.connect_timeout) {
                Ok(mut stream) => {
                    stream
                        .set_nodelay(true)
                        .map_err(|e| HadflError::InvalidConfig(format!("nodelay: {e}")))?;
                    stream
                        .set_write_timeout(Some(opts.write_timeout))
                        .map_err(|e| HadflError::InvalidConfig(format!("write timeout: {e}")))?;
                    let (hello, _) = self.shared.seal(&Message::Hello {
                        from: self.shared.me as u32,
                    });
                    if let Err(e) = write_frame(&mut stream, &hello) {
                        last_err = format!("hello to {to}: {e}");
                        continue;
                    }
                    self.shared
                        .raw_bytes
                        .fetch_add(4 + hello.len() as u64, Ordering::Relaxed);
                    return Ok(stream);
                }
                Err(e) => last_err = format!("dial {addr}: {e}"),
            }
        }
        Err(HadflError::InvalidConfig(format!(
            "peer {to} unreachable after {} attempts: {last_err}",
            opts.max_dial_attempts
        )))
    }

    /// Post-write bookkeeping for a delivered frame: the raw-byte and
    /// payload ledgers, the `FrameSent` telemetry event, and returning
    /// the live stream to the connection cache.
    fn record_send(
        &self,
        to: usize,
        stream: TcpStream,
        frame: &[u8],
        payload: u64,
        msg: &Message,
        stamp: &CausalStamp,
    ) {
        self.shared
            .raw_bytes
            .fetch_add(4 + frame.len() as u64, Ordering::Relaxed);
        self.shared.stats.lock().record(
            endpoint_of(self.shared.me, self.shared.devices),
            endpoint_of(to, self.shared.devices),
            payload,
        );
        if self.shared.tel.enabled() {
            self.shared.tel.emit(
                self.shared.clock.now(),
                EventKind::FrameSent {
                    src: self.shared.me as u32,
                    dst: to as u32,
                    bytes: payload,
                    kind: msg.kind().to_string(),
                    lamport: stamp.lamport,
                },
            );
        }
        self.conns.lock().insert(to, stream);
    }
}

/// Read-only view of a [`TcpPort`]'s counters; see
/// [`TcpPort::stats_handle`].
pub struct StatsHandle(Arc<Shared>);

impl StatsHandle {
    /// Snapshot of the protocol-payload ledger (same accounting as
    /// [`Port::stats`]).
    pub fn stats(&self) -> NetStats {
        self.0.stats.lock().clone()
    }

    /// Raw wire bytes including framing, hellos, and heartbeats.
    pub fn raw_bytes(&self) -> u64 {
        self.0.raw_bytes.load(Ordering::Relaxed)
    }

    /// Emits the node's final `Ledger` event — the `NetStats` ground
    /// truth that the per-frame events must sum to (`hadfl-trace
    /// --check` verifies the parity). No-op on an uninstrumented port.
    pub fn emit_ledger(&self) {
        if !self.0.tel.enabled() {
            return;
        }
        let stats = self.0.stats.lock().clone();
        let me = endpoint_of(self.0.me, self.0.devices);
        self.0.tel.emit(
            self.0.clock.now(),
            EventKind::Ledger {
                sent_bytes: stats.sent_by(me),
                recv_bytes: stats.received_by(me),
                frames: stats.messages(),
            },
        );
    }
}

impl Port for TcpPort {
    fn id(&self) -> usize {
        self.shared.me
    }

    fn participants(&self) -> usize {
        self.cluster.participants()
    }

    fn send(&mut self, to: usize, msg: &Message) -> Result<(), HadflError> {
        let (frame, stamp) = self.shared.seal(msg);
        // The ledger charges the payload only; the stamp header is
        // transport overhead like the length prefix.
        let payload = (frame.len() - wire::STAMP_LEN) as u64;
        // The stream is taken *out* of the map for the duration of the
        // write, so the `conns` lock is never held across `dial` (which
        // sleeps through backoff) or `write_all` (which can block on a
        // stalled peer until the write timeout) — heartbeats and the
        // port's other sends stay unblocked. The take must be its own
        // statement: an `if let` scrutinee's guard lives through the
        // body (edition 2021), which would deadlock `record_send`'s
        // re-lock of `conns`.
        let cached = self.conns.lock().remove(&to);
        if let Some(mut stream) = cached {
            // A cached connection may have died since the last send;
            // a failed write drops it and falls through to a fresh
            // dial (which has its own backoff budget).
            if write_frame(&mut stream, &frame).is_ok() {
                self.record_send(to, stream, &frame, payload, msg, &stamp);
                return Ok(());
            }
        }
        let mut stream = self.dial(to)?;
        write_frame(&mut stream, &frame)
            .map_err(|e| HadflError::InvalidConfig(format!("send to {to}: {e}")))?;
        self.record_send(to, stream, &frame, payload, msg, &stamp);
        Ok(())
    }

    fn try_recv(&mut self) -> Result<Option<Message>, HadflError> {
        match self.inbound_rx.try_recv() {
            Ok(msg) => Ok(Some(msg)),
            Err(TryRecvError::Empty) => Ok(None),
            Err(TryRecvError::Disconnected) => {
                Err(HadflError::InvalidConfig("transport torn down".into()))
            }
        }
    }

    fn recv_timeout(&mut self, timeout: Duration) -> Result<Option<Message>, HadflError> {
        match self.inbound_rx.recv_timeout(timeout) {
            Ok(msg) => Ok(Some(msg)),
            Err(RecvTimeoutError::Timeout) => Ok(None),
            Err(RecvTimeoutError::Disconnected) => {
                Err(HadflError::InvalidConfig("transport torn down".into()))
            }
        }
    }

    fn stats(&self) -> NetStats {
        self.shared.stats.lock().clone()
    }
}

impl Drop for TcpPort {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
    }
}

fn write_frame(stream: &mut TcpStream, frame: &[u8]) -> std::io::Result<()> {
    stream.write_all(&(frame.len() as u32).to_le_bytes())?;
    stream.write_all(frame)
}

fn accept_loop(listener: TcpListener, shared: Arc<Shared>) {
    while !shared.shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                let reader_shared = Arc::clone(&shared);
                thread::spawn(move || reader_loop(stream, reader_shared));
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                thread::sleep(Duration::from_millis(20));
            }
            Err(_) => thread::sleep(Duration::from_millis(20)),
        }
    }
}

fn reader_loop(mut stream: TcpStream, shared: Arc<Shared>) {
    let _ = stream.set_read_timeout(Some(shared.opts.read_timeout));
    // The connection is anonymous until its Hello arrives.
    let mut from: Option<usize> = None;
    // A frame mid-read when the timeout fires must resume, not restart:
    // buffer the partial read.
    let mut pending: Vec<u8> = Vec::new();
    let mut want: Option<usize> = None;
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        // Phase 1: length prefix.
        if want.is_none() {
            let mut len_buf = [0u8; 4];
            if pending.len() < 4 {
                let mut byte = [0u8; 1];
                match stream.read(&mut byte) {
                    Ok(0) => return,
                    // A non-zero read into a one-byte buffer is one byte.
                    Ok(_) => {
                        pending.push(byte[0]);
                        continue;
                    }
                    Err(e)
                        if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut =>
                    {
                        continue;
                    }
                    Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                    Err(_) => return,
                }
            }
            len_buf.copy_from_slice(&pending[..4]);
            pending.clear();
            let len = u32::from_le_bytes(len_buf);
            if len > shared.opts.max_frame_bytes {
                return; // corrupt or hostile peer: drop the connection
            }
            want = Some(len as usize);
        }
        // Phase 2: frame body. Phase 1 always leaves `want` set; the
        // `else` arm is dead but keeps the hot loop panic-free.
        let Some(need) = want else { continue };
        while pending.len() < need {
            let mut chunk = vec![0u8; (need - pending.len()).min(64 << 10)];
            match stream.read(&mut chunk) {
                Ok(0) => return,
                Ok(n) => pending.extend_from_slice(&chunk[..n]),
                Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                    if shared.shutdown.load(Ordering::SeqCst) {
                        return;
                    }
                }
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(_) => return,
            }
        }
        let frame = std::mem::take(&mut pending);
        want = None;
        shared
            .raw_bytes
            .fetch_add(4 + frame.len() as u64, Ordering::Relaxed);
        let (stamp, msg) = match wire::open(&frame) {
            Ok(opened) => opened,
            Err(_) => return, // undecodable peer: drop the connection
        };
        // Max-merge every inbound stamp — heartbeats and hellos too —
        // so the node's clock dominates everything it has heard.
        shared.lamport.observe(stamp.lamport);
        match msg {
            Message::Hello { from: peer } => {
                from = Some(peer as usize);
                shared.note_seen(peer as usize);
            }
            Message::Heartbeat { from: peer } => {
                shared.note_seen(peer as usize);
            }
            other => {
                let Some(peer) = from else {
                    return; // protocol violation: frames before Hello
                };
                let payload = (frame.len() - wire::STAMP_LEN) as u64;
                shared.note_seen(peer);
                shared.stats.lock().record(
                    endpoint_of(peer, shared.devices),
                    endpoint_of(shared.me, shared.devices),
                    payload,
                );
                if shared.tel.enabled() {
                    shared.tel.emit(
                        shared.clock.now(),
                        EventKind::FrameReceived {
                            src: peer as u32,
                            dst: shared.me as u32,
                            bytes: payload,
                            kind: other.kind().to_string(),
                            lamport: stamp.lamport,
                        },
                    );
                }
                if shared.inbound_tx.send(other).is_err() {
                    return; // port dropped
                }
            }
        }
    }
}

fn heartbeat_loop(
    shared: Arc<Shared>,
    conns: Arc<Mutex<BTreeMap<usize, TcpStream>>>,
    interval: Duration,
) {
    let msg = Message::Heartbeat {
        from: shared.me as u32,
    };
    while !shared.shutdown.load(Ordering::SeqCst) {
        shared.clock.sleep(interval);
        // Sealed per tick: each beat carries a fresh stamp, keeping
        // the per-sender lamport sequence strictly increasing.
        let (beat, _) = shared.seal(&msg);
        let mut conns = conns.lock();
        let mut dead = Vec::new();
        for (&peer, stream) in conns.iter_mut() {
            match write_frame(stream, &beat) {
                Ok(()) => {
                    shared
                        .raw_bytes
                        .fetch_add(4 + beat.len() as u64, Ordering::Relaxed);
                }
                Err(_) => dead.push(peer),
            }
        }
        for peer in dead {
            conns.remove(&peer);
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    fn quick_opts() -> TcpOptions {
        TcpOptions {
            connect_timeout: Duration::from_millis(500),
            read_timeout: Duration::from_millis(25),
            write_timeout: Duration::from_millis(500),
            max_dial_attempts: 8,
            backoff_base: Duration::from_millis(10),
            backoff_cap: Duration::from_millis(200),
            heartbeat_interval: Some(Duration::from_millis(50)),
            max_frame_bytes: 1 << 20,
        }
    }

    /// Binds `n` loopback listeners on port 0 and describes them as a
    /// cluster (last id coordinates).
    fn loopback_cluster(n: usize) -> (ClusterConfig, Vec<BoundNode>) {
        let nodes: Vec<BoundNode> = (0..n)
            .map(|id| BoundNode::bind(id, "127.0.0.1:0").unwrap())
            .collect();
        let addrs: Vec<String> = nodes
            .iter()
            .map(|b| b.local_addr().unwrap().to_string())
            .collect();
        (ClusterConfig::from_addrs(&addrs).unwrap(), nodes)
    }

    #[test]
    fn frames_cross_the_wire() {
        let (cluster, mut nodes) = loopback_cluster(3);
        let coordinator = nodes.pop().unwrap();
        let b = nodes.pop().unwrap();
        let a = nodes.pop().unwrap();
        let mut a = a.into_port(&cluster, quick_opts()).unwrap();
        let mut b = b.into_port(&cluster, quick_opts()).unwrap();
        let mut c = coordinator.into_port(&cluster, quick_opts()).unwrap();

        let msg = Message::ParamSync {
            round: 3,
            params: vec![1.0, -2.5, 0.25],
        };
        a.send(1, &msg).unwrap();
        assert_eq!(
            b.recv_timeout(Duration::from_secs(5)).unwrap(),
            Some(msg.clone())
        );
        b.send(
            2,
            &Message::VersionReport {
                device: 1,
                round: 3,
                version: 7.0,
            },
        )
        .unwrap();
        assert_eq!(
            c.recv_timeout(Duration::from_secs(5)).unwrap(),
            Some(Message::VersionReport {
                device: 1,
                round: 3,
                version: 7.0
            })
        );
        // Payload ledger matches the channel fabric's accounting.
        assert_eq!(
            a.stats()
                .sent_by(hadfl_simnet::Endpoint::Device(hadfl_simnet::DeviceId(0))),
            msg.encoded_len() as u64
        );
        assert_eq!(
            b.stats()
                .received_by(hadfl_simnet::Endpoint::Device(hadfl_simnet::DeviceId(1))),
            msg.encoded_len() as u64
        );
        // The raw wire counts prefixes and the Hello on top.
        assert!(a.raw_bytes() > msg.encoded_len() as u64);
    }

    #[test]
    fn dial_retries_until_listener_appears() {
        // Reserve an address, drop the listener, and only rebind it
        // after the sender has started dialing: the bounded backoff
        // must carry the send through the gap.
        let (cluster, mut nodes) = loopback_cluster(3);
        let coordinator = nodes.pop().unwrap();
        let late = nodes.pop().unwrap();
        let late_id = 1;
        let late_addr = cluster.node(late_id).unwrap().addr.clone();
        drop(late);
        let sender = nodes.pop().unwrap();
        let mut sender = sender.into_port(&cluster, quick_opts()).unwrap();
        let cluster2 = cluster.clone();
        let rebinder = thread::spawn(move || {
            thread::sleep(Duration::from_millis(60));
            let node = BoundNode::bind(late_id, &late_addr).unwrap();
            let mut port = node.into_port(&cluster2, quick_opts()).unwrap();
            port.recv_timeout(Duration::from_secs(5)).unwrap()
        });
        sender
            .send(late_id, &Message::Handshake { from: 0 })
            .unwrap();
        assert_eq!(
            rebinder.join().unwrap(),
            Some(Message::Handshake { from: 0 })
        );
        drop(coordinator);
    }

    #[test]
    fn unreachable_peer_errors_after_bounded_attempts() {
        let (cluster, mut nodes) = loopback_cluster(3);
        let dead = nodes.remove(1);
        drop(dead); // nobody listens on node 1's address
        let mut opts = quick_opts();
        opts.max_dial_attempts = 2;
        opts.backoff_base = Duration::from_millis(5);
        let mut sender = nodes.remove(0).into_port(&cluster, opts).unwrap();
        let clock = WallClock::new();
        assert!(sender.send(1, &Message::Handshake { from: 0 }).is_err());
        assert!(clock.now() < Duration::from_secs(5));
    }

    #[test]
    fn heartbeats_feed_liveness() {
        let (cluster, mut nodes) = loopback_cluster(3);
        let coordinator = nodes.pop().unwrap();
        let b = nodes.pop().unwrap();
        let mut a = nodes
            .pop()
            .unwrap()
            .into_port(&cluster, quick_opts())
            .unwrap();
        let b = b.into_port(&cluster, quick_opts()).unwrap();
        assert!(!b.is_live(0, Duration::from_secs(60)), "no traffic yet");
        // A dials b once; a's heartbeat ticker then keeps the
        // connection warm and b's last_seen fresh.
        a.send(1, &Message::Handshake { from: 0 }).unwrap();
        thread::sleep(Duration::from_millis(200));
        assert!(b.is_live(0, Duration::from_millis(150)));
        drop(a);
        thread::sleep(Duration::from_millis(300));
        assert!(
            !b.is_live(0, Duration::from_millis(150)),
            "silence after drop"
        );
        drop(coordinator);
    }
}
