//! The fleet telemetry collector: N node streams in, one merged
//! timeline, online health out.
//!
//! [`Collector`] is the transport-free core. Batches arrive via
//! [`Collector::ingest_batch`] (from TCP readers, the simnet adapter,
//! or a test script), are staged, and each [`Collector::tick`] merges
//! the stage in the fleet's causal order — `(lam, node, seq)`, the
//! same key `hadfl-trace` merges offline logs with — then applies it
//! to three consumers at once:
//!
//! - the [`HealthEngine`] (watchdog, straggler, dead-device,
//!   dead-ring, budget-burn rules),
//! - a [`MetricsSink`] feeding the fleet `/metrics` registry,
//! - an optional JSONL spool file, which is exactly the merged-log
//!   format `hadfl-trace --follow` tails.
//!
//! Time is the injected [`Clock`]: a `ManualClock` script reproduces
//! every alert deterministically, and the production binary passes a
//! `WallClock`. [`CollectorServer`] adds the two listeners (frame
//! ingest + HTTP) and a tick thread around the same core.

#![warn(clippy::unwrap_used, clippy::expect_used)]

use std::collections::BTreeMap;
use std::io::{BufWriter, ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use parking_lot::Mutex;
use serde::Serialize;

use hadfl::clock::Clock;
use hadfl::wire::{self, Message};
use hadfl_telemetry::health::{Alert, HealthEngine, HealthOptions, HealthReport};
use hadfl_telemetry::ship::ShipBatch;
use hadfl_telemetry::sink::Sink;
use hadfl_telemetry::{Event, MetricsRegistry, MetricsSink};

/// Collector tuning.
#[derive(Debug, Clone)]
pub struct CollectorOptions {
    /// Health rule knobs (deadline, thresholds, budget).
    pub health: HealthOptions,
    /// Where to spool the merged JSONL timeline, if anywhere.
    pub spool: Option<PathBuf>,
    /// Ingest frames larger than this are a protocol error; the
    /// connection is dropped.
    pub max_frame_bytes: usize,
}

impl Default for CollectorOptions {
    fn default() -> Self {
        CollectorOptions {
            health: HealthOptions::default(),
            spool: None,
            max_frame_bytes: 64 * 1024 * 1024,
        }
    }
}

/// Per-node ingest accounting (reported in `/health`).
#[derive(Debug, Clone, Default, Serialize)]
pub struct NodeIngest {
    /// The shipping node.
    pub node: u32,
    /// Batches received.
    pub batches: u64,
    /// Events received.
    pub events: u64,
    /// Thinned events the node announced via batch `dropped` counts.
    pub dropped: u64,
    /// Telemetry payload bytes received from this node (message
    /// encoding, excluding stamp and length prefix — comparable to
    /// the param-byte `NetStats` ledger).
    pub telemetry_bytes: u64,
}

/// The `/health` document: the rule engine's report plus ingest truth.
#[derive(Debug, Clone, Serialize)]
pub struct FleetStatus {
    /// Health rules' view (nested under `report` in the JSON).
    pub report: HealthReport,
    /// Per-node ingest accounting, ascending node id.
    pub nodes: Vec<NodeIngest>,
    /// Total telemetry payload bytes ingested.
    pub telemetry_bytes: u64,
    /// Total thinned events announced by shippers.
    pub events_dropped: u64,
    /// Events applied to the merged timeline.
    pub events_applied: u64,
    /// Malformed JSONL lines skipped.
    pub garbage_lines: u64,
}

/// The transport-free collector core. Wrap in `Arc<Mutex<_>>` to share
/// between reader threads and the tick cadence.
pub struct Collector {
    clock: Arc<dyn Clock>,
    health: HealthEngine,
    registry: Arc<MetricsRegistry>,
    sink: MetricsSink,
    staged: Vec<Event>,
    nodes: BTreeMap<u32, NodeIngest>,
    spool: Option<BufWriter<std::fs::File>>,
    events_applied: u64,
    garbage_lines: u64,
}

impl Collector {
    /// A fresh collector on `clock`, rendering into `registry`.
    ///
    /// # Errors
    ///
    /// Propagates spool-file creation errors.
    pub fn new(
        clock: Arc<dyn Clock>,
        registry: Arc<MetricsRegistry>,
        opts: &CollectorOptions,
    ) -> std::io::Result<Self> {
        let spool = match &opts.spool {
            Some(path) => Some(BufWriter::new(std::fs::File::create(path)?)),
            None => None,
        };
        registry.describe("hadfl_fleet_nodes", "Nodes that have shipped telemetry.");
        registry.describe(
            "hadfl_fleet_events",
            "Events applied to the merged timeline.",
        );
        registry.describe(
            "hadfl_fleet_events_dropped",
            "Thinned events announced by shippers under backpressure.",
        );
        registry.describe(
            "hadfl_fleet_telemetry_bytes",
            "Telemetry payload bytes ingested (ledgered apart from param bytes).",
        );
        registry.describe("hadfl_fleet_alerts", "Health alerts raised, by rule.");
        Ok(Collector {
            clock,
            health: HealthEngine::new(opts.health.clone()),
            registry: Arc::clone(&registry),
            sink: MetricsSink::new(registry),
            staged: Vec::new(),
            nodes: BTreeMap::new(),
            spool,
            events_applied: 0,
            garbage_lines: 0,
        })
    }

    /// Stages one shipped batch. `origin` is the causal stamp's
    /// origin; `node` the batch's self-declared shipper (they agree
    /// for well-behaved shippers — ingest accounting trusts the
    /// stamp). Events become visible to the rules at the next
    /// [`Collector::tick`].
    pub fn ingest_batch(&mut self, origin: u32, node: u32, dropped: u32, payload: &[u8]) {
        let entry = self.nodes.entry(origin).or_insert_with(|| NodeIngest {
            node: origin,
            ..NodeIngest::default()
        });
        entry.batches += 1;
        entry.dropped += dropped as u64;
        entry.telemetry_bytes += (payload.len() + telemetry_frame_overhead()) as u64;
        let _ = node;
        let (events, garbage) = ShipBatch::parse_jsonl(payload);
        entry.events += events.len() as u64;
        self.garbage_lines += garbage as u64;
        self.staged.extend(events);
    }

    /// Stages a bare event (the simnet adapter and scripted tests ship
    /// pre-parsed events without the JSONL hop).
    pub fn ingest_event(&mut self, event: Event) {
        let entry = self.nodes.entry(event.node).or_insert_with(|| NodeIngest {
            node: event.node,
            ..NodeIngest::default()
        });
        entry.events += 1;
        self.staged.push(event);
    }

    /// Drains the stage in `(lam, node, seq)` order into the health
    /// engine, the metrics sink, and the spool, then evaluates the
    /// time-based rules. Call on a cadence.
    pub fn tick(&mut self) {
        let now = self.clock.now();
        let mut batch = std::mem::take(&mut self.staged);
        batch.sort_by_key(|e| (e.lam, e.node, e.seq));
        for event in &batch {
            self.health.observe(now, event);
            self.sink.record(event);
            if let Some(spool) = self.spool.as_mut() {
                if let Ok(line) = event.to_json() {
                    let _ = writeln!(spool, "{line}");
                }
            }
        }
        self.events_applied += batch.len() as u64;
        if let Some(spool) = self.spool.as_mut() {
            let _ = spool.flush();
        }
        self.health.tick(now);
        self.export_fleet_gauges();
    }

    fn export_fleet_gauges(&self) {
        let reg = &self.registry;
        reg.set_gauge("hadfl_fleet_nodes", &[], self.nodes.len() as f64);
        reg.set_gauge("hadfl_fleet_events", &[], self.events_applied as f64);
        let dropped: u64 = self.nodes.values().map(|n| n.dropped).sum();
        reg.set_gauge("hadfl_fleet_events_dropped", &[], dropped as f64);
        let bytes: u64 = self.nodes.values().map(|n| n.telemetry_bytes).sum();
        reg.set_gauge("hadfl_fleet_telemetry_bytes", &[], bytes as f64);
        let mut by_rule: BTreeMap<&str, u64> = BTreeMap::new();
        for alert in self.health.alerts() {
            *by_rule.entry(alert.rule.as_str()).or_insert(0) += 1;
        }
        for (rule, count) in by_rule {
            reg.set_gauge(
                "hadfl_fleet_alerts",
                &[("rule", rule.to_string())],
                count as f64,
            );
        }
    }

    /// Alerts raised so far.
    pub fn alerts(&self) -> &[Alert] {
        self.health.alerts()
    }

    /// Total telemetry payload bytes ingested across nodes.
    pub fn telemetry_bytes(&self) -> u64 {
        self.nodes.values().map(|n| n.telemetry_bytes).sum()
    }

    /// The `/health` document.
    pub fn status(&self) -> FleetStatus {
        FleetStatus {
            report: self.health.report(),
            nodes: self.nodes.values().cloned().collect(),
            telemetry_bytes: self.telemetry_bytes(),
            events_dropped: self.nodes.values().map(|n| n.dropped).sum(),
            events_applied: self.events_applied,
            garbage_lines: self.garbage_lines,
        }
    }

    /// The `/health` body as JSON.
    pub fn status_json(&self) -> String {
        serde_json::to_string_pretty(&self.status())
            .unwrap_or_else(|e| format!("{{\"error\":\"{e}\"}}"))
    }

    /// The shared metrics registry (for `/metrics`).
    pub fn registry(&self) -> Arc<MetricsRegistry> {
        Arc::clone(&self.registry)
    }
}

/// Per-frame wire overhead attributed to a telemetry batch beyond its
/// JSONL payload: the TelemetryBatch header (tag + node + dropped +
/// payload length). Stamp and length prefix are excluded, mirroring
/// the `NetStats` payload accounting for param frames.
fn telemetry_frame_overhead() -> usize {
    1 + 4 + 4 + 4
}

/// The running collector daemon: a frame-ingest listener, a path-aware
/// HTTP listener (`/metrics`, `/health`), and a tick thread around a
/// shared [`Collector`]. Shuts down on [`CollectorServer::shutdown`]
/// or drop.
pub struct CollectorServer {
    ingest_addr: SocketAddr,
    http_addr: SocketAddr,
    collector: Arc<Mutex<Collector>>,
    stop: Arc<AtomicBool>,
    handles: Vec<JoinHandle<()>>,
    max_frame_bytes: usize,
}

impl CollectorServer {
    /// Binds both listeners and starts the tick thread.
    ///
    /// # Errors
    ///
    /// Propagates bind errors.
    pub fn start(
        ingest_addr: &str,
        http_addr: &str,
        collector: Arc<Mutex<Collector>>,
        tick_interval: Duration,
        max_frame_bytes: usize,
    ) -> std::io::Result<Self> {
        let ingest = TcpListener::bind(ingest_addr)?;
        ingest.set_nonblocking(true)?;
        let http = TcpListener::bind(http_addr)?;
        http.set_nonblocking(true)?;
        let bound_ingest = ingest.local_addr()?;
        let bound_http = http.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let mut handles = Vec::new();

        {
            let collector = Arc::clone(&collector);
            let stop = Arc::clone(&stop);
            handles.push(std::thread::spawn(move || {
                ingest_loop(ingest, collector, stop, max_frame_bytes)
            }));
        }
        {
            let collector = Arc::clone(&collector);
            let stop = Arc::clone(&stop);
            handles.push(std::thread::spawn(move || http_loop(http, collector, stop)));
        }
        {
            let collector = Arc::clone(&collector);
            let stop = Arc::clone(&stop);
            handles.push(std::thread::spawn(move || {
                while !stop.load(Ordering::SeqCst) {
                    collector.lock().tick();
                    std::thread::sleep(tick_interval);
                }
            }));
        }
        Ok(CollectorServer {
            ingest_addr: bound_ingest,
            http_addr: bound_http,
            collector,
            stop,
            handles,
            max_frame_bytes,
        })
    }

    /// Where shippers connect.
    pub fn ingest_addr(&self) -> SocketAddr {
        self.ingest_addr
    }

    /// Where `/metrics` and `/health` answer.
    pub fn http_addr(&self) -> SocketAddr {
        self.http_addr
    }

    /// The shared core (tests inspect alerts directly).
    pub fn collector(&self) -> Arc<Mutex<Collector>> {
        Arc::clone(&self.collector)
    }

    /// Largest accepted ingest frame.
    pub fn max_frame_bytes(&self) -> usize {
        self.max_frame_bytes
    }

    /// Stops the listeners and the tick thread, runs one final tick so
    /// everything staged is applied, and joins.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
        self.collector.lock().tick();
    }
}

impl Drop for CollectorServer {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

fn ingest_loop(
    listener: TcpListener,
    collector: Arc<Mutex<Collector>>,
    stop: Arc<AtomicBool>,
    max_frame_bytes: usize,
) {
    while !stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                let collector = Arc::clone(&collector);
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || ingest_conn(stream, collector, stop, max_frame_bytes));
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(20));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(20)),
        }
    }
}

/// One shipper connection: length-prefixed sealed frames until EOF.
/// Anything malformed drops the connection — the shipper redials.
fn ingest_conn(
    mut stream: TcpStream,
    collector: Arc<Mutex<Collector>>,
    stop: Arc<AtomicBool>,
    max_frame_bytes: usize,
) {
    let _ = stream.set_read_timeout(Some(Duration::from_millis(200)));
    let mut len_buf = [0u8; 4];
    let mut pending = 0usize;
    'conn: while !stop.load(Ordering::SeqCst) {
        // Read the 4-byte length, tolerating timeouts between frames.
        while pending < 4 {
            match stream.read(&mut len_buf[pending..]) {
                Ok(0) => return,
                Ok(n) => pending += n,
                Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                    if stop.load(Ordering::SeqCst) {
                        return;
                    }
                }
                Err(_) => return,
            }
        }
        pending = 0;
        let len = u32::from_le_bytes(len_buf) as usize;
        if len == 0 || len > max_frame_bytes {
            return;
        }
        let mut frame = vec![0u8; len];
        let mut read = 0usize;
        while read < len {
            match stream.read(&mut frame[read..]) {
                Ok(0) => return,
                Ok(n) => read += n,
                Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                    if stop.load(Ordering::SeqCst) {
                        return;
                    }
                }
                Err(_) => return,
            }
        }
        let Ok((stamp, msg)) = wire::open(&frame) else {
            return;
        };
        match msg {
            Message::TelemetryBatch {
                node,
                dropped,
                payload,
            } => {
                collector
                    .lock()
                    .ingest_batch(stamp.origin, node, dropped, &payload);
            }
            // Ignore anything else (a misdirected protocol peer);
            // keep the connection in case batches follow.
            _ => continue 'conn,
        }
    }
}

fn http_loop(listener: TcpListener, collector: Arc<Mutex<Collector>>, stop: Arc<AtomicBool>) {
    while !stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((mut stream, _)) => {
                let _ = stream.set_read_timeout(Some(Duration::from_millis(200)));
                let mut scratch = [0u8; 2048];
                let n = stream.read(&mut scratch).unwrap_or(0);
                let request = String::from_utf8_lossy(&scratch[..n]);
                let path = request
                    .split_whitespace()
                    .nth(1)
                    .unwrap_or("/")
                    .split('?')
                    .next()
                    .unwrap_or("/");
                let (status, content_type, body) = match path {
                    "/metrics" => {
                        let body = {
                            let collector = collector.lock();
                            collector.registry().render()
                        };
                        ("200 OK", "text/plain; version=0.0.4", body)
                    }
                    "/health" => {
                        let body = collector.lock().status_json();
                        ("200 OK", "application/json", body)
                    }
                    _ => (
                        "404 Not Found",
                        "text/plain; charset=utf-8",
                        "try /metrics or /health\n".to_string(),
                    ),
                };
                let response = format!(
                    "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
                    body.len()
                );
                let _ = stream.write_all(response.as_bytes());
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(20));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(20)),
        }
    }
}
