//! hadfl-net: real sockets for the HADFL protocol.
//!
//! The core crate's threaded executor ([`hadfl::exec`]) speaks the
//! [`hadfl::wire::Message`] protocol over an abstract
//! [`hadfl::transport::Port`]. This crate provides the pieces that take
//! that same protocol onto a network:
//!
//! * [`cluster`] — the static peer registry: a TOML or JSON file
//!   listing every participant's id, address, role, and relative
//!   compute power.
//! * [`tcp`] — [`tcp::TcpPort`], a `Port` over plain TCP with
//!   length-delimited framing, lazy connects with bounded
//!   exponential-backoff redial, and heartbeat liveness feeding the
//!   protocol's §III-D dead-peer handling.
//! * the `hadfl-node` binary — one process per participant; point every
//!   process at the same cluster file and give each its `--id`.
//!
//! Because `TcpPort` implements the same trait as the in-process
//! channel fabric, [`hadfl::exec::run_device`] and
//! [`hadfl::exec::run_coordinator`] run unchanged over it, and
//! [`Port::stats`](hadfl::transport::Port::stats) reports byte counts
//! on the same ledger as the analytical simulation driver.

pub mod cluster;
pub mod collector;
pub mod ship;
pub mod tcp;

pub use cluster::{ClusterConfig, NodeSpec, Role};
pub use collector::{Collector, CollectorOptions, CollectorServer, FleetStatus, NodeIngest};
pub use ship::{ShipLedger, TcpShipper};
pub use tcp::{BoundNode, TcpOptions, TcpPort};
