//! One HADFL participant as an OS process.
//!
//! Start every node in the cluster file with the same flags except
//! `--id`; any start order works, the transport redials with backoff:
//!
//! ```text
//! hadfl-node --cluster cluster.toml --id 0 &
//! hadfl-node --cluster cluster.toml --id 1 &
//! hadfl-node --cluster cluster.toml --id 2   # coordinator (highest id)
//! ```
//!
//! Every node deterministically derives the same synthetic workload
//! from `--model`/`--seed`, so a device only needs its own shard index.
//! The coordinator prints per-round selections and, at the end, the
//! consensus accuracy and byte ledger.

use std::path::Path;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

use hadfl::clock::{profiler_time, Clock, WallClock};
use hadfl::exec::{run_coordinator_instrumented, run_device_instrumented, ProtocolTiming};
use hadfl::trace::CommSummary;
use hadfl::{HadflConfig, HadflError, Workload};
use hadfl_net::cluster::{ClusterConfig, Role};
use hadfl_net::ship::TcpShipper;
use hadfl_net::tcp::{BoundNode, TcpOptions};
use hadfl_telemetry::{
    serve_metrics, JsonlSink, MetricsRegistry, MetricsServer, MetricsSink, ShipOptions, ShipSink,
    Sink, Telemetry,
};

const USAGE: &str = "usage: hadfl-node --cluster <file.toml|file.json> --id <n> \
[--model mlp] [--seed 0] [--rounds 3] [--window-ms 1000] [--step-sleep-ms 4] \
[--num-selected 2] [--telemetry-dir <dir>] [--metrics-addr <host:port>] \
[--ship-to <host:port>] [--profile-dir <dir>]";

struct Args {
    cluster: String,
    id: usize,
    model: String,
    seed: u64,
    rounds: usize,
    window: Duration,
    step_sleep: Duration,
    num_selected: usize,
    telemetry_dir: Option<String>,
    metrics_addr: Option<String>,
    ship_to: Option<String>,
    profile_dir: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut cluster = None;
    let mut id = None;
    let mut model = "mlp".to_string();
    let mut seed = 0u64;
    let mut rounds = 3usize;
    let mut window_ms = 1000u64;
    let mut step_sleep_ms = 4u64;
    let mut num_selected = 2usize;
    let mut telemetry_dir = None;
    let mut metrics_addr = None;
    let mut ship_to = None;
    let mut profile_dir = None;
    let mut argv = std::env::args().skip(1);
    while let Some(flag) = argv.next() {
        let mut value = |name: &str| -> Result<String, String> {
            argv.next().ok_or_else(|| format!("{name} needs a value"))
        };
        match flag.as_str() {
            "--cluster" => cluster = Some(value("--cluster")?),
            "--id" => id = Some(value("--id")?.parse().map_err(|e| format!("--id: {e}"))?),
            "--model" => model = value("--model")?,
            "--seed" => {
                seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?
            }
            "--rounds" => {
                rounds = value("--rounds")?
                    .parse()
                    .map_err(|e| format!("--rounds: {e}"))?;
            }
            "--window-ms" => {
                window_ms = value("--window-ms")?
                    .parse()
                    .map_err(|e| format!("--window-ms: {e}"))?;
            }
            "--step-sleep-ms" => {
                step_sleep_ms = value("--step-sleep-ms")?
                    .parse()
                    .map_err(|e| format!("--step-sleep-ms: {e}"))?;
            }
            "--num-selected" => {
                num_selected = value("--num-selected")?
                    .parse()
                    .map_err(|e| format!("--num-selected: {e}"))?;
            }
            "--telemetry-dir" => telemetry_dir = Some(value("--telemetry-dir")?),
            "--metrics-addr" => metrics_addr = Some(value("--metrics-addr")?),
            "--ship-to" => ship_to = Some(value("--ship-to")?),
            "--profile-dir" => profile_dir = Some(value("--profile-dir")?),
            "--help" | "-h" => return Err(USAGE.to_string()),
            other => return Err(format!("unknown flag {other}\n{USAGE}")),
        }
    }
    Ok(Args {
        cluster: cluster.ok_or_else(|| format!("--cluster is required\n{USAGE}"))?,
        id: id.ok_or_else(|| format!("--id is required\n{USAGE}"))?,
        model,
        seed,
        rounds,
        window: Duration::from_millis(window_ms),
        step_sleep: Duration::from_millis(step_sleep_ms),
        num_selected,
        telemetry_dir,
        metrics_addr,
        ship_to,
        profile_dir,
    })
}

/// Builds the node's [`Telemetry`] handle from the observability flags:
/// `--telemetry-dir` adds a per-node JSONL sink (`node-<id>.jsonl`),
/// `--metrics-addr` adds a metrics sink behind a Prometheus-style text
/// endpoint, `--ship-to` adds a `ShipSink` streaming batches to a
/// `hadfl-collector`. No flags ⇒ the zero-cost disabled handle.
fn build_telemetry(args: &Args) -> Result<(Telemetry, Option<MetricsServer>), HadflError> {
    let mut sinks: Vec<Box<dyn Sink>> = Vec::new();
    if let Some(dir) = &args.telemetry_dir {
        std::fs::create_dir_all(dir)
            .map_err(|e| HadflError::InvalidConfig(format!("create {dir}: {e}")))?;
        let path = Path::new(dir).join(format!("node-{}.jsonl", args.id));
        let sink = JsonlSink::create(&path)
            .map_err(|e| HadflError::InvalidConfig(format!("create {}: {e}", path.display())))?;
        sinks.push(Box::new(sink));
    }
    let mut server = None;
    if let Some(addr) = &args.metrics_addr {
        let registry = MetricsRegistry::new();
        sinks.push(Box::new(MetricsSink::new(Arc::clone(&registry))));
        let srv = serve_metrics(addr, registry)
            .map_err(|e| HadflError::InvalidConfig(format!("metrics on {addr}: {e}")))?;
        eprintln!(
            "hadfl-node: serving metrics on http://{}/metrics",
            srv.addr()
        );
        server = Some(srv);
    }
    if sinks.is_empty() && args.ship_to.is_none() {
        return Ok((Telemetry::disabled(), None));
    }
    let tel = Telemetry::new(args.id as u32, sinks);
    if let Some(addr) = &args.ship_to {
        // The shipper stamps outgoing batches with this node's own
        // Lamport clock, so it attaches after the handle exists.
        let shipper = TcpShipper::new(addr, args.id as u32, tel.lamport_clock());
        tel.attach_sink(Box::new(ShipSink::new(
            args.id as u32,
            ShipOptions::default(),
            Box::new(shipper),
        )));
        eprintln!("hadfl-node: shipping telemetry to {addr}");
    }
    Ok((tel, server))
}

/// Commits the node's profile at run end: writes the JSON dump and
/// folded-stack flamegraph text to `--profile-dir`, and feeds the
/// per-op / per-pool aggregates into the telemetry pipeline so the
/// metrics endpoint and the collector see `hadfl_op_*` / `hadfl_pool_*`
/// families. Call after dropping the install guard, before
/// `tel.flush()`.
fn finish_profile(
    dir: &str,
    id: usize,
    profiler: &hadfl_prof::Profiler,
    tel: &Telemetry,
    now: Duration,
) -> Result<(), HadflError> {
    let dump = profiler.dump();
    std::fs::create_dir_all(dir)
        .map_err(|e| HadflError::InvalidConfig(format!("create {dir}: {e}")))?;
    let json_path = Path::new(dir).join(format!("profile-node-{id}.json"));
    let json = serde_json::to_string_pretty(&dump)
        .map_err(|e| HadflError::InvalidConfig(format!("encode profile: {e}")))?;
    std::fs::write(&json_path, json)
        .map_err(|e| HadflError::InvalidConfig(format!("write {}: {e}", json_path.display())))?;
    let folded_path = Path::new(dir).join(format!("profile-node-{id}.folded"));
    std::fs::write(&folded_path, hadfl_prof::to_folded(&dump))
        .map_err(|e| HadflError::InvalidConfig(format!("write {}: {e}", folded_path.display())))?;
    tel.emit_profile(now, &dump);
    eprintln!("hadfl-node: wrote profile to {}", json_path.display());
    Ok(())
}

fn run(args: &Args) -> Result<(), HadflError> {
    let contents = std::fs::read_to_string(&args.cluster)
        .map_err(|e| HadflError::InvalidConfig(format!("read {}: {e}", args.cluster)))?;
    let cluster = ClusterConfig::parse(std::path::Path::new(&args.cluster), &contents)?;
    let spec = cluster.node(args.id)?.clone();
    let k = cluster.devices();

    let config = HadflConfig::builder()
        .num_selected(args.num_selected.min(k))
        .seed(args.seed)
        .build()?;
    let workload = Workload::quick(&args.model, args.seed);
    let timing = ProtocolTiming::default();
    let (tel, _metrics_server) = build_telemetry(args)?;
    // One clock for the transport and the protocol actor, so frame and
    // protocol events share a timeline.
    let clock: Arc<dyn Clock> = WallClock::shared();
    // The profiler reads the same clock through the TimeSource seam, so
    // its timeline matches the telemetry events'. The protocol actor
    // runs on this thread; the install guard scopes its recording.
    let profiler = match &args.profile_dir {
        Some(_) => hadfl_prof::Profiler::new(args.id as u32, profiler_time(Arc::clone(&clock))),
        None => hadfl_prof::Profiler::disabled(),
    };
    let prof_guard = profiler.install();
    let port = BoundNode::bind(args.id, &cluster.node(args.id)?.addr)?.into_port_instrumented(
        &cluster,
        TcpOptions::default(),
        Arc::clone(&clock),
        tel.clone(),
    )?;
    let stats = port.stats_handle();

    match spec.role {
        Role::Device => {
            eprintln!(
                "hadfl-node: device {} on {} (power {}), waiting for the coordinator",
                args.id, spec.addr, spec.power
            );
            let built = workload.build(k)?;
            let rt = built
                .runtimes
                .into_iter()
                .nth(args.id)
                .ok_or_else(|| HadflError::InvalidConfig("device id out of range".into()))?;
            let sleep = Duration::from_secs_f64(args.step_sleep.as_secs_f64() / spec.power);
            run_device_instrumented(port, rt, &config, sleep, &timing, &*clock, tel.clone())?;
            stats.emit_ledger();
            drop(prof_guard);
            if let Some(dir) = &args.profile_dir {
                finish_profile(dir, args.id, &profiler, &tel, clock.now())?;
            }
            tel.flush();
            eprintln!("hadfl-node: device {} done", args.id);
        }
        Role::Coordinator => {
            eprintln!(
                "hadfl-node: coordinating {k} devices for {} rounds of {:?}",
                args.rounds, args.window
            );
            let run = run_coordinator_instrumented(
                port,
                &config,
                args.window,
                args.rounds,
                &timing,
                &*clock,
                tel.clone(),
            )?;
            stats.emit_ledger();
            drop(prof_guard);
            if let Some(dir) = &args.profile_dir {
                finish_profile(dir, args.id, &profiler, &tel, clock.now())?;
            }
            tel.flush();
            for round in &run.rounds {
                println!(
                    "round {}: versions {:?} selected {:?}",
                    round.round, round.versions, round.selected
                );
            }
            for &(device, round) in &run.dropped {
                println!("dropped device {device} in round {round}");
            }
            if run.final_models.is_empty() {
                return Err(HadflError::InvalidConfig(
                    "no device uploaded final parameters".into(),
                ));
            }
            let refs: Vec<&[f32]> = run.final_models.values().map(Vec::as_slice).collect();
            let consensus = hadfl::aggregate::average_params(&refs)?;
            let mut built = workload.build(k)?;
            let metrics = built.evaluate_params(&consensus)?;
            println!(
                "consensus accuracy {:.4} (loss {:.4})",
                metrics.accuracy, metrics.loss
            );
            let comm = CommSummary::from_stats(&stats.stats(), k);
            println!(
                "coordinator traffic: {} payload bytes over {} messages ({} raw wire bytes)",
                comm.total_bytes,
                comm.messages,
                stats.raw_bytes()
            );
        }
    }
    Ok(())
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("hadfl-node: {e}");
            ExitCode::FAILURE
        }
    }
}
