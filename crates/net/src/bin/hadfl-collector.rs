//! The fleet telemetry collector daemon.
//!
//! Accepts `TelemetryBatch` streams from any number of
//! `hadfl-node --ship-to` processes (or the simnet adapter), merges
//! them in causal `(lam, node, seq)` order, runs the online health
//! rules, and serves fleet-level `/metrics` (Prometheus text format)
//! and `/health` (structured JSON alerts):
//!
//! ```text
//! hadfl-collector --listen 127.0.0.1:9100 --http 127.0.0.1:9101 \
//!     --spool /tmp/fleet.jsonl &
//! hadfl-node --cluster cluster.toml --id 0 --ship-to 127.0.0.1:9100 &
//! curl http://127.0.0.1:9101/health
//! hadfl-trace --follow /tmp/fleet.jsonl
//! ```

use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

use hadfl::clock::WallClock;
use hadfl_net::collector::{Collector, CollectorOptions, CollectorServer};
use hadfl_telemetry::health::HealthOptions;
use hadfl_telemetry::MetricsRegistry;
use parking_lot::Mutex;

const USAGE: &str = "usage: hadfl-collector [--listen <host:port>] [--http <host:port>] \
[--spool <file.jsonl>] [--tick-ms 250] [--round-deadline-ms 30000] \
[--budget-bytes <n>] [--duration-ms <n>]";

struct Args {
    listen: String,
    http: String,
    spool: Option<String>,
    tick: Duration,
    round_deadline: Duration,
    budget_bytes: Option<u64>,
    /// Exit after this long (CI); `None` runs until killed.
    duration: Option<Duration>,
}

fn parse_args() -> Result<Args, String> {
    let mut listen = "127.0.0.1:9100".to_string();
    let mut http = "127.0.0.1:9101".to_string();
    let mut spool = None;
    let mut tick_ms = 250u64;
    let mut round_deadline_ms = 30_000u64;
    let mut budget_bytes = None;
    let mut duration_ms = None;
    let mut argv = std::env::args().skip(1);
    while let Some(flag) = argv.next() {
        let mut value = |name: &str| -> Result<String, String> {
            argv.next().ok_or_else(|| format!("{name} needs a value"))
        };
        match flag.as_str() {
            "--listen" => listen = value("--listen")?,
            "--http" => http = value("--http")?,
            "--spool" => spool = Some(value("--spool")?),
            "--tick-ms" => {
                tick_ms = value("--tick-ms")?
                    .parse()
                    .map_err(|e| format!("--tick-ms: {e}"))?;
            }
            "--round-deadline-ms" => {
                round_deadline_ms = value("--round-deadline-ms")?
                    .parse()
                    .map_err(|e| format!("--round-deadline-ms: {e}"))?;
            }
            "--budget-bytes" => {
                budget_bytes = Some(
                    value("--budget-bytes")?
                        .parse()
                        .map_err(|e| format!("--budget-bytes: {e}"))?,
                );
            }
            "--duration-ms" => {
                duration_ms = Some(
                    value("--duration-ms")?
                        .parse()
                        .map_err(|e| format!("--duration-ms: {e}"))?,
                );
            }
            "--help" | "-h" => return Err(USAGE.to_string()),
            other => return Err(format!("unknown flag {other}\n{USAGE}")),
        }
    }
    Ok(Args {
        listen,
        http,
        spool,
        tick: Duration::from_millis(tick_ms.max(10)),
        round_deadline: Duration::from_millis(round_deadline_ms),
        budget_bytes,
        duration: duration_ms.map(Duration::from_millis),
    })
}

fn run(args: &Args) -> Result<(), String> {
    let opts = CollectorOptions {
        health: HealthOptions {
            round_deadline: args.round_deadline,
            budget_bytes: args.budget_bytes,
            ..HealthOptions::default()
        },
        spool: args.spool.as_ref().map(std::path::PathBuf::from),
        ..CollectorOptions::default()
    };
    let registry = MetricsRegistry::new();
    let collector = Collector::new(WallClock::shared(), registry, &opts)
        .map_err(|e| format!("collector setup: {e}"))?;
    let max_frame = opts.max_frame_bytes;
    let server = CollectorServer::start(
        &args.listen,
        &args.http,
        Arc::new(Mutex::new(collector)),
        args.tick,
        max_frame,
    )
    .map_err(|e| format!("bind: {e}"))?;
    eprintln!(
        "hadfl-collector: ingesting on {}, serving http://{}/metrics and /health{}",
        server.ingest_addr(),
        server.http_addr(),
        args.spool
            .as_deref()
            .map(|s| format!(", spooling to {s}"))
            .unwrap_or_default()
    );
    match args.duration {
        Some(d) => std::thread::sleep(d),
        None => loop {
            std::thread::sleep(Duration::from_secs(3600));
        },
    }
    let collector = server.collector();
    server.shutdown();
    let status = collector.lock().status();
    eprintln!(
        "hadfl-collector: {} nodes, {} events, {} alerts, {} telemetry bytes",
        status.nodes.len(),
        status.events_applied,
        status.report.alerts.len(),
        status.telemetry_bytes
    );
    Ok(())
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("hadfl-collector: {e}");
            ExitCode::FAILURE
        }
    }
}
