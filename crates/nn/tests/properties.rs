//! Property-based tests for the training substrate.

use hadfl_nn::{models, softmax_cross_entropy, Dataset, ShardSpec, SyntheticSpec};
use hadfl_tensor::Tensor;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn param_vector_roundtrip_is_identity(seed in 0u64..500) {
        let mut m = models::mlp(&[3, 8, 8], &[12], 10, seed).unwrap();
        let v = m.param_vector();
        m.set_param_vector(&v).unwrap();
        prop_assert_eq!(m.param_vector(), v);
    }

    #[test]
    fn set_param_vector_overwrites_exactly(seed_a in 0u64..200, seed_b in 200u64..400) {
        let a = models::mlp(&[3, 8, 8], &[12], 10, seed_a).unwrap();
        let mut b = models::mlp(&[3, 8, 8], &[12], 10, seed_b).unwrap();
        b.set_param_vector(&a.param_vector()).unwrap();
        prop_assert_eq!(a.param_vector(), b.param_vector());
    }

    #[test]
    fn cross_entropy_is_nonnegative(logits in proptest::collection::vec(-8.0f32..8.0, 12)) {
        let t = Tensor::from_vec(logits, &[3, 4]).unwrap();
        let (loss, grad) = softmax_cross_entropy(&t, &[0, 1, 3]).unwrap();
        prop_assert!(loss >= 0.0);
        prop_assert_eq!(grad.dims(), &[3, 4]);
        // gradient rows sum to ~0
        for r in 0..3 {
            let s: f32 = grad.as_slice()[r * 4..(r + 1) * 4].iter().sum();
            prop_assert!(s.abs() < 1e-5);
        }
    }

    #[test]
    fn shards_partition_the_dataset(k in 1usize..6, seed in 0u64..100) {
        let spec = SyntheticSpec::tiny();
        let ds = Dataset::synthetic_cifar(60, &spec, 3).unwrap();
        let shards = ds.shard(k, ShardSpec::Iid, seed).unwrap();
        prop_assert_eq!(shards.len(), k);
        let total: usize = shards.iter().map(Dataset::len).sum();
        prop_assert_eq!(total, 60);
        // class counts across shards must sum to the global histogram
        let global = ds.class_counts();
        let mut summed = vec![0usize; global.len()];
        for s in &shards {
            for (c, &n) in s.class_counts().iter().enumerate() {
                summed[c] += n;
            }
        }
        prop_assert_eq!(summed, global);
    }

    #[test]
    fn dirichlet_shards_partition_too(alpha in 0.05f32..5.0, seed in 0u64..50) {
        let spec = SyntheticSpec::tiny();
        let ds = Dataset::synthetic_cifar(50, &spec, 4).unwrap();
        let shards = ds.shard(3, ShardSpec::Dirichlet { alpha }, seed).unwrap();
        let total: usize = shards.iter().map(Dataset::len).sum();
        prop_assert_eq!(total, 50);
    }

    #[test]
    fn synthetic_labels_in_range(n in 1usize..80, seed in 0u64..100) {
        let spec = SyntheticSpec::tiny();
        let ds = Dataset::synthetic_cifar(n, &spec, seed).unwrap();
        prop_assert_eq!(ds.len(), n);
        prop_assert!(ds.labels().iter().all(|&l| l < spec.classes));
    }
}
