use hadfl_tensor::Tensor;

use crate::error::NnError;

/// A differentiable network layer.
///
/// Layers own their parameters, their parameter gradients, and whatever
/// forward-pass activations the backward pass needs. The visitor-style
/// parameter accessors ([`visit_params`](Layer::visit_params) and friends)
/// traverse parameters in a fixed, deterministic order — the same order on
/// every device — which is what lets the federated-learning crates treat a
/// model as a flat parameter vector.
///
/// # Example
///
/// ```
/// use hadfl_nn::{Layer, Relu};
/// use hadfl_tensor::Tensor;
///
/// # fn main() -> Result<(), hadfl_nn::NnError> {
/// let mut relu = Relu::new();
/// let y = relu.forward(&Tensor::from_vec(vec![-1.0, 2.0], &[1, 2])?, true)?;
/// assert_eq!(y.as_slice(), &[0.0, 2.0]);
/// # Ok(())
/// # }
/// ```
pub trait Layer: Send {
    /// Computes the layer output for a batch.
    ///
    /// `train` selects training-mode behaviour (e.g. batch statistics in
    /// [`crate::BatchNorm2d`]); evaluation passes `false`.
    ///
    /// # Errors
    ///
    /// Returns an error when the input shape is incompatible with the layer.
    fn forward(&mut self, input: &Tensor, train: bool) -> Result<Tensor, NnError>;

    /// Back-propagates `grad_out` (gradient w.r.t. this layer's output),
    /// accumulating parameter gradients and returning the gradient w.r.t.
    /// the layer's input.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::BackwardBeforeForward`] if called without a prior
    /// training-mode [`forward`](Layer::forward), or a shape error when
    /// `grad_out` does not match the cached output shape.
    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor, NnError>;

    /// Visits each parameter tensor in deterministic order.
    fn visit_params(&self, f: &mut dyn FnMut(&Tensor));

    /// Visits each parameter tensor mutably, in the same order as
    /// [`visit_params`](Layer::visit_params).
    fn visit_params_mut(&mut self, f: &mut dyn FnMut(&mut Tensor));

    /// Visits each `(parameter, gradient)` pair mutably, in the same order
    /// as [`visit_params`](Layer::visit_params). Optimizers use this.
    fn visit_params_grads_mut(&mut self, f: &mut dyn FnMut(&mut Tensor, &mut Tensor));

    /// Resets all accumulated gradients to zero.
    fn zero_grads(&mut self);

    /// A short human-readable layer name for diagnostics.
    fn name(&self) -> &'static str;

    /// Total number of scalar parameters in this layer.
    fn param_count(&self) -> usize {
        let mut n = 0;
        self.visit_params(&mut |p| n += p.len());
        n
    }
}

/// Reshapes an NCHW activation batch to `(N, C·H·W)` for a dense head.
///
/// The layer is parameter-free; backward restores the cached input shape.
#[derive(Debug, Default)]
pub struct Flatten {
    cached_dims: Option<Vec<usize>>,
}

impl Flatten {
    /// Creates a flatten layer.
    pub fn new() -> Self {
        Flatten::default()
    }
}

impl Layer for Flatten {
    fn forward(&mut self, input: &Tensor, train: bool) -> Result<Tensor, NnError> {
        let dims = input.dims();
        if dims.is_empty() {
            return Err(NnError::BatchMismatch(
                "flatten input must have a batch axis".into(),
            ));
        }
        if train {
            self.cached_dims = Some(dims.to_vec());
        }
        let batch = dims[0];
        let rest: usize = dims[1..].iter().product();
        Ok(input.reshape(&[batch, rest])?)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor, NnError> {
        let dims = self
            .cached_dims
            .as_ref()
            .ok_or(NnError::BackwardBeforeForward("Flatten"))?;
        Ok(grad_out.reshape(dims)?)
    }

    fn visit_params(&self, _f: &mut dyn FnMut(&Tensor)) {}
    fn visit_params_mut(&mut self, _f: &mut dyn FnMut(&mut Tensor)) {}
    fn visit_params_grads_mut(&mut self, _f: &mut dyn FnMut(&mut Tensor, &mut Tensor)) {}
    fn zero_grads(&mut self) {}

    fn name(&self) -> &'static str {
        "Flatten"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flatten_collapses_trailing_dims() {
        let mut f = Flatten::new();
        let x = Tensor::zeros(&[2, 3, 4, 4]);
        let y = f.forward(&x, true).unwrap();
        assert_eq!(y.dims(), &[2, 48]);
    }

    #[test]
    fn flatten_backward_restores_shape() {
        let mut f = Flatten::new();
        let x = Tensor::zeros(&[2, 3, 2, 2]);
        let y = f.forward(&x, true).unwrap();
        let gx = f.backward(&y).unwrap();
        assert_eq!(gx.dims(), x.dims());
    }

    #[test]
    fn flatten_backward_without_forward_errors() {
        let mut f = Flatten::new();
        assert!(matches!(
            f.backward(&Tensor::zeros(&[2, 4])),
            Err(NnError::BackwardBeforeForward("Flatten"))
        ));
    }

    #[test]
    fn flatten_has_no_params() {
        let f = Flatten::new();
        assert_eq!(f.param_count(), 0);
        assert_eq!(f.name(), "Flatten");
    }
}
