use hadfl_tensor::{matmul, matmul_a_bt, matmul_at_b, Initializer, SeedStream, Tensor};

use crate::error::NnError;
use crate::layer::Layer;

/// A fully-connected layer: `y = x·W + b` with `x: (batch, in)`,
/// `W: (in, out)`, `b: (out)`.
///
/// # Example
///
/// ```
/// use hadfl_nn::{Dense, Layer};
/// use hadfl_tensor::{SeedStream, Tensor};
///
/// # fn main() -> Result<(), hadfl_nn::NnError> {
/// let mut layer = Dense::new(4, 2, &mut SeedStream::new(0));
/// let y = layer.forward(&Tensor::ones(&[3, 4]), true)?;
/// assert_eq!(y.dims(), &[3, 2]);
/// assert_eq!(layer.param_count(), 4 * 2 + 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Dense {
    weight: Tensor,
    bias: Tensor,
    grad_weight: Tensor,
    grad_bias: Tensor,
    cached_input: Option<Tensor>,
}

impl Dense {
    /// Creates a dense layer with Xavier-uniform weights and zero bias.
    pub fn new(in_features: usize, out_features: usize, rng: &mut SeedStream) -> Self {
        let weight = Initializer::XavierUniform {
            fan_in: in_features,
            fan_out: out_features,
        }
        .init(&[in_features, out_features], rng);
        Dense {
            weight,
            bias: Tensor::zeros(&[out_features]),
            grad_weight: Tensor::zeros(&[in_features, out_features]),
            grad_bias: Tensor::zeros(&[out_features]),
            cached_input: None,
        }
    }

    /// Input width.
    pub fn in_features(&self) -> usize {
        self.weight.dims()[0]
    }

    /// Output width.
    pub fn out_features(&self) -> usize {
        self.weight.dims()[1]
    }
}

impl Layer for Dense {
    fn forward(&mut self, input: &Tensor, train: bool) -> Result<Tensor, NnError> {
        let _prof = hadfl_prof::scope("dense_fwd");
        let mut out = matmul(input, &self.weight)?;
        let (batch, width) = (out.dims()[0], out.dims()[1]);
        let bias = self.bias.as_slice().to_vec();
        // Row-parallel bias add: each output row is a disjoint chunk and
        // the per-element operation is a single addition, so the result
        // is bit-identical at any thread count.
        let work = (batch as u64) * (width as u64);
        hadfl_par::plan(work).chunks_mut(out.as_mut_slice(), width.max(1), |_, row| {
            for (v, &b) in row.iter_mut().zip(&bias) {
                *v += b;
            }
        });
        if train {
            self.cached_input = Some(input.clone());
        }
        Ok(out)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor, NnError> {
        let _prof = hadfl_prof::scope("dense_bwd");
        let input = self
            .cached_input
            .as_ref()
            .ok_or(NnError::BackwardBeforeForward("Dense"))?;
        // dW += xᵀ · dy ; db += column sums of dy ; dx = dy · Wᵀ
        let gw = matmul_at_b(input, grad_out)?;
        self.grad_weight.add_assign_t(&gw)?;
        let (batch, width) = (grad_out.dims()[0], grad_out.dims()[1]);
        let gov = grad_out.as_slice();
        let gb = self.grad_bias.as_mut_slice();
        for r in 0..batch {
            for c in 0..width {
                gb[c] += gov[r * width + c];
            }
        }
        Ok(matmul_a_bt(grad_out, &self.weight)?)
    }

    fn visit_params(&self, f: &mut dyn FnMut(&Tensor)) {
        f(&self.weight);
        f(&self.bias);
    }

    fn visit_params_mut(&mut self, f: &mut dyn FnMut(&mut Tensor)) {
        f(&mut self.weight);
        f(&mut self.bias);
    }

    fn visit_params_grads_mut(&mut self, f: &mut dyn FnMut(&mut Tensor, &mut Tensor)) {
        f(&mut self.weight, &mut self.grad_weight);
        f(&mut self.bias, &mut self.grad_bias);
    }

    fn zero_grads(&mut self) {
        self.grad_weight.fill_zero();
        self.grad_bias.fill_zero();
    }

    fn name(&self) -> &'static str {
        "Dense"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn layer_2x2(w: &[f32], b: &[f32]) -> Dense {
        let mut d = Dense::new(2, 2, &mut SeedStream::new(0));
        d.visit_params_mut(&mut |p| {
            if p.dims() == [2, 2] {
                p.as_mut_slice().copy_from_slice(w);
            } else {
                p.as_mut_slice().copy_from_slice(b);
            }
        });
        d
    }

    #[test]
    fn forward_matches_manual_affine() {
        let mut d = layer_2x2(&[1.0, 2.0, 3.0, 4.0], &[10.0, 20.0]);
        let x = Tensor::from_vec(vec![1.0, 1.0], &[1, 2]).unwrap();
        let y = d.forward(&x, false).unwrap();
        assert_eq!(y.as_slice(), &[14.0, 26.0]);
    }

    #[test]
    fn backward_produces_expected_gradients() {
        let mut d = layer_2x2(&[1.0, 2.0, 3.0, 4.0], &[0.0, 0.0]);
        let x = Tensor::from_vec(vec![1.0, 2.0], &[1, 2]).unwrap();
        d.forward(&x, true).unwrap();
        let gy = Tensor::from_vec(vec![1.0, 1.0], &[1, 2]).unwrap();
        let gx = d.backward(&gy).unwrap();
        // dx = gy · Wᵀ = [1+2, 3+4] = [3, 7]
        assert_eq!(gx.as_slice(), &[3.0, 7.0]);
        let mut grads = Vec::new();
        d.visit_params_grads_mut(&mut |_, g| grads.push(g.clone()));
        assert_eq!(grads[0].as_slice(), &[1.0, 1.0, 2.0, 2.0]); // xᵀ·gy
        assert_eq!(grads[1].as_slice(), &[1.0, 1.0]);
    }

    #[test]
    fn gradients_accumulate_until_zeroed() {
        let mut d = layer_2x2(&[1.0, 0.0, 0.0, 1.0], &[0.0, 0.0]);
        let x = Tensor::ones(&[1, 2]);
        let gy = Tensor::ones(&[1, 2]);
        d.forward(&x, true).unwrap();
        d.backward(&gy).unwrap();
        d.forward(&x, true).unwrap();
        d.backward(&gy).unwrap();
        let mut total = 0.0;
        d.visit_params_grads_mut(&mut |_, g| total += g.as_slice().iter().sum::<f32>());
        // per pass: sum(gw) = 4, sum(gb) = 2; two passes accumulate to 12
        assert_eq!(total, 12.0);
        d.zero_grads();
        let mut total_after = 0.0;
        d.visit_params_grads_mut(&mut |_, g| total_after += g.as_slice().iter().sum::<f32>());
        assert_eq!(total_after, 0.0);
    }

    #[test]
    fn backward_without_forward_errors() {
        let mut d = Dense::new(2, 2, &mut SeedStream::new(0));
        assert!(matches!(
            d.backward(&Tensor::zeros(&[1, 2])),
            Err(NnError::BackwardBeforeForward("Dense"))
        ));
    }

    #[test]
    fn eval_forward_does_not_cache() {
        let mut d = Dense::new(2, 2, &mut SeedStream::new(0));
        d.forward(&Tensor::zeros(&[1, 2]), false).unwrap();
        assert!(d.backward(&Tensor::zeros(&[1, 2])).is_err());
    }

    #[test]
    fn numeric_gradient_check() {
        // Finite-difference check of dW on a scalar loss L = sum(y).
        let mut rng = SeedStream::new(42);
        let mut d = Dense::new(3, 2, &mut rng);
        let x = Tensor::from_vec(vec![0.5, -1.0, 2.0, 1.5, 0.0, -0.5], &[2, 3]).unwrap();
        d.forward(&x, true).unwrap();
        let gy = Tensor::ones(&[2, 2]);
        d.backward(&gy).unwrap();
        let mut analytic = Vec::new();
        d.visit_params_grads_mut(&mut |_, g| analytic.push(g.clone()));

        let eps = 1e-3;
        let mut param_idx = 0;
        let mut max_err = 0.0f32;
        for (pi, _) in [0, 1].iter().enumerate() {
            let plen = analytic[pi].len();
            for i in 0..plen {
                let bump = |delta: f32, d: &mut Dense| {
                    let mut k = 0;
                    d.visit_params_mut(&mut |p| {
                        if k == pi {
                            p.as_mut_slice()[i] += delta;
                        }
                        k += 1;
                    });
                };
                bump(eps, &mut d);
                let yp = d.forward(&x, false).unwrap();
                bump(-2.0 * eps, &mut d);
                let ym = d.forward(&x, false).unwrap();
                bump(eps, &mut d);
                let num = (yp.as_slice().iter().sum::<f32>() - ym.as_slice().iter().sum::<f32>())
                    / (2.0 * eps);
                let err = (num - analytic[pi].as_slice()[i]).abs();
                max_err = max_err.max(err);
                param_idx += 1;
            }
        }
        assert!(param_idx > 0);
        assert!(max_err < 1e-2, "finite-difference mismatch: {max_err}");
    }
}
