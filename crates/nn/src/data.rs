use hadfl_tensor::{SeedStream, Tensor};
use serde::{Deserialize, Serialize};

use crate::error::NnError;

/// Parameters of the synthetic CIFAR-like image task.
///
/// Each class `c` has a fixed *prototype*: a smooth random field built from
/// a few sinusoids per channel, deterministic in `pattern_seed`. A sample
/// of class `c` is `jitter · prototype_c + noise · N(0, 1)` pixelwise. The
/// prototype seed is shared between the train and test sets (same task);
/// sample seeds differ (disjoint draws). See DESIGN.md §2 for why this
/// stands in for CIFAR-10.
///
/// # Example
///
/// ```
/// use hadfl_nn::SyntheticSpec;
///
/// let spec = SyntheticSpec::cifar_like();
/// assert_eq!(spec.sample_dims(), vec![3, 16, 16]);
/// assert_eq!(spec.classes, 10);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SyntheticSpec {
    /// Image channels.
    pub channels: usize,
    /// Image height.
    pub height: usize,
    /// Image width.
    pub width: usize,
    /// Number of classes.
    pub classes: usize,
    /// Per-pixel Gaussian noise standard deviation. Higher noise lowers the
    /// achievable test accuracy (the task's Bayes error).
    pub noise: f32,
    /// Per-sample amplitude jitter `j`: samples scale their prototype by a
    /// factor drawn uniformly from `[1-j, 1+j]`.
    pub amplitude_jitter: f32,
    /// Seed of the class prototypes. Train and test sets of the same task
    /// must share this value.
    pub pattern_seed: u64,
}

impl SyntheticSpec {
    /// A tiny 3×8×8, 10-class task for unit tests.
    pub fn tiny() -> Self {
        SyntheticSpec {
            channels: 3,
            height: 8,
            width: 8,
            classes: 10,
            noise: 2.5,
            amplitude_jitter: 0.3,
            pattern_seed: 0xC1FA_0001,
        }
    }

    /// The default experiment task: 3×16×16, 10 classes, noise tuned
    /// (empirically, see EXPERIMENTS.md) so the lite models saturate in
    /// the high-80s/low-90s accuracy range the paper reports for
    /// CIFAR-10, with `vgg16_lite` converging later and less stably than
    /// `resnet18_lite` — the same qualitative contrast as the paper's
    /// VGG-16 vs ResNet-18.
    pub fn cifar_like() -> Self {
        SyntheticSpec {
            channels: 3,
            height: 16,
            width: 16,
            classes: 10,
            noise: 2.2,
            amplitude_jitter: 0.35,
            pattern_seed: 0xC1FA_0002,
        }
    }

    /// Per-sample tensor dimensions `[C, H, W]`.
    pub fn sample_dims(&self) -> Vec<usize> {
        vec![self.channels, self.height, self.width]
    }

    /// Elements per sample.
    pub fn sample_len(&self) -> usize {
        self.channels * self.height * self.width
    }

    fn validate(&self) -> Result<(), NnError> {
        if self.classes == 0 || self.channels == 0 || self.height == 0 || self.width == 0 {
            return Err(NnError::InvalidConfig(format!(
                "synthetic spec has zero extent: {self:?}"
            )));
        }
        if self.noise < 0.0 || !self.noise.is_finite() {
            return Err(NnError::InvalidConfig(format!(
                "invalid noise {}",
                self.noise
            )));
        }
        Ok(())
    }

    /// Builds the per-class prototype fields, `classes × sample_len`.
    fn prototypes(&self) -> Vec<Vec<f32>> {
        const SINUSOIDS: usize = 4;
        let mut rng = SeedStream::new(self.pattern_seed);
        let mut protos = Vec::with_capacity(self.classes);
        for _class in 0..self.classes {
            let mut proto = vec![0.0f32; self.sample_len()];
            for c in 0..self.channels {
                for _ in 0..SINUSOIDS {
                    let fy = rng.index(3) as f32 + 1.0;
                    let fx = rng.index(3) as f32 + 1.0;
                    let phase = rng.uniform(0.0, std::f32::consts::TAU);
                    let amp = rng.uniform(0.4, 1.0);
                    for y in 0..self.height {
                        for x in 0..self.width {
                            let arg = std::f32::consts::TAU
                                * (fy * y as f32 / self.height as f32
                                    + fx * x as f32 / self.width as f32)
                                + phase;
                            proto[(c * self.height + y) * self.width + x] += amp * arg.sin();
                        }
                    }
                }
            }
            protos.push(proto);
        }
        protos
    }
}

/// How a dataset is split across federated devices.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ShardSpec {
    /// Shuffle and deal samples round-robin: every shard is IID with the
    /// global distribution (the paper's setting — "training data is split
    /// on four GPUs").
    Iid,
    /// Dirichlet(α) label skew: for each class, the share assigned to each
    /// device is drawn from `Dir(α, …, α)`. Small α means heavy non-IID.
    Dirichlet {
        /// Concentration parameter; must be positive.
        alpha: f32,
    },
}

/// An in-memory labelled image dataset.
///
/// Samples are stored as one flat `Vec<f32>` in NCHW order plus a label
/// vector; [`batch`](Dataset::batch) materializes any index set as a
/// `(batch, C, H, W)` tensor.
#[derive(Debug, Clone, PartialEq)]
pub struct Dataset {
    sample_dims: Vec<usize>,
    images: Vec<f32>,
    labels: Vec<usize>,
}

impl Dataset {
    /// Creates a dataset from raw parts.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::BatchMismatch`] if `images.len()` is not
    /// `labels.len() × product(sample_dims)`.
    pub fn from_parts(
        images: Vec<f32>,
        labels: Vec<usize>,
        sample_dims: &[usize],
    ) -> Result<Self, NnError> {
        let sample_len: usize = sample_dims.iter().product();
        if sample_len == 0 || images.len() != labels.len() * sample_len {
            return Err(NnError::BatchMismatch(format!(
                "{} pixels for {} labels of sample length {sample_len}",
                images.len(),
                labels.len()
            )));
        }
        Ok(Dataset {
            sample_dims: sample_dims.to_vec(),
            images,
            labels,
        })
    }

    /// Generates `n` samples of the synthetic CIFAR-like task.
    ///
    /// `sample_seed` controls the random draws of *this* set only; use
    /// different values for train and test so they are disjoint, while the
    /// class patterns come from `spec.pattern_seed`.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidConfig`] for a degenerate spec.
    pub fn synthetic_cifar(
        n: usize,
        spec: &SyntheticSpec,
        sample_seed: u64,
    ) -> Result<Self, NnError> {
        spec.validate()?;
        let protos = spec.prototypes();
        let sample_len = spec.sample_len();
        let mut rng = SeedStream::new(sample_seed ^ 0x5A17_AB1E);
        let mut images = Vec::with_capacity(n * sample_len);
        let mut labels = Vec::with_capacity(n);
        for i in 0..n {
            // Cycle classes for exact balance, shuffled by the sample order.
            let label = i % spec.classes;
            let jitter = rng.uniform(1.0 - spec.amplitude_jitter, 1.0 + spec.amplitude_jitter);
            for &p in &protos[label] {
                images.push(jitter * p + spec.noise * rng.normal());
            }
            labels.push(label);
        }
        // Shuffle samples so class order carries no signal.
        let mut order: Vec<usize> = (0..n).collect();
        rng.shuffle(&mut order);
        let mut ds = Dataset {
            sample_dims: spec.sample_dims(),
            images,
            labels,
        };
        ds = ds.subset(&order)?;
        Ok(ds)
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Returns `true` when the dataset holds no samples.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Per-sample dimensions `[C, H, W]` (or any shape for non-image data).
    pub fn sample_dims(&self) -> &[usize] {
        &self.sample_dims
    }

    /// The label vector.
    pub fn labels(&self) -> &[usize] {
        &self.labels
    }

    /// Histogram of labels (index = class).
    pub fn class_counts(&self) -> Vec<usize> {
        let classes = self.labels.iter().copied().max().map_or(0, |m| m + 1);
        let mut counts = vec![0usize; classes];
        for &l in &self.labels {
            counts[l] += 1;
        }
        counts
    }

    /// Materializes the samples at `indices` as a `(batch, …)` tensor plus
    /// their labels.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::BatchMismatch`] if `indices` is empty or any
    /// index is out of range.
    pub fn batch(&self, indices: &[usize]) -> Result<(Tensor, Vec<usize>), NnError> {
        if indices.is_empty() {
            return Err(NnError::BatchMismatch("empty batch".into()));
        }
        let sample_len: usize = self.sample_dims.iter().product();
        let mut data = Vec::with_capacity(indices.len() * sample_len);
        let mut labels = Vec::with_capacity(indices.len());
        for &i in indices {
            if i >= self.len() {
                return Err(NnError::BatchMismatch(format!(
                    "index {i} out of range for {} samples",
                    self.len()
                )));
            }
            data.extend_from_slice(&self.images[i * sample_len..(i + 1) * sample_len]);
            labels.push(self.labels[i]);
        }
        let mut dims = vec![indices.len()];
        dims.extend_from_slice(&self.sample_dims);
        Ok((Tensor::from_vec(data, &dims)?, labels))
    }

    /// Copies the samples at `indices` into a new dataset (order kept,
    /// duplicates allowed).
    ///
    /// # Errors
    ///
    /// Returns [`NnError::BatchMismatch`] if any index is out of range.
    pub fn subset(&self, indices: &[usize]) -> Result<Dataset, NnError> {
        let sample_len: usize = self.sample_dims.iter().product();
        let mut images = Vec::with_capacity(indices.len() * sample_len);
        let mut labels = Vec::with_capacity(indices.len());
        for &i in indices {
            if i >= self.len() {
                return Err(NnError::BatchMismatch(format!(
                    "index {i} out of range for {} samples",
                    self.len()
                )));
            }
            images.extend_from_slice(&self.images[i * sample_len..(i + 1) * sample_len]);
            labels.push(self.labels[i]);
        }
        Ok(Dataset {
            sample_dims: self.sample_dims.clone(),
            images,
            labels,
        })
    }

    /// Splits the dataset into `k` device shards.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidConfig`] if `k` is zero, larger than the
    /// dataset, or a Dirichlet α is not positive.
    pub fn shard(&self, k: usize, spec: ShardSpec, seed: u64) -> Result<Vec<Dataset>, NnError> {
        if k == 0 || k > self.len() {
            return Err(NnError::InvalidConfig(format!(
                "cannot shard {} samples into {k} devices",
                self.len()
            )));
        }
        let mut rng = SeedStream::new(seed ^ 0x5AAD_BEEF);
        let assignment: Vec<usize> = match spec {
            ShardSpec::Iid => {
                let mut order: Vec<usize> = (0..self.len()).collect();
                rng.shuffle(&mut order);
                let mut assignment = vec![0usize; self.len()];
                for (pos, &sample) in order.iter().enumerate() {
                    assignment[sample] = pos % k;
                }
                assignment
            }
            ShardSpec::Dirichlet { alpha } => {
                if !(alpha > 0.0) || !alpha.is_finite() {
                    return Err(NnError::InvalidConfig(format!("dirichlet alpha {alpha}")));
                }
                let classes = self.class_counts().len().max(1);
                // Per class, draw device shares and deal that class's
                // samples proportionally.
                let mut assignment = vec![0usize; self.len()];
                for class in 0..classes {
                    let members: Vec<usize> = (0..self.len())
                        .filter(|&i| self.labels[i] == class)
                        .collect();
                    if members.is_empty() {
                        continue;
                    }
                    let shares = dirichlet(alpha, k, &mut rng);
                    // Convert shares to cumulative boundaries over members.
                    let mut cum = 0.0f32;
                    let mut boundaries = Vec::with_capacity(k);
                    for &s in &shares {
                        cum += s;
                        boundaries.push((cum * members.len() as f32).round() as usize);
                    }
                    *boundaries.last_mut().expect("k > 0") = members.len();
                    let mut start = 0;
                    for (dev, &end) in boundaries.iter().enumerate() {
                        for &m in &members[start..end.max(start)] {
                            assignment[m] = dev;
                        }
                        start = end.max(start);
                    }
                }
                assignment
            }
        };
        let mut shards = Vec::with_capacity(k);
        for dev in 0..k {
            let idxs: Vec<usize> = (0..self.len()).filter(|&i| assignment[i] == dev).collect();
            shards.push(self.subset(&idxs)?);
        }
        Ok(shards)
    }
}

/// Draws a `Dir(α, …, α)` vector of length `k` via normalized Gamma draws
/// (Marsaglia–Tsang).
fn dirichlet(alpha: f32, k: usize, rng: &mut SeedStream) -> Vec<f32> {
    let mut draws: Vec<f32> = (0..k).map(|_| gamma(alpha, rng)).collect();
    let total: f32 = draws.iter().sum();
    if total <= 0.0 {
        // Degenerate underflow (tiny α): pick one winner uniformly.
        let winner = rng.index(k);
        draws.iter_mut().for_each(|d| *d = 0.0);
        draws[winner] = 1.0;
        return draws;
    }
    draws.iter_mut().for_each(|d| *d /= total);
    draws
}

/// Gamma(shape, 1) sampler (Marsaglia–Tsang, with the α<1 boost).
fn gamma(shape: f32, rng: &mut SeedStream) -> f32 {
    if shape < 1.0 {
        let u = rng.uniform(f32::EPSILON, 1.0);
        return gamma(shape + 1.0, rng) * u.powf(1.0 / shape);
    }
    let d = shape - 1.0 / 3.0;
    let c = 1.0 / (9.0 * d).sqrt();
    loop {
        let x = rng.normal();
        let v = (1.0 + c * x).powi(3);
        if v <= 0.0 {
            continue;
        }
        let u = rng.uniform(f32::EPSILON, 1.0);
        if u.ln() < 0.5 * x * x + d - d * v + d * v.ln() {
            return d * v;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthetic_is_deterministic_in_seed() {
        let spec = SyntheticSpec::tiny();
        let a = Dataset::synthetic_cifar(32, &spec, 1).unwrap();
        let b = Dataset::synthetic_cifar(32, &spec, 1).unwrap();
        let c = Dataset::synthetic_cifar(32, &spec, 2).unwrap();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn synthetic_classes_are_balanced() {
        let spec = SyntheticSpec::tiny();
        let ds = Dataset::synthetic_cifar(100, &spec, 1).unwrap();
        let counts = ds.class_counts();
        assert_eq!(counts.len(), 10);
        assert!(counts.iter().all(|&c| c == 10), "{counts:?}");
    }

    #[test]
    fn synthetic_rejects_zero_classes() {
        let bad = SyntheticSpec {
            classes: 0,
            ..SyntheticSpec::tiny()
        };
        assert!(Dataset::synthetic_cifar(8, &bad, 1).is_err());
    }

    #[test]
    fn same_pattern_seed_means_same_task() {
        // Two sets with the same pattern seed but different sample seeds
        // must correlate strongly per class (same prototypes).
        let spec = SyntheticSpec {
            noise: 0.0,
            amplitude_jitter: 0.0,
            ..SyntheticSpec::tiny()
        };
        let a = Dataset::synthetic_cifar(10, &spec, 1).unwrap();
        let b = Dataset::synthetic_cifar(10, &spec, 99).unwrap();
        // With zero noise/jitter, sample == prototype: class-0 images equal.
        let ia = a.labels().iter().position(|&l| l == 0).unwrap();
        let ib = b.labels().iter().position(|&l| l == 0).unwrap();
        let (ta, _) = a.batch(&[ia]).unwrap();
        let (tb, _) = b.batch(&[ib]).unwrap();
        assert_eq!(ta, tb);
    }

    #[test]
    fn batch_shapes_and_labels() {
        let spec = SyntheticSpec::tiny();
        let ds = Dataset::synthetic_cifar(20, &spec, 3).unwrap();
        let (x, y) = ds.batch(&[0, 5, 7]).unwrap();
        assert_eq!(x.dims(), &[3, 3, 8, 8]);
        assert_eq!(y.len(), 3);
        assert!(ds.batch(&[]).is_err());
        assert!(ds.batch(&[20]).is_err());
    }

    #[test]
    fn iid_shards_partition_and_balance() {
        let spec = SyntheticSpec::tiny();
        let ds = Dataset::synthetic_cifar(100, &spec, 4).unwrap();
        let shards = ds.shard(4, ShardSpec::Iid, 9).unwrap();
        assert_eq!(shards.len(), 4);
        let total: usize = shards.iter().map(Dataset::len).sum();
        assert_eq!(total, 100);
        for s in &shards {
            assert_eq!(s.len(), 25);
            // IID: every shard sees most classes
            let nonzero = s.class_counts().iter().filter(|&&c| c > 0).count();
            assert!(nonzero >= 8, "shard saw only {nonzero} classes");
        }
    }

    #[test]
    fn dirichlet_small_alpha_skews_labels() {
        let spec = SyntheticSpec::tiny();
        let ds = Dataset::synthetic_cifar(400, &spec, 4).unwrap();
        let shards = ds.shard(4, ShardSpec::Dirichlet { alpha: 0.1 }, 2).unwrap();
        let total: usize = shards.iter().map(Dataset::len).sum();
        assert_eq!(total, 400);
        // At α = 0.1 at least one shard should be visibly skewed: its top
        // class holds far more than the IID share (10%).
        let max_frac = shards
            .iter()
            .filter(|s| !s.is_empty())
            .map(|s| {
                let counts = s.class_counts();
                let top = counts.iter().copied().max().unwrap_or(0);
                top as f32 / s.len() as f32
            })
            .fold(0.0f32, f32::max);
        assert!(max_frac > 0.25, "no skew observed: {max_frac}");
    }

    #[test]
    fn shard_rejects_bad_configs() {
        let spec = SyntheticSpec::tiny();
        let ds = Dataset::synthetic_cifar(10, &spec, 1).unwrap();
        assert!(ds.shard(0, ShardSpec::Iid, 1).is_err());
        assert!(ds.shard(11, ShardSpec::Iid, 1).is_err());
        assert!(ds.shard(2, ShardSpec::Dirichlet { alpha: 0.0 }, 1).is_err());
        assert!(ds
            .shard(2, ShardSpec::Dirichlet { alpha: f32::NAN }, 1)
            .is_err());
    }

    #[test]
    fn from_parts_validates_length() {
        assert!(Dataset::from_parts(vec![0.0; 10], vec![0, 1], &[5]).is_ok());
        assert!(Dataset::from_parts(vec![0.0; 9], vec![0, 1], &[5]).is_err());
        assert!(Dataset::from_parts(vec![], vec![], &[0]).is_err());
    }

    #[test]
    fn gamma_sampler_has_plausible_mean() {
        let mut rng = SeedStream::new(77);
        for &shape in &[0.5f32, 1.0, 2.0, 5.0] {
            let n = 4000;
            let mean: f32 = (0..n).map(|_| gamma(shape, &mut rng)).sum::<f32>() / n as f32;
            assert!(
                (mean - shape).abs() < 0.25 * shape.max(1.0),
                "shape {shape}: mean {mean}"
            );
        }
    }

    #[test]
    fn dirichlet_sums_to_one() {
        let mut rng = SeedStream::new(5);
        for &alpha in &[0.1f32, 1.0, 10.0] {
            let v = dirichlet(alpha, 6, &mut rng);
            assert_eq!(v.len(), 6);
            assert!((v.iter().sum::<f32>() - 1.0).abs() < 1e-4);
            assert!(v.iter().all(|&x| x >= 0.0));
        }
    }
}
