use hadfl_tensor::Tensor;

use crate::error::NnError;
use crate::layer::Layer;

/// Learning-rate schedule.
///
/// The paper trains the *mutual-negotiation* warm-up phase with a small
/// learning rate and the main phase at `0.01`; [`LrSchedule::warmup`]
/// models exactly that.
///
/// # Example
///
/// ```
/// use hadfl_nn::LrSchedule;
///
/// let s = LrSchedule::warmup(0.001, 100, 0.01);
/// assert_eq!(s.lr_at(0), 0.001);
/// assert_eq!(s.lr_at(100), 0.01);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LrSchedule {
    /// The same learning rate at every step.
    Constant {
        /// The learning rate.
        lr: f32,
    },
    /// `warmup_lr` for the first `warmup_steps` steps, then `base_lr`.
    Warmup {
        /// Learning rate during warm-up.
        warmup_lr: f32,
        /// Number of warm-up steps.
        warmup_steps: u64,
        /// Learning rate after warm-up.
        base_lr: f32,
    },
}

impl LrSchedule {
    /// A constant schedule.
    pub fn constant(lr: f32) -> Self {
        LrSchedule::Constant { lr }
    }

    /// A warm-up schedule: `warmup_lr` for `warmup_steps` steps, then
    /// `base_lr` (the paper's mutual-negotiation pattern).
    pub fn warmup(warmup_lr: f32, warmup_steps: u64, base_lr: f32) -> Self {
        LrSchedule::Warmup {
            warmup_lr,
            warmup_steps,
            base_lr,
        }
    }

    /// The learning rate at step `step` (0-based).
    pub fn lr_at(&self, step: u64) -> f32 {
        match *self {
            LrSchedule::Constant { lr } => lr,
            LrSchedule::Warmup {
                warmup_lr,
                warmup_steps,
                base_lr,
            } => {
                if step < warmup_steps {
                    warmup_lr
                } else {
                    base_lr
                }
            }
        }
    }
}

/// Stochastic gradient descent with classical momentum.
///
/// Velocity buffers are allocated lazily on the first [`step`](Sgd::step)
/// and keyed by traversal order, which is deterministic (see
/// [`Layer::visit_params_grads_mut`]).
///
/// # Example
///
/// ```
/// use hadfl_nn::{Dense, Layer, LrSchedule, Sgd};
/// use hadfl_tensor::{SeedStream, Tensor};
///
/// # fn main() -> Result<(), hadfl_nn::NnError> {
/// let mut layer = Dense::new(2, 1, &mut SeedStream::new(0));
/// let mut opt = Sgd::new(LrSchedule::constant(0.1), 0.9);
/// layer.forward(&Tensor::ones(&[1, 2]), true)?;
/// layer.backward(&Tensor::ones(&[1, 1]))?;
/// opt.step(&mut layer)?;
/// assert_eq!(opt.steps_taken(), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Sgd {
    schedule: LrSchedule,
    momentum: f32,
    velocity: Vec<Tensor>,
    step: u64,
}

impl Sgd {
    /// Creates an optimizer with the given schedule and momentum
    /// (`momentum = 0.0` disables the velocity term).
    pub fn new(schedule: LrSchedule, momentum: f32) -> Self {
        Sgd {
            schedule,
            momentum,
            velocity: Vec::new(),
            step: 0,
        }
    }

    /// The learning rate the *next* step will use.
    pub fn current_lr(&self) -> f32 {
        self.schedule.lr_at(self.step)
    }

    /// Number of steps applied so far.
    pub fn steps_taken(&self) -> u64 {
        self.step
    }

    /// Replaces the schedule (e.g. when leaving the warm-up phase under
    /// external control) without resetting momentum or the step counter.
    pub fn set_schedule(&mut self, schedule: LrSchedule) {
        self.schedule = schedule;
    }

    /// Applies one update to every parameter of `layer` from its
    /// accumulated gradients, then zeroes the gradients.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::NonFinite`] if any updated parameter is NaN or
    /// infinite (an exploding-loss guard), or a tensor error if the model's
    /// parameter structure changed between steps.
    pub fn step<L: Layer + ?Sized>(&mut self, layer: &mut L) -> Result<(), NnError> {
        let lr = self.schedule.lr_at(self.step);
        let momentum = self.momentum;
        let first = self.velocity.is_empty();
        let velocity = &mut self.velocity;
        let mut idx = 0;
        let mut failure: Option<NnError> = None;
        layer.visit_params_grads_mut(&mut |p, g| {
            if failure.is_some() {
                return;
            }
            if first {
                velocity.push(Tensor::zeros(p.dims()));
            }
            let result = (|| -> Result<(), NnError> {
                let v = velocity.get_mut(idx).ok_or_else(|| {
                    NnError::InvalidConfig("parameter count grew between optimizer steps".into())
                })?;
                if momentum != 0.0 {
                    v.scale_inplace(momentum);
                    v.add_assign_t(g)?;
                    p.axpy(-lr, v)?;
                } else {
                    p.axpy(-lr, g)?;
                }
                if p.has_non_finite() {
                    return Err(NnError::NonFinite("sgd parameter update"));
                }
                g.fill_zero();
                Ok(())
            })();
            if let Err(e) = result {
                failure = Some(e);
            }
            idx += 1;
        });
        if let Some(e) = failure {
            return Err(e);
        }
        self.step += 1;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense::Dense;
    use hadfl_tensor::SeedStream;

    fn unit_dense() -> Dense {
        let mut d = Dense::new(1, 1, &mut SeedStream::new(0));
        d.visit_params_mut(&mut |p| p.as_mut_slice().fill(1.0));
        d
    }

    fn run_step(d: &mut Dense, opt: &mut Sgd) {
        d.forward(&Tensor::ones(&[1, 1]), true).unwrap();
        d.backward(&Tensor::ones(&[1, 1])).unwrap();
        opt.step(d).unwrap();
    }

    #[test]
    fn plain_sgd_moves_against_gradient() {
        let mut d = unit_dense();
        let mut opt = Sgd::new(LrSchedule::constant(0.5), 0.0);
        run_step(&mut d, &mut opt);
        // w grad = x*gy = 1, b grad = 1 ⇒ both become 0.5
        let mut params = Vec::new();
        d.visit_params(&mut |p| params.push(p.as_slice()[0]));
        assert_eq!(params, vec![0.5, 0.5]);
    }

    #[test]
    fn momentum_accelerates_repeated_gradients() {
        let mut plain = unit_dense();
        let mut with_mom = unit_dense();
        let mut o1 = Sgd::new(LrSchedule::constant(0.1), 0.0);
        let mut o2 = Sgd::new(LrSchedule::constant(0.1), 0.9);
        for _ in 0..3 {
            run_step(&mut plain, &mut o1);
            run_step(&mut with_mom, &mut o2);
        }
        let (mut wp, mut wm) = (0.0, 0.0);
        plain.visit_params(&mut |p| wp += p.as_slice()[0]);
        with_mom.visit_params(&mut |p| wm += p.as_slice()[0]);
        assert!(wm < wp, "momentum should have moved further: {wm} vs {wp}");
    }

    #[test]
    fn step_zeroes_gradients() {
        let mut d = unit_dense();
        let mut opt = Sgd::new(LrSchedule::constant(0.1), 0.0);
        run_step(&mut d, &mut opt);
        let mut gnorm = 0.0;
        d.visit_params_grads_mut(&mut |_, g| gnorm += g.norm_l2());
        assert_eq!(gnorm, 0.0);
    }

    #[test]
    fn warmup_schedule_switches_at_boundary() {
        let s = LrSchedule::warmup(0.001, 5, 0.01);
        assert_eq!(s.lr_at(4), 0.001);
        assert_eq!(s.lr_at(5), 0.01);
        assert_eq!(s.lr_at(500), 0.01);
    }

    #[test]
    fn optimizer_uses_schedule_step() {
        let mut d = unit_dense();
        let mut opt = Sgd::new(LrSchedule::warmup(0.0, 1, 1.0), 0.0);
        assert_eq!(opt.current_lr(), 0.0);
        run_step(&mut d, &mut opt); // lr 0: no movement
        let mut w0 = 0.0;
        d.visit_params(&mut |p| w0 += p.as_slice()[0]);
        assert_eq!(w0, 2.0);
        assert_eq!(opt.current_lr(), 1.0);
        run_step(&mut d, &mut opt); // lr 1: moves
        let mut w1 = 0.0;
        d.visit_params(&mut |p| w1 += p.as_slice()[0]);
        assert!(w1 < w0);
    }

    #[test]
    fn non_finite_update_is_reported() {
        let mut d = unit_dense();
        // Poison the gradient with an inf by a giant forward value.
        d.forward(&Tensor::full(&[1, 1], f32::MAX), true).unwrap();
        d.backward(&Tensor::full(&[1, 1], f32::MAX)).unwrap();
        let mut opt = Sgd::new(LrSchedule::constant(1.0), 0.0);
        assert!(matches!(opt.step(&mut d), Err(NnError::NonFinite(_))));
    }
}
