use hadfl_tensor::SeedStream;

/// Deterministic shuffled mini-batch index generator.
///
/// Each call to [`epoch`](Loader::epoch) reshuffles the index range and
/// yields it in `batch_size` chunks (the final chunk may be short). The
/// shuffle stream is seeded, so two loaders built with the same arguments
/// produce identical batch sequences — a requirement for reproducing
/// experiment traces.
///
/// # Example
///
/// ```
/// use hadfl_nn::Loader;
///
/// let mut loader = Loader::new(10, 4, 0);
/// let batches = loader.epoch();
/// assert_eq!(batches.len(), 3);
/// assert_eq!(batches.iter().map(Vec::len).sum::<usize>(), 10);
/// ```
#[derive(Debug)]
pub struct Loader {
    n: usize,
    batch_size: usize,
    rng: SeedStream,
    epochs_served: u64,
}

impl Loader {
    /// Creates a loader over `n` samples with the given batch size.
    ///
    /// # Panics
    ///
    /// Panics if `batch_size` is zero.
    pub fn new(n: usize, batch_size: usize, seed: u64) -> Self {
        assert!(batch_size > 0, "batch size must be positive");
        Loader {
            n,
            batch_size,
            rng: SeedStream::new(seed ^ 0x10AD_E201),
            epochs_served: 0,
        }
    }

    /// Number of samples the loader covers.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Returns `true` when the loader covers no samples.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Batches per epoch (ceiling division).
    pub fn batches_per_epoch(&self) -> usize {
        self.n.div_ceil(self.batch_size)
    }

    /// Number of epochs generated so far.
    pub fn epochs_served(&self) -> u64 {
        self.epochs_served
    }

    /// Produces one epoch of shuffled batch index vectors.
    pub fn epoch(&mut self) -> Vec<Vec<usize>> {
        let mut order: Vec<usize> = (0..self.n).collect();
        self.rng.shuffle(&mut order);
        self.epochs_served += 1;
        order
            .chunks(self.batch_size)
            .map(<[usize]>::to_vec)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_covers_all_indices_once() {
        let mut l = Loader::new(23, 5, 1);
        let batches = l.epoch();
        let mut all: Vec<usize> = batches.into_iter().flatten().collect();
        all.sort_unstable();
        assert_eq!(all, (0..23).collect::<Vec<_>>());
    }

    #[test]
    fn epochs_differ_but_are_reproducible() {
        let mut a = Loader::new(16, 4, 9);
        let mut b = Loader::new(16, 4, 9);
        let a1 = a.epoch();
        let a2 = a.epoch();
        assert_ne!(a1, a2, "consecutive epochs should reshuffle");
        assert_eq!(a1, b.epoch());
        assert_eq!(a2, b.epoch());
    }

    #[test]
    fn last_batch_may_be_short() {
        let mut l = Loader::new(10, 4, 0);
        let batches = l.epoch();
        assert_eq!(batches.len(), 3);
        assert_eq!(batches.last().map(Vec::len), Some(2));
        assert_eq!(l.batches_per_epoch(), 3);
    }

    #[test]
    fn empty_loader_yields_no_batches() {
        let mut l = Loader::new(0, 4, 0);
        assert!(l.is_empty());
        assert!(l.epoch().is_empty());
    }

    #[test]
    #[should_panic(expected = "batch size")]
    fn zero_batch_size_panics() {
        let _ = Loader::new(4, 0, 0);
    }

    #[test]
    fn epochs_served_counts() {
        let mut l = Loader::new(4, 2, 0);
        assert_eq!(l.epochs_served(), 0);
        l.epoch();
        l.epoch();
        assert_eq!(l.epochs_served(), 2);
    }
}
