use std::error::Error;
use std::fmt;

use hadfl_tensor::TensorError;

/// Error produced by network construction, training, and data handling.
///
/// # Example
///
/// ```
/// use hadfl_nn::{Dataset, SyntheticSpec};
///
/// let bad = SyntheticSpec { classes: 0, ..SyntheticSpec::tiny() };
/// assert!(Dataset::synthetic_cifar(8, &bad, 1).is_err());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub enum NnError {
    /// A tensor kernel failed (shape/rank/geometry problems).
    Tensor(TensorError),
    /// The network or a layer was configured inconsistently.
    InvalidConfig(String),
    /// A batch of inputs did not match the labels or the expected sample
    /// shape.
    BatchMismatch(String),
    /// A parameter vector had the wrong length for this model.
    ParamLengthMismatch {
        /// Length the model requires.
        expected: usize,
        /// Length that was supplied.
        actual: usize,
    },
    /// `backward` was called before `forward` (no cached activations).
    BackwardBeforeForward(&'static str),
    /// Training produced NaN/inf parameters or loss.
    NonFinite(&'static str),
}

impl fmt::Display for NnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NnError::Tensor(e) => write!(f, "tensor error: {e}"),
            NnError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            NnError::BatchMismatch(msg) => write!(f, "batch mismatch: {msg}"),
            NnError::ParamLengthMismatch { expected, actual } => {
                write!(
                    f,
                    "parameter vector length {actual} does not match model size {expected}"
                )
            }
            NnError::BackwardBeforeForward(layer) => {
                write!(f, "backward called before forward in {layer}")
            }
            NnError::NonFinite(what) => write!(f, "non-finite value produced in {what}"),
        }
    }
}

impl Error for NnError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            NnError::Tensor(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TensorError> for NnError {
    fn from(e: TensorError) -> Self {
        NnError::Tensor(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tensor_error_is_wrapped_with_source() {
        let err = NnError::from(TensorError::Empty("mean"));
        assert!(err.to_string().contains("tensor error"));
        assert!(Error::source(&err).is_some());
    }

    #[test]
    fn param_length_message_names_both_lengths() {
        let err = NnError::ParamLengthMismatch {
            expected: 10,
            actual: 7,
        };
        let msg = err.to_string();
        assert!(msg.contains("10") && msg.contains('7'));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<NnError>();
    }
}
