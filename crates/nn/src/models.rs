//! Model zoo: CPU-feasible stand-ins for the paper's workloads.
//!
//! The paper trains ResNet-18 and VGG-16 on CIFAR-10 on four V100s. The
//! algorithms under test exchange *parameter vectors* and are agnostic to
//! the architecture behind them; what matters for reproducing the paper's
//! *shape* is having (a) a residual CNN that converges stably and (b) a
//! plain stacked CNN that is touchier — which is exactly the
//! [`resnet18_lite`] / [`vgg16_lite`] pair (see DESIGN.md §2).

use hadfl_tensor::SeedStream;

use crate::activation::Relu;
use crate::batchnorm::BatchNorm2d;
use crate::conv2d::Conv2d;
use crate::dense::Dense;
use crate::error::NnError;
use crate::layer::Flatten;
use crate::model::Model;
use crate::pool::{GlobalAvgPool2d, MaxPool2d};
use crate::residual::Residual;
use crate::sequential::Sequential;

fn expect_chw(sample_dims: &[usize]) -> Result<(usize, usize, usize), NnError> {
    match sample_dims {
        &[c, h, w] if c > 0 && h > 0 && w > 0 => Ok((c, h, w)),
        other => Err(NnError::InvalidConfig(format!(
            "expected [channels, height, width] sample dims, got {other:?}"
        ))),
    }
}

/// A multi-layer perceptron over flattened inputs.
///
/// `sample_dims` may be any shape (it is flattened); `hidden` lists the
/// hidden-layer widths.
///
/// # Errors
///
/// Returns [`NnError::InvalidConfig`] for zero classes or an empty input.
///
/// # Example
///
/// ```
/// use hadfl_nn::models;
///
/// # fn main() -> Result<(), hadfl_nn::NnError> {
/// let m = models::mlp(&[3, 8, 8], &[32, 16], 10, 0)?;
/// assert_eq!(m.arch(), "mlp");
/// # Ok(())
/// # }
/// ```
pub fn mlp(
    sample_dims: &[usize],
    hidden: &[usize],
    classes: usize,
    seed: u64,
) -> Result<Model, NnError> {
    let input_len: usize = sample_dims.iter().product();
    if input_len == 0 {
        return Err(NnError::InvalidConfig("mlp input has zero elements".into()));
    }
    let mut rng = SeedStream::new(seed ^ 0x0DE1_0001);
    let mut net = Sequential::new();
    net.push(Flatten::new());
    let mut width = input_len;
    for &h in hidden {
        if h == 0 {
            return Err(NnError::InvalidConfig("mlp hidden width of zero".into()));
        }
        net.push(Dense::new(width, h, &mut rng));
        net.push(Relu::new());
        width = h;
    }
    net.push(Dense::new(width, classes, &mut rng));
    Model::new(net, classes, "mlp")
}

/// One `Conv → BN → ReLU → Conv → BN` residual body at constant width.
fn res_block(width: usize, h: usize, w: usize, rng: &mut SeedStream) -> Result<Residual, NnError> {
    let mut body = Sequential::new();
    body.push(Conv2d::new(width, width, h, w, 3, 1, 1, rng)?);
    body.push(BatchNorm2d::new(width)?);
    body.push(Relu::new());
    body.push(Conv2d::new(width, width, h, w, 3, 1, 1, rng)?);
    body.push(BatchNorm2d::new(width)?);
    Ok(Residual::new(body))
}

/// A scaled-down residual CNN in the shape of ResNet-18: a stem
/// convolution and three stages of `(strided conv ↓2) → residual block`,
/// ending in global average pooling and a linear classifier.
///
/// `height` and `width` must be divisible by 4 (two ↓2 stages).
///
/// # Errors
///
/// Returns [`NnError::InvalidConfig`] for non-CHW sample dims or extents
/// not divisible by 4.
///
/// # Example
///
/// ```
/// use hadfl_nn::models;
///
/// # fn main() -> Result<(), hadfl_nn::NnError> {
/// let m = models::resnet18_lite(&[3, 16, 16], 10, 0)?;
/// assert_eq!(m.arch(), "resnet18_lite");
/// assert!(m.num_params() > 1000);
/// # Ok(())
/// # }
/// ```
pub fn resnet18_lite(sample_dims: &[usize], classes: usize, seed: u64) -> Result<Model, NnError> {
    let (c, h, w) = expect_chw(sample_dims)?;
    if h % 4 != 0 || w % 4 != 0 {
        return Err(NnError::InvalidConfig(format!(
            "resnet18_lite needs height/width divisible by 4, got {h}x{w}"
        )));
    }
    const WIDTH: usize = 8;
    let mut rng = SeedStream::new(seed ^ 0x0DE1_0002);
    let mut net = Sequential::new();
    // Stem
    net.push(Conv2d::new(c, WIDTH, h, w, 3, 1, 1, &mut rng)?);
    net.push(BatchNorm2d::new(WIDTH)?);
    net.push(Relu::new());
    net.push(res_block(WIDTH, h, w, &mut rng)?);
    net.push(Relu::new());
    // Stage 2: ↓2, double width
    let (h2, w2) = (h / 2, w / 2);
    net.push(Conv2d::new(WIDTH, 2 * WIDTH, h, w, 3, 2, 1, &mut rng)?);
    net.push(BatchNorm2d::new(2 * WIDTH)?);
    net.push(Relu::new());
    net.push(res_block(2 * WIDTH, h2, w2, &mut rng)?);
    net.push(Relu::new());
    // Stage 3: ↓2, double width
    let (h3, w3) = (h2 / 2, w2 / 2);
    net.push(Conv2d::new(
        2 * WIDTH,
        4 * WIDTH,
        h2,
        w2,
        3,
        2,
        1,
        &mut rng,
    )?);
    net.push(BatchNorm2d::new(4 * WIDTH)?);
    net.push(Relu::new());
    net.push(res_block(4 * WIDTH, h3, w3, &mut rng)?);
    net.push(Relu::new());
    // Head
    net.push(GlobalAvgPool2d::new());
    net.push(Dense::new(4 * WIDTH, classes, &mut rng));
    Model::new(net, classes, "resnet18_lite")
}

/// A scaled-down plain stacked CNN in the shape of VGG-16: blocks of
/// `Conv → ReLU` pairs separated by 2×2 max pooling, with a two-layer
/// dense classifier and — faithfully to VGG — no batch normalization and
/// no skip connections, which makes it the less stable of the pair.
///
/// `height` and `width` must be divisible by 8 (three pooling stages).
///
/// # Errors
///
/// Returns [`NnError::InvalidConfig`] for non-CHW sample dims or extents
/// not divisible by 8.
///
/// # Example
///
/// ```
/// use hadfl_nn::models;
///
/// # fn main() -> Result<(), hadfl_nn::NnError> {
/// let m = models::vgg16_lite(&[3, 16, 16], 10, 0)?;
/// assert_eq!(m.arch(), "vgg16_lite");
/// # Ok(())
/// # }
/// ```
pub fn vgg16_lite(sample_dims: &[usize], classes: usize, seed: u64) -> Result<Model, NnError> {
    let (c, h, w) = expect_chw(sample_dims)?;
    if h % 8 != 0 || w % 8 != 0 {
        return Err(NnError::InvalidConfig(format!(
            "vgg16_lite needs height/width divisible by 8, got {h}x{w}"
        )));
    }
    const WIDTH: usize = 8;
    let mut rng = SeedStream::new(seed ^ 0x0DE1_0003);
    let mut net = Sequential::new();
    // Block 1 @ h×w
    net.push(Conv2d::new(c, WIDTH, h, w, 3, 1, 1, &mut rng)?);
    net.push(Relu::new());
    net.push(Conv2d::new(WIDTH, WIDTH, h, w, 3, 1, 1, &mut rng)?);
    net.push(Relu::new());
    net.push(MaxPool2d::new(2, 2)?);
    // Block 2 @ h/2
    let (h2, w2) = (h / 2, w / 2);
    net.push(Conv2d::new(WIDTH, 2 * WIDTH, h2, w2, 3, 1, 1, &mut rng)?);
    net.push(Relu::new());
    net.push(Conv2d::new(
        2 * WIDTH,
        2 * WIDTH,
        h2,
        w2,
        3,
        1,
        1,
        &mut rng,
    )?);
    net.push(Relu::new());
    net.push(MaxPool2d::new(2, 2)?);
    // Block 3 @ h/4
    let (h3, w3) = (h2 / 2, w2 / 2);
    net.push(Conv2d::new(
        2 * WIDTH,
        4 * WIDTH,
        h3,
        w3,
        3,
        1,
        1,
        &mut rng,
    )?);
    net.push(Relu::new());
    net.push(MaxPool2d::new(2, 2)?);
    // Classifier @ h/8
    let (h4, w4) = (h3 / 2, w3 / 2);
    let feat = 4 * WIDTH * h4 * w4;
    net.push(Flatten::new());
    net.push(Dense::new(feat, 2 * feat.min(64), &mut rng));
    net.push(Relu::new());
    net.push(Dense::new(2 * feat.min(64), classes, &mut rng));
    Model::new(net, classes, "vgg16_lite")
}

/// [`vgg16_lite`] with VGG's classifier dropout (p = 0.5 before each
/// dense layer) — closer to the original architecture; the paper-shape
/// experiments use the deterministic [`vgg16_lite`] so their traces stay
/// bit-reproducible across repeats with different data seeds only.
///
/// # Errors
///
/// Same conditions as [`vgg16_lite`].
pub fn vgg16_lite_dropout(
    sample_dims: &[usize],
    classes: usize,
    seed: u64,
) -> Result<Model, NnError> {
    let (c, h, w) = expect_chw(sample_dims)?;
    if h % 8 != 0 || w % 8 != 0 {
        return Err(NnError::InvalidConfig(format!(
            "vgg16_lite_dropout needs height/width divisible by 8, got {h}x{w}"
        )));
    }
    const WIDTH: usize = 8;
    let mut rng = SeedStream::new(seed ^ 0x0DE1_0004);
    let mut net = Sequential::new();
    net.push(Conv2d::new(c, WIDTH, h, w, 3, 1, 1, &mut rng)?);
    net.push(Relu::new());
    net.push(Conv2d::new(WIDTH, WIDTH, h, w, 3, 1, 1, &mut rng)?);
    net.push(Relu::new());
    net.push(MaxPool2d::new(2, 2)?);
    let (h2, w2) = (h / 2, w / 2);
    net.push(Conv2d::new(WIDTH, 2 * WIDTH, h2, w2, 3, 1, 1, &mut rng)?);
    net.push(Relu::new());
    net.push(Conv2d::new(
        2 * WIDTH,
        2 * WIDTH,
        h2,
        w2,
        3,
        1,
        1,
        &mut rng,
    )?);
    net.push(Relu::new());
    net.push(MaxPool2d::new(2, 2)?);
    let (h3, w3) = (h2 / 2, w2 / 2);
    net.push(Conv2d::new(
        2 * WIDTH,
        4 * WIDTH,
        h3,
        w3,
        3,
        1,
        1,
        &mut rng,
    )?);
    net.push(Relu::new());
    net.push(MaxPool2d::new(2, 2)?);
    let (h4, w4) = (h3 / 2, w3 / 2);
    let feat = 4 * WIDTH * h4 * w4;
    net.push(Flatten::new());
    net.push(crate::dropout::Dropout::new(0.5, seed ^ 0xD0_0001)?);
    net.push(Dense::new(feat, 2 * feat.min(64), &mut rng));
    net.push(Relu::new());
    net.push(crate::dropout::Dropout::new(0.5, seed ^ 0xD0_0002)?);
    net.push(Dense::new(2 * feat.min(64), classes, &mut rng));
    Model::new(net, classes, "vgg16_lite_dropout")
}

/// Builds a zoo model by name: `"mlp"`, `"resnet18_lite"`,
/// `"vgg16_lite"`, or `"vgg16_lite_dropout"` (the experiment harness's
/// `--model` flag).
///
/// # Errors
///
/// Returns [`NnError::InvalidConfig`] for an unknown name or a spec the
/// named builder rejects.
pub fn by_name(
    name: &str,
    sample_dims: &[usize],
    classes: usize,
    seed: u64,
) -> Result<Model, NnError> {
    match name {
        "mlp" => mlp(sample_dims, &[64, 32], classes, seed),
        "resnet18_lite" => resnet18_lite(sample_dims, classes, seed),
        "vgg16_lite" => vgg16_lite(sample_dims, classes, seed),
        "vgg16_lite_dropout" => vgg16_lite_dropout(sample_dims, classes, seed),
        other => Err(NnError::InvalidConfig(format!("unknown model '{other}'"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::{Dataset, SyntheticSpec};
    use crate::loader::Loader;
    use crate::optim::{LrSchedule, Sgd};

    #[test]
    fn all_models_forward_on_16x16() {
        let spec = SyntheticSpec::cifar_like();
        let ds = Dataset::synthetic_cifar(8, &spec, 1).unwrap();
        let (x, y) = ds.batch(&[0, 1, 2, 3]).unwrap();
        for name in ["mlp", "resnet18_lite", "vgg16_lite"] {
            let mut m = by_name(name, &spec.sample_dims(), spec.classes, 0).unwrap();
            let mut opt = Sgd::new(LrSchedule::constant(0.01), 0.0);
            let loss = m.train_step(&x, &y, &mut opt).unwrap();
            assert!(loss.is_finite(), "{name} produced non-finite loss");
        }
    }

    #[test]
    fn resnet_trains_on_tiny_task() {
        let spec = SyntheticSpec::tiny();
        let train = Dataset::synthetic_cifar(80, &spec, 10).unwrap();
        let mut m = resnet18_lite(&spec.sample_dims(), spec.classes, 1).unwrap();
        let mut opt = Sgd::new(LrSchedule::constant(0.05), 0.9);
        let mut loader = Loader::new(train.len(), 16, 0);
        let before = m.evaluate(&train, 40).unwrap();
        for _ in 0..4 {
            for batch in loader.epoch() {
                let (x, y) = train.batch(&batch).unwrap();
                m.train_step(&x, &y, &mut opt).unwrap();
            }
        }
        let after = m.evaluate(&train, 40).unwrap();
        assert!(
            after.loss < before.loss,
            "{} -> {}",
            before.loss,
            after.loss
        );
    }

    #[test]
    fn vgg_trains_on_tiny_task() {
        let spec = SyntheticSpec::tiny();
        let train = Dataset::synthetic_cifar(80, &spec, 11).unwrap();
        let mut m = vgg16_lite(&spec.sample_dims(), spec.classes, 1).unwrap();
        let mut opt = Sgd::new(LrSchedule::constant(0.05), 0.9);
        let mut loader = Loader::new(train.len(), 16, 0);
        let before = m.evaluate(&train, 40).unwrap();
        for _ in 0..4 {
            for batch in loader.epoch() {
                let (x, y) = train.batch(&batch).unwrap();
                m.train_step(&x, &y, &mut opt).unwrap();
            }
        }
        let after = m.evaluate(&train, 40).unwrap();
        assert!(
            after.loss < before.loss,
            "{} -> {}",
            before.loss,
            after.loss
        );
    }

    #[test]
    fn param_vectors_are_portable_across_instances() {
        let spec = SyntheticSpec::tiny();
        let a = resnet18_lite(&spec.sample_dims(), 10, 1).unwrap();
        let mut b = resnet18_lite(&spec.sample_dims(), 10, 2).unwrap();
        assert_ne!(a.param_vector(), b.param_vector());
        b.set_param_vector(&a.param_vector()).unwrap();
        assert_eq!(a.param_vector(), b.param_vector());
    }

    #[test]
    fn builders_validate_geometry() {
        assert!(resnet18_lite(&[3, 10, 10], 10, 0).is_err()); // not /4
        assert!(vgg16_lite(&[3, 12, 12], 10, 0).is_err()); // not /8
        assert!(mlp(&[0], &[4], 10, 0).is_err());
        assert!(mlp(&[4], &[0], 10, 0).is_err());
        assert!(by_name("alexnet", &[3, 8, 8], 10, 0).is_err());
    }

    #[test]
    fn zoo_names_resolve() {
        for name in ["mlp", "resnet18_lite", "vgg16_lite", "vgg16_lite_dropout"] {
            let m = by_name(name, &[3, 8, 8], 10, 0).unwrap();
            assert_eq!(m.arch(), name);
        }
    }

    #[test]
    fn vgg_dropout_trains_and_has_dropout_layers() {
        let spec = SyntheticSpec::tiny();
        let mut m = vgg16_lite_dropout(&spec.sample_dims(), spec.classes, 1).unwrap();
        assert_eq!(
            m.net()
                .layer_names()
                .iter()
                .filter(|&&n| n == "Dropout")
                .count(),
            2
        );
        // Same parameter count as the plain variant (dropout is
        // parameter-free) so the FL schemes can exchange either.
        let plain = vgg16_lite(&spec.sample_dims(), spec.classes, 1).unwrap();
        assert_eq!(m.num_params(), plain.num_params());
        let ds = Dataset::synthetic_cifar(32, &spec, 2).unwrap();
        let (x, y) = ds.batch(&(0..16).collect::<Vec<_>>()).unwrap();
        let mut opt = Sgd::new(LrSchedule::constant(0.01), 0.9);
        let loss = m.train_step(&x, &y, &mut opt).unwrap();
        assert!(loss.is_finite());
    }

    #[test]
    fn resnet_has_more_structure_than_mlp_head() {
        let m = resnet18_lite(&[3, 8, 8], 10, 0).unwrap();
        let names = m.net().layer_names();
        assert!(names.contains(&"Residual"));
        assert!(names.contains(&"BatchNorm2d"));
        assert!(names.contains(&"GlobalAvgPool2d"));
        let v = vgg16_lite(&[3, 8, 8], 10, 0).unwrap();
        let vnames = v.net().layer_names();
        assert!(vnames.contains(&"MaxPool2d"));
        assert!(!vnames.contains(&"Residual"), "vgg must be plain");
        assert!(!vnames.contains(&"BatchNorm2d"), "vgg must have no BN");
    }
}
