use hadfl_tensor::Tensor;

use crate::error::NnError;
use crate::layer::Layer;

/// 2-D max pooling over NCHW batches with a square window.
///
/// Backward routes each output gradient to the argmax position of its
/// window (ties to the first scanned position).
///
/// # Example
///
/// ```
/// use hadfl_nn::{Layer, MaxPool2d};
/// use hadfl_tensor::Tensor;
///
/// # fn main() -> Result<(), hadfl_nn::NnError> {
/// let mut pool = MaxPool2d::new(2, 2)?;
/// let y = pool.forward(&Tensor::ones(&[1, 3, 4, 4]), true)?;
/// assert_eq!(y.dims(), &[1, 3, 2, 2]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct MaxPool2d {
    window: usize,
    stride: usize,
    cached_argmax: Option<Vec<usize>>,
    cached_in_dims: Vec<usize>,
}

impl MaxPool2d {
    /// Creates a max-pool layer with the given window and stride.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidConfig`] if window or stride is zero.
    pub fn new(window: usize, stride: usize) -> Result<Self, NnError> {
        if window == 0 || stride == 0 {
            return Err(NnError::InvalidConfig(format!(
                "maxpool window {window} and stride {stride} must be positive"
            )));
        }
        Ok(MaxPool2d {
            window,
            stride,
            cached_argmax: None,
            cached_in_dims: Vec::new(),
        })
    }

    fn out_hw(&self, h: usize, w: usize) -> Result<(usize, usize), NnError> {
        if h < self.window || w < self.window {
            return Err(NnError::BatchMismatch(format!(
                "maxpool window {} larger than input {h}x{w}",
                self.window
            )));
        }
        Ok((
            (h - self.window) / self.stride + 1,
            (w - self.window) / self.stride + 1,
        ))
    }
}

impl Layer for MaxPool2d {
    fn forward(&mut self, input: &Tensor, train: bool) -> Result<Tensor, NnError> {
        let dims = input.dims();
        if dims.len() != 4 {
            return Err(NnError::BatchMismatch(format!(
                "maxpool expects NCHW input, got {dims:?}"
            )));
        }
        let (n, c, h, w) = (dims[0], dims[1], dims[2], dims[3]);
        let (oh, ow) = self.out_hw(h, w)?;
        let mut out = Tensor::zeros(&[n, c, oh, ow]);
        let mut argmax = vec![0usize; n * c * oh * ow];
        let src = input.as_slice();
        let dst = out.as_mut_slice();
        let mut oidx = 0;
        for img in 0..n {
            for ch in 0..c {
                let base = (img * c + ch) * h * w;
                for oy in 0..oh {
                    for ox in 0..ow {
                        let mut best = f32::NEG_INFINITY;
                        let mut best_at = 0;
                        for ky in 0..self.window {
                            for kx in 0..self.window {
                                let off =
                                    base + (oy * self.stride + ky) * w + ox * self.stride + kx;
                                if src[off] > best {
                                    best = src[off];
                                    best_at = off;
                                }
                            }
                        }
                        dst[oidx] = best;
                        argmax[oidx] = best_at;
                        oidx += 1;
                    }
                }
            }
        }
        if train {
            self.cached_argmax = Some(argmax);
            self.cached_in_dims = dims.to_vec();
        }
        Ok(out)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor, NnError> {
        let argmax = self
            .cached_argmax
            .as_ref()
            .ok_or(NnError::BackwardBeforeForward("MaxPool2d"))?;
        if grad_out.len() != argmax.len() {
            return Err(NnError::BatchMismatch(format!(
                "maxpool backward length {} does not match cached {}",
                grad_out.len(),
                argmax.len()
            )));
        }
        let mut gx = Tensor::zeros(&self.cached_in_dims);
        let gv = gx.as_mut_slice();
        for (&src_off, &g) in argmax.iter().zip(grad_out.as_slice()) {
            gv[src_off] += g;
        }
        Ok(gx)
    }

    fn visit_params(&self, _f: &mut dyn FnMut(&Tensor)) {}
    fn visit_params_mut(&mut self, _f: &mut dyn FnMut(&mut Tensor)) {}
    fn visit_params_grads_mut(&mut self, _f: &mut dyn FnMut(&mut Tensor, &mut Tensor)) {}
    fn zero_grads(&mut self) {}

    fn name(&self) -> &'static str {
        "MaxPool2d"
    }
}

/// Global average pooling: reduces each `(H, W)` channel plane to its mean,
/// producing `(N, C)`.
///
/// Used as the head of `resnet18_lite` in place of ResNet's final pooling.
#[derive(Debug, Default)]
pub struct GlobalAvgPool2d {
    cached_in_dims: Vec<usize>,
}

impl GlobalAvgPool2d {
    /// Creates a global average-pool layer.
    pub fn new() -> Self {
        GlobalAvgPool2d::default()
    }
}

impl Layer for GlobalAvgPool2d {
    fn forward(&mut self, input: &Tensor, train: bool) -> Result<Tensor, NnError> {
        let dims = input.dims();
        if dims.len() != 4 {
            return Err(NnError::BatchMismatch(format!(
                "global avg pool expects NCHW input, got {dims:?}"
            )));
        }
        let (n, c, h, w) = (dims[0], dims[1], dims[2], dims[3]);
        let plane = h * w;
        if plane == 0 {
            return Err(NnError::BatchMismatch(
                "global avg pool over empty plane".into(),
            ));
        }
        let mut out = Tensor::zeros(&[n, c]);
        let src = input.as_slice();
        let dst = out.as_mut_slice();
        for img in 0..n {
            for ch in 0..c {
                let base = (img * c + ch) * plane;
                dst[img * c + ch] = src[base..base + plane].iter().sum::<f32>() / plane as f32;
            }
        }
        if train {
            self.cached_in_dims = dims.to_vec();
        }
        Ok(out)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor, NnError> {
        if self.cached_in_dims.is_empty() {
            return Err(NnError::BackwardBeforeForward("GlobalAvgPool2d"));
        }
        let (n, c, h, w) = (
            self.cached_in_dims[0],
            self.cached_in_dims[1],
            self.cached_in_dims[2],
            self.cached_in_dims[3],
        );
        if grad_out.dims() != [n, c] {
            return Err(NnError::BatchMismatch(format!(
                "global avg pool backward got {:?}, expected [{n}, {c}]",
                grad_out.dims()
            )));
        }
        let plane = h * w;
        let scale = 1.0 / plane as f32;
        let mut gx = Tensor::zeros(&self.cached_in_dims);
        let gv = gx.as_mut_slice();
        for img in 0..n {
            for ch in 0..c {
                let g = grad_out.as_slice()[img * c + ch] * scale;
                let base = (img * c + ch) * plane;
                for v in &mut gv[base..base + plane] {
                    *v = g;
                }
            }
        }
        Ok(gx)
    }

    fn visit_params(&self, _f: &mut dyn FnMut(&Tensor)) {}
    fn visit_params_mut(&mut self, _f: &mut dyn FnMut(&mut Tensor)) {}
    fn visit_params_grads_mut(&mut self, _f: &mut dyn FnMut(&mut Tensor, &mut Tensor)) {}
    fn zero_grads(&mut self) {}

    fn name(&self) -> &'static str {
        "GlobalAvgPool2d"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maxpool_picks_window_max() {
        let mut p = MaxPool2d::new(2, 2).unwrap();
        let x = Tensor::from_vec(
            vec![
                1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0, 11.0, 12.0, 13.0, 14.0, 15.0,
                16.0,
            ],
            &[1, 1, 4, 4],
        )
        .unwrap();
        let y = p.forward(&x, false).unwrap();
        assert_eq!(y.as_slice(), &[6.0, 8.0, 14.0, 16.0]);
    }

    #[test]
    fn maxpool_backward_routes_to_argmax() {
        let mut p = MaxPool2d::new(2, 2).unwrap();
        let x = Tensor::from_vec(vec![1.0, 9.0, 2.0, 3.0], &[1, 1, 2, 2]).unwrap();
        p.forward(&x, true).unwrap();
        let gx = p
            .backward(&Tensor::from_vec(vec![7.0], &[1, 1, 1, 1]).unwrap())
            .unwrap();
        assert_eq!(gx.as_slice(), &[0.0, 7.0, 0.0, 0.0]);
    }

    #[test]
    fn maxpool_rejects_window_larger_than_input() {
        let mut p = MaxPool2d::new(4, 4).unwrap();
        assert!(p.forward(&Tensor::zeros(&[1, 1, 2, 2]), false).is_err());
    }

    #[test]
    fn maxpool_rejects_zero_window() {
        assert!(MaxPool2d::new(0, 1).is_err());
        assert!(MaxPool2d::new(2, 0).is_err());
    }

    #[test]
    fn global_avg_pool_means_planes() {
        let mut p = GlobalAvgPool2d::new();
        let x = Tensor::from_vec(
            vec![1.0, 2.0, 3.0, 4.0, 10.0, 10.0, 10.0, 10.0],
            &[1, 2, 2, 2],
        )
        .unwrap();
        let y = p.forward(&x, false).unwrap();
        assert_eq!(y.as_slice(), &[2.5, 10.0]);
    }

    #[test]
    fn global_avg_pool_backward_spreads_evenly() {
        let mut p = GlobalAvgPool2d::new();
        p.forward(&Tensor::zeros(&[1, 1, 2, 2]), true).unwrap();
        let gx = p
            .backward(&Tensor::from_vec(vec![8.0], &[1, 1]).unwrap())
            .unwrap();
        assert_eq!(gx.as_slice(), &[2.0, 2.0, 2.0, 2.0]);
    }

    #[test]
    fn pools_have_no_params() {
        assert_eq!(MaxPool2d::new(2, 2).unwrap().param_count(), 0);
        assert_eq!(GlobalAvgPool2d::new().param_count(), 0);
    }

    #[test]
    fn backward_without_forward_errors() {
        let mut mp = MaxPool2d::new(2, 2).unwrap();
        assert!(mp.backward(&Tensor::zeros(&[1, 1, 1, 1])).is_err());
        let mut gp = GlobalAvgPool2d::new();
        assert!(gp.backward(&Tensor::zeros(&[1, 1])).is_err());
    }
}
