use hadfl_tensor::{SeedStream, Tensor};

use crate::error::NnError;
use crate::layer::Layer;

/// Inverted dropout: during training each activation is zeroed with
/// probability `p` and the survivors are scaled by `1/(1-p)`, so
/// evaluation needs no rescaling. The real VGG-16 uses dropout in its
/// classifier; [`crate::models::vgg16_lite_dropout`] mirrors that.
///
/// The mask stream is seeded, keeping training runs reproducible.
///
/// # Example
///
/// ```
/// use hadfl_nn::{Dropout, Layer};
/// use hadfl_tensor::Tensor;
///
/// # fn main() -> Result<(), hadfl_nn::NnError> {
/// let mut drop = Dropout::new(0.5, 7)?;
/// // Evaluation mode is the identity.
/// let x = Tensor::ones(&[2, 4]);
/// assert_eq!(drop.forward(&x, false)?, x);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Dropout {
    p: f32,
    rng: SeedStream,
    mask: Option<Vec<bool>>,
}

impl Dropout {
    /// Creates a dropout layer with drop probability `p ∈ [0, 1)`.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidConfig`] if `p` is outside `[0, 1)`.
    pub fn new(p: f32, seed: u64) -> Result<Self, NnError> {
        if !(0.0..1.0).contains(&p) {
            return Err(NnError::InvalidConfig(format!(
                "dropout probability must be in [0, 1), got {p}"
            )));
        }
        Ok(Dropout {
            p,
            rng: SeedStream::new(seed ^ 0xD20_0001),
            mask: None,
        })
    }

    /// The configured drop probability.
    pub fn probability(&self) -> f32 {
        self.p
    }
}

impl Layer for Dropout {
    fn forward(&mut self, input: &Tensor, train: bool) -> Result<Tensor, NnError> {
        if !train || self.p == 0.0 {
            if train {
                self.mask = Some(vec![true; input.len()]);
            }
            return Ok(input.clone());
        }
        let keep_scale = 1.0 / (1.0 - self.p);
        let mask: Vec<bool> = (0..input.len())
            .map(|_| self.rng.uniform(0.0, 1.0) >= self.p)
            .collect();
        let mut out = input.clone();
        for (v, &keep) in out.as_mut_slice().iter_mut().zip(&mask) {
            *v = if keep { *v * keep_scale } else { 0.0 };
        }
        self.mask = Some(mask);
        Ok(out)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor, NnError> {
        let mask = self
            .mask
            .as_ref()
            .ok_or(NnError::BackwardBeforeForward("Dropout"))?;
        if mask.len() != grad_out.len() {
            return Err(NnError::BatchMismatch(format!(
                "dropout backward length {} does not match cached mask {}",
                grad_out.len(),
                mask.len()
            )));
        }
        let keep_scale = 1.0 / (1.0 - self.p);
        let mut gx = grad_out.clone();
        for (g, &keep) in gx.as_mut_slice().iter_mut().zip(mask) {
            *g = if keep { *g * keep_scale } else { 0.0 };
        }
        Ok(gx)
    }

    fn visit_params(&self, _f: &mut dyn FnMut(&Tensor)) {}
    fn visit_params_mut(&mut self, _f: &mut dyn FnMut(&mut Tensor)) {}
    fn visit_params_grads_mut(&mut self, _f: &mut dyn FnMut(&mut Tensor, &mut Tensor)) {}
    fn zero_grads(&mut self) {}

    fn name(&self) -> &'static str {
        "Dropout"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_mode_is_identity() {
        let mut d = Dropout::new(0.8, 1).unwrap();
        let x = Tensor::from_vec(vec![1.0, -2.0, 3.0], &[1, 3]).unwrap();
        assert_eq!(d.forward(&x, false).unwrap(), x);
    }

    #[test]
    fn training_drops_roughly_p_fraction() {
        let mut d = Dropout::new(0.5, 2).unwrap();
        let x = Tensor::ones(&[1, 10_000]);
        let y = d.forward(&x, true).unwrap();
        let dropped = y.as_slice().iter().filter(|&&v| v == 0.0).count();
        let rate = dropped as f32 / 10_000.0;
        assert!((rate - 0.5).abs() < 0.05, "drop rate {rate}");
        // survivors are scaled by 1/(1-p) = 2
        assert!(y
            .as_slice()
            .iter()
            .all(|&v| v == 0.0 || (v - 2.0).abs() < 1e-6));
    }

    #[test]
    fn expected_value_is_preserved() {
        let mut d = Dropout::new(0.3, 3).unwrap();
        let x = Tensor::ones(&[1, 50_000]);
        let y = d.forward(&x, true).unwrap();
        let mean: f32 = y.as_slice().iter().sum::<f32>() / 50_000.0;
        assert!((mean - 1.0).abs() < 0.03, "mean {mean}");
    }

    #[test]
    fn backward_reuses_forward_mask() {
        let mut d = Dropout::new(0.5, 4).unwrap();
        let x = Tensor::ones(&[1, 100]);
        let y = d.forward(&x, true).unwrap();
        let gx = d.backward(&Tensor::ones(&[1, 100])).unwrap();
        for (o, g) in y.as_slice().iter().zip(gx.as_slice()) {
            assert_eq!(*o == 0.0, *g == 0.0, "mask must match between passes");
        }
    }

    #[test]
    fn p_zero_is_identity_in_training() {
        let mut d = Dropout::new(0.0, 5).unwrap();
        let x = Tensor::from_vec(vec![1.0, 2.0], &[1, 2]).unwrap();
        assert_eq!(d.forward(&x, true).unwrap(), x);
        let gx = d.backward(&Tensor::ones(&[1, 2])).unwrap();
        assert_eq!(gx.as_slice(), &[1.0, 1.0]);
    }

    #[test]
    fn rejects_bad_probability() {
        assert!(Dropout::new(1.0, 0).is_err());
        assert!(Dropout::new(-0.1, 0).is_err());
        assert!(Dropout::new(f32::NAN, 0).is_err());
    }

    #[test]
    fn backward_without_forward_errors() {
        let mut d = Dropout::new(0.5, 6).unwrap();
        assert!(matches!(
            d.backward(&Tensor::ones(&[1, 2])),
            Err(NnError::BackwardBeforeForward("Dropout"))
        ));
    }
}
