//! From-scratch CPU neural-network training substrate for the HADFL
//! reproduction.
//!
//! The federated-learning algorithms under test (HADFL, decentralized
//! FedAvg, synchronous distributed training) operate on *parameter
//! vectors*; this crate supplies everything needed to give those vectors
//! meaning on a CPU within a test budget:
//!
//! - layers with hand-written backward passes ([`Dense`], [`Conv2d`],
//!   [`Relu`], [`MaxPool2d`], [`GlobalAvgPool2d`], [`BatchNorm2d`],
//!   [`Residual`], [`Flatten`]), composed by [`Sequential`];
//! - softmax cross-entropy ([`softmax_cross_entropy`]);
//! - [`Sgd`] with momentum and warm-up learning-rate schedules
//!   ([`LrSchedule`]);
//! - a model zoo ([`models`]) with `resnet18_lite` / `vgg16_lite` /
//!   `mlp`, CPU-feasible stand-ins for the paper's ResNet-18 / VGG-16
//!   (see DESIGN.md §2 for the substitution argument);
//! - a synthetic CIFAR-like dataset ([`Dataset::synthetic_cifar`]) with
//!   IID and Dirichlet non-IID federated sharding;
//! - [`Model`], which packages a network with flatten/unflatten parameter
//!   vector access — the interface the FL crates communicate through.
//!
//! # Example
//!
//! ```
//! use hadfl_nn::{models, Dataset, Loader, LrSchedule, Sgd, SyntheticSpec};
//!
//! # fn main() -> Result<(), hadfl_nn::NnError> {
//! let spec = SyntheticSpec::tiny();
//! let train = Dataset::synthetic_cifar(64, &spec, 1)?;
//! let test = Dataset::synthetic_cifar(32, &spec, 2)?;
//! let mut model = models::mlp(&spec.sample_dims(), &[16], spec.classes, 7)?;
//! let mut opt = Sgd::new(LrSchedule::constant(0.05), 0.0);
//! let mut loader = Loader::new(train.len(), 16, 3);
//! for _epoch in 0..2 {
//!     for batch in loader.epoch() {
//!         let (x, y) = train.batch(&batch)?;
//!         model.train_step(&x, &y, &mut opt)?;
//!     }
//! }
//! let m = model.evaluate(&test, 16)?;
//! assert!(m.accuracy >= 0.0 && m.accuracy <= 1.0);
//! # Ok(())
//! # }
//! ```

// `!(x > 0)`-style guards are deliberate: unlike `x <= 0` they also
// reject NaN, which is exactly what the validators want.
#![allow(clippy::neg_cmp_op_on_partial_ord)]
mod activation;
mod batchnorm;
mod conv2d;
mod data;
mod dense;
mod dropout;
mod error;
mod layer;
mod loader;
mod loss;
mod model;
pub mod models;
mod optim;
mod pool;
mod residual;
mod sequential;

pub use activation::Relu;
pub use batchnorm::BatchNorm2d;
pub use conv2d::Conv2d;
pub use data::{Dataset, ShardSpec, SyntheticSpec};
pub use dense::Dense;
pub use dropout::Dropout;
pub use error::NnError;
pub use layer::{Flatten, Layer};
pub use loader::Loader;
pub use loss::softmax_cross_entropy;
pub use model::{Metrics, Model};
pub use optim::{LrSchedule, Sgd};
pub use pool::{GlobalAvgPool2d, MaxPool2d};
pub use residual::Residual;
pub use sequential::Sequential;
