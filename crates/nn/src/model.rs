use hadfl_tensor::{argmax, Tensor};

use crate::data::Dataset;
use crate::error::NnError;
use crate::layer::Layer;
use crate::loss::softmax_cross_entropy;
use crate::optim::Sgd;
use crate::sequential::Sequential;

/// Evaluation metrics over a dataset.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Metrics {
    /// Mean cross-entropy loss.
    pub loss: f32,
    /// Fraction of correctly classified samples in `[0, 1]`.
    pub accuracy: f32,
    /// Number of samples evaluated.
    pub samples: usize,
}

/// A classification network packaged with the operations the
/// federated-learning schemes need: train steps, evaluation, and — most
/// importantly — *flat parameter vector* access, the unit of communication
/// in HADFL, FedAvg, and all-reduce alike.
///
/// # Example
///
/// ```
/// use hadfl_nn::{models, SyntheticSpec};
///
/// # fn main() -> Result<(), hadfl_nn::NnError> {
/// let spec = SyntheticSpec::tiny();
/// let model = models::mlp(&spec.sample_dims(), &[16], spec.classes, 7)?;
/// let params = model.param_vector();
/// assert_eq!(params.len(), model.num_params());
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Model {
    net: Sequential,
    num_classes: usize,
    arch: String,
}

impl Model {
    /// Wraps a network whose final layer emits `(batch, num_classes)`
    /// logits.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidConfig`] if `num_classes` is zero or the
    /// network is empty.
    pub fn new(net: Sequential, num_classes: usize, arch: &str) -> Result<Self, NnError> {
        if num_classes == 0 {
            return Err(NnError::InvalidConfig(
                "model needs at least one class".into(),
            ));
        }
        if net.is_empty() {
            return Err(NnError::InvalidConfig("model network has no layers".into()));
        }
        Ok(Model {
            net,
            num_classes,
            arch: arch.to_string(),
        })
    }

    /// Architecture name (e.g. `"resnet18_lite"`).
    pub fn arch(&self) -> &str {
        &self.arch
    }

    /// Number of output classes.
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// Total scalar parameter count — the model size `M` in the paper's
    /// communication-volume formulas.
    pub fn num_params(&self) -> usize {
        self.net.param_count()
    }

    /// The underlying network (diagnostics).
    pub fn net(&self) -> &Sequential {
        &self.net
    }

    /// Copies all parameters into one flat vector, in deterministic
    /// traversal order.
    pub fn param_vector(&self) -> Vec<f32> {
        let mut out = Vec::with_capacity(self.num_params());
        self.net
            .visit_params(&mut |p| out.extend_from_slice(p.as_slice()));
        out
    }

    /// Overwrites all parameters from a flat vector produced by
    /// [`param_vector`](Model::param_vector) (on this or an identically
    /// shaped model).
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ParamLengthMismatch`] if the length differs.
    pub fn set_param_vector(&mut self, params: &[f32]) -> Result<(), NnError> {
        if params.len() != self.num_params() {
            return Err(NnError::ParamLengthMismatch {
                expected: self.num_params(),
                actual: params.len(),
            });
        }
        let mut offset = 0;
        self.net.visit_params_mut(&mut |p| {
            let n = p.len();
            p.as_mut_slice()
                .copy_from_slice(&params[offset..offset + n]);
            offset += n;
        });
        Ok(())
    }

    /// Runs one SGD step on a batch, returning the batch loss.
    ///
    /// # Errors
    ///
    /// Propagates shape errors from the forward/backward pass and
    /// [`NnError::NonFinite`] if the update diverges.
    pub fn train_step(
        &mut self,
        x: &Tensor,
        labels: &[usize],
        opt: &mut Sgd,
    ) -> Result<f32, NnError> {
        let _prof = hadfl_prof::scope("train_step");
        let logits = self.net.forward(x, true)?;
        if logits.dims().len() != 2 || logits.dims()[1] != self.num_classes {
            return Err(NnError::InvalidConfig(format!(
                "network produced {:?} logits for {} classes",
                logits.dims(),
                self.num_classes
            )));
        }
        let (loss, grad) = softmax_cross_entropy(&logits, labels)?;
        if !loss.is_finite() {
            return Err(NnError::NonFinite("training loss"));
        }
        self.net.backward(&grad)?;
        opt.step(&mut self.net)?;
        Ok(loss)
    }

    /// Computes loss and accumulates gradients *without* applying an
    /// update — used by the synchronous distributed-training baseline,
    /// which all-reduces gradients before stepping.
    ///
    /// # Errors
    ///
    /// Propagates shape errors from the forward/backward pass.
    pub fn accumulate_grads(&mut self, x: &Tensor, labels: &[usize]) -> Result<f32, NnError> {
        let logits = self.net.forward(x, true)?;
        let (loss, grad) = softmax_cross_entropy(&logits, labels)?;
        self.net.backward(&grad)?;
        Ok(loss)
    }

    /// Copies the accumulated gradients into one flat vector (same order
    /// as [`param_vector`](Model::param_vector)).
    pub fn grad_vector(&mut self) -> Vec<f32> {
        let mut out = Vec::with_capacity(self.num_params());
        self.net
            .visit_params_grads_mut(&mut |_, g| out.extend_from_slice(g.as_slice()));
        out
    }

    /// Overwrites the accumulated gradients from a flat vector.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ParamLengthMismatch`] if the length differs.
    pub fn set_grad_vector(&mut self, grads: &[f32]) -> Result<(), NnError> {
        if grads.len() != self.num_params() {
            return Err(NnError::ParamLengthMismatch {
                expected: self.num_params(),
                actual: grads.len(),
            });
        }
        let mut offset = 0;
        self.net.visit_params_grads_mut(&mut |_, g| {
            let n = g.len();
            g.as_mut_slice().copy_from_slice(&grads[offset..offset + n]);
            offset += n;
        });
        Ok(())
    }

    /// Applies one optimizer step from the currently stored gradients.
    ///
    /// # Errors
    ///
    /// Propagates optimizer errors ([`NnError::NonFinite`] on divergence).
    pub fn apply_step(&mut self, opt: &mut Sgd) -> Result<(), NnError> {
        opt.step(&mut self.net)
    }

    /// Resets accumulated gradients to zero.
    pub fn zero_grads(&mut self) {
        self.net.zero_grads();
    }

    /// Predicts class indices for a batch (evaluation mode).
    ///
    /// # Errors
    ///
    /// Propagates shape errors from the forward pass.
    pub fn predict(&mut self, x: &Tensor) -> Result<Vec<usize>, NnError> {
        let logits = self.net.forward(x, false)?;
        let (batch, classes) = (logits.dims()[0], logits.dims()[1]);
        let mut out = Vec::with_capacity(batch);
        for r in 0..batch {
            out.push(argmax(&logits.as_slice()[r * classes..(r + 1) * classes])?);
        }
        Ok(out)
    }

    /// Evaluates mean loss and accuracy over a dataset in mini-batches.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::BatchMismatch`] for an empty dataset, and
    /// propagates forward-pass errors.
    pub fn evaluate(&mut self, ds: &Dataset, batch_size: usize) -> Result<Metrics, NnError> {
        if ds.is_empty() {
            return Err(NnError::BatchMismatch(
                "cannot evaluate on an empty dataset".into(),
            ));
        }
        let indices: Vec<usize> = (0..ds.len()).collect();
        let mut total_loss = 0.0f64;
        let mut correct = 0usize;
        for chunk in indices.chunks(batch_size.max(1)) {
            let (x, y) = ds.batch(chunk)?;
            let logits = self.net.forward(&x, false)?;
            let (loss, _) = softmax_cross_entropy(&logits, &y)?;
            total_loss += loss as f64 * chunk.len() as f64;
            let classes = logits.dims()[1];
            for (r, &label) in y.iter().enumerate() {
                if argmax(&logits.as_slice()[r * classes..(r + 1) * classes])? == label {
                    correct += 1;
                }
            }
        }
        Ok(Metrics {
            loss: (total_loss / ds.len() as f64) as f32,
            accuracy: correct as f32 / ds.len() as f32,
            samples: ds.len(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::SyntheticSpec;
    use crate::loader::Loader;
    use crate::models;
    use crate::optim::LrSchedule;

    fn tiny_model(seed: u64) -> Model {
        let spec = SyntheticSpec::tiny();
        models::mlp(&spec.sample_dims(), &[16], spec.classes, seed).unwrap()
    }

    #[test]
    fn param_vector_roundtrip() {
        let mut m = tiny_model(1);
        let v = m.param_vector();
        assert_eq!(v.len(), m.num_params());
        let doubled: Vec<f32> = v.iter().map(|x| x * 2.0).collect();
        m.set_param_vector(&doubled).unwrap();
        assert_eq!(m.param_vector(), doubled);
        assert!(m.set_param_vector(&doubled[1..]).is_err());
    }

    #[test]
    fn identical_seeds_give_identical_models() {
        let a = tiny_model(5);
        let b = tiny_model(5);
        let c = tiny_model(6);
        assert_eq!(a.param_vector(), b.param_vector());
        assert_ne!(a.param_vector(), c.param_vector());
    }

    #[test]
    fn training_reduces_loss_on_small_task() {
        let spec = SyntheticSpec::tiny();
        let train = Dataset::synthetic_cifar(120, &spec, 10).unwrap();
        let mut m = tiny_model(2);
        let mut opt = Sgd::new(LrSchedule::constant(0.05), 0.9);
        let mut loader = Loader::new(train.len(), 20, 0);
        let before = m.evaluate(&train, 32).unwrap();
        for _ in 0..8 {
            for batch in loader.epoch() {
                let (x, y) = train.batch(&batch).unwrap();
                m.train_step(&x, &y, &mut opt).unwrap();
            }
        }
        let after = m.evaluate(&train, 32).unwrap();
        assert!(
            after.loss < before.loss * 0.8,
            "loss did not drop: {} -> {}",
            before.loss,
            after.loss
        );
        assert!(after.accuracy > before.accuracy);
    }

    #[test]
    fn grad_vector_roundtrip() {
        let spec = SyntheticSpec::tiny();
        let ds = Dataset::synthetic_cifar(8, &spec, 3).unwrap();
        let mut m = tiny_model(3);
        let (x, y) = ds.batch(&[0, 1, 2, 3]).unwrap();
        m.accumulate_grads(&x, &y).unwrap();
        let g = m.grad_vector();
        assert_eq!(g.len(), m.num_params());
        assert!(g.iter().any(|&v| v != 0.0));
        m.zero_grads();
        assert!(m.grad_vector().iter().all(|&v| v == 0.0));
        m.set_grad_vector(&g).unwrap();
        assert_eq!(m.grad_vector(), g);
    }

    #[test]
    fn predict_shapes() {
        let spec = SyntheticSpec::tiny();
        let ds = Dataset::synthetic_cifar(6, &spec, 3).unwrap();
        let mut m = tiny_model(4);
        let (x, _) = ds.batch(&[0, 1, 2]).unwrap();
        let preds = m.predict(&x).unwrap();
        assert_eq!(preds.len(), 3);
        assert!(preds.iter().all(|&p| p < 10));
    }

    #[test]
    fn evaluate_rejects_empty_dataset() {
        let spec = SyntheticSpec::tiny();
        let ds = Dataset::synthetic_cifar(4, &spec, 3).unwrap();
        let empty = ds.subset(&[]).unwrap();
        let mut m = tiny_model(4);
        assert!(m.evaluate(&empty, 4).is_err());
    }

    #[test]
    fn model_rejects_empty_net_or_zero_classes() {
        assert!(Model::new(Sequential::new(), 10, "x").is_err());
        let mut net = Sequential::new();
        net.push(crate::layer::Flatten::new());
        assert!(Model::new(net, 0, "x").is_err());
    }
}
