//! Softmax cross-entropy, the single loss the paper's workloads use.

use hadfl_tensor::{log_softmax_rows, Tensor};

use crate::error::NnError;

/// Computes mean softmax cross-entropy over a batch and the gradient
/// w.r.t. the logits.
///
/// `logits` is `(batch, classes)`; `labels[i]` is the class index of row
/// `i`. Returns `(loss, grad_logits)` where
/// `grad = (softmax(logits) - onehot(labels)) / batch` — already averaged,
/// so feeding it straight into `Layer::backward` yields gradients of the
/// *mean* loss, matching Eq. (1) of the paper.
///
/// # Errors
///
/// Returns [`NnError::BatchMismatch`] if the label count differs from the
/// batch size or a label is out of range, and a tensor error if `logits`
/// is not rank 2.
///
/// # Example
///
/// ```
/// use hadfl_nn::softmax_cross_entropy;
/// use hadfl_tensor::Tensor;
///
/// # fn main() -> Result<(), hadfl_nn::NnError> {
/// let logits = Tensor::from_vec(vec![10.0, -10.0], &[1, 2])?;
/// let (loss, grad) = softmax_cross_entropy(&logits, &[0])?;
/// assert!(loss < 1e-3);           // confidently correct
/// assert_eq!(grad.dims(), &[1, 2]);
/// # Ok(())
/// # }
/// ```
pub fn softmax_cross_entropy(logits: &Tensor, labels: &[usize]) -> Result<(f32, Tensor), NnError> {
    let log_probs = log_softmax_rows(logits)?;
    let (batch, classes) = (logits.dims()[0], logits.dims()[1]);
    if labels.len() != batch {
        return Err(NnError::BatchMismatch(format!(
            "{} labels for a batch of {batch}",
            labels.len()
        )));
    }
    if let Some(&bad) = labels.iter().find(|&&l| l >= classes) {
        return Err(NnError::BatchMismatch(format!(
            "label {bad} out of range for {classes} classes"
        )));
    }
    let lp = log_probs.as_slice();
    let mut loss = 0.0f32;
    for (i, &label) in labels.iter().enumerate() {
        loss -= lp[i * classes + label];
    }
    loss /= batch as f32;

    let scale = 1.0 / batch as f32;
    let mut grad = log_probs.map(f32::exp);
    let gv = grad.as_mut_slice();
    for (i, &label) in labels.iter().enumerate() {
        gv[i * classes + label] -= 1.0;
    }
    for v in gv.iter_mut() {
        *v *= scale;
    }
    Ok((loss, grad))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_logits_give_log_classes_loss() {
        let logits = Tensor::zeros(&[4, 10]);
        let (loss, _) = softmax_cross_entropy(&logits, &[0, 1, 2, 3]).unwrap();
        assert!((loss - (10.0f32).ln()).abs() < 1e-5);
    }

    #[test]
    fn grad_rows_sum_to_zero() {
        let logits = Tensor::from_vec(vec![1.0, 2.0, 3.0, -1.0, 0.5, 0.0], &[2, 3]).unwrap();
        let (_, grad) = softmax_cross_entropy(&logits, &[2, 0]).unwrap();
        for r in 0..2 {
            let s: f32 = grad.as_slice()[r * 3..(r + 1) * 3].iter().sum();
            assert!(s.abs() < 1e-6, "row {r} sums to {s}");
        }
    }

    #[test]
    fn grad_matches_finite_difference() {
        let logits = Tensor::from_vec(vec![0.2, -0.4, 1.1, 0.0, 0.9, -0.3], &[2, 3]).unwrap();
        let labels = [1usize, 2];
        let (_, grad) = softmax_cross_entropy(&logits, &labels).unwrap();
        let eps = 1e-3;
        for i in 0..6 {
            let mut lp = logits.clone();
            lp.as_mut_slice()[i] += eps;
            let mut lm = logits.clone();
            lm.as_mut_slice()[i] -= eps;
            let (fp, _) = softmax_cross_entropy(&lp, &labels).unwrap();
            let (fm, _) = softmax_cross_entropy(&lm, &labels).unwrap();
            let num = (fp - fm) / (2.0 * eps);
            assert!((num - grad.as_slice()[i]).abs() < 1e-3, "logit {i}");
        }
    }

    #[test]
    fn rejects_label_count_mismatch() {
        let logits = Tensor::zeros(&[2, 3]);
        assert!(softmax_cross_entropy(&logits, &[0]).is_err());
    }

    #[test]
    fn rejects_out_of_range_label() {
        let logits = Tensor::zeros(&[1, 3]);
        assert!(softmax_cross_entropy(&logits, &[3]).is_err());
    }

    #[test]
    fn loss_decreases_with_confidence_in_truth() {
        let weak = Tensor::from_vec(vec![0.1, 0.0], &[1, 2]).unwrap();
        let strong = Tensor::from_vec(vec![5.0, 0.0], &[1, 2]).unwrap();
        let (lw, _) = softmax_cross_entropy(&weak, &[0]).unwrap();
        let (ls, _) = softmax_cross_entropy(&strong, &[0]).unwrap();
        assert!(ls < lw);
    }
}
