use hadfl_tensor::Tensor;

use crate::error::NnError;
use crate::layer::Layer;

/// Per-channel batch normalization over NCHW batches.
///
/// In training mode the layer normalizes with batch statistics and updates
/// exponential running statistics; in evaluation mode it uses the running
/// statistics. The learnable scale `gamma` and shift `beta` are the layer's
/// parameters — and therefore part of the flat parameter vector the
/// federated-learning schemes exchange, exactly as PyTorch's BN affine
/// parameters are in the paper's setup.
///
/// # Example
///
/// ```
/// use hadfl_nn::{BatchNorm2d, Layer};
/// use hadfl_tensor::Tensor;
///
/// # fn main() -> Result<(), hadfl_nn::NnError> {
/// let mut bn = BatchNorm2d::new(3)?;
/// let y = bn.forward(&Tensor::ones(&[2, 3, 4, 4]), true)?;
/// assert_eq!(y.dims(), &[2, 3, 4, 4]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct BatchNorm2d {
    channels: usize,
    eps: f32,
    momentum: f32,
    gamma: Tensor,
    beta: Tensor,
    grad_gamma: Tensor,
    grad_beta: Tensor,
    running_mean: Vec<f32>,
    running_var: Vec<f32>,
    cached: Option<BnCache>,
}

#[derive(Debug)]
struct BnCache {
    xhat: Tensor,
    inv_std: Vec<f32>,
    dims: Vec<usize>,
}

impl BatchNorm2d {
    /// Creates a batch-norm layer for `channels` feature maps with
    /// `eps = 1e-5` and running-stat momentum `0.1`.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidConfig`] if `channels` is zero.
    pub fn new(channels: usize) -> Result<Self, NnError> {
        if channels == 0 {
            return Err(NnError::InvalidConfig(
                "batchnorm needs at least one channel".into(),
            ));
        }
        Ok(BatchNorm2d {
            channels,
            eps: 1e-5,
            momentum: 0.1,
            gamma: Tensor::ones(&[channels]),
            beta: Tensor::zeros(&[channels]),
            grad_gamma: Tensor::zeros(&[channels]),
            grad_beta: Tensor::zeros(&[channels]),
            running_mean: vec![0.0; channels],
            running_var: vec![1.0; channels],
            cached: None,
        })
    }

    fn check_input(&self, input: &Tensor) -> Result<(usize, usize), NnError> {
        let dims = input.dims();
        if dims.len() != 4 || dims[1] != self.channels {
            return Err(NnError::BatchMismatch(format!(
                "batchnorm expects (N, {}, H, W), got {dims:?}",
                self.channels
            )));
        }
        Ok((dims[0], dims[2] * dims[3]))
    }
}

impl Layer for BatchNorm2d {
    fn forward(&mut self, input: &Tensor, train: bool) -> Result<Tensor, NnError> {
        let (n, plane) = self.check_input(input)?;
        let m = (n * plane) as f32;
        let c = self.channels;
        let src = input.as_slice();
        let mut out = input.clone();
        let gamma = self.gamma.as_slice().to_vec();
        let beta = self.beta.as_slice().to_vec();

        if train {
            if n * plane < 2 {
                return Err(NnError::BatchMismatch(
                    "batchnorm training needs at least 2 values per channel".into(),
                ));
            }
            let mut xhat = Tensor::zeros(input.dims());
            let mut inv_std = vec![0.0f32; c];
            for ch in 0..c {
                let mut mean = 0.0f32;
                for img in 0..n {
                    let base = (img * c + ch) * plane;
                    mean += src[base..base + plane].iter().sum::<f32>();
                }
                mean /= m;
                let mut var = 0.0f32;
                for img in 0..n {
                    let base = (img * c + ch) * plane;
                    var += src[base..base + plane]
                        .iter()
                        .map(|v| (v - mean).powi(2))
                        .sum::<f32>();
                }
                var /= m;
                let istd = 1.0 / (var + self.eps).sqrt();
                inv_std[ch] = istd;
                self.running_mean[ch] =
                    (1.0 - self.momentum) * self.running_mean[ch] + self.momentum * mean;
                self.running_var[ch] =
                    (1.0 - self.momentum) * self.running_var[ch] + self.momentum * var;
                let (xh, ov) = (xhat.as_mut_slice(), out.as_mut_slice());
                for img in 0..n {
                    let base = (img * c + ch) * plane;
                    for i in base..base + plane {
                        let h = (src[i] - mean) * istd;
                        xh[i] = h;
                        ov[i] = gamma[ch] * h + beta[ch];
                    }
                }
            }
            self.cached = Some(BnCache {
                xhat,
                inv_std,
                dims: input.dims().to_vec(),
            });
        } else {
            let ov = out.as_mut_slice();
            for ch in 0..c {
                let istd = 1.0 / (self.running_var[ch] + self.eps).sqrt();
                let mean = self.running_mean[ch];
                for img in 0..n {
                    let base = (img * c + ch) * plane;
                    for i in base..base + plane {
                        ov[i] = gamma[ch] * (src[i] - mean) * istd + beta[ch];
                    }
                }
            }
        }
        Ok(out)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor, NnError> {
        let cache = self
            .cached
            .as_ref()
            .ok_or(NnError::BackwardBeforeForward("BatchNorm2d"))?;
        if grad_out.dims() != cache.dims.as_slice() {
            return Err(NnError::BatchMismatch(format!(
                "batchnorm backward got {:?}, expected {:?}",
                grad_out.dims(),
                cache.dims
            )));
        }
        let c = self.channels;
        let n = cache.dims[0];
        let plane = cache.dims[2] * cache.dims[3];
        let m = (n * plane) as f32;
        let gy = grad_out.as_slice();
        let xh = cache.xhat.as_slice();
        let mut gx = Tensor::zeros(&cache.dims);
        let gxv = gx.as_mut_slice();
        let gamma = self.gamma.as_slice().to_vec();
        let (gg, gb) = (
            self.grad_gamma.as_mut_slice(),
            self.grad_beta.as_mut_slice(),
        );

        for ch in 0..c {
            let mut sum_gy = 0.0f32;
            let mut sum_gy_xh = 0.0f32;
            for img in 0..n {
                let base = (img * c + ch) * plane;
                for i in base..base + plane {
                    sum_gy += gy[i];
                    sum_gy_xh += gy[i] * xh[i];
                }
            }
            gg[ch] += sum_gy_xh;
            gb[ch] += sum_gy;
            let k = gamma[ch] * cache.inv_std[ch];
            let mean_gy = sum_gy / m;
            let mean_gy_xh = sum_gy_xh / m;
            for img in 0..n {
                let base = (img * c + ch) * plane;
                for i in base..base + plane {
                    gxv[i] = k * (gy[i] - mean_gy - xh[i] * mean_gy_xh);
                }
            }
        }
        Ok(gx)
    }

    fn visit_params(&self, f: &mut dyn FnMut(&Tensor)) {
        f(&self.gamma);
        f(&self.beta);
    }

    fn visit_params_mut(&mut self, f: &mut dyn FnMut(&mut Tensor)) {
        f(&mut self.gamma);
        f(&mut self.beta);
    }

    fn visit_params_grads_mut(&mut self, f: &mut dyn FnMut(&mut Tensor, &mut Tensor)) {
        f(&mut self.gamma, &mut self.grad_gamma);
        f(&mut self.beta, &mut self.grad_beta);
    }

    fn zero_grads(&mut self) {
        self.grad_gamma.fill_zero();
        self.grad_beta.fill_zero();
    }

    fn name(&self) -> &'static str {
        "BatchNorm2d"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hadfl_tensor::SeedStream;

    #[test]
    fn training_output_is_normalized() {
        let mut bn = BatchNorm2d::new(2).unwrap();
        let mut rng = SeedStream::new(1);
        let mut x = Tensor::zeros(&[4, 2, 3, 3]);
        for v in x.as_mut_slice() {
            *v = rng.normal() * 5.0 + 3.0;
        }
        let y = bn.forward(&x, true).unwrap();
        // per-channel mean ~0, var ~1
        let plane = 9;
        for ch in 0..2 {
            let mut vals = Vec::new();
            for img in 0..4 {
                let base = (img * 2 + ch) * plane;
                vals.extend_from_slice(&y.as_slice()[base..base + plane]);
            }
            let mean: f32 = vals.iter().sum::<f32>() / vals.len() as f32;
            let var: f32 = vals.iter().map(|v| (v - mean).powi(2)).sum::<f32>() / vals.len() as f32;
            assert!(mean.abs() < 1e-4, "mean {mean}");
            assert!((var - 1.0).abs() < 1e-2, "var {var}");
        }
    }

    #[test]
    fn eval_uses_running_stats() {
        let mut bn = BatchNorm2d::new(1).unwrap();
        // Run several training batches with mean 10 so the running mean moves.
        let x = Tensor::from_vec(vec![9.0, 10.0, 10.0, 11.0], &[1, 1, 2, 2]).unwrap();
        for _ in 0..50 {
            bn.forward(&x, true).unwrap();
        }
        // In eval, an input at the running mean maps near beta = 0.
        let y = bn
            .forward(&Tensor::full(&[1, 1, 2, 2], 10.0), false)
            .unwrap();
        for &v in y.as_slice() {
            assert!(v.abs() < 0.2, "eval output {v} should be near 0");
        }
    }

    #[test]
    fn gamma_beta_scale_and_shift() {
        let mut bn = BatchNorm2d::new(1).unwrap();
        bn.visit_params_mut(&mut |p| {
            // gamma first, beta second; distinguish by initial value
            if p.as_slice()[0] == 1.0 {
                p.as_mut_slice()[0] = 2.0;
            } else {
                p.as_mut_slice()[0] = 7.0;
            }
        });
        let x = Tensor::from_vec(vec![-1.0, 1.0], &[2, 1, 1, 1]).unwrap();
        let y = bn.forward(&x, true).unwrap();
        // xhat = [-1, 1] (unit variance), y = 2*xhat + 7
        assert!((y.as_slice()[0] - 5.0).abs() < 1e-2);
        assert!((y.as_slice()[1] - 9.0).abs() < 1e-2);
    }

    #[test]
    fn numeric_gradient_check() {
        let mut bn = BatchNorm2d::new(2).unwrap();
        let mut rng = SeedStream::new(5);
        let mut x = Tensor::zeros(&[2, 2, 2, 2]);
        for v in x.as_mut_slice() {
            *v = rng.normal();
        }
        // Loss: weighted sum so gradient is non-uniform.
        let mut wts = Tensor::zeros(&[2, 2, 2, 2]);
        for v in wts.as_mut_slice() {
            *v = rng.normal();
        }
        bn.forward(&x, true).unwrap();
        let gx = bn.backward(&wts).unwrap();
        let eps = 1e-2;
        for &i in &[0usize, 3, 9, 15] {
            let mut xp = x.clone();
            xp.as_mut_slice()[i] += eps;
            let mut xm = x.clone();
            xm.as_mut_slice()[i] -= eps;
            // Fresh layers so running stats don't drift between evals.
            let mut bn_p = BatchNorm2d::new(2).unwrap();
            let mut bn_m = BatchNorm2d::new(2).unwrap();
            let yp = bn_p.forward(&xp, true).unwrap().dot(&wts).unwrap();
            let ym = bn_m.forward(&xm, true).unwrap().dot(&wts).unwrap();
            let num = (yp - ym) / (2.0 * eps);
            let ana = gx.as_slice()[i];
            assert!(
                (num - ana).abs() < 0.05 * ana.abs().max(1.0),
                "x[{i}]: {num} vs {ana}"
            );
        }
    }

    #[test]
    fn rejects_wrong_channel_count() {
        let mut bn = BatchNorm2d::new(3).unwrap();
        assert!(bn.forward(&Tensor::zeros(&[1, 2, 2, 2]), true).is_err());
    }

    #[test]
    fn rejects_degenerate_batch_in_train() {
        let mut bn = BatchNorm2d::new(1).unwrap();
        assert!(bn.forward(&Tensor::zeros(&[1, 1, 1, 1]), true).is_err());
        // but eval mode is fine
        assert!(bn.forward(&Tensor::zeros(&[1, 1, 1, 1]), false).is_ok());
    }

    #[test]
    fn param_count_is_two_per_channel() {
        assert_eq!(BatchNorm2d::new(4).unwrap().param_count(), 8);
    }
}
