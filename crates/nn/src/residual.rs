use hadfl_tensor::Tensor;

use crate::error::NnError;
use crate::layer::Layer;
use crate::sequential::Sequential;

/// A residual (skip) connection: `y = body(x) + x`.
///
/// The body must preserve the input shape. Backward sends the output
/// gradient both through the body and directly along the skip path — the
/// structural ingredient that lets `resnet18_lite` stand in for ResNet-18
/// (see DESIGN.md §2).
///
/// # Example
///
/// ```
/// use hadfl_nn::{Layer, Residual, Sequential};
/// use hadfl_tensor::Tensor;
///
/// # fn main() -> Result<(), hadfl_nn::NnError> {
/// // An empty body makes the residual compute y = x + x.
/// let mut res = Residual::new(Sequential::new());
/// let y = res.forward(&Tensor::ones(&[1, 2]), true)?;
/// assert_eq!(y.as_slice(), &[2.0, 2.0]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Residual {
    body: Sequential,
}

impl Residual {
    /// Wraps a body in a skip connection.
    pub fn new(body: Sequential) -> Self {
        Residual { body }
    }

    /// The wrapped body (diagnostics).
    pub fn body(&self) -> &Sequential {
        &self.body
    }
}

impl Layer for Residual {
    fn forward(&mut self, input: &Tensor, train: bool) -> Result<Tensor, NnError> {
        let branch = self.body.forward(input, train)?;
        if branch.dims() != input.dims() {
            return Err(NnError::InvalidConfig(format!(
                "residual body changed shape: {:?} -> {:?}",
                input.dims(),
                branch.dims()
            )));
        }
        Ok(branch.add(input)?)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor, NnError> {
        let through_body = self.body.backward(grad_out)?;
        Ok(through_body.add(grad_out)?)
    }

    fn visit_params(&self, f: &mut dyn FnMut(&Tensor)) {
        self.body.visit_params(f);
    }

    fn visit_params_mut(&mut self, f: &mut dyn FnMut(&mut Tensor)) {
        self.body.visit_params_mut(f);
    }

    fn visit_params_grads_mut(&mut self, f: &mut dyn FnMut(&mut Tensor, &mut Tensor)) {
        self.body.visit_params_grads_mut(f);
    }

    fn zero_grads(&mut self) {
        self.body.zero_grads();
    }

    fn name(&self) -> &'static str {
        "Residual"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense::Dense;
    use hadfl_tensor::SeedStream;

    #[test]
    fn empty_body_doubles_input() {
        let mut r = Residual::new(Sequential::new());
        let x = Tensor::from_vec(vec![1.0, -2.0], &[1, 2]).unwrap();
        assert_eq!(r.forward(&x, true).unwrap().as_slice(), &[2.0, -4.0]);
    }

    #[test]
    fn empty_body_backward_doubles_gradient() {
        let mut r = Residual::new(Sequential::new());
        let x = Tensor::ones(&[1, 2]);
        r.forward(&x, true).unwrap();
        let g = r
            .backward(&Tensor::from_vec(vec![3.0, 5.0], &[1, 2]).unwrap())
            .unwrap();
        assert_eq!(g.as_slice(), &[6.0, 10.0]);
    }

    #[test]
    fn rejects_shape_changing_body() {
        let mut rng = SeedStream::new(0);
        let mut body = Sequential::new();
        body.push(Dense::new(2, 3, &mut rng));
        let mut r = Residual::new(body);
        assert!(matches!(
            r.forward(&Tensor::ones(&[1, 2]), true),
            Err(NnError::InvalidConfig(_))
        ));
    }

    #[test]
    fn gradient_flows_through_both_paths() {
        // Body is a square Dense; compare against a finite difference.
        let mut rng = SeedStream::new(7);
        let mut body = Sequential::new();
        body.push(Dense::new(2, 2, &mut rng));
        let mut r = Residual::new(body);
        let x = Tensor::from_vec(vec![0.3, -0.8], &[1, 2]).unwrap();
        r.forward(&x, true).unwrap();
        let gx = r.backward(&Tensor::ones(&[1, 2])).unwrap();

        let eps = 1e-3;
        for i in 0..2 {
            let mut xp = x.clone();
            xp.as_mut_slice()[i] += eps;
            let mut xm = x.clone();
            xm.as_mut_slice()[i] -= eps;
            let yp: f32 = r.forward(&xp, false).unwrap().as_slice().iter().sum();
            let ym: f32 = r.forward(&xm, false).unwrap().as_slice().iter().sum();
            let num = (yp - ym) / (2.0 * eps);
            assert!((num - gx.as_slice()[i]).abs() < 1e-2, "x[{i}]");
        }
    }

    #[test]
    fn params_are_the_body_params() {
        let mut rng = SeedStream::new(0);
        let mut body = Sequential::new();
        body.push(Dense::new(3, 3, &mut rng));
        let r = Residual::new(body);
        assert_eq!(r.param_count(), 12);
        assert_eq!(r.body().len(), 1);
    }
}
