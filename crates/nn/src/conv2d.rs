use hadfl_tensor::{
    col2im, im2col, matmul_a_bt, matmul_at_b, Conv2dGeometry, Initializer, SeedStream, Tensor,
};

use crate::error::NnError;
use crate::layer::Layer;

/// A 2-D convolution over NCHW batches, lowered to a matrix product via
/// [`im2col`].
///
/// The filter bank is stored as a `(out_channels, C·kh·kw)` matrix; forward
/// computes `patches · Wᵀ + b` and reshapes to `(N, out_channels, out_h,
/// out_w)`.
///
/// # Example
///
/// ```
/// use hadfl_nn::{Conv2d, Layer};
/// use hadfl_tensor::{SeedStream, Tensor};
///
/// # fn main() -> Result<(), hadfl_nn::NnError> {
/// let mut conv = Conv2d::new(3, 8, 4, 4, 3, 1, 1, &mut SeedStream::new(0))?;
/// let y = conv.forward(&Tensor::zeros(&[2, 3, 4, 4]), true)?;
/// assert_eq!(y.dims(), &[2, 8, 4, 4]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Conv2d {
    geom: Conv2dGeometry,
    out_channels: usize,
    weight: Tensor,
    bias: Tensor,
    grad_weight: Tensor,
    grad_bias: Tensor,
    cached_cols: Option<Tensor>,
    cached_batch: usize,
}

impl Conv2d {
    /// Creates a convolution layer with He-normal weights and zero bias.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::Tensor`] if the geometry is invalid (zero
    /// extents, zero stride, or kernel larger than the padded input).
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        in_channels: usize,
        out_channels: usize,
        in_h: usize,
        in_w: usize,
        kernel: usize,
        stride: usize,
        padding: usize,
        rng: &mut SeedStream,
    ) -> Result<Self, NnError> {
        if out_channels == 0 {
            return Err(NnError::InvalidConfig(
                "conv2d needs at least one output channel".into(),
            ));
        }
        let geom = Conv2dGeometry::new(in_channels, in_h, in_w, kernel, stride, padding)?;
        let fan_in = geom.patch_len();
        let weight = Initializer::HeNormal { fan_in }.init(&[out_channels, fan_in], rng);
        Ok(Conv2d {
            geom,
            out_channels,
            weight,
            bias: Tensor::zeros(&[out_channels]),
            grad_weight: Tensor::zeros(&[out_channels, fan_in]),
            grad_bias: Tensor::zeros(&[out_channels]),
            cached_cols: None,
            cached_batch: 0,
        })
    }

    /// The convolution geometry (kernel, stride, padding, output extents).
    pub fn geometry(&self) -> &Conv2dGeometry {
        &self.geom
    }

    /// Number of output channels.
    pub fn out_channels(&self) -> usize {
        self.out_channels
    }

    /// `(out_channels, out_h, out_w)` — per-sample output dimensions.
    pub fn out_dims(&self) -> [usize; 3] {
        [self.out_channels, self.geom.out_h, self.geom.out_w]
    }

    /// Transposes the `(rows, oc)` patch-major product into NCHW layout.
    ///
    /// Each image owns a disjoint `oc·ppi` window of the output, so
    /// images parallelize with chunk boundaries fixed by the batch
    /// layout alone — bit-identical at any thread count.
    fn patches_to_nchw(&self, prod: &Tensor, batch: usize) -> Tensor {
        let ppi = self.geom.patches_per_image();
        let oc = self.out_channels;
        let mut out = Tensor::zeros(&[batch, oc, self.geom.out_h, self.geom.out_w]);
        let src = prod.as_slice();
        let bias = self.bias.as_slice();
        let img_stride = oc * ppi;
        let work = (batch as u64) * (img_stride as u64);
        hadfl_par::plan(work).chunks_mut(out.as_mut_slice(), img_stride.max(1), |img, dimg| {
            for p in 0..ppi {
                let row = (img * ppi + p) * oc;
                for c in 0..oc {
                    dimg[c * ppi + p] = src[row + c] + bias[c];
                }
            }
        });
        out
    }

    /// Transposes an NCHW gradient into the `(rows, oc)` patch-major
    /// layout. Image-parallel like [`Conv2d::patches_to_nchw`].
    fn nchw_to_patches(&self, grad: &Tensor, batch: usize) -> Tensor {
        let ppi = self.geom.patches_per_image();
        let oc = self.out_channels;
        let mut out = Tensor::zeros(&[batch * ppi, oc]);
        let src = grad.as_slice();
        let img_stride = oc * ppi;
        let work = (batch as u64) * (img_stride as u64);
        hadfl_par::plan(work).chunks_mut(out.as_mut_slice(), img_stride.max(1), |img, dimg| {
            let sbase = img * img_stride;
            for c in 0..oc {
                for p in 0..ppi {
                    dimg[p * oc + c] = src[sbase + c * ppi + p];
                }
            }
        });
        out
    }
}

impl Layer for Conv2d {
    fn forward(&mut self, input: &Tensor, train: bool) -> Result<Tensor, NnError> {
        let _prof = hadfl_prof::scope("conv2d_fwd");
        let batch = *input
            .dims()
            .first()
            .ok_or_else(|| NnError::BatchMismatch("conv input must be rank 4".into()))?;
        let cols = im2col(input, &self.geom)?;
        // (rows, patch_len) · (oc, patch_len)ᵀ -> (rows, oc)
        let prod = matmul_a_bt(&cols, &self.weight)?;
        let out = self.patches_to_nchw(&prod, batch);
        if train {
            self.cached_cols = Some(cols);
            self.cached_batch = batch;
        }
        Ok(out)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor, NnError> {
        let _prof = hadfl_prof::scope("conv2d_bwd");
        let cols = self
            .cached_cols
            .as_ref()
            .ok_or(NnError::BackwardBeforeForward("Conv2d"))?;
        let batch = self.cached_batch;
        let want = [batch, self.out_channels, self.geom.out_h, self.geom.out_w];
        if grad_out.dims() != want {
            return Err(NnError::BatchMismatch(format!(
                "conv backward got {:?}, expected {:?}",
                grad_out.dims(),
                want
            )));
        }
        let gp = self.nchw_to_patches(grad_out, batch); // (rows, oc)
                                                        // dW += gpᵀ · cols  : (oc, patch_len)
        let gw = matmul_at_b(&gp, cols)?;
        self.grad_weight.add_assign_t(&gw)?;
        // db += per-channel sums of grad_out
        let ppi = self.geom.patches_per_image();
        let gov = grad_out.as_slice();
        let gb = self.grad_bias.as_mut_slice();
        for img in 0..batch {
            for (c, g) in gb.iter_mut().enumerate() {
                let base = img * self.out_channels * ppi + c * ppi;
                *g += gov[base..base + ppi].iter().sum::<f32>();
            }
        }
        // dx = col2im(gp · W)
        let gcols = hadfl_tensor::matmul(&gp, &self.weight)?;
        Ok(col2im(&gcols, &self.geom, batch)?)
    }

    fn visit_params(&self, f: &mut dyn FnMut(&Tensor)) {
        f(&self.weight);
        f(&self.bias);
    }

    fn visit_params_mut(&mut self, f: &mut dyn FnMut(&mut Tensor)) {
        f(&mut self.weight);
        f(&mut self.bias);
    }

    fn visit_params_grads_mut(&mut self, f: &mut dyn FnMut(&mut Tensor, &mut Tensor)) {
        f(&mut self.weight, &mut self.grad_weight);
        f(&mut self.bias, &mut self.grad_bias);
    }

    fn zero_grads(&mut self) {
        self.grad_weight.fill_zero();
        self.grad_bias.fill_zero();
    }

    fn name(&self) -> &'static str {
        "Conv2d"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set_params(conv: &mut Conv2d, w: &[f32], b: &[f32]) {
        conv.visit_params_mut(&mut |p| {
            if p.dims().len() == 2 {
                p.as_mut_slice().copy_from_slice(w);
            } else {
                p.as_mut_slice().copy_from_slice(b);
            }
        });
    }

    #[test]
    fn identity_1x1_kernel_passes_input_through() {
        let mut rng = SeedStream::new(0);
        let mut conv = Conv2d::new(1, 1, 3, 3, 1, 1, 0, &mut rng).unwrap();
        set_params(&mut conv, &[1.0], &[0.0]);
        let x = Tensor::from_vec((0..9).map(|i| i as f32).collect(), &[1, 1, 3, 3]).unwrap();
        let y = conv.forward(&x, false).unwrap();
        assert_eq!(y.as_slice(), x.as_slice());
    }

    #[test]
    fn bias_is_added_per_channel() {
        let mut rng = SeedStream::new(0);
        let mut conv = Conv2d::new(1, 2, 2, 2, 1, 1, 0, &mut rng).unwrap();
        set_params(&mut conv, &[0.0, 0.0], &[1.0, -1.0]);
        let y = conv.forward(&Tensor::zeros(&[1, 1, 2, 2]), false).unwrap();
        assert_eq!(&y.as_slice()[..4], &[1.0; 4]);
        assert_eq!(&y.as_slice()[4..], &[-1.0; 4]);
    }

    #[test]
    fn box_filter_sums_neighbourhood() {
        let mut rng = SeedStream::new(0);
        let mut conv = Conv2d::new(1, 1, 3, 3, 3, 1, 1, &mut rng).unwrap();
        set_params(&mut conv, &[1.0; 9], &[0.0]);
        let x = Tensor::ones(&[1, 1, 3, 3]);
        let y = conv.forward(&x, false).unwrap();
        // centre pixel sees all 9 ones; corners see 4
        assert_eq!(y.at(&[0, 0, 1, 1]), 9.0);
        assert_eq!(y.at(&[0, 0, 0, 0]), 4.0);
    }

    #[test]
    fn output_dims_follow_geometry() {
        let mut rng = SeedStream::new(0);
        let conv = Conv2d::new(3, 8, 8, 8, 3, 2, 1, &mut rng).unwrap();
        assert_eq!(conv.out_dims(), [8, 4, 4]);
    }

    #[test]
    fn backward_without_forward_errors() {
        let mut rng = SeedStream::new(0);
        let mut conv = Conv2d::new(1, 1, 3, 3, 3, 1, 1, &mut rng).unwrap();
        assert!(conv.backward(&Tensor::zeros(&[1, 1, 3, 3])).is_err());
    }

    #[test]
    fn numeric_gradient_check_weights_and_input() {
        // Check dW and dx against central finite differences on L = sum(y).
        let mut rng = SeedStream::new(3);
        let mut conv = Conv2d::new(2, 2, 4, 4, 3, 1, 1, &mut rng).unwrap();
        let mut x = Tensor::zeros(&[1, 2, 4, 4]);
        for v in x.as_mut_slice() {
            *v = rng.normal();
        }
        conv.forward(&x, true).unwrap();
        let gy = Tensor::ones(&[1, 2, 4, 4]);
        let gx = conv.backward(&gy).unwrap();
        let mut analytic_w = Tensor::default();
        conv.visit_params_grads_mut(&mut |p, g| {
            if p.dims().len() == 2 {
                analytic_w = g.clone();
            }
        });

        let eps = 1e-2;
        // weight check on a few entries
        for &i in &[0usize, 5, 17, 35] {
            let mut wplus = conv.weight.clone();
            wplus.as_mut_slice()[i] += eps;
            let mut wminus = conv.weight.clone();
            wminus.as_mut_slice()[i] -= eps;
            let orig = conv.weight.clone();
            conv.weight = wplus;
            let yp: f32 = conv.forward(&x, false).unwrap().as_slice().iter().sum();
            conv.weight = wminus;
            let ym: f32 = conv.forward(&x, false).unwrap().as_slice().iter().sum();
            conv.weight = orig;
            let num = (yp - ym) / (2.0 * eps);
            let ana = analytic_w.as_slice()[i];
            assert!(
                (num - ana).abs() < 0.05 * ana.abs().max(1.0),
                "w[{i}]: {num} vs {ana}"
            );
        }
        // input check on a few entries
        for &i in &[0usize, 7, 20, 31] {
            let mut xp = x.clone();
            xp.as_mut_slice()[i] += eps;
            let mut xm = x.clone();
            xm.as_mut_slice()[i] -= eps;
            let yp: f32 = conv.forward(&xp, false).unwrap().as_slice().iter().sum();
            let ym: f32 = conv.forward(&xm, false).unwrap().as_slice().iter().sum();
            let num = (yp - ym) / (2.0 * eps);
            let ana = gx.as_slice()[i];
            assert!(
                (num - ana).abs() < 0.05 * ana.abs().max(1.0),
                "x[{i}]: {num} vs {ana}"
            );
        }
    }

    #[test]
    fn rejects_zero_output_channels() {
        let mut rng = SeedStream::new(0);
        assert!(Conv2d::new(1, 0, 3, 3, 3, 1, 1, &mut rng).is_err());
    }
}
