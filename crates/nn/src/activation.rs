use hadfl_tensor::Tensor;

use crate::error::NnError;
use crate::layer::Layer;

/// Rectified linear unit: `y = max(x, 0)` elementwise.
///
/// The backward pass gates `grad_out` by the sign of the cached input.
///
/// # Example
///
/// ```
/// use hadfl_nn::{Layer, Relu};
/// use hadfl_tensor::Tensor;
///
/// # fn main() -> Result<(), hadfl_nn::NnError> {
/// let mut relu = Relu::new();
/// let y = relu.forward(&Tensor::from_vec(vec![-3.0, 0.0, 3.0], &[1, 3])?, true)?;
/// assert_eq!(y.as_slice(), &[0.0, 0.0, 3.0]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Default)]
pub struct Relu {
    mask: Option<Vec<bool>>,
}

impl Relu {
    /// Creates a ReLU layer.
    pub fn new() -> Self {
        Relu::default()
    }
}

impl Layer for Relu {
    fn forward(&mut self, input: &Tensor, train: bool) -> Result<Tensor, NnError> {
        if train {
            self.mask = Some(input.as_slice().iter().map(|&v| v > 0.0).collect());
        }
        Ok(input.map(|v| v.max(0.0)))
    }

    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor, NnError> {
        let mask = self
            .mask
            .as_ref()
            .ok_or(NnError::BackwardBeforeForward("Relu"))?;
        if mask.len() != grad_out.len() {
            return Err(NnError::BatchMismatch(format!(
                "relu backward length {} does not match cached mask {}",
                grad_out.len(),
                mask.len()
            )));
        }
        let mut gx = grad_out.clone();
        for (g, &m) in gx.as_mut_slice().iter_mut().zip(mask) {
            if !m {
                *g = 0.0;
            }
        }
        Ok(gx)
    }

    fn visit_params(&self, _f: &mut dyn FnMut(&Tensor)) {}
    fn visit_params_mut(&mut self, _f: &mut dyn FnMut(&mut Tensor)) {}
    fn visit_params_grads_mut(&mut self, _f: &mut dyn FnMut(&mut Tensor, &mut Tensor)) {}
    fn zero_grads(&mut self) {}

    fn name(&self) -> &'static str {
        "Relu"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_clamps_negatives() {
        let mut r = Relu::new();
        let y = r
            .forward(
                &Tensor::from_vec(vec![-1.0, 2.0, -3.0, 4.0], &[2, 2]).unwrap(),
                false,
            )
            .unwrap();
        assert_eq!(y.as_slice(), &[0.0, 2.0, 0.0, 4.0]);
    }

    #[test]
    fn backward_gates_by_input_sign() {
        let mut r = Relu::new();
        r.forward(&Tensor::from_vec(vec![-1.0, 2.0], &[1, 2]).unwrap(), true)
            .unwrap();
        let gx = r
            .backward(&Tensor::from_vec(vec![5.0, 5.0], &[1, 2]).unwrap())
            .unwrap();
        assert_eq!(gx.as_slice(), &[0.0, 5.0]);
    }

    #[test]
    fn zero_input_has_zero_gradient() {
        let mut r = Relu::new();
        r.forward(&Tensor::zeros(&[1, 2]), true).unwrap();
        let gx = r.backward(&Tensor::ones(&[1, 2])).unwrap();
        assert_eq!(gx.as_slice(), &[0.0, 0.0]);
    }

    #[test]
    fn backward_rejects_wrong_length() {
        let mut r = Relu::new();
        r.forward(&Tensor::zeros(&[1, 2]), true).unwrap();
        assert!(r.backward(&Tensor::zeros(&[1, 3])).is_err());
    }

    #[test]
    fn backward_without_forward_errors() {
        let mut r = Relu::new();
        assert!(r.backward(&Tensor::zeros(&[1, 2])).is_err());
    }
}
