use hadfl_tensor::Tensor;

use crate::error::NnError;
use crate::layer::Layer;

/// An ordered chain of layers, itself a [`Layer`].
///
/// `Sequential` is the composition primitive of the model zoo: plain
/// feed-forward stacks are `Sequential`s, and residual blocks wrap a
/// `Sequential` body (see [`crate::Residual`]).
///
/// # Example
///
/// ```
/// use hadfl_nn::{Dense, Layer, Relu, Sequential};
/// use hadfl_tensor::{SeedStream, Tensor};
///
/// # fn main() -> Result<(), hadfl_nn::NnError> {
/// let mut rng = SeedStream::new(0);
/// let mut net = Sequential::new();
/// net.push(Dense::new(4, 8, &mut rng));
/// net.push(Relu::new());
/// net.push(Dense::new(8, 2, &mut rng));
/// let y = net.forward(&Tensor::ones(&[1, 4]), true)?;
/// assert_eq!(y.dims(), &[1, 2]);
/// # Ok(())
/// # }
/// ```
#[derive(Default)]
pub struct Sequential {
    layers: Vec<Box<dyn Layer>>,
}

impl std::fmt::Debug for Sequential {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Sequential")
            .field(
                "layers",
                &self.layers.iter().map(|l| l.name()).collect::<Vec<_>>(),
            )
            .finish()
    }
}

impl Sequential {
    /// Creates an empty chain.
    pub fn new() -> Self {
        Sequential::default()
    }

    /// Appends a layer to the end of the chain.
    pub fn push<L: Layer + 'static>(&mut self, layer: L) {
        self.layers.push(Box::new(layer));
    }

    /// Appends a boxed layer to the end of the chain.
    pub fn push_boxed(&mut self, layer: Box<dyn Layer>) {
        self.layers.push(layer);
    }

    /// Number of layers in the chain.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// Returns `true` when the chain has no layers.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }

    /// Names of the layers, in order (diagnostics).
    pub fn layer_names(&self) -> Vec<&'static str> {
        self.layers.iter().map(|l| l.name()).collect()
    }
}

impl Layer for Sequential {
    fn forward(&mut self, input: &Tensor, train: bool) -> Result<Tensor, NnError> {
        let mut x = input.clone();
        for layer in &mut self.layers {
            x = layer.forward(&x, train)?;
        }
        Ok(x)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor, NnError> {
        let mut g = grad_out.clone();
        for layer in self.layers.iter_mut().rev() {
            g = layer.backward(&g)?;
        }
        Ok(g)
    }

    fn visit_params(&self, f: &mut dyn FnMut(&Tensor)) {
        for layer in &self.layers {
            layer.visit_params(f);
        }
    }

    fn visit_params_mut(&mut self, f: &mut dyn FnMut(&mut Tensor)) {
        for layer in &mut self.layers {
            layer.visit_params_mut(f);
        }
    }

    fn visit_params_grads_mut(&mut self, f: &mut dyn FnMut(&mut Tensor, &mut Tensor)) {
        for layer in &mut self.layers {
            layer.visit_params_grads_mut(f);
        }
    }

    fn zero_grads(&mut self) {
        for layer in &mut self.layers {
            layer.zero_grads();
        }
    }

    fn name(&self) -> &'static str {
        "Sequential"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense::Dense;
    use crate::layer::Flatten;
    use hadfl_tensor::SeedStream;

    #[test]
    fn empty_sequential_is_identity() {
        let mut s = Sequential::new();
        let x = Tensor::from_vec(vec![1.0, 2.0], &[1, 2]).unwrap();
        assert_eq!(s.forward(&x, true).unwrap(), x);
        assert_eq!(s.backward(&x).unwrap(), x);
    }

    #[test]
    fn forward_chains_layers_in_order() {
        let mut rng = SeedStream::new(0);
        let mut s = Sequential::new();
        s.push(Flatten::new());
        s.push(Dense::new(4, 3, &mut rng));
        let y = s.forward(&Tensor::ones(&[2, 1, 2, 2]), true).unwrap();
        assert_eq!(y.dims(), &[2, 3]);
        assert_eq!(s.layer_names(), vec!["Flatten", "Dense"]);
    }

    #[test]
    fn param_count_sums_over_layers() {
        let mut rng = SeedStream::new(0);
        let mut s = Sequential::new();
        s.push(Dense::new(4, 3, &mut rng)); // 15
        s.push(Dense::new(3, 2, &mut rng)); // 8
        assert_eq!(s.param_count(), 23);
    }

    #[test]
    fn zero_grads_reaches_all_layers() {
        let mut rng = SeedStream::new(0);
        let mut s = Sequential::new();
        s.push(Dense::new(2, 2, &mut rng));
        s.push(Dense::new(2, 2, &mut rng));
        let x = Tensor::ones(&[1, 2]);
        s.forward(&x, true).unwrap();
        s.backward(&Tensor::ones(&[1, 2])).unwrap();
        s.zero_grads();
        let mut total = 0.0;
        s.visit_params_grads_mut(&mut |_, g| total += g.norm_l2());
        assert_eq!(total, 0.0);
    }

    #[test]
    fn visit_order_is_stable() {
        let mut rng = SeedStream::new(0);
        let mut s = Sequential::new();
        s.push(Dense::new(2, 3, &mut rng));
        s.push(Dense::new(3, 1, &mut rng));
        let mut dims_a = Vec::new();
        s.visit_params(&mut |p| dims_a.push(p.dims().to_vec()));
        let mut dims_b = Vec::new();
        s.visit_params_mut(&mut |p| dims_b.push(p.dims().to_vec()));
        assert_eq!(dims_a, dims_b);
        assert_eq!(dims_a, vec![vec![2, 3], vec![3], vec![3, 1], vec![1]]);
    }
}
