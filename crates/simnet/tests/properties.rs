//! Property-based tests for the simulator substrate.

use hadfl_simnet::{
    ComputeModel, DeviceId, EventQueue, FaultPlan, Jitter, LinkModel, Outage, VirtualTime,
};
use hadfl_tensor::SeedStream;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn event_queue_pops_sorted(times in proptest::collection::vec(0.0f64..1000.0, 0..64)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.push(VirtualTime::from_secs(t), i);
        }
        let mut last = VirtualTime::ZERO;
        let mut popped = 0;
        while let Some((t, _)) = q.pop() {
            prop_assert!(t >= last);
            last = t;
            popped += 1;
        }
        prop_assert_eq!(popped, times.len());
    }

    #[test]
    fn equal_time_events_pop_fifo(n in 1usize..32, t in 0.0f64..10.0) {
        let mut q = EventQueue::new();
        let vt = VirtualTime::from_secs(t);
        for i in 0..n {
            q.push(vt, i);
        }
        let order: Vec<usize> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        prop_assert_eq!(order, (0..n).collect::<Vec<_>>());
    }

    #[test]
    fn step_time_scales_inversely_with_power(
        base in 0.001f64..1.0,
        p_fast in 1.0f64..16.0,
        p_slow_frac in 0.05f64..1.0,
    ) {
        let p_slow = p_fast * p_slow_frac;
        let m = ComputeModel::new(base, &[p_fast, p_slow]).unwrap();
        let fast = m.step_time(DeviceId(0), None).unwrap();
        let slow = m.step_time(DeviceId(1), None).unwrap();
        prop_assert!((slow / fast - p_fast / p_slow).abs() < 1e-9);
    }

    #[test]
    fn jittered_times_are_positive_and_bounded(
        seed in 0u64..200,
        std_frac in 0.0f64..1.0,
    ) {
        let m = ComputeModel::new(0.01, &[1.0])
            .unwrap()
            .with_jitter(Jitter::Gaussian { std_frac });
        let mut rng = SeedStream::new(seed);
        for _ in 0..50 {
            let t = m.step_time(DeviceId(0), Some(&mut rng)).unwrap();
            prop_assert!(t > 0.0 && t <= 0.05 + 1e-12);
        }
    }

    #[test]
    fn transfer_time_superadditive_in_chunks(
        latency in 0.0f64..0.1,
        bw in 1e3f64..1e10,
        a in 0u64..1_000_000,
        b in 0u64..1_000_000,
    ) {
        // Sending two messages pays latency twice: t(a) + t(b) ≥ t(a+b).
        let link = LinkModel::new(latency, bw).unwrap();
        prop_assert!(link.transfer_time(a) + link.transfer_time(b) >= link.transfer_time(a + b) - 1e-12);
    }

    #[test]
    fn fault_plan_next_transition_walks_forward(
        starts in proptest::collection::vec(0.0f64..100.0, 1..8),
        width in 0.1f64..10.0,
    ) {
        let outages: Vec<Outage> = starts
            .iter()
            .enumerate()
            .map(|(i, &s)| {
                Outage::window(
                    DeviceId(i),
                    VirtualTime::from_secs(s),
                    VirtualTime::from_secs(s + width),
                )
            })
            .collect();
        let plan = FaultPlan::new(outages).unwrap();
        // Walking transitions visits strictly increasing times and
        // terminates.
        let mut t = VirtualTime::ZERO;
        let mut hops = 0;
        while let Some(next) = plan.next_transition_after(t) {
            prop_assert!(next > t);
            t = next;
            hops += 1;
            prop_assert!(hops <= 2 * starts.len());
        }
    }

    #[test]
    fn availability_is_complement_of_outages(
        device in 0usize..4,
        from in 0.0f64..50.0,
        width in 0.1f64..10.0,
        query in 0.0f64..70.0,
    ) {
        let until = from + width;
        let plan = FaultPlan::new(vec![Outage::window(
            DeviceId(device),
            VirtualTime::from_secs(from),
            VirtualTime::from_secs(until),
        )])
        .unwrap();
        let t = VirtualTime::from_secs(query);
        let inside = query >= from && query < until;
        prop_assert_eq!(plan.is_up(DeviceId(device), t), !inside);
        // Other devices are always up.
        prop_assert!(plan.is_up(DeviceId(device + 1), t));
    }
}
