use serde::{Deserialize, Serialize};

use crate::error::SimError;
use crate::time::VirtualTime;
use crate::DeviceId;

/// One scheduled disconnection window of a device.
///
/// The device is unreachable in `[from, until)`; an open-ended outage
/// (crash with no recovery) uses `until = None`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Outage {
    /// The device that disconnects.
    pub device: DeviceId,
    /// Start of the outage (inclusive).
    pub from: VirtualTime,
    /// End of the outage (exclusive); `None` means it never reconnects.
    pub until: Option<VirtualTime>,
}

impl Outage {
    /// A bounded outage window.
    pub fn window(device: DeviceId, from: VirtualTime, until: VirtualTime) -> Self {
        Outage {
            device,
            from,
            until: Some(until),
        }
    }

    /// A permanent crash at `from`.
    pub fn crash(device: DeviceId, from: VirtualTime) -> Self {
        Outage {
            device,
            from,
            until: None,
        }
    }

    fn covers(&self, t: VirtualTime) -> bool {
        t >= self.from && self.until.is_none_or(|u| t < u)
    }
}

/// A schedule of device disconnections, queried by the coordinator's
/// liveness monitor and by ring neighbours during synchronization.
///
/// This is the substitute for the paper's "unstable network connection":
/// the fault-tolerance experiments inject outages here and assert that
/// the ring bypass (§III-D) keeps training alive.
///
/// # Example
///
/// ```
/// use hadfl_simnet::{DeviceId, FaultPlan, Outage, VirtualTime};
///
/// # fn main() -> Result<(), hadfl_simnet::SimError> {
/// let plan = FaultPlan::new(vec![Outage::window(
///     DeviceId(2),
///     VirtualTime::from_secs(1.0),
///     VirtualTime::from_secs(2.0),
/// )])?;
/// assert!(plan.is_up(DeviceId(2), VirtualTime::from_secs(0.5)));
/// assert!(!plan.is_up(DeviceId(2), VirtualTime::from_secs(1.5)));
/// assert!(plan.is_up(DeviceId(2), VirtualTime::from_secs(2.0)));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct FaultPlan {
    outages: Vec<Outage>,
}

impl FaultPlan {
    /// Creates a plan from outage windows.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidOutage`] if a window ends at or before
    /// it starts.
    pub fn new(outages: Vec<Outage>) -> Result<Self, SimError> {
        for o in &outages {
            if let Some(u) = o.until {
                if u <= o.from {
                    return Err(SimError::InvalidOutage(format!(
                        "{} outage ends at {u} before it starts at {}",
                        o.device, o.from
                    )));
                }
            }
        }
        Ok(FaultPlan { outages })
    }

    /// A plan with no outages.
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// The configured outages.
    pub fn outages(&self) -> &[Outage] {
        &self.outages
    }

    /// Is `device` reachable at time `t`?
    pub fn is_up(&self, device: DeviceId, t: VirtualTime) -> bool {
        !self
            .outages
            .iter()
            .any(|o| o.device == device && o.covers(t))
    }

    /// All devices of `0..n` that are reachable at `t`.
    pub fn available(&self, n: usize, t: VirtualTime) -> Vec<DeviceId> {
        (0..n).map(DeviceId).filter(|&d| self.is_up(d, t)).collect()
    }

    /// The next time strictly after `t` at which some device's
    /// availability changes, if any — used to advance liveness sweeps.
    pub fn next_transition_after(&self, t: VirtualTime) -> Option<VirtualTime> {
        self.outages
            .iter()
            .flat_map(|o| [Some(o.from), o.until].into_iter().flatten())
            .filter(|&x| x > t)
            .min()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: f64) -> VirtualTime {
        VirtualTime::from_secs(s)
    }

    #[test]
    fn empty_plan_everything_up() {
        let plan = FaultPlan::none();
        assert!(plan.is_up(DeviceId(0), t(100.0)));
        assert_eq!(plan.available(3, t(5.0)).len(), 3);
        assert_eq!(plan.next_transition_after(t(0.0)), None);
    }

    #[test]
    fn window_boundaries_are_half_open() {
        let plan = FaultPlan::new(vec![Outage::window(DeviceId(0), t(1.0), t(2.0))]).unwrap();
        assert!(plan.is_up(DeviceId(0), t(0.999)));
        assert!(!plan.is_up(DeviceId(0), t(1.0)));
        assert!(!plan.is_up(DeviceId(0), t(1.999)));
        assert!(plan.is_up(DeviceId(0), t(2.0)));
    }

    #[test]
    fn crash_never_recovers() {
        let plan = FaultPlan::new(vec![Outage::crash(DeviceId(1), t(5.0))]).unwrap();
        assert!(plan.is_up(DeviceId(1), t(4.9)));
        assert!(!plan.is_up(DeviceId(1), t(5.0)));
        assert!(!plan.is_up(DeviceId(1), t(1e9)));
    }

    #[test]
    fn available_filters_down_devices() {
        let plan = FaultPlan::new(vec![Outage::window(DeviceId(1), t(0.0), t(10.0))]).unwrap();
        assert_eq!(plan.available(3, t(5.0)), vec![DeviceId(0), DeviceId(2)]);
    }

    #[test]
    fn rejects_inverted_window() {
        assert!(FaultPlan::new(vec![Outage::window(DeviceId(0), t(2.0), t(1.0))]).is_err());
        assert!(FaultPlan::new(vec![Outage::window(DeviceId(0), t(2.0), t(2.0))]).is_err());
    }

    #[test]
    fn next_transition_walks_boundaries() {
        let plan = FaultPlan::new(vec![
            Outage::window(DeviceId(0), t(1.0), t(2.0)),
            Outage::crash(DeviceId(1), t(3.0)),
        ])
        .unwrap();
        assert_eq!(plan.next_transition_after(t(0.0)), Some(t(1.0)));
        assert_eq!(plan.next_transition_after(t(1.0)), Some(t(2.0)));
        assert_eq!(plan.next_transition_after(t(2.0)), Some(t(3.0)));
        assert_eq!(plan.next_transition_after(t(3.0)), None);
    }

    #[test]
    fn overlapping_outages_both_apply() {
        let plan = FaultPlan::new(vec![
            Outage::window(DeviceId(0), t(1.0), t(3.0)),
            Outage::window(DeviceId(0), t(2.0), t(4.0)),
        ])
        .unwrap();
        assert!(!plan.is_up(DeviceId(0), t(3.5)));
        assert!(plan.is_up(DeviceId(0), t(4.0)));
    }
}
