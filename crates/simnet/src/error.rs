use std::error::Error;
use std::fmt;

/// Error produced by simulator construction and queries.
///
/// # Example
///
/// ```
/// use hadfl_simnet::ComputeModel;
///
/// let err = ComputeModel::new(0.0, &[1.0]).unwrap_err();
/// assert!(err.to_string().contains("positive"));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// A model parameter was out of range (non-positive time, power, …).
    InvalidParameter(String),
    /// A device index was outside the cluster.
    UnknownDevice {
        /// The offending index.
        index: usize,
        /// Number of devices in the model.
        devices: usize,
    },
    /// A fault-plan outage was malformed (end before start, overlap, …).
    InvalidOutage(String),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::InvalidParameter(msg) => write!(f, "invalid parameter: {msg}"),
            SimError::UnknownDevice { index, devices } => {
                write!(f, "device {index} out of range for a cluster of {devices}")
            }
            SimError::InvalidOutage(msg) => write!(f, "invalid outage: {msg}"),
        }
    }
}

impl Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_carry_context() {
        let e = SimError::UnknownDevice {
            index: 9,
            devices: 4,
        };
        assert!(e.to_string().contains('9') && e.to_string().contains('4'));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SimError>();
    }
}
