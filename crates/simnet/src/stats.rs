use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::DeviceId;

/// One end of a simulated transfer: a device or the central server /
/// cloud coordinator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Endpoint {
    /// A training device.
    Device(DeviceId),
    /// The central parameter server (baselines) or cloud coordinator
    /// (HADFL control plane).
    Server,
}

impl std::fmt::Display for Endpoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Endpoint::Device(d) => write!(f, "{d}"),
            Endpoint::Server => write!(f, "server"),
        }
    }
}

/// Communication accounting for a simulation run.
///
/// Every transfer is recorded with its endpoints and size, so the paper's
/// volume claims can be checked exactly: centralized FL moves
/// `2·M·K·rounds` through the server while HADFL's server volume from
/// *model* traffic is zero (§II-B, §III-D).
///
/// # Example
///
/// ```
/// use hadfl_simnet::{DeviceId, Endpoint, NetStats};
///
/// let mut stats = NetStats::new();
/// stats.record(Endpoint::Device(DeviceId(0)), Endpoint::Server, 1000);
/// stats.record(Endpoint::Server, Endpoint::Device(DeviceId(0)), 1000);
/// assert_eq!(stats.server_bytes(), 2000);
/// assert_eq!(stats.total_bytes(), 2000);
/// assert_eq!(stats.messages(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct NetStats {
    sent: BTreeMap<Endpoint, u64>,
    received: BTreeMap<Endpoint, u64>,
    messages: u64,
    total_bytes: u64,
}

impl NetStats {
    /// Creates empty counters.
    pub fn new() -> Self {
        NetStats::default()
    }

    /// Records one transfer of `bytes` from `from` to `to`.
    pub fn record(&mut self, from: Endpoint, to: Endpoint, bytes: u64) {
        *self.sent.entry(from).or_insert(0) += bytes;
        *self.received.entry(to).or_insert(0) += bytes;
        self.messages += 1;
        self.total_bytes += bytes;
    }

    /// Bytes sent by `endpoint`.
    pub fn sent_by(&self, endpoint: Endpoint) -> u64 {
        self.sent.get(&endpoint).copied().unwrap_or(0)
    }

    /// Bytes received by `endpoint`.
    pub fn received_by(&self, endpoint: Endpoint) -> u64 {
        self.received.get(&endpoint).copied().unwrap_or(0)
    }

    /// Bytes through the server in either direction — the centralized
    /// bottleneck the paper eliminates.
    pub fn server_bytes(&self) -> u64 {
        self.sent_by(Endpoint::Server) + self.received_by(Endpoint::Server)
    }

    /// Bytes sent plus received by a device.
    pub fn device_bytes(&self, device: DeviceId) -> u64 {
        self.sent_by(Endpoint::Device(device)) + self.received_by(Endpoint::Device(device))
    }

    /// Total bytes moved across all links.
    pub fn total_bytes(&self) -> u64 {
        self.total_bytes
    }

    /// Total number of messages.
    pub fn messages(&self) -> u64 {
        self.messages
    }

    /// Merges another stats object into this one (e.g. per-group runs).
    pub fn merge(&mut self, other: &NetStats) {
        for (&e, &b) in &other.sent {
            *self.sent.entry(e).or_insert(0) += b;
        }
        for (&e, &b) in &other.received {
            *self.received.entry(e).or_insert(0) += b;
        }
        self.messages += other.messages;
        self.total_bytes += other.total_bytes;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_tracks_both_directions() {
        let mut s = NetStats::new();
        s.record(
            Endpoint::Device(DeviceId(0)),
            Endpoint::Device(DeviceId(1)),
            10,
        );
        assert_eq!(s.sent_by(Endpoint::Device(DeviceId(0))), 10);
        assert_eq!(s.received_by(Endpoint::Device(DeviceId(1))), 10);
        assert_eq!(s.device_bytes(DeviceId(0)), 10);
        assert_eq!(s.device_bytes(DeviceId(1)), 10);
        assert_eq!(s.server_bytes(), 0);
    }

    #[test]
    fn unknown_endpoints_report_zero() {
        let s = NetStats::new();
        assert_eq!(s.sent_by(Endpoint::Server), 0);
        assert_eq!(s.device_bytes(DeviceId(9)), 0);
    }

    #[test]
    fn merge_adds_counters() {
        let mut a = NetStats::new();
        a.record(Endpoint::Server, Endpoint::Device(DeviceId(0)), 5);
        let mut b = NetStats::new();
        b.record(Endpoint::Device(DeviceId(0)), Endpoint::Server, 7);
        a.merge(&b);
        assert_eq!(a.server_bytes(), 12);
        assert_eq!(a.messages(), 2);
        assert_eq!(a.total_bytes(), 12);
    }

    #[test]
    fn display_names_endpoints() {
        assert_eq!(Endpoint::Server.to_string(), "server");
        assert_eq!(Endpoint::Device(DeviceId(2)).to_string(), "dev2");
    }
}
