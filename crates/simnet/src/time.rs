use std::cmp::Ordering;
use std::fmt;

use serde::{Deserialize, Serialize};

/// A point on the simulation clock, in seconds since simulation start.
///
/// `VirtualTime` is totally ordered (NaN is rejected at construction) so it
/// can key the event queue. Durations are plain `f64` seconds.
///
/// # Example
///
/// ```
/// use hadfl_simnet::VirtualTime;
///
/// let t = VirtualTime::ZERO.after(1.5);
/// assert_eq!(t.as_secs(), 1.5);
/// assert!(t > VirtualTime::ZERO);
/// assert_eq!(t.elapsed_since(VirtualTime::ZERO), 1.5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct VirtualTime(f64);

impl VirtualTime {
    /// The simulation start.
    pub const ZERO: VirtualTime = VirtualTime(0.0);

    /// Creates a time point from seconds.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is NaN or negative — simulated clocks only move
    /// forward from zero.
    pub fn from_secs(secs: f64) -> Self {
        assert!(
            secs.is_finite() && secs >= 0.0,
            "invalid virtual time {secs}"
        );
        VirtualTime(secs)
    }

    /// Seconds since simulation start.
    pub fn as_secs(self) -> f64 {
        self.0
    }

    /// The time point `secs` later.
    ///
    /// # Panics
    ///
    /// Panics if the result would be NaN or negative.
    pub fn after(self, secs: f64) -> Self {
        VirtualTime::from_secs(self.0 + secs)
    }

    /// Seconds elapsed since `earlier` (negative if `earlier` is later).
    pub fn elapsed_since(self, earlier: VirtualTime) -> f64 {
        self.0 - earlier.0
    }

    /// This time quantized to integer milliseconds (rounding). The
    /// hyperperiod LCM computation works on these ticks.
    pub fn to_millis_ticks(self) -> u64 {
        (self.0 * 1e3).round() as u64
    }

    /// The later of two time points.
    pub fn max(self, other: VirtualTime) -> VirtualTime {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }
}

impl Eq for VirtualTime {}

impl PartialOrd for VirtualTime {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for VirtualTime {
    fn cmp(&self, other: &Self) -> Ordering {
        // Construction forbids NaN, so total order is safe.
        self.0
            .partial_cmp(&other.0)
            .expect("virtual times are never NaN")
    }
}

impl fmt::Display for VirtualTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_is_total() {
        let a = VirtualTime::from_secs(1.0);
        let b = VirtualTime::from_secs(2.0);
        assert!(a < b);
        assert_eq!(a.max(b), b);
        assert_eq!(b.max(a), b);
    }

    #[test]
    fn after_accumulates() {
        let t = VirtualTime::ZERO.after(0.5).after(0.25);
        assert!((t.as_secs() - 0.75).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "invalid virtual time")]
    fn negative_time_panics() {
        let _ = VirtualTime::from_secs(-1.0);
    }

    #[test]
    #[should_panic(expected = "invalid virtual time")]
    fn nan_time_panics() {
        let _ = VirtualTime::from_secs(f64::NAN);
    }

    #[test]
    fn millis_ticks_round() {
        assert_eq!(VirtualTime::from_secs(0.0014).to_millis_ticks(), 1);
        assert_eq!(VirtualTime::from_secs(0.0015).to_millis_ticks(), 2);
        assert_eq!(VirtualTime::from_secs(3.0).to_millis_ticks(), 3000);
    }

    #[test]
    fn display_is_compact() {
        assert_eq!(VirtualTime::from_secs(1.23456).to_string(), "1.235s");
    }
}
