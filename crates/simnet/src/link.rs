use serde::{Deserialize, Serialize};

use crate::error::SimError;

/// A point-to-point link cost model: fixed latency plus
/// bytes-over-bandwidth serialization time.
///
/// The paper's testbed connects the GPUs over PCIe 3.0 x8 (~8 GB/s); the
/// default mirrors that. Federated deployments would use much slower WAN
/// links — the model is the same, only the constants change.
///
/// # Example
///
/// ```
/// use hadfl_simnet::LinkModel;
///
/// # fn main() -> Result<(), hadfl_simnet::SimError> {
/// let link = LinkModel::new(100e-6, 8e9)?;
/// // 8 MB over 8 GB/s plus 100 µs latency.
/// let t = link.transfer_time(8_000_000);
/// assert!((t - 0.0011).abs() < 1e-9);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkModel {
    latency_secs: f64,
    bandwidth_bytes_per_sec: f64,
}

impl LinkModel {
    /// Creates a link model.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidParameter`] if latency is negative or
    /// bandwidth is not positive (both must be finite).
    pub fn new(latency_secs: f64, bandwidth_bytes_per_sec: f64) -> Result<Self, SimError> {
        if !(latency_secs >= 0.0) || !latency_secs.is_finite() {
            return Err(SimError::InvalidParameter(format!(
                "latency must be non-negative and finite, got {latency_secs}"
            )));
        }
        if !(bandwidth_bytes_per_sec > 0.0) || !bandwidth_bytes_per_sec.is_finite() {
            return Err(SimError::InvalidParameter(format!(
                "bandwidth must be positive and finite, got {bandwidth_bytes_per_sec}"
            )));
        }
        Ok(LinkModel {
            latency_secs,
            bandwidth_bytes_per_sec,
        })
    }

    /// A PCIe-3.0-x8-like link: 100 µs latency, 8 GB/s — the paper's
    /// testbed interconnect.
    pub fn pcie3_x8() -> Self {
        LinkModel {
            latency_secs: 100e-6,
            bandwidth_bytes_per_sec: 8e9,
        }
    }

    /// A WAN-like link: 20 ms latency, 12.5 MB/s (100 Mbit/s) — a
    /// geo-distributed federated deployment.
    pub fn wan() -> Self {
        LinkModel {
            latency_secs: 20e-3,
            bandwidth_bytes_per_sec: 12.5e6,
        }
    }

    /// One-way latency, seconds.
    pub fn latency_secs(&self) -> f64 {
        self.latency_secs
    }

    /// Bandwidth, bytes per second.
    pub fn bandwidth_bytes_per_sec(&self) -> f64 {
        self.bandwidth_bytes_per_sec
    }

    /// Time to move `bytes` over this link, seconds.
    pub fn transfer_time(&self, bytes: u64) -> f64 {
        self.latency_secs + bytes as f64 / self.bandwidth_bytes_per_sec
    }
}

impl Default for LinkModel {
    /// The paper's testbed link ([`LinkModel::pcie3_x8`]).
    fn default() -> Self {
        LinkModel::pcie3_x8()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_time_is_affine_in_bytes() {
        let l = LinkModel::new(0.001, 1000.0).unwrap();
        assert!((l.transfer_time(0) - 0.001).abs() < 1e-12);
        assert!((l.transfer_time(500) - 0.501).abs() < 1e-12);
        assert!((l.transfer_time(1000) - 1.001).abs() < 1e-12);
    }

    #[test]
    fn rejects_bad_parameters() {
        assert!(LinkModel::new(-0.1, 100.0).is_err());
        assert!(LinkModel::new(0.0, 0.0).is_err());
        assert!(LinkModel::new(f64::NAN, 100.0).is_err());
        assert!(LinkModel::new(0.0, f64::INFINITY).is_err());
    }

    #[test]
    fn presets_are_ordered_sensibly() {
        // PCIe is much faster than WAN for a model-sized payload.
        let payload = 10_000_000;
        assert!(
            LinkModel::pcie3_x8().transfer_time(payload)
                < LinkModel::wan().transfer_time(payload) / 100.0
        );
    }

    #[test]
    fn default_is_pcie() {
        assert_eq!(LinkModel::default(), LinkModel::pcie3_x8());
    }

    #[test]
    fn zero_latency_link_is_pure_bandwidth() {
        let l = LinkModel::new(0.0, 2000.0).unwrap();
        assert!((l.transfer_time(1000) - 0.5).abs() < 1e-12);
    }
}
