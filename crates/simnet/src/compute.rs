use hadfl_tensor::SeedStream;
use serde::{Deserialize, Serialize};

use crate::error::SimError;
use crate::DeviceId;

/// Optional run-to-run variation of device compute times.
///
/// The paper's §III-B motivates the runtime version predictor with "the
/// system may be disturbed during training, causing varying training
/// time"; `Jitter` injects exactly that disturbance.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub enum Jitter {
    /// Deterministic compute times.
    #[default]
    None,
    /// Multiply each step time by `1 + N(0, std_frac²)`, clamped to
    /// `[0.2, 5]×` so times stay positive and bounded.
    Gaussian {
        /// Standard deviation as a fraction of the nominal time.
        std_frac: f64,
    },
    /// Multiply each step time by `slow_factor` with probability `prob`
    /// (models sporadic background load / thermal throttling).
    Spike {
        /// Probability of a spike on any given step.
        prob: f64,
        /// Slow-down multiplier applied during a spike.
        slow_factor: f64,
    },
}

/// Per-device compute-time model.
///
/// Device `i` has computing power `power[i]` (the paper's ratio arrays,
/// e.g. `[3, 3, 1, 1]`); one local step on device `i` nominally takes
/// `base_step_secs / power[i]`. The paper realizes these ratios with
/// `sleep()` on real GPUs; here they are virtual-time costs — same
/// multiplier, deterministic clock (DESIGN.md §2).
///
/// # Example
///
/// ```
/// use hadfl_simnet::{ComputeModel, DeviceId};
///
/// # fn main() -> Result<(), hadfl_simnet::SimError> {
/// let m = ComputeModel::new(0.012, &[4.0, 2.0, 2.0, 1.0])?;
/// assert_eq!(m.devices(), 4);
/// // The power-1 straggler takes 4x as long as the power-4 device.
/// let fast = m.step_time(DeviceId(0), None)?;
/// let slow = m.step_time(DeviceId(3), None)?;
/// assert!((slow / fast - 4.0).abs() < 1e-9);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ComputeModel {
    base_step_secs: f64,
    powers: Vec<f64>,
    jitter: Jitter,
}

impl ComputeModel {
    /// Creates a model where a power-1 device spends `base_step_secs` per
    /// local step, and device `i` spends `base_step_secs / powers[i]`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidParameter`] if `base_step_secs` is not
    /// positive and finite, `powers` is empty, or any power is not
    /// positive and finite.
    pub fn new(base_step_secs: f64, powers: &[f64]) -> Result<Self, SimError> {
        if !(base_step_secs > 0.0) || !base_step_secs.is_finite() {
            return Err(SimError::InvalidParameter(format!(
                "base step time must be positive and finite, got {base_step_secs}"
            )));
        }
        if powers.is_empty() {
            return Err(SimError::InvalidParameter(
                "at least one device required".into(),
            ));
        }
        if let Some(&bad) = powers.iter().find(|&&p| !(p > 0.0) || !p.is_finite()) {
            return Err(SimError::InvalidParameter(format!(
                "device power must be positive and finite, got {bad}"
            )));
        }
        Ok(ComputeModel {
            base_step_secs,
            powers: powers.to_vec(),
            jitter: Jitter::None,
        })
    }

    /// Returns the model with jitter enabled (builder style).
    pub fn with_jitter(mut self, jitter: Jitter) -> Self {
        self.jitter = jitter;
        self
    }

    /// Number of modelled devices.
    pub fn devices(&self) -> usize {
        self.powers.len()
    }

    /// The configured power ratios.
    pub fn powers(&self) -> &[f64] {
        &self.powers
    }

    /// The configured jitter process.
    pub fn jitter(&self) -> Jitter {
        self.jitter
    }

    fn check(&self, device: DeviceId) -> Result<(), SimError> {
        if device.index() >= self.powers.len() {
            return Err(SimError::UnknownDevice {
                index: device.index(),
                devices: self.powers.len(),
            });
        }
        Ok(())
    }

    /// Nominal (jitter-free) time of one local step on `device`, seconds.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownDevice`] for an out-of-range device.
    pub fn nominal_step_time(&self, device: DeviceId) -> Result<f64, SimError> {
        self.check(device)?;
        Ok(self.base_step_secs / self.powers[device.index()])
    }

    /// Time of one local step on `device`, seconds, applying jitter when
    /// an RNG is supplied. With `rng = None` the nominal time is returned
    /// regardless of the jitter configuration.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownDevice`] for an out-of-range device.
    pub fn step_time(
        &self,
        device: DeviceId,
        rng: Option<&mut SeedStream>,
    ) -> Result<f64, SimError> {
        let nominal = self.nominal_step_time(device)?;
        let Some(rng) = rng else { return Ok(nominal) };
        let factor = match self.jitter {
            Jitter::None => 1.0,
            Jitter::Gaussian { std_frac } => {
                (1.0 + f64::from(rng.normal()) * std_frac).clamp(0.2, 5.0)
            }
            Jitter::Spike { prob, slow_factor } => {
                if f64::from(rng.uniform(0.0, 1.0)) < prob {
                    slow_factor
                } else {
                    1.0
                }
            }
        };
        Ok(nominal * factor)
    }

    /// Time for `steps` local steps on `device` (jittered per step when an
    /// RNG is supplied).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownDevice`] for an out-of-range device.
    pub fn steps_time(
        &self,
        device: DeviceId,
        steps: usize,
        mut rng: Option<&mut SeedStream>,
    ) -> Result<f64, SimError> {
        let mut total = 0.0;
        for _ in 0..steps {
            total += self.step_time(device, rng.as_deref_mut())?;
        }
        Ok(total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn step_time_is_inverse_in_power() {
        let m = ComputeModel::new(0.01, &[3.0, 3.0, 1.0, 1.0]).unwrap();
        let t0 = m.step_time(DeviceId(0), None).unwrap();
        let t2 = m.step_time(DeviceId(2), None).unwrap();
        assert!((t2 / t0 - 3.0).abs() < 1e-12);
    }

    #[test]
    fn rejects_bad_parameters() {
        assert!(ComputeModel::new(0.0, &[1.0]).is_err());
        assert!(ComputeModel::new(-1.0, &[1.0]).is_err());
        assert!(ComputeModel::new(f64::NAN, &[1.0]).is_err());
        assert!(ComputeModel::new(0.01, &[]).is_err());
        assert!(ComputeModel::new(0.01, &[1.0, 0.0]).is_err());
        assert!(ComputeModel::new(0.01, &[f64::INFINITY]).is_err());
    }

    #[test]
    fn unknown_device_is_reported() {
        let m = ComputeModel::new(0.01, &[1.0, 2.0]).unwrap();
        assert!(matches!(
            m.step_time(DeviceId(2), None),
            Err(SimError::UnknownDevice {
                index: 2,
                devices: 2
            })
        ));
    }

    #[test]
    fn no_rng_means_nominal_even_with_jitter() {
        let m = ComputeModel::new(0.01, &[1.0])
            .unwrap()
            .with_jitter(Jitter::Gaussian { std_frac: 0.5 });
        assert_eq!(m.step_time(DeviceId(0), None).unwrap(), 0.01);
    }

    #[test]
    fn gaussian_jitter_varies_but_stays_bounded() {
        let m = ComputeModel::new(0.01, &[1.0])
            .unwrap()
            .with_jitter(Jitter::Gaussian { std_frac: 0.3 });
        let mut rng = SeedStream::new(4);
        let times: Vec<f64> = (0..200)
            .map(|_| m.step_time(DeviceId(0), Some(&mut rng)).unwrap())
            .collect();
        assert!(
            times.iter().any(|&t| (t - 0.01).abs() > 1e-5),
            "jitter had no effect"
        );
        assert!(times.iter().all(|&t| (0.002..=0.05).contains(&t)));
    }

    #[test]
    fn spike_jitter_hits_roughly_at_rate() {
        let m = ComputeModel::new(0.01, &[1.0])
            .unwrap()
            .with_jitter(Jitter::Spike {
                prob: 0.25,
                slow_factor: 3.0,
            });
        let mut rng = SeedStream::new(4);
        let spikes = (0..2000)
            .filter(|_| m.step_time(DeviceId(0), Some(&mut rng)).unwrap() > 0.02)
            .count();
        let rate = spikes as f64 / 2000.0;
        assert!((rate - 0.25).abs() < 0.05, "spike rate {rate}");
    }

    #[test]
    fn steps_time_sums_steps() {
        let m = ComputeModel::new(0.01, &[2.0]).unwrap();
        let t = m.steps_time(DeviceId(0), 10, None).unwrap();
        assert!((t - 0.05).abs() < 1e-12);
        assert_eq!(m.steps_time(DeviceId(0), 0, None).unwrap(), 0.0);
    }
}
