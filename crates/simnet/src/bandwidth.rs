//! Heterogeneous pairwise bandwidth (the paper's future work:
//! "optimize … taking into account heterogeneous network bandwidth").
//!
//! [`LinkModel`](crate::LinkModel) gives every pair the same cost;
//! [`BandwidthMatrix`] assigns each ordered device pair its own
//! bandwidth — racks, NUMA domains, or WAN segments — so ring *ordering*
//! starts to matter and the topology layer can optimize for it.

use serde::{Deserialize, Serialize};

use crate::error::SimError;
use crate::DeviceId;

/// Pairwise link bandwidths with a shared per-message latency.
///
/// # Example
///
/// ```
/// use hadfl_simnet::{BandwidthMatrix, DeviceId};
///
/// # fn main() -> Result<(), hadfl_simnet::SimError> {
/// let mut net = BandwidthMatrix::uniform(3, 100e-6, 8e9)?;
/// net.set(DeviceId(0), DeviceId(2), 1e6)?; // one slow directed link
/// assert!(net.transfer_time(DeviceId(0), DeviceId(2), 1_000_000)?
///     > net.transfer_time(DeviceId(0), DeviceId(1), 1_000_000)?);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BandwidthMatrix {
    devices: usize,
    latency_secs: f64,
    /// Row-major `devices × devices`; `bw[i][j]` is the `i → j` rate in
    /// bytes/s. The diagonal is unused.
    bandwidth: Vec<f64>,
}

impl BandwidthMatrix {
    /// Creates a matrix where every pair shares one bandwidth.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidParameter`] for zero devices, negative
    /// latency, or a non-positive bandwidth.
    pub fn uniform(devices: usize, latency_secs: f64, bandwidth: f64) -> Result<Self, SimError> {
        if devices == 0 {
            return Err(SimError::InvalidParameter(
                "at least one device required".into(),
            ));
        }
        if !(latency_secs >= 0.0) || !latency_secs.is_finite() {
            return Err(SimError::InvalidParameter(format!(
                "invalid latency {latency_secs}"
            )));
        }
        Self::check_bw(bandwidth)?;
        Ok(BandwidthMatrix {
            devices,
            latency_secs,
            bandwidth: vec![bandwidth; devices * devices],
        })
    }

    /// A two-cluster topology: devices `0..split` and `split..n` enjoy
    /// `intra` bytes/s within their cluster but only `inter` across —
    /// racks joined by an oversubscribed uplink.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidParameter`] for degenerate arguments
    /// (`split` outside `1..devices`, bad rates).
    pub fn two_clusters(
        devices: usize,
        split: usize,
        latency_secs: f64,
        intra: f64,
        inter: f64,
    ) -> Result<Self, SimError> {
        if split == 0 || split >= devices {
            return Err(SimError::InvalidParameter(format!(
                "split {split} must be inside 1..{devices}"
            )));
        }
        let mut m = BandwidthMatrix::uniform(devices, latency_secs, intra)?;
        Self::check_bw(inter)?;
        for i in 0..devices {
            for j in 0..devices {
                if (i < split) != (j < split) {
                    m.bandwidth[i * devices + j] = inter;
                }
            }
        }
        Ok(m)
    }

    fn check_bw(bw: f64) -> Result<(), SimError> {
        if !(bw > 0.0) || !bw.is_finite() {
            return Err(SimError::InvalidParameter(format!(
                "invalid bandwidth {bw}"
            )));
        }
        Ok(())
    }

    fn check_pair(&self, from: DeviceId, to: DeviceId) -> Result<(), SimError> {
        for d in [from, to] {
            if d.index() >= self.devices {
                return Err(SimError::UnknownDevice {
                    index: d.index(),
                    devices: self.devices,
                });
            }
        }
        Ok(())
    }

    /// Number of devices.
    pub fn devices(&self) -> usize {
        self.devices
    }

    /// Shared per-message latency, seconds.
    pub fn latency_secs(&self) -> f64 {
        self.latency_secs
    }

    /// Overrides one directed link's bandwidth.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownDevice`] or
    /// [`SimError::InvalidParameter`] for bad arguments.
    pub fn set(&mut self, from: DeviceId, to: DeviceId, bandwidth: f64) -> Result<(), SimError> {
        self.check_pair(from, to)?;
        Self::check_bw(bandwidth)?;
        self.bandwidth[from.index() * self.devices + to.index()] = bandwidth;
        Ok(())
    }

    /// The `from → to` bandwidth, bytes/s.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownDevice`] for an out-of-range device.
    pub fn bandwidth(&self, from: DeviceId, to: DeviceId) -> Result<f64, SimError> {
        self.check_pair(from, to)?;
        Ok(self.bandwidth[from.index() * self.devices + to.index()])
    }

    /// Time to move `bytes` from `from` to `to`, seconds.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownDevice`] for an out-of-range device.
    pub fn transfer_time(&self, from: DeviceId, to: DeviceId, bytes: u64) -> Result<f64, SimError> {
        Ok(self.latency_secs + bytes as f64 / self.bandwidth(from, to)?)
    }

    /// The slowest directed link along a ring order (each member sends to
    /// its successor) — the pipeline bottleneck of a ring all-reduce.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidParameter`] for fewer than 2 members or
    /// [`SimError::UnknownDevice`] for out-of-range members.
    pub fn ring_bottleneck(&self, order: &[DeviceId]) -> Result<f64, SimError> {
        if order.len() < 2 {
            return Err(SimError::InvalidParameter(
                "ring needs at least 2 members".into(),
            ));
        }
        let mut worst = f64::INFINITY;
        for (i, &from) in order.iter().enumerate() {
            let to = order[(i + 1) % order.len()];
            worst = worst.min(self.bandwidth(from, to)?);
        }
        Ok(worst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_matrix_is_symmetric_in_cost() {
        let m = BandwidthMatrix::uniform(3, 0.001, 1e6).unwrap();
        let a = m.transfer_time(DeviceId(0), DeviceId(1), 1000).unwrap();
        let b = m.transfer_time(DeviceId(1), DeviceId(0), 1000).unwrap();
        assert_eq!(a, b);
        assert!((a - (0.001 + 0.001)).abs() < 1e-12);
    }

    #[test]
    fn set_changes_one_direction_only() {
        let mut m = BandwidthMatrix::uniform(2, 0.0, 1e6).unwrap();
        m.set(DeviceId(0), DeviceId(1), 1e3).unwrap();
        assert_eq!(m.bandwidth(DeviceId(0), DeviceId(1)).unwrap(), 1e3);
        assert_eq!(m.bandwidth(DeviceId(1), DeviceId(0)).unwrap(), 1e6);
    }

    #[test]
    fn two_clusters_split_bandwidths() {
        let m = BandwidthMatrix::two_clusters(4, 2, 0.0, 1e9, 1e6).unwrap();
        assert_eq!(m.bandwidth(DeviceId(0), DeviceId(1)).unwrap(), 1e9);
        assert_eq!(m.bandwidth(DeviceId(2), DeviceId(3)).unwrap(), 1e9);
        assert_eq!(m.bandwidth(DeviceId(1), DeviceId(2)).unwrap(), 1e6);
        assert_eq!(m.bandwidth(DeviceId(3), DeviceId(0)).unwrap(), 1e6);
    }

    #[test]
    fn ring_bottleneck_finds_slowest_link() {
        let m = BandwidthMatrix::two_clusters(4, 2, 0.0, 1e9, 1e6).unwrap();
        // 0→1→2→3→0 crosses the cluster boundary twice.
        let order: Vec<DeviceId> = (0..4).map(DeviceId).collect();
        assert_eq!(m.ring_bottleneck(&order).unwrap(), 1e6);
        // an intra-cluster pair has no slow link
        assert_eq!(m.ring_bottleneck(&[DeviceId(0), DeviceId(1)]).unwrap(), 1e9);
    }

    #[test]
    fn validates_arguments() {
        assert!(BandwidthMatrix::uniform(0, 0.0, 1e6).is_err());
        assert!(BandwidthMatrix::uniform(2, -1.0, 1e6).is_err());
        assert!(BandwidthMatrix::uniform(2, 0.0, 0.0).is_err());
        assert!(BandwidthMatrix::two_clusters(4, 0, 0.0, 1e9, 1e6).is_err());
        assert!(BandwidthMatrix::two_clusters(4, 4, 0.0, 1e9, 1e6).is_err());
        let m = BandwidthMatrix::uniform(2, 0.0, 1e6).unwrap();
        assert!(m.bandwidth(DeviceId(0), DeviceId(5)).is_err());
        assert!(m.ring_bottleneck(&[DeviceId(0)]).is_err());
    }
}
